/root/repo/target/debug/examples/latency_tolerance-001b7c374a3e943d.d: examples/latency_tolerance.rs Cargo.toml

/root/repo/target/debug/examples/liblatency_tolerance-001b7c374a3e943d.rmeta: examples/latency_tolerance.rs Cargo.toml

examples/latency_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/icon_case_study-4a162cf78c4bca38.d: examples/icon_case_study.rs

/root/repo/target/debug/examples/libicon_case_study-4a162cf78c4bca38.rmeta: examples/icon_case_study.rs

examples/icon_case_study.rs:

/root/repo/target/debug/examples/rank_placement-ca1b568ae46eb4a4.d: examples/rank_placement.rs Cargo.toml

/root/repo/target/debug/examples/librank_placement-ca1b568ae46eb4a4.rmeta: examples/rank_placement.rs Cargo.toml

examples/rank_placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/injector_demo-38662ac7ec64ee0f.d: examples/injector_demo.rs

/root/repo/target/debug/examples/injector_demo-38662ac7ec64ee0f: examples/injector_demo.rs

examples/injector_demo.rs:

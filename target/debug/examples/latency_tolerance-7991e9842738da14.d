/root/repo/target/debug/examples/latency_tolerance-7991e9842738da14.d: examples/latency_tolerance.rs

/root/repo/target/debug/examples/latency_tolerance-7991e9842738da14: examples/latency_tolerance.rs

examples/latency_tolerance.rs:

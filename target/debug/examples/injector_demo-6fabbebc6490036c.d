/root/repo/target/debug/examples/injector_demo-6fabbebc6490036c.d: examples/injector_demo.rs Cargo.toml

/root/repo/target/debug/examples/libinjector_demo-6fabbebc6490036c.rmeta: examples/injector_demo.rs Cargo.toml

examples/injector_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

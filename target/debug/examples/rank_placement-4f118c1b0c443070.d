/root/repo/target/debug/examples/rank_placement-4f118c1b0c443070.d: examples/rank_placement.rs

/root/repo/target/debug/examples/librank_placement-4f118c1b0c443070.rmeta: examples/rank_placement.rs

examples/rank_placement.rs:

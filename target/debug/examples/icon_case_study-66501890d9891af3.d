/root/repo/target/debug/examples/icon_case_study-66501890d9891af3.d: examples/icon_case_study.rs Cargo.toml

/root/repo/target/debug/examples/libicon_case_study-66501890d9891af3.rmeta: examples/icon_case_study.rs Cargo.toml

examples/icon_case_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

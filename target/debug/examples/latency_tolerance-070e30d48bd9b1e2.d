/root/repo/target/debug/examples/latency_tolerance-070e30d48bd9b1e2.d: examples/latency_tolerance.rs

/root/repo/target/debug/examples/liblatency_tolerance-070e30d48bd9b1e2.rmeta: examples/latency_tolerance.rs

examples/latency_tolerance.rs:

/root/repo/target/debug/examples/injector_demo-a1e460edf3efaa6e.d: examples/injector_demo.rs

/root/repo/target/debug/examples/libinjector_demo-a1e460edf3efaa6e.rmeta: examples/injector_demo.rs

examples/injector_demo.rs:

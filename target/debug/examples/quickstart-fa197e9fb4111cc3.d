/root/repo/target/debug/examples/quickstart-fa197e9fb4111cc3.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-fa197e9fb4111cc3.rmeta: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/icon_case_study-8ae043b734313717.d: examples/icon_case_study.rs

/root/repo/target/debug/examples/icon_case_study-8ae043b734313717: examples/icon_case_study.rs

examples/icon_case_study.rs:

/root/repo/target/debug/examples/rank_placement-729a54947b0f31a3.d: examples/rank_placement.rs

/root/repo/target/debug/examples/rank_placement-729a54947b0f31a3: examples/rank_placement.rs

examples/rank_placement.rs:

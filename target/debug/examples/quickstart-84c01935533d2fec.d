/root/repo/target/debug/examples/quickstart-84c01935533d2fec.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-84c01935533d2fec: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/libllamp_topo.rlib: /root/repo/crates/topo/src/dragonfly.rs /root/repo/crates/topo/src/fattree.rs /root/repo/crates/topo/src/lib.rs

/root/repo/target/debug/deps/llamp-099a0fff777475b7.d: crates/engine/src/bin/llamp.rs Cargo.toml

/root/repo/target/debug/deps/libllamp-099a0fff777475b7.rmeta: crates/engine/src/bin/llamp.rs Cargo.toml

crates/engine/src/bin/llamp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/bandwidth_sensitivity-4ed54204df661d71.d: tests/bandwidth_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libbandwidth_sensitivity-4ed54204df661d71.rmeta: tests/bandwidth_sensitivity.rs Cargo.toml

tests/bandwidth_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/llamp_criterion_shim-05135e2838ced225.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libllamp_criterion_shim-05135e2838ced225.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libllamp_criterion_shim-05135e2838ced225.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:

/root/repo/target/debug/deps/llamp_model-f9045ffc436af454.d: crates/model/src/lib.rs crates/model/src/hloggp.rs crates/model/src/netgauge.rs crates/model/src/params.rs

/root/repo/target/debug/deps/llamp_model-f9045ffc436af454: crates/model/src/lib.rs crates/model/src/hloggp.rs crates/model/src/netgauge.rs crates/model/src/params.rs

crates/model/src/lib.rs:
crates/model/src/hloggp.rs:
crates/model/src/netgauge.rs:
crates/model/src/params.rs:

/root/repo/target/debug/deps/llamp_criterion_shim-32870cef0b0373d6.d: crates/shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_criterion_shim-32870cef0b0373d6.rmeta: crates/shims/criterion/src/lib.rs Cargo.toml

crates/shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/llamp_topo-2aa714a5b30d020c.d: crates/topo/src/lib.rs crates/topo/src/dragonfly.rs crates/topo/src/fattree.rs

/root/repo/target/debug/deps/libllamp_topo-2aa714a5b30d020c.rmeta: crates/topo/src/lib.rs crates/topo/src/dragonfly.rs crates/topo/src/fattree.rs

crates/topo/src/lib.rs:
crates/topo/src/dragonfly.rs:
crates/topo/src/fattree.rs:

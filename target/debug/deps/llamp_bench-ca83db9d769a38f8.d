/root/repo/target/debug/deps/llamp_bench-ca83db9d769a38f8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_bench-ca83db9d769a38f8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

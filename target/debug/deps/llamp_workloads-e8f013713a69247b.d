/root/repo/target/debug/deps/llamp_workloads-e8f013713a69247b.d: crates/workloads/src/lib.rs crates/workloads/src/cloverleaf.rs crates/workloads/src/decomp.rs crates/workloads/src/hpcg.rs crates/workloads/src/icon.rs crates/workloads/src/lammps.rs crates/workloads/src/lulesh.rs crates/workloads/src/milc.rs crates/workloads/src/namd.rs crates/workloads/src/npb.rs crates/workloads/src/openmx.rs

/root/repo/target/debug/deps/libllamp_workloads-e8f013713a69247b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cloverleaf.rs crates/workloads/src/decomp.rs crates/workloads/src/hpcg.rs crates/workloads/src/icon.rs crates/workloads/src/lammps.rs crates/workloads/src/lulesh.rs crates/workloads/src/milc.rs crates/workloads/src/namd.rs crates/workloads/src/npb.rs crates/workloads/src/openmx.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cloverleaf.rs:
crates/workloads/src/decomp.rs:
crates/workloads/src/hpcg.rs:
crates/workloads/src/icon.rs:
crates/workloads/src/lammps.rs:
crates/workloads/src/lulesh.rs:
crates/workloads/src/milc.rs:
crates/workloads/src/namd.rs:
crates/workloads/src/npb.rs:
crates/workloads/src/openmx.rs:

/root/repo/target/debug/deps/llamp_trace-ba8f6cda1c56981e.d: crates/trace/src/lib.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/text.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_trace-ba8f6cda1c56981e.rmeta: crates/trace/src/lib.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/text.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/op.rs:
crates/trace/src/program.rs:
crates/trace/src/text.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig12_namd_charm-ca15029526a927cd.d: crates/bench/src/bin/fig12_namd_charm.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_namd_charm-ca15029526a927cd.rmeta: crates/bench/src/bin/fig12_namd_charm.rs Cargo.toml

crates/bench/src/bin/fig12_namd_charm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

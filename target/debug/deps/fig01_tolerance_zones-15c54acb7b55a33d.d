/root/repo/target/debug/deps/fig01_tolerance_zones-15c54acb7b55a33d.d: crates/bench/src/bin/fig01_tolerance_zones.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_tolerance_zones-15c54acb7b55a33d.rmeta: crates/bench/src/bin/fig01_tolerance_zones.rs Cargo.toml

crates/bench/src/bin/fig01_tolerance_zones.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

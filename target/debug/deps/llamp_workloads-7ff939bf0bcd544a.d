/root/repo/target/debug/deps/llamp_workloads-7ff939bf0bcd544a.d: crates/workloads/src/lib.rs crates/workloads/src/cloverleaf.rs crates/workloads/src/decomp.rs crates/workloads/src/hpcg.rs crates/workloads/src/icon.rs crates/workloads/src/lammps.rs crates/workloads/src/lulesh.rs crates/workloads/src/milc.rs crates/workloads/src/namd.rs crates/workloads/src/npb.rs crates/workloads/src/openmx.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_workloads-7ff939bf0bcd544a.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cloverleaf.rs crates/workloads/src/decomp.rs crates/workloads/src/hpcg.rs crates/workloads/src/icon.rs crates/workloads/src/lammps.rs crates/workloads/src/lulesh.rs crates/workloads/src/milc.rs crates/workloads/src/namd.rs crates/workloads/src/npb.rs crates/workloads/src/openmx.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/cloverleaf.rs:
crates/workloads/src/decomp.rs:
crates/workloads/src/hpcg.rs:
crates/workloads/src/icon.rs:
crates/workloads/src/lammps.rs:
crates/workloads/src/lulesh.rs:
crates/workloads/src/milc.rs:
crates/workloads/src/namd.rs:
crates/workloads/src/npb.rs:
crates/workloads/src/openmx.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

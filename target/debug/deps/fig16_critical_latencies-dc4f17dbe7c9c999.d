/root/repo/target/debug/deps/fig16_critical_latencies-dc4f17dbe7c9c999.d: crates/bench/src/bin/fig16_critical_latencies.rs

/root/repo/target/debug/deps/fig16_critical_latencies-dc4f17dbe7c9c999: crates/bench/src/bin/fig16_critical_latencies.rs

crates/bench/src/bin/fig16_critical_latencies.rs:

/root/repo/target/debug/deps/tolerance-589db0e85e6dcc3f.d: tests/tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libtolerance-589db0e85e6dcc3f.rmeta: tests/tolerance.rs Cargo.toml

tests/tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

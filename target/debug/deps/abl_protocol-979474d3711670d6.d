/root/repo/target/debug/deps/abl_protocol-979474d3711670d6.d: crates/bench/src/bin/abl_protocol.rs

/root/repo/target/debug/deps/abl_protocol-979474d3711670d6: crates/bench/src/bin/abl_protocol.rs

crates/bench/src/bin/abl_protocol.rs:

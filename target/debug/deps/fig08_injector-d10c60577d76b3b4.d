/root/repo/target/debug/deps/fig08_injector-d10c60577d76b3b4.d: crates/bench/src/bin/fig08_injector.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_injector-d10c60577d76b3b4.rmeta: crates/bench/src/bin/fig08_injector.rs Cargo.toml

crates/bench/src/bin/fig08_injector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/llamp_model-68d4e3b4d7040030.d: crates/model/src/lib.rs crates/model/src/hloggp.rs crates/model/src/netgauge.rs crates/model/src/params.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_model-68d4e3b4d7040030.rmeta: crates/model/src/lib.rs crates/model/src/hloggp.rs crates/model/src/netgauge.rs crates/model/src/params.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/hloggp.rs:
crates/model/src/netgauge.rs:
crates/model/src/params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

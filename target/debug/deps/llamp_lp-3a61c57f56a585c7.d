/root/repo/target/debug/deps/llamp_lp-3a61c57f56a585c7.d: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/piecewise.rs crates/lp/src/presolve.rs crates/lp/src/simplex.rs crates/lp/src/solution.rs

/root/repo/target/debug/deps/libllamp_lp-3a61c57f56a585c7.rmeta: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/piecewise.rs crates/lp/src/presolve.rs crates/lp/src/simplex.rs crates/lp/src/solution.rs

crates/lp/src/lib.rs:
crates/lp/src/model.rs:
crates/lp/src/piecewise.rs:
crates/lp/src/presolve.rs:
crates/lp/src/simplex.rs:
crates/lp/src/solution.rs:

/root/repo/target/debug/deps/fig09_validation-6198cc61bd152ef5.d: crates/bench/src/bin/fig09_validation.rs

/root/repo/target/debug/deps/fig09_validation-6198cc61bd152ef5: crates/bench/src/bin/fig09_validation.rs

crates/bench/src/bin/fig09_validation.rs:

/root/repo/target/debug/deps/pipeline-02973f622a54dcbe.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-02973f622a54dcbe: tests/pipeline.rs

tests/pipeline.rs:

/root/repo/target/debug/deps/property_pipeline-2fef18d0d1e51035.d: tests/property_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_pipeline-2fef18d0d1e51035.rmeta: tests/property_pipeline.rs Cargo.toml

tests/property_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/llamp_lp-5df92568f91e58ec.d: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/piecewise.rs crates/lp/src/presolve.rs crates/lp/src/simplex.rs crates/lp/src/solution.rs

/root/repo/target/debug/deps/llamp_lp-5df92568f91e58ec: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/piecewise.rs crates/lp/src/presolve.rs crates/lp/src/simplex.rs crates/lp/src/solution.rs

crates/lp/src/lib.rs:
crates/lp/src/model.rs:
crates/lp/src/piecewise.rs:
crates/lp/src/presolve.rs:
crates/lp/src/simplex.rs:
crates/lp/src/solution.rs:

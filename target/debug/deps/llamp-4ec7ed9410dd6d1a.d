/root/repo/target/debug/deps/llamp-4ec7ed9410dd6d1a.d: crates/engine/src/bin/llamp.rs

/root/repo/target/debug/deps/llamp-4ec7ed9410dd6d1a: crates/engine/src/bin/llamp.rs

crates/engine/src/bin/llamp.rs:

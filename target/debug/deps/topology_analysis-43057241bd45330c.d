/root/repo/target/debug/deps/topology_analysis-43057241bd45330c.d: tests/topology_analysis.rs

/root/repo/target/debug/deps/topology_analysis-43057241bd45330c: tests/topology_analysis.rs

tests/topology_analysis.rs:

/root/repo/target/debug/deps/llamp_sim-ce31470ba8411ec6.d: crates/sim/src/lib.rs crates/sim/src/des.rs crates/sim/src/injector.rs crates/sim/src/netgauge_impl.rs crates/sim/src/noise.rs

/root/repo/target/debug/deps/libllamp_sim-ce31470ba8411ec6.rmeta: crates/sim/src/lib.rs crates/sim/src/des.rs crates/sim/src/injector.rs crates/sim/src/netgauge_impl.rs crates/sim/src/noise.rs

crates/sim/src/lib.rs:
crates/sim/src/des.rs:
crates/sim/src/injector.rs:
crates/sim/src/netgauge_impl.rs:
crates/sim/src/noise.rs:

/root/repo/target/debug/deps/campaign-d8911c4bfb3275c2.d: crates/engine/tests/campaign.rs Cargo.toml

/root/repo/target/debug/deps/libcampaign-d8911c4bfb3275c2.rmeta: crates/engine/tests/campaign.rs Cargo.toml

crates/engine/tests/campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

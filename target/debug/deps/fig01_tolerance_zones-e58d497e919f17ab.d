/root/repo/target/debug/deps/fig01_tolerance_zones-e58d497e919f17ab.d: crates/bench/src/bin/fig01_tolerance_zones.rs

/root/repo/target/debug/deps/libfig01_tolerance_zones-e58d497e919f17ab.rmeta: crates/bench/src/bin/fig01_tolerance_zones.rs

crates/bench/src/bin/fig01_tolerance_zones.rs:

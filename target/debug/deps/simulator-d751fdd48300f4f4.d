/root/repo/target/debug/deps/simulator-d751fdd48300f4f4.d: crates/bench/benches/simulator.rs

/root/repo/target/debug/deps/libsimulator-d751fdd48300f4f4.rmeta: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:

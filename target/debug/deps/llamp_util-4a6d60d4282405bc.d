/root/repo/target/debug/deps/llamp_util-4a6d60d4282405bc.d: crates/util/src/lib.rs crates/util/src/fx.rs crates/util/src/stats.rs crates/util/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_util-4a6d60d4282405bc.rmeta: crates/util/src/lib.rs crates/util/src/fx.rs crates/util/src/stats.rs crates/util/src/time.rs Cargo.toml

crates/util/src/lib.rs:
crates/util/src/fx.rs:
crates/util/src/stats.rs:
crates/util/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

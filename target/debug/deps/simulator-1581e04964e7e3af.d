/root/repo/target/debug/deps/simulator-1581e04964e7e3af.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-1581e04964e7e3af.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/llamp-5bee6200e4e35d1a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libllamp-5bee6200e4e35d1a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/llamp-b5cbb39e3d4e88f5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libllamp-b5cbb39e3d4e88f5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

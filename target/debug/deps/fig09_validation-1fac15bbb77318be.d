/root/repo/target/debug/deps/fig09_validation-1fac15bbb77318be.d: crates/bench/src/bin/fig09_validation.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_validation-1fac15bbb77318be.rmeta: crates/bench/src/bin/fig09_validation.rs Cargo.toml

crates/bench/src/bin/fig09_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/property_pipeline-a7afc8cc6bb61283.d: tests/property_pipeline.rs

/root/repo/target/debug/deps/property_pipeline-a7afc8cc6bb61283: tests/property_pipeline.rs

tests/property_pipeline.rs:

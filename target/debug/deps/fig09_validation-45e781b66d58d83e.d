/root/repo/target/debug/deps/fig09_validation-45e781b66d58d83e.d: crates/bench/src/bin/fig09_validation.rs

/root/repo/target/debug/deps/libfig09_validation-45e781b66d58d83e.rmeta: crates/bench/src/bin/fig09_validation.rs

crates/bench/src/bin/fig09_validation.rs:

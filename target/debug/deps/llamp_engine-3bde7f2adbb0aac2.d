/root/repo/target/debug/deps/llamp_engine-3bde7f2adbb0aac2.d: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/campaign.rs crates/engine/src/executor.rs crates/engine/src/scenario.rs crates/engine/src/spec.rs crates/engine/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_engine-3bde7f2adbb0aac2.rmeta: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/campaign.rs crates/engine/src/executor.rs crates/engine/src/scenario.rs crates/engine/src/spec.rs crates/engine/src/value.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/cache.rs:
crates/engine/src/campaign.rs:
crates/engine/src/executor.rs:
crates/engine/src/scenario.rs:
crates/engine/src/spec.rs:
crates/engine/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/placement_integration-998792820fc2c15f.d: tests/placement_integration.rs

/root/repo/target/debug/deps/placement_integration-998792820fc2c15f: tests/placement_integration.rs

tests/placement_integration.rs:

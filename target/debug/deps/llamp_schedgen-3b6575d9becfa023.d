/root/repo/target/debug/deps/llamp_schedgen-3b6575d9becfa023.d: crates/schedgen/src/lib.rs crates/schedgen/src/build.rs crates/schedgen/src/collectives.rs crates/schedgen/src/goal.rs crates/schedgen/src/graph.rs crates/schedgen/src/lower.rs

/root/repo/target/debug/deps/llamp_schedgen-3b6575d9becfa023: crates/schedgen/src/lib.rs crates/schedgen/src/build.rs crates/schedgen/src/collectives.rs crates/schedgen/src/goal.rs crates/schedgen/src/graph.rs crates/schedgen/src/lower.rs

crates/schedgen/src/lib.rs:
crates/schedgen/src/build.rs:
crates/schedgen/src/collectives.rs:
crates/schedgen/src/goal.rs:
crates/schedgen/src/graph.rs:
crates/schedgen/src/lower.rs:

/root/repo/target/debug/deps/fig20_rank_placement-b80d8e136c187c9e.d: crates/bench/src/bin/fig20_rank_placement.rs

/root/repo/target/debug/deps/libfig20_rank_placement-b80d8e136c187c9e.rmeta: crates/bench/src/bin/fig20_rank_placement.rs

crates/bench/src/bin/fig20_rank_placement.rs:

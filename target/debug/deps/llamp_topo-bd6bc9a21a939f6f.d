/root/repo/target/debug/deps/llamp_topo-bd6bc9a21a939f6f.d: crates/topo/src/lib.rs crates/topo/src/dragonfly.rs crates/topo/src/fattree.rs

/root/repo/target/debug/deps/llamp_topo-bd6bc9a21a939f6f: crates/topo/src/lib.rs crates/topo/src/dragonfly.rs crates/topo/src/fattree.rs

crates/topo/src/lib.rs:
crates/topo/src/dragonfly.rs:
crates/topo/src/fattree.rs:

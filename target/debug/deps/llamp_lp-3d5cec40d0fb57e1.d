/root/repo/target/debug/deps/llamp_lp-3d5cec40d0fb57e1.d: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/piecewise.rs crates/lp/src/presolve.rs crates/lp/src/simplex.rs crates/lp/src/solution.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_lp-3d5cec40d0fb57e1.rmeta: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/piecewise.rs crates/lp/src/presolve.rs crates/lp/src/simplex.rs crates/lp/src/solution.rs Cargo.toml

crates/lp/src/lib.rs:
crates/lp/src/model.rs:
crates/lp/src/piecewise.rs:
crates/lp/src/presolve.rs:
crates/lp/src/simplex.rs:
crates/lp/src/solution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

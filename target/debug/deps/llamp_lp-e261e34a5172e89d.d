/root/repo/target/debug/deps/llamp_lp-e261e34a5172e89d.d: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/piecewise.rs crates/lp/src/presolve.rs crates/lp/src/simplex.rs crates/lp/src/solution.rs

/root/repo/target/debug/deps/libllamp_lp-e261e34a5172e89d.rmeta: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/piecewise.rs crates/lp/src/presolve.rs crates/lp/src/simplex.rs crates/lp/src/solution.rs

crates/lp/src/lib.rs:
crates/lp/src/model.rs:
crates/lp/src/piecewise.rs:
crates/lp/src/presolve.rs:
crates/lp/src/simplex.rs:
crates/lp/src/solution.rs:

/root/repo/target/debug/deps/campaign-ca3990c208565065.d: crates/engine/tests/campaign.rs

/root/repo/target/debug/deps/campaign-ca3990c208565065: crates/engine/tests/campaign.rs

crates/engine/tests/campaign.rs:

/root/repo/target/debug/deps/fig08_injector-a58adb6061ad4522.d: crates/bench/src/bin/fig08_injector.rs

/root/repo/target/debug/deps/fig08_injector-a58adb6061ad4522: crates/bench/src/bin/fig08_injector.rs

crates/bench/src/bin/fig08_injector.rs:

/root/repo/target/debug/deps/llamp_model-594b7027b4821d21.d: crates/model/src/lib.rs crates/model/src/hloggp.rs crates/model/src/netgauge.rs crates/model/src/params.rs

/root/repo/target/debug/deps/libllamp_model-594b7027b4821d21.rlib: crates/model/src/lib.rs crates/model/src/hloggp.rs crates/model/src/netgauge.rs crates/model/src/params.rs

/root/repo/target/debug/deps/libllamp_model-594b7027b4821d21.rmeta: crates/model/src/lib.rs crates/model/src/hloggp.rs crates/model/src/netgauge.rs crates/model/src/params.rs

crates/model/src/lib.rs:
crates/model/src/hloggp.rs:
crates/model/src/netgauge.rs:
crates/model/src/params.rs:

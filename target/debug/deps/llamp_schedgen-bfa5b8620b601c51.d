/root/repo/target/debug/deps/llamp_schedgen-bfa5b8620b601c51.d: crates/schedgen/src/lib.rs crates/schedgen/src/build.rs crates/schedgen/src/collectives.rs crates/schedgen/src/goal.rs crates/schedgen/src/graph.rs crates/schedgen/src/lower.rs

/root/repo/target/debug/deps/libllamp_schedgen-bfa5b8620b601c51.rmeta: crates/schedgen/src/lib.rs crates/schedgen/src/build.rs crates/schedgen/src/collectives.rs crates/schedgen/src/goal.rs crates/schedgen/src/graph.rs crates/schedgen/src/lower.rs

crates/schedgen/src/lib.rs:
crates/schedgen/src/build.rs:
crates/schedgen/src/collectives.rs:
crates/schedgen/src/goal.rs:
crates/schedgen/src/graph.rs:
crates/schedgen/src/lower.rs:

/root/repo/target/debug/deps/tolerance-add412d68ad46693.d: tests/tolerance.rs

/root/repo/target/debug/deps/tolerance-add412d68ad46693: tests/tolerance.rs

tests/tolerance.rs:

/root/repo/target/debug/deps/llamp_proptest_shim-b24ead427ded3c7c.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/llamp_proptest_shim-b24ead427ded3c7c: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/strategy.rs:
crates/shims/proptest/src/test_runner.rs:

/root/repo/target/debug/deps/fig20_rank_placement-eae3303711ff54a3.d: crates/bench/src/bin/fig20_rank_placement.rs

/root/repo/target/debug/deps/fig20_rank_placement-eae3303711ff54a3: crates/bench/src/bin/fig20_rank_placement.rs

crates/bench/src/bin/fig20_rank_placement.rs:

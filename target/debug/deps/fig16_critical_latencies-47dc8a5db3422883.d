/root/repo/target/debug/deps/fig16_critical_latencies-47dc8a5db3422883.d: crates/bench/src/bin/fig16_critical_latencies.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_critical_latencies-47dc8a5db3422883.rmeta: crates/bench/src/bin/fig16_critical_latencies.rs Cargo.toml

crates/bench/src/bin/fig16_critical_latencies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

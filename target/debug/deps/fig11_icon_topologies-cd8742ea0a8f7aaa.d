/root/repo/target/debug/deps/fig11_icon_topologies-cd8742ea0a8f7aaa.d: crates/bench/src/bin/fig11_icon_topologies.rs

/root/repo/target/debug/deps/fig11_icon_topologies-cd8742ea0a8f7aaa: crates/bench/src/bin/fig11_icon_topologies.rs

crates/bench/src/bin/fig11_icon_topologies.rs:

/root/repo/target/debug/deps/fig12_namd_charm-c713db67642bb7cb.d: crates/bench/src/bin/fig12_namd_charm.rs

/root/repo/target/debug/deps/libfig12_namd_charm-c713db67642bb7cb.rmeta: crates/bench/src/bin/fig12_namd_charm.rs

crates/bench/src/bin/fig12_namd_charm.rs:

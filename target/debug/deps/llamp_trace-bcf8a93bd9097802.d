/root/repo/target/debug/deps/llamp_trace-bcf8a93bd9097802.d: crates/trace/src/lib.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/text.rs

/root/repo/target/debug/deps/llamp_trace-bcf8a93bd9097802: crates/trace/src/lib.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/text.rs

crates/trace/src/lib.rs:
crates/trace/src/op.rs:
crates/trace/src/program.rs:
crates/trace/src/text.rs:

/root/repo/target/debug/deps/fig11_icon_topologies-bdeb6f97ae006557.d: crates/bench/src/bin/fig11_icon_topologies.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_icon_topologies-bdeb6f97ae006557.rmeta: crates/bench/src/bin/fig11_icon_topologies.rs Cargo.toml

crates/bench/src/bin/fig11_icon_topologies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

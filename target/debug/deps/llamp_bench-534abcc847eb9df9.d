/root/repo/target/debug/deps/llamp_bench-534abcc847eb9df9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libllamp_bench-534abcc847eb9df9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

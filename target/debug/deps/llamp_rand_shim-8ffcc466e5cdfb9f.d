/root/repo/target/debug/deps/llamp_rand_shim-8ffcc466e5cdfb9f.d: crates/shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_rand_shim-8ffcc466e5cdfb9f.rmeta: crates/shims/rand/src/lib.rs Cargo.toml

crates/shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig11_icon_topologies-c53c2a02942468c0.d: crates/bench/src/bin/fig11_icon_topologies.rs

/root/repo/target/debug/deps/libfig11_icon_topologies-c53c2a02942468c0.rmeta: crates/bench/src/bin/fig11_icon_topologies.rs

crates/bench/src/bin/fig11_icon_topologies.rs:

/root/repo/target/debug/deps/llamp_util-f64dabda5835603b.d: crates/util/src/lib.rs crates/util/src/fx.rs crates/util/src/stats.rs crates/util/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_util-f64dabda5835603b.rmeta: crates/util/src/lib.rs crates/util/src/fx.rs crates/util/src/stats.rs crates/util/src/time.rs Cargo.toml

crates/util/src/lib.rs:
crates/util/src/fx.rs:
crates/util/src/stats.rs:
crates/util/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/llamp_topo-c27c7729bb4555b0.d: crates/topo/src/lib.rs crates/topo/src/dragonfly.rs crates/topo/src/fattree.rs

/root/repo/target/debug/deps/libllamp_topo-c27c7729bb4555b0.rlib: crates/topo/src/lib.rs crates/topo/src/dragonfly.rs crates/topo/src/fattree.rs

/root/repo/target/debug/deps/libllamp_topo-c27c7729bb4555b0.rmeta: crates/topo/src/lib.rs crates/topo/src/dragonfly.rs crates/topo/src/fattree.rs

crates/topo/src/lib.rs:
crates/topo/src/dragonfly.rs:
crates/topo/src/fattree.rs:

/root/repo/target/debug/deps/llamp_engine-9c670d4df4ac0912.d: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/campaign.rs crates/engine/src/executor.rs crates/engine/src/scenario.rs crates/engine/src/spec.rs crates/engine/src/value.rs

/root/repo/target/debug/deps/libllamp_engine-9c670d4df4ac0912.rlib: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/campaign.rs crates/engine/src/executor.rs crates/engine/src/scenario.rs crates/engine/src/spec.rs crates/engine/src/value.rs

/root/repo/target/debug/deps/libllamp_engine-9c670d4df4ac0912.rmeta: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/campaign.rs crates/engine/src/executor.rs crates/engine/src/scenario.rs crates/engine/src/spec.rs crates/engine/src/value.rs

crates/engine/src/lib.rs:
crates/engine/src/cache.rs:
crates/engine/src/campaign.rs:
crates/engine/src/executor.rs:
crates/engine/src/scenario.rs:
crates/engine/src/spec.rs:
crates/engine/src/value.rs:

/root/repo/target/debug/deps/fig11_icon_topologies-f510fc9fed9bdb7a.d: crates/bench/src/bin/fig11_icon_topologies.rs

/root/repo/target/debug/deps/fig11_icon_topologies-f510fc9fed9bdb7a: crates/bench/src/bin/fig11_icon_topologies.rs

crates/bench/src/bin/fig11_icon_topologies.rs:

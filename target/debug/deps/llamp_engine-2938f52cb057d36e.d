/root/repo/target/debug/deps/llamp_engine-2938f52cb057d36e.d: crates/engine/src/lib.rs

/root/repo/target/debug/deps/libllamp_engine-2938f52cb057d36e.rmeta: crates/engine/src/lib.rs

crates/engine/src/lib.rs:

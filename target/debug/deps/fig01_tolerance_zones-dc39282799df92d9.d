/root/repo/target/debug/deps/fig01_tolerance_zones-dc39282799df92d9.d: crates/bench/src/bin/fig01_tolerance_zones.rs

/root/repo/target/debug/deps/fig01_tolerance_zones-dc39282799df92d9: crates/bench/src/bin/fig01_tolerance_zones.rs

crates/bench/src/bin/fig01_tolerance_zones.rs:

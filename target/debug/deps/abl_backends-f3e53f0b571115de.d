/root/repo/target/debug/deps/abl_backends-f3e53f0b571115de.d: crates/bench/src/bin/abl_backends.rs Cargo.toml

/root/repo/target/debug/deps/libabl_backends-f3e53f0b571115de.rmeta: crates/bench/src/bin/abl_backends.rs Cargo.toml

crates/bench/src/bin/abl_backends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/abl_presolve-8b0c1cc925997b60.d: crates/bench/src/bin/abl_presolve.rs

/root/repo/target/debug/deps/libabl_presolve-8b0c1cc925997b60.rmeta: crates/bench/src/bin/abl_presolve.rs

crates/bench/src/bin/abl_presolve.rs:

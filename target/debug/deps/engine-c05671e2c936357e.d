/root/repo/target/debug/deps/engine-c05671e2c936357e.d: crates/bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-c05671e2c936357e.rmeta: crates/bench/benches/engine.rs Cargo.toml

crates/bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig01_tolerance_zones-0c61aaff1c8b0f62.d: crates/bench/src/bin/fig01_tolerance_zones.rs

/root/repo/target/debug/deps/fig01_tolerance_zones-0c61aaff1c8b0f62: crates/bench/src/bin/fig01_tolerance_zones.rs

crates/bench/src/bin/fig01_tolerance_zones.rs:

/root/repo/target/debug/deps/llamp_util-7b35a7b342c9db2e.d: crates/util/src/lib.rs crates/util/src/fx.rs crates/util/src/stats.rs crates/util/src/time.rs

/root/repo/target/debug/deps/libllamp_util-7b35a7b342c9db2e.rmeta: crates/util/src/lib.rs crates/util/src/fx.rs crates/util/src/stats.rs crates/util/src/time.rs

crates/util/src/lib.rs:
crates/util/src/fx.rs:
crates/util/src/stats.rs:
crates/util/src/time.rs:

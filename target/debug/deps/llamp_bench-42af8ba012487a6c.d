/root/repo/target/debug/deps/llamp_bench-42af8ba012487a6c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_bench-42af8ba012487a6c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

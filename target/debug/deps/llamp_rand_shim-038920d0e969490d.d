/root/repo/target/debug/deps/llamp_rand_shim-038920d0e969490d.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/libllamp_rand_shim-038920d0e969490d.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/libllamp_rand_shim-038920d0e969490d.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:

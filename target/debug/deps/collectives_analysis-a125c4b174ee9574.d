/root/repo/target/debug/deps/collectives_analysis-a125c4b174ee9574.d: tests/collectives_analysis.rs

/root/repo/target/debug/deps/collectives_analysis-a125c4b174ee9574: tests/collectives_analysis.rs

tests/collectives_analysis.rs:

/root/repo/target/debug/deps/llamp-defbc2e773960159.d: src/lib.rs

/root/repo/target/debug/deps/libllamp-defbc2e773960159.rlib: src/lib.rs

/root/repo/target/debug/deps/libllamp-defbc2e773960159.rmeta: src/lib.rs

src/lib.rs:

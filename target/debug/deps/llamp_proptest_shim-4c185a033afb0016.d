/root/repo/target/debug/deps/llamp_proptest_shim-4c185a033afb0016.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libllamp_proptest_shim-4c185a033afb0016.rlib: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libllamp_proptest_shim-4c185a033afb0016.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/strategy.rs:
crates/shims/proptest/src/test_runner.rs:

/root/repo/target/debug/deps/fig10_icon_collectives-42e4643af866c556.d: crates/bench/src/bin/fig10_icon_collectives.rs

/root/repo/target/debug/deps/libfig10_icon_collectives-42e4643af866c556.rmeta: crates/bench/src/bin/fig10_icon_collectives.rs

crates/bench/src/bin/fig10_icon_collectives.rs:

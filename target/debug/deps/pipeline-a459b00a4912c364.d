/root/repo/target/debug/deps/pipeline-a459b00a4912c364.d: crates/bench/benches/pipeline.rs

/root/repo/target/debug/deps/libpipeline-a459b00a4912c364.rmeta: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:

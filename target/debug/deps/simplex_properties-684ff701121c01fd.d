/root/repo/target/debug/deps/simplex_properties-684ff701121c01fd.d: crates/lp/tests/simplex_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsimplex_properties-684ff701121c01fd.rmeta: crates/lp/tests/simplex_properties.rs Cargo.toml

crates/lp/tests/simplex_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

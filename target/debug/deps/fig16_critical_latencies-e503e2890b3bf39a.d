/root/repo/target/debug/deps/fig16_critical_latencies-e503e2890b3bf39a.d: crates/bench/src/bin/fig16_critical_latencies.rs

/root/repo/target/debug/deps/fig16_critical_latencies-e503e2890b3bf39a: crates/bench/src/bin/fig16_critical_latencies.rs

crates/bench/src/bin/fig16_critical_latencies.rs:

/root/repo/target/debug/deps/llamp_model-dab1709b163c95af.d: crates/model/src/lib.rs crates/model/src/hloggp.rs crates/model/src/netgauge.rs crates/model/src/params.rs

/root/repo/target/debug/deps/libllamp_model-dab1709b163c95af.rmeta: crates/model/src/lib.rs crates/model/src/hloggp.rs crates/model/src/netgauge.rs crates/model/src/params.rs

crates/model/src/lib.rs:
crates/model/src/hloggp.rs:
crates/model/src/netgauge.rs:
crates/model/src/params.rs:

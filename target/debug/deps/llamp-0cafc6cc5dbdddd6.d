/root/repo/target/debug/deps/llamp-0cafc6cc5dbdddd6.d: crates/engine/src/bin/llamp.rs

/root/repo/target/debug/deps/libllamp-0cafc6cc5dbdddd6.rmeta: crates/engine/src/bin/llamp.rs

crates/engine/src/bin/llamp.rs:

/root/repo/target/debug/deps/llamp-326c453e291b09b3.d: src/lib.rs

/root/repo/target/debug/deps/llamp-326c453e291b09b3: src/lib.rs

src/lib.rs:

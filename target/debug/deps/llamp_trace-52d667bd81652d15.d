/root/repo/target/debug/deps/llamp_trace-52d667bd81652d15.d: crates/trace/src/lib.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/text.rs

/root/repo/target/debug/deps/libllamp_trace-52d667bd81652d15.rmeta: crates/trace/src/lib.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/text.rs

crates/trace/src/lib.rs:
crates/trace/src/op.rs:
crates/trace/src/program.rs:
crates/trace/src/text.rs:

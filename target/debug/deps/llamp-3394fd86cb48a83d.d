/root/repo/target/debug/deps/llamp-3394fd86cb48a83d.d: src/lib.rs

/root/repo/target/debug/deps/libllamp-3394fd86cb48a83d.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/engine-8d0952ecc23bb25b.d: crates/bench/benches/engine.rs

/root/repo/target/debug/deps/libengine-8d0952ecc23bb25b.rmeta: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:

/root/repo/target/debug/deps/fig12_namd_charm-e7d09d09acbe6fa4.d: crates/bench/src/bin/fig12_namd_charm.rs

/root/repo/target/debug/deps/fig12_namd_charm-e7d09d09acbe6fa4: crates/bench/src/bin/fig12_namd_charm.rs

crates/bench/src/bin/fig12_namd_charm.rs:

/root/repo/target/debug/deps/llamp_schedgen-9a4441b37d6b7a40.d: crates/schedgen/src/lib.rs crates/schedgen/src/build.rs crates/schedgen/src/collectives.rs crates/schedgen/src/goal.rs crates/schedgen/src/graph.rs crates/schedgen/src/lower.rs

/root/repo/target/debug/deps/libllamp_schedgen-9a4441b37d6b7a40.rlib: crates/schedgen/src/lib.rs crates/schedgen/src/build.rs crates/schedgen/src/collectives.rs crates/schedgen/src/goal.rs crates/schedgen/src/graph.rs crates/schedgen/src/lower.rs

/root/repo/target/debug/deps/libllamp_schedgen-9a4441b37d6b7a40.rmeta: crates/schedgen/src/lib.rs crates/schedgen/src/build.rs crates/schedgen/src/collectives.rs crates/schedgen/src/goal.rs crates/schedgen/src/graph.rs crates/schedgen/src/lower.rs

crates/schedgen/src/lib.rs:
crates/schedgen/src/build.rs:
crates/schedgen/src/collectives.rs:
crates/schedgen/src/goal.rs:
crates/schedgen/src/graph.rs:
crates/schedgen/src/lower.rs:

/root/repo/target/debug/deps/llamp_core-ad5cdc2fb0307c3a.d: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/binding.rs crates/core/src/eval.rs crates/core/src/lp_build.rs crates/core/src/parametric.rs crates/core/src/placement.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_core-ad5cdc2fb0307c3a.rmeta: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/binding.rs crates/core/src/eval.rs crates/core/src/lp_build.rs crates/core/src/parametric.rs crates/core/src/placement.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analyzer.rs:
crates/core/src/binding.rs:
crates/core/src/eval.rs:
crates/core/src/lp_build.rs:
crates/core/src/parametric.rs:
crates/core/src/placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/llamp_topo-4ac3fa2a98762b4c.d: crates/topo/src/lib.rs crates/topo/src/dragonfly.rs crates/topo/src/fattree.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_topo-4ac3fa2a98762b4c.rmeta: crates/topo/src/lib.rs crates/topo/src/dragonfly.rs crates/topo/src/fattree.rs Cargo.toml

crates/topo/src/lib.rs:
crates/topo/src/dragonfly.rs:
crates/topo/src/fattree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

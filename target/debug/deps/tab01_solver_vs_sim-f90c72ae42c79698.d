/root/repo/target/debug/deps/tab01_solver_vs_sim-f90c72ae42c79698.d: crates/bench/src/bin/tab01_solver_vs_sim.rs

/root/repo/target/debug/deps/libtab01_solver_vs_sim-f90c72ae42c79698.rmeta: crates/bench/src/bin/tab01_solver_vs_sim.rs

crates/bench/src/bin/tab01_solver_vs_sim.rs:

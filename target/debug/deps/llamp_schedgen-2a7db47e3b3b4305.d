/root/repo/target/debug/deps/llamp_schedgen-2a7db47e3b3b4305.d: crates/schedgen/src/lib.rs crates/schedgen/src/build.rs crates/schedgen/src/collectives.rs crates/schedgen/src/goal.rs crates/schedgen/src/graph.rs crates/schedgen/src/lower.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_schedgen-2a7db47e3b3b4305.rmeta: crates/schedgen/src/lib.rs crates/schedgen/src/build.rs crates/schedgen/src/collectives.rs crates/schedgen/src/goal.rs crates/schedgen/src/graph.rs crates/schedgen/src/lower.rs Cargo.toml

crates/schedgen/src/lib.rs:
crates/schedgen/src/build.rs:
crates/schedgen/src/collectives.rs:
crates/schedgen/src/goal.rs:
crates/schedgen/src/graph.rs:
crates/schedgen/src/lower.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

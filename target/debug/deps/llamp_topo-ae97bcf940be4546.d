/root/repo/target/debug/deps/llamp_topo-ae97bcf940be4546.d: crates/topo/src/lib.rs crates/topo/src/dragonfly.rs crates/topo/src/fattree.rs

/root/repo/target/debug/deps/libllamp_topo-ae97bcf940be4546.rmeta: crates/topo/src/lib.rs crates/topo/src/dragonfly.rs crates/topo/src/fattree.rs

crates/topo/src/lib.rs:
crates/topo/src/dragonfly.rs:
crates/topo/src/fattree.rs:

/root/repo/target/debug/deps/llamp-705d537875f7367b.d: src/lib.rs

/root/repo/target/debug/deps/libllamp-705d537875f7367b.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/llamp_trace-7da7584d26eec24f.d: crates/trace/src/lib.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/text.rs

/root/repo/target/debug/deps/libllamp_trace-7da7584d26eec24f.rmeta: crates/trace/src/lib.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/text.rs

crates/trace/src/lib.rs:
crates/trace/src/op.rs:
crates/trace/src/program.rs:
crates/trace/src/text.rs:

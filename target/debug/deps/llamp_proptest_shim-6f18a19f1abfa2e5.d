/root/repo/target/debug/deps/llamp_proptest_shim-6f18a19f1abfa2e5.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_proptest_shim-6f18a19f1abfa2e5.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs Cargo.toml

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/strategy.rs:
crates/shims/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

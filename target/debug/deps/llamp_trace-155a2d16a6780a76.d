/root/repo/target/debug/deps/llamp_trace-155a2d16a6780a76.d: crates/trace/src/lib.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/text.rs

/root/repo/target/debug/deps/libllamp_trace-155a2d16a6780a76.rlib: crates/trace/src/lib.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/text.rs

/root/repo/target/debug/deps/libllamp_trace-155a2d16a6780a76.rmeta: crates/trace/src/lib.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/text.rs

crates/trace/src/lib.rs:
crates/trace/src/op.rs:
crates/trace/src/program.rs:
crates/trace/src/text.rs:

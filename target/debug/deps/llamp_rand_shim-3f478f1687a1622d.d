/root/repo/target/debug/deps/llamp_rand_shim-3f478f1687a1622d.d: crates/shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_rand_shim-3f478f1687a1622d.rmeta: crates/shims/rand/src/lib.rs Cargo.toml

crates/shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/abl_presolve-b3e75764dafb58e7.d: crates/bench/src/bin/abl_presolve.rs

/root/repo/target/debug/deps/abl_presolve-b3e75764dafb58e7: crates/bench/src/bin/abl_presolve.rs

crates/bench/src/bin/abl_presolve.rs:

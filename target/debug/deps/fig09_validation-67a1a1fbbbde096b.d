/root/repo/target/debug/deps/fig09_validation-67a1a1fbbbde096b.d: crates/bench/src/bin/fig09_validation.rs

/root/repo/target/debug/deps/fig09_validation-67a1a1fbbbde096b: crates/bench/src/bin/fig09_validation.rs

crates/bench/src/bin/fig09_validation.rs:

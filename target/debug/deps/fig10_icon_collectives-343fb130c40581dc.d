/root/repo/target/debug/deps/fig10_icon_collectives-343fb130c40581dc.d: crates/bench/src/bin/fig10_icon_collectives.rs

/root/repo/target/debug/deps/fig10_icon_collectives-343fb130c40581dc: crates/bench/src/bin/fig10_icon_collectives.rs

crates/bench/src/bin/fig10_icon_collectives.rs:

/root/repo/target/debug/deps/llamp_sim-7406acc8861b12f9.d: crates/sim/src/lib.rs crates/sim/src/des.rs crates/sim/src/injector.rs crates/sim/src/netgauge_impl.rs crates/sim/src/noise.rs

/root/repo/target/debug/deps/llamp_sim-7406acc8861b12f9: crates/sim/src/lib.rs crates/sim/src/des.rs crates/sim/src/injector.rs crates/sim/src/netgauge_impl.rs crates/sim/src/noise.rs

crates/sim/src/lib.rs:
crates/sim/src/des.rs:
crates/sim/src/injector.rs:
crates/sim/src/netgauge_impl.rs:
crates/sim/src/noise.rs:

/root/repo/target/debug/deps/measurement-a41c527f90b4d6c3.d: tests/measurement.rs Cargo.toml

/root/repo/target/debug/deps/libmeasurement-a41c527f90b4d6c3.rmeta: tests/measurement.rs Cargo.toml

tests/measurement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/llamp_core-9e4e09adeaabe724.d: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/binding.rs crates/core/src/eval.rs crates/core/src/lp_build.rs crates/core/src/parametric.rs crates/core/src/placement.rs

/root/repo/target/debug/deps/llamp_core-9e4e09adeaabe724: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/binding.rs crates/core/src/eval.rs crates/core/src/lp_build.rs crates/core/src/parametric.rs crates/core/src/placement.rs

crates/core/src/lib.rs:
crates/core/src/analyzer.rs:
crates/core/src/binding.rs:
crates/core/src/eval.rs:
crates/core/src/lp_build.rs:
crates/core/src/parametric.rs:
crates/core/src/placement.rs:

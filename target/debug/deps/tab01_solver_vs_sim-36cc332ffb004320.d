/root/repo/target/debug/deps/tab01_solver_vs_sim-36cc332ffb004320.d: crates/bench/src/bin/tab01_solver_vs_sim.rs Cargo.toml

/root/repo/target/debug/deps/libtab01_solver_vs_sim-36cc332ffb004320.rmeta: crates/bench/src/bin/tab01_solver_vs_sim.rs Cargo.toml

crates/bench/src/bin/tab01_solver_vs_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/llamp_model-43f3cedff943be68.d: crates/model/src/lib.rs crates/model/src/hloggp.rs crates/model/src/netgauge.rs crates/model/src/params.rs

/root/repo/target/debug/deps/libllamp_model-43f3cedff943be68.rmeta: crates/model/src/lib.rs crates/model/src/hloggp.rs crates/model/src/netgauge.rs crates/model/src/params.rs

crates/model/src/lib.rs:
crates/model/src/hloggp.rs:
crates/model/src/netgauge.rs:
crates/model/src/params.rs:

/root/repo/target/debug/deps/lp_solver-a965456122c3add3.d: crates/bench/benches/lp_solver.rs Cargo.toml

/root/repo/target/debug/deps/liblp_solver-a965456122c3add3.rmeta: crates/bench/benches/lp_solver.rs Cargo.toml

crates/bench/benches/lp_solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

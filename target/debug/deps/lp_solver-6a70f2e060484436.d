/root/repo/target/debug/deps/lp_solver-6a70f2e060484436.d: crates/bench/benches/lp_solver.rs

/root/repo/target/debug/deps/liblp_solver-6a70f2e060484436.rmeta: crates/bench/benches/lp_solver.rs

crates/bench/benches/lp_solver.rs:

/root/repo/target/debug/deps/abl_presolve-634916726e35f102.d: crates/bench/src/bin/abl_presolve.rs

/root/repo/target/debug/deps/abl_presolve-634916726e35f102: crates/bench/src/bin/abl_presolve.rs

crates/bench/src/bin/abl_presolve.rs:

/root/repo/target/debug/deps/fig20_rank_placement-dc3e135f44fef6f5.d: crates/bench/src/bin/fig20_rank_placement.rs

/root/repo/target/debug/deps/fig20_rank_placement-dc3e135f44fef6f5: crates/bench/src/bin/fig20_rank_placement.rs

crates/bench/src/bin/fig20_rank_placement.rs:

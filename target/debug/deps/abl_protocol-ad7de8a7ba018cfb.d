/root/repo/target/debug/deps/abl_protocol-ad7de8a7ba018cfb.d: crates/bench/src/bin/abl_protocol.rs

/root/repo/target/debug/deps/abl_protocol-ad7de8a7ba018cfb: crates/bench/src/bin/abl_protocol.rs

crates/bench/src/bin/abl_protocol.rs:

/root/repo/target/debug/deps/llamp_sim-eb86dcbad13a322b.d: crates/sim/src/lib.rs crates/sim/src/des.rs crates/sim/src/injector.rs crates/sim/src/netgauge_impl.rs crates/sim/src/noise.rs

/root/repo/target/debug/deps/libllamp_sim-eb86dcbad13a322b.rlib: crates/sim/src/lib.rs crates/sim/src/des.rs crates/sim/src/injector.rs crates/sim/src/netgauge_impl.rs crates/sim/src/noise.rs

/root/repo/target/debug/deps/libllamp_sim-eb86dcbad13a322b.rmeta: crates/sim/src/lib.rs crates/sim/src/des.rs crates/sim/src/injector.rs crates/sim/src/netgauge_impl.rs crates/sim/src/noise.rs

crates/sim/src/lib.rs:
crates/sim/src/des.rs:
crates/sim/src/injector.rs:
crates/sim/src/netgauge_impl.rs:
crates/sim/src/noise.rs:

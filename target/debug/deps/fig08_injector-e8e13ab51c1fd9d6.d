/root/repo/target/debug/deps/fig08_injector-e8e13ab51c1fd9d6.d: crates/bench/src/bin/fig08_injector.rs

/root/repo/target/debug/deps/fig08_injector-e8e13ab51c1fd9d6: crates/bench/src/bin/fig08_injector.rs

crates/bench/src/bin/fig08_injector.rs:

/root/repo/target/debug/deps/llamp_criterion_shim-4d56aa0f6d06dc48.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libllamp_criterion_shim-4d56aa0f6d06dc48.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:

/root/repo/target/debug/deps/abl_protocol-96e20a84d647557a.d: crates/bench/src/bin/abl_protocol.rs

/root/repo/target/debug/deps/libabl_protocol-96e20a84d647557a.rmeta: crates/bench/src/bin/abl_protocol.rs

crates/bench/src/bin/abl_protocol.rs:

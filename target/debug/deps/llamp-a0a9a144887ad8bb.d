/root/repo/target/debug/deps/llamp-a0a9a144887ad8bb.d: crates/engine/src/bin/llamp.rs

/root/repo/target/debug/deps/llamp-a0a9a144887ad8bb: crates/engine/src/bin/llamp.rs

crates/engine/src/bin/llamp.rs:

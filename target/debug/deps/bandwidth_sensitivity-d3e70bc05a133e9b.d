/root/repo/target/debug/deps/bandwidth_sensitivity-d3e70bc05a133e9b.d: tests/bandwidth_sensitivity.rs

/root/repo/target/debug/deps/bandwidth_sensitivity-d3e70bc05a133e9b: tests/bandwidth_sensitivity.rs

tests/bandwidth_sensitivity.rs:

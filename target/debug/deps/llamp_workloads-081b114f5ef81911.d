/root/repo/target/debug/deps/llamp_workloads-081b114f5ef81911.d: crates/workloads/src/lib.rs crates/workloads/src/cloverleaf.rs crates/workloads/src/decomp.rs crates/workloads/src/hpcg.rs crates/workloads/src/icon.rs crates/workloads/src/lammps.rs crates/workloads/src/lulesh.rs crates/workloads/src/milc.rs crates/workloads/src/namd.rs crates/workloads/src/npb.rs crates/workloads/src/openmx.rs

/root/repo/target/debug/deps/libllamp_workloads-081b114f5ef81911.rlib: crates/workloads/src/lib.rs crates/workloads/src/cloverleaf.rs crates/workloads/src/decomp.rs crates/workloads/src/hpcg.rs crates/workloads/src/icon.rs crates/workloads/src/lammps.rs crates/workloads/src/lulesh.rs crates/workloads/src/milc.rs crates/workloads/src/namd.rs crates/workloads/src/npb.rs crates/workloads/src/openmx.rs

/root/repo/target/debug/deps/libllamp_workloads-081b114f5ef81911.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cloverleaf.rs crates/workloads/src/decomp.rs crates/workloads/src/hpcg.rs crates/workloads/src/icon.rs crates/workloads/src/lammps.rs crates/workloads/src/lulesh.rs crates/workloads/src/milc.rs crates/workloads/src/namd.rs crates/workloads/src/npb.rs crates/workloads/src/openmx.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cloverleaf.rs:
crates/workloads/src/decomp.rs:
crates/workloads/src/hpcg.rs:
crates/workloads/src/icon.rs:
crates/workloads/src/lammps.rs:
crates/workloads/src/lulesh.rs:
crates/workloads/src/milc.rs:
crates/workloads/src/namd.rs:
crates/workloads/src/npb.rs:
crates/workloads/src/openmx.rs:

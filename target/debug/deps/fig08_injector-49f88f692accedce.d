/root/repo/target/debug/deps/fig08_injector-49f88f692accedce.d: crates/bench/src/bin/fig08_injector.rs

/root/repo/target/debug/deps/libfig08_injector-49f88f692accedce.rmeta: crates/bench/src/bin/fig08_injector.rs

crates/bench/src/bin/fig08_injector.rs:

/root/repo/target/debug/deps/llamp_workloads-18a6a95dd2850eba.d: crates/workloads/src/lib.rs crates/workloads/src/cloverleaf.rs crates/workloads/src/decomp.rs crates/workloads/src/hpcg.rs crates/workloads/src/icon.rs crates/workloads/src/lammps.rs crates/workloads/src/lulesh.rs crates/workloads/src/milc.rs crates/workloads/src/namd.rs crates/workloads/src/npb.rs crates/workloads/src/openmx.rs

/root/repo/target/debug/deps/libllamp_workloads-18a6a95dd2850eba.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cloverleaf.rs crates/workloads/src/decomp.rs crates/workloads/src/hpcg.rs crates/workloads/src/icon.rs crates/workloads/src/lammps.rs crates/workloads/src/lulesh.rs crates/workloads/src/milc.rs crates/workloads/src/namd.rs crates/workloads/src/npb.rs crates/workloads/src/openmx.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cloverleaf.rs:
crates/workloads/src/decomp.rs:
crates/workloads/src/hpcg.rs:
crates/workloads/src/icon.rs:
crates/workloads/src/lammps.rs:
crates/workloads/src/lulesh.rs:
crates/workloads/src/milc.rs:
crates/workloads/src/namd.rs:
crates/workloads/src/npb.rs:
crates/workloads/src/openmx.rs:

/root/repo/target/debug/deps/abl_backends-ba78bf9874ae3f47.d: crates/bench/src/bin/abl_backends.rs

/root/repo/target/debug/deps/abl_backends-ba78bf9874ae3f47: crates/bench/src/bin/abl_backends.rs

crates/bench/src/bin/abl_backends.rs:

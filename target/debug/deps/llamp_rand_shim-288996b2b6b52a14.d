/root/repo/target/debug/deps/llamp_rand_shim-288996b2b6b52a14.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/llamp_rand_shim-288996b2b6b52a14: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:

/root/repo/target/debug/deps/llamp_criterion_shim-4cfb26cea8c5225c.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/llamp_criterion_shim-4cfb26cea8c5225c: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:

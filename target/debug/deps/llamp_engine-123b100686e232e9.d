/root/repo/target/debug/deps/llamp_engine-123b100686e232e9.d: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/campaign.rs crates/engine/src/executor.rs crates/engine/src/scenario.rs crates/engine/src/spec.rs crates/engine/src/value.rs

/root/repo/target/debug/deps/llamp_engine-123b100686e232e9: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/campaign.rs crates/engine/src/executor.rs crates/engine/src/scenario.rs crates/engine/src/spec.rs crates/engine/src/value.rs

crates/engine/src/lib.rs:
crates/engine/src/cache.rs:
crates/engine/src/campaign.rs:
crates/engine/src/executor.rs:
crates/engine/src/scenario.rs:
crates/engine/src/spec.rs:
crates/engine/src/value.rs:

/root/repo/target/debug/deps/collectives_analysis-bf44702bbd5f3a9b.d: tests/collectives_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libcollectives_analysis-bf44702bbd5f3a9b.rmeta: tests/collectives_analysis.rs Cargo.toml

tests/collectives_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/llamp_proptest_shim-b3ccdea9a88ed601.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_proptest_shim-b3ccdea9a88ed601.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/strategy.rs crates/shims/proptest/src/test_runner.rs Cargo.toml

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/strategy.rs:
crates/shims/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

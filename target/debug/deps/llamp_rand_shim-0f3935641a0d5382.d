/root/repo/target/debug/deps/llamp_rand_shim-0f3935641a0d5382.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/libllamp_rand_shim-0f3935641a0d5382.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:

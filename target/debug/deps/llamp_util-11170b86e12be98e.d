/root/repo/target/debug/deps/llamp_util-11170b86e12be98e.d: crates/util/src/lib.rs crates/util/src/fx.rs crates/util/src/stats.rs crates/util/src/time.rs

/root/repo/target/debug/deps/libllamp_util-11170b86e12be98e.rmeta: crates/util/src/lib.rs crates/util/src/fx.rs crates/util/src/stats.rs crates/util/src/time.rs

crates/util/src/lib.rs:
crates/util/src/fx.rs:
crates/util/src/stats.rs:
crates/util/src/time.rs:

/root/repo/target/debug/deps/placement_integration-8783ce0daf79fcd0.d: tests/placement_integration.rs Cargo.toml

/root/repo/target/debug/deps/libplacement_integration-8783ce0daf79fcd0.rmeta: tests/placement_integration.rs Cargo.toml

tests/placement_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

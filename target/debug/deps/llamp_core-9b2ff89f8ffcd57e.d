/root/repo/target/debug/deps/llamp_core-9b2ff89f8ffcd57e.d: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/binding.rs crates/core/src/eval.rs crates/core/src/lp_build.rs crates/core/src/parametric.rs crates/core/src/placement.rs

/root/repo/target/debug/deps/libllamp_core-9b2ff89f8ffcd57e.rmeta: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/binding.rs crates/core/src/eval.rs crates/core/src/lp_build.rs crates/core/src/parametric.rs crates/core/src/placement.rs

crates/core/src/lib.rs:
crates/core/src/analyzer.rs:
crates/core/src/binding.rs:
crates/core/src/eval.rs:
crates/core/src/lp_build.rs:
crates/core/src/parametric.rs:
crates/core/src/placement.rs:

/root/repo/target/debug/deps/llamp_engine-be182a729afc8c6e.d: crates/engine/src/lib.rs

/root/repo/target/debug/deps/libllamp_engine-be182a729afc8c6e.rmeta: crates/engine/src/lib.rs

crates/engine/src/lib.rs:

/root/repo/target/debug/deps/fig20_rank_placement-19c5556d1b7a9d8b.d: crates/bench/src/bin/fig20_rank_placement.rs Cargo.toml

/root/repo/target/debug/deps/libfig20_rank_placement-19c5556d1b7a9d8b.rmeta: crates/bench/src/bin/fig20_rank_placement.rs Cargo.toml

crates/bench/src/bin/fig20_rank_placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/tab01_solver_vs_sim-8e79944840e68167.d: crates/bench/src/bin/tab01_solver_vs_sim.rs

/root/repo/target/debug/deps/tab01_solver_vs_sim-8e79944840e68167: crates/bench/src/bin/tab01_solver_vs_sim.rs

crates/bench/src/bin/tab01_solver_vs_sim.rs:

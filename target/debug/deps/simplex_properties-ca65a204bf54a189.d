/root/repo/target/debug/deps/simplex_properties-ca65a204bf54a189.d: crates/lp/tests/simplex_properties.rs

/root/repo/target/debug/deps/simplex_properties-ca65a204bf54a189: crates/lp/tests/simplex_properties.rs

crates/lp/tests/simplex_properties.rs:

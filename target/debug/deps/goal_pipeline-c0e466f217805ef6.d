/root/repo/target/debug/deps/goal_pipeline-c0e466f217805ef6.d: tests/goal_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libgoal_pipeline-c0e466f217805ef6.rmeta: tests/goal_pipeline.rs Cargo.toml

tests/goal_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

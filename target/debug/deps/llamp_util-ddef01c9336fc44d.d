/root/repo/target/debug/deps/llamp_util-ddef01c9336fc44d.d: crates/util/src/lib.rs crates/util/src/fx.rs crates/util/src/stats.rs crates/util/src/time.rs

/root/repo/target/debug/deps/llamp_util-ddef01c9336fc44d: crates/util/src/lib.rs crates/util/src/fx.rs crates/util/src/stats.rs crates/util/src/time.rs

crates/util/src/lib.rs:
crates/util/src/fx.rs:
crates/util/src/stats.rs:
crates/util/src/time.rs:

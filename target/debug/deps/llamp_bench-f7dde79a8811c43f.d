/root/repo/target/debug/deps/llamp_bench-f7dde79a8811c43f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libllamp_bench-f7dde79a8811c43f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

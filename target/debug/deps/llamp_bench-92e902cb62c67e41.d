/root/repo/target/debug/deps/llamp_bench-92e902cb62c67e41.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/llamp_bench-92e902cb62c67e41: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

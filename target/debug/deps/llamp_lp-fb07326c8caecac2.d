/root/repo/target/debug/deps/llamp_lp-fb07326c8caecac2.d: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/piecewise.rs crates/lp/src/presolve.rs crates/lp/src/simplex.rs crates/lp/src/solution.rs

/root/repo/target/debug/deps/libllamp_lp-fb07326c8caecac2.rlib: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/piecewise.rs crates/lp/src/presolve.rs crates/lp/src/simplex.rs crates/lp/src/solution.rs

/root/repo/target/debug/deps/libllamp_lp-fb07326c8caecac2.rmeta: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/piecewise.rs crates/lp/src/presolve.rs crates/lp/src/simplex.rs crates/lp/src/solution.rs

crates/lp/src/lib.rs:
crates/lp/src/model.rs:
crates/lp/src/piecewise.rs:
crates/lp/src/presolve.rs:
crates/lp/src/simplex.rs:
crates/lp/src/solution.rs:

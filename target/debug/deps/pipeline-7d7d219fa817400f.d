/root/repo/target/debug/deps/pipeline-7d7d219fa817400f.d: crates/bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-7d7d219fa817400f.rmeta: crates/bench/benches/pipeline.rs Cargo.toml

crates/bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/abl_backends-1649a8da98025d40.d: crates/bench/src/bin/abl_backends.rs Cargo.toml

/root/repo/target/debug/deps/libabl_backends-1649a8da98025d40.rmeta: crates/bench/src/bin/abl_backends.rs Cargo.toml

crates/bench/src/bin/abl_backends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/llamp_bench-3cdd20f06dab32f6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libllamp_bench-3cdd20f06dab32f6.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libllamp_bench-3cdd20f06dab32f6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/debug/deps/fig10_icon_collectives-d71fabc56eecbba3.d: crates/bench/src/bin/fig10_icon_collectives.rs

/root/repo/target/debug/deps/fig10_icon_collectives-d71fabc56eecbba3: crates/bench/src/bin/fig10_icon_collectives.rs

crates/bench/src/bin/fig10_icon_collectives.rs:

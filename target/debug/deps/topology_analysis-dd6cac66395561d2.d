/root/repo/target/debug/deps/topology_analysis-dd6cac66395561d2.d: tests/topology_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libtopology_analysis-dd6cac66395561d2.rmeta: tests/topology_analysis.rs Cargo.toml

tests/topology_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/llamp_util-76e1e32af56e3660.d: crates/util/src/lib.rs crates/util/src/fx.rs crates/util/src/stats.rs crates/util/src/time.rs

/root/repo/target/debug/deps/libllamp_util-76e1e32af56e3660.rlib: crates/util/src/lib.rs crates/util/src/fx.rs crates/util/src/stats.rs crates/util/src/time.rs

/root/repo/target/debug/deps/libllamp_util-76e1e32af56e3660.rmeta: crates/util/src/lib.rs crates/util/src/fx.rs crates/util/src/stats.rs crates/util/src/time.rs

crates/util/src/lib.rs:
crates/util/src/fx.rs:
crates/util/src/stats.rs:
crates/util/src/time.rs:

/root/repo/target/debug/deps/fig10_icon_collectives-50bd13624082a7ea.d: crates/bench/src/bin/fig10_icon_collectives.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_icon_collectives-50bd13624082a7ea.rmeta: crates/bench/src/bin/fig10_icon_collectives.rs Cargo.toml

crates/bench/src/bin/fig10_icon_collectives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/llamp_criterion_shim-5be73a4f9f654dcd.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libllamp_criterion_shim-5be73a4f9f654dcd.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:

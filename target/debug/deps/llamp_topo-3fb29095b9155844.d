/root/repo/target/debug/deps/llamp_topo-3fb29095b9155844.d: crates/topo/src/lib.rs crates/topo/src/dragonfly.rs crates/topo/src/fattree.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_topo-3fb29095b9155844.rmeta: crates/topo/src/lib.rs crates/topo/src/dragonfly.rs crates/topo/src/fattree.rs Cargo.toml

crates/topo/src/lib.rs:
crates/topo/src/dragonfly.rs:
crates/topo/src/fattree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

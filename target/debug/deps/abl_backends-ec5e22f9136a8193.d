/root/repo/target/debug/deps/abl_backends-ec5e22f9136a8193.d: crates/bench/src/bin/abl_backends.rs

/root/repo/target/debug/deps/abl_backends-ec5e22f9136a8193: crates/bench/src/bin/abl_backends.rs

crates/bench/src/bin/abl_backends.rs:

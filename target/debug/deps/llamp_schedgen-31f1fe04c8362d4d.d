/root/repo/target/debug/deps/llamp_schedgen-31f1fe04c8362d4d.d: crates/schedgen/src/lib.rs crates/schedgen/src/build.rs crates/schedgen/src/collectives.rs crates/schedgen/src/goal.rs crates/schedgen/src/graph.rs crates/schedgen/src/lower.rs

/root/repo/target/debug/deps/libllamp_schedgen-31f1fe04c8362d4d.rmeta: crates/schedgen/src/lib.rs crates/schedgen/src/build.rs crates/schedgen/src/collectives.rs crates/schedgen/src/goal.rs crates/schedgen/src/graph.rs crates/schedgen/src/lower.rs

crates/schedgen/src/lib.rs:
crates/schedgen/src/build.rs:
crates/schedgen/src/collectives.rs:
crates/schedgen/src/goal.rs:
crates/schedgen/src/graph.rs:
crates/schedgen/src/lower.rs:

/root/repo/target/debug/deps/measurement-18e87ba78a5a90fc.d: tests/measurement.rs

/root/repo/target/debug/deps/measurement-18e87ba78a5a90fc: tests/measurement.rs

tests/measurement.rs:

/root/repo/target/debug/deps/abl_backends-6b4e51e6ccda9806.d: crates/bench/src/bin/abl_backends.rs

/root/repo/target/debug/deps/libabl_backends-6b4e51e6ccda9806.rmeta: crates/bench/src/bin/abl_backends.rs

crates/bench/src/bin/abl_backends.rs:

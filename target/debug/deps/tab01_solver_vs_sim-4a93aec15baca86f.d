/root/repo/target/debug/deps/tab01_solver_vs_sim-4a93aec15baca86f.d: crates/bench/src/bin/tab01_solver_vs_sim.rs

/root/repo/target/debug/deps/tab01_solver_vs_sim-4a93aec15baca86f: crates/bench/src/bin/tab01_solver_vs_sim.rs

crates/bench/src/bin/tab01_solver_vs_sim.rs:

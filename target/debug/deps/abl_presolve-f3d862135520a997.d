/root/repo/target/debug/deps/abl_presolve-f3d862135520a997.d: crates/bench/src/bin/abl_presolve.rs Cargo.toml

/root/repo/target/debug/deps/libabl_presolve-f3d862135520a997.rmeta: crates/bench/src/bin/abl_presolve.rs Cargo.toml

crates/bench/src/bin/abl_presolve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/pipeline-e744239ab214b7c0.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-e744239ab214b7c0.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/llamp_rand_shim-7c0f3d4ae890c96f.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/libllamp_rand_shim-7c0f3d4ae890c96f.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:

/root/repo/target/debug/deps/abl_protocol-bb0b9597b9b15594.d: crates/bench/src/bin/abl_protocol.rs Cargo.toml

/root/repo/target/debug/deps/libabl_protocol-bb0b9597b9b15594.rmeta: crates/bench/src/bin/abl_protocol.rs Cargo.toml

crates/bench/src/bin/abl_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig12_namd_charm-a9ff2fe8812a1202.d: crates/bench/src/bin/fig12_namd_charm.rs

/root/repo/target/debug/deps/fig12_namd_charm-a9ff2fe8812a1202: crates/bench/src/bin/fig12_namd_charm.rs

crates/bench/src/bin/fig12_namd_charm.rs:

/root/repo/target/debug/deps/goal_pipeline-d6da4d633d971361.d: tests/goal_pipeline.rs

/root/repo/target/debug/deps/goal_pipeline-d6da4d633d971361: tests/goal_pipeline.rs

tests/goal_pipeline.rs:

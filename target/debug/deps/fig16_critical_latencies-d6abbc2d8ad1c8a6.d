/root/repo/target/debug/deps/fig16_critical_latencies-d6abbc2d8ad1c8a6.d: crates/bench/src/bin/fig16_critical_latencies.rs

/root/repo/target/debug/deps/libfig16_critical_latencies-d6abbc2d8ad1c8a6.rmeta: crates/bench/src/bin/fig16_critical_latencies.rs

crates/bench/src/bin/fig16_critical_latencies.rs:

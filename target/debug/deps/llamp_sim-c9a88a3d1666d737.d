/root/repo/target/debug/deps/llamp_sim-c9a88a3d1666d737.d: crates/sim/src/lib.rs crates/sim/src/des.rs crates/sim/src/injector.rs crates/sim/src/netgauge_impl.rs crates/sim/src/noise.rs Cargo.toml

/root/repo/target/debug/deps/libllamp_sim-c9a88a3d1666d737.rmeta: crates/sim/src/lib.rs crates/sim/src/des.rs crates/sim/src/injector.rs crates/sim/src/netgauge_impl.rs crates/sim/src/noise.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/des.rs:
crates/sim/src/injector.rs:
crates/sim/src/netgauge_impl.rs:
crates/sim/src/noise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/libllamp_proptest_shim.rlib: /root/repo/crates/shims/proptest/src/lib.rs /root/repo/crates/shims/proptest/src/strategy.rs /root/repo/crates/shims/proptest/src/test_runner.rs

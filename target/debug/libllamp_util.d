/root/repo/target/debug/libllamp_util.rlib: /root/repo/crates/util/src/fx.rs /root/repo/crates/util/src/lib.rs /root/repo/crates/util/src/stats.rs /root/repo/crates/util/src/time.rs

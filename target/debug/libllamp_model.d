/root/repo/target/debug/libllamp_model.rlib: /root/repo/crates/model/src/hloggp.rs /root/repo/crates/model/src/lib.rs /root/repo/crates/model/src/netgauge.rs /root/repo/crates/model/src/params.rs

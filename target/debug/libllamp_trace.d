/root/repo/target/debug/libllamp_trace.rlib: /root/repo/crates/trace/src/lib.rs /root/repo/crates/trace/src/op.rs /root/repo/crates/trace/src/program.rs /root/repo/crates/trace/src/text.rs

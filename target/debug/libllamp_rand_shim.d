/root/repo/target/debug/libllamp_rand_shim.rlib: /root/repo/crates/shims/rand/src/lib.rs

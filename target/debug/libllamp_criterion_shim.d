/root/repo/target/debug/libllamp_criterion_shim.rlib: /root/repo/crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/llamp_topo-b8b772a14e2661cb.d: crates/topo/src/lib.rs crates/topo/src/dragonfly.rs crates/topo/src/fattree.rs

/root/repo/target/release/deps/libllamp_topo-b8b772a14e2661cb.rlib: crates/topo/src/lib.rs crates/topo/src/dragonfly.rs crates/topo/src/fattree.rs

/root/repo/target/release/deps/libllamp_topo-b8b772a14e2661cb.rmeta: crates/topo/src/lib.rs crates/topo/src/dragonfly.rs crates/topo/src/fattree.rs

crates/topo/src/lib.rs:
crates/topo/src/dragonfly.rs:
crates/topo/src/fattree.rs:

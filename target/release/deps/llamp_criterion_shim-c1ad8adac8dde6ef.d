/root/repo/target/release/deps/llamp_criterion_shim-c1ad8adac8dde6ef.d: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libllamp_criterion_shim-c1ad8adac8dde6ef.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libllamp_criterion_shim-c1ad8adac8dde6ef.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:

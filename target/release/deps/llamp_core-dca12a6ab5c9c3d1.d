/root/repo/target/release/deps/llamp_core-dca12a6ab5c9c3d1.d: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/binding.rs crates/core/src/eval.rs crates/core/src/lp_build.rs crates/core/src/parametric.rs crates/core/src/placement.rs

/root/repo/target/release/deps/libllamp_core-dca12a6ab5c9c3d1.rlib: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/binding.rs crates/core/src/eval.rs crates/core/src/lp_build.rs crates/core/src/parametric.rs crates/core/src/placement.rs

/root/repo/target/release/deps/libllamp_core-dca12a6ab5c9c3d1.rmeta: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/binding.rs crates/core/src/eval.rs crates/core/src/lp_build.rs crates/core/src/parametric.rs crates/core/src/placement.rs

crates/core/src/lib.rs:
crates/core/src/analyzer.rs:
crates/core/src/binding.rs:
crates/core/src/eval.rs:
crates/core/src/lp_build.rs:
crates/core/src/parametric.rs:
crates/core/src/placement.rs:

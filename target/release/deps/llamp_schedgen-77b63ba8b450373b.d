/root/repo/target/release/deps/llamp_schedgen-77b63ba8b450373b.d: crates/schedgen/src/lib.rs crates/schedgen/src/build.rs crates/schedgen/src/collectives.rs crates/schedgen/src/goal.rs crates/schedgen/src/graph.rs crates/schedgen/src/lower.rs

/root/repo/target/release/deps/libllamp_schedgen-77b63ba8b450373b.rlib: crates/schedgen/src/lib.rs crates/schedgen/src/build.rs crates/schedgen/src/collectives.rs crates/schedgen/src/goal.rs crates/schedgen/src/graph.rs crates/schedgen/src/lower.rs

/root/repo/target/release/deps/libllamp_schedgen-77b63ba8b450373b.rmeta: crates/schedgen/src/lib.rs crates/schedgen/src/build.rs crates/schedgen/src/collectives.rs crates/schedgen/src/goal.rs crates/schedgen/src/graph.rs crates/schedgen/src/lower.rs

crates/schedgen/src/lib.rs:
crates/schedgen/src/build.rs:
crates/schedgen/src/collectives.rs:
crates/schedgen/src/goal.rs:
crates/schedgen/src/graph.rs:
crates/schedgen/src/lower.rs:

/root/repo/target/release/deps/fig09_validation-caeb921086295742.d: crates/bench/src/bin/fig09_validation.rs

/root/repo/target/release/deps/fig09_validation-caeb921086295742: crates/bench/src/bin/fig09_validation.rs

crates/bench/src/bin/fig09_validation.rs:

/root/repo/target/release/deps/llamp_model-e2804c37b6fb1611.d: crates/model/src/lib.rs crates/model/src/hloggp.rs crates/model/src/netgauge.rs crates/model/src/params.rs

/root/repo/target/release/deps/libllamp_model-e2804c37b6fb1611.rlib: crates/model/src/lib.rs crates/model/src/hloggp.rs crates/model/src/netgauge.rs crates/model/src/params.rs

/root/repo/target/release/deps/libllamp_model-e2804c37b6fb1611.rmeta: crates/model/src/lib.rs crates/model/src/hloggp.rs crates/model/src/netgauge.rs crates/model/src/params.rs

crates/model/src/lib.rs:
crates/model/src/hloggp.rs:
crates/model/src/netgauge.rs:
crates/model/src/params.rs:

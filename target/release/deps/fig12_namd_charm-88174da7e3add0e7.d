/root/repo/target/release/deps/fig12_namd_charm-88174da7e3add0e7.d: crates/bench/src/bin/fig12_namd_charm.rs

/root/repo/target/release/deps/fig12_namd_charm-88174da7e3add0e7: crates/bench/src/bin/fig12_namd_charm.rs

crates/bench/src/bin/fig12_namd_charm.rs:

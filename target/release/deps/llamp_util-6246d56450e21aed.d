/root/repo/target/release/deps/llamp_util-6246d56450e21aed.d: crates/util/src/lib.rs crates/util/src/fx.rs crates/util/src/stats.rs crates/util/src/time.rs

/root/repo/target/release/deps/libllamp_util-6246d56450e21aed.rlib: crates/util/src/lib.rs crates/util/src/fx.rs crates/util/src/stats.rs crates/util/src/time.rs

/root/repo/target/release/deps/libllamp_util-6246d56450e21aed.rmeta: crates/util/src/lib.rs crates/util/src/fx.rs crates/util/src/stats.rs crates/util/src/time.rs

crates/util/src/lib.rs:
crates/util/src/fx.rs:
crates/util/src/stats.rs:
crates/util/src/time.rs:

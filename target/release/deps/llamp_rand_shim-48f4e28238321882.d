/root/repo/target/release/deps/llamp_rand_shim-48f4e28238321882.d: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/libllamp_rand_shim-48f4e28238321882.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/libllamp_rand_shim-48f4e28238321882.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:

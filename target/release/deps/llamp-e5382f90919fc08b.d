/root/repo/target/release/deps/llamp-e5382f90919fc08b.d: crates/engine/src/bin/llamp.rs

/root/repo/target/release/deps/llamp-e5382f90919fc08b: crates/engine/src/bin/llamp.rs

crates/engine/src/bin/llamp.rs:

/root/repo/target/release/deps/tab01_solver_vs_sim-e495b52112ce702e.d: crates/bench/src/bin/tab01_solver_vs_sim.rs

/root/repo/target/release/deps/tab01_solver_vs_sim-e495b52112ce702e: crates/bench/src/bin/tab01_solver_vs_sim.rs

crates/bench/src/bin/tab01_solver_vs_sim.rs:

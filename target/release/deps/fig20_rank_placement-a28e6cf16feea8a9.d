/root/repo/target/release/deps/fig20_rank_placement-a28e6cf16feea8a9.d: crates/bench/src/bin/fig20_rank_placement.rs

/root/repo/target/release/deps/fig20_rank_placement-a28e6cf16feea8a9: crates/bench/src/bin/fig20_rank_placement.rs

crates/bench/src/bin/fig20_rank_placement.rs:

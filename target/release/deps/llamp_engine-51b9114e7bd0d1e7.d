/root/repo/target/release/deps/llamp_engine-51b9114e7bd0d1e7.d: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/campaign.rs crates/engine/src/executor.rs crates/engine/src/scenario.rs crates/engine/src/spec.rs crates/engine/src/value.rs

/root/repo/target/release/deps/libllamp_engine-51b9114e7bd0d1e7.rlib: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/campaign.rs crates/engine/src/executor.rs crates/engine/src/scenario.rs crates/engine/src/spec.rs crates/engine/src/value.rs

/root/repo/target/release/deps/libllamp_engine-51b9114e7bd0d1e7.rmeta: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/campaign.rs crates/engine/src/executor.rs crates/engine/src/scenario.rs crates/engine/src/spec.rs crates/engine/src/value.rs

crates/engine/src/lib.rs:
crates/engine/src/cache.rs:
crates/engine/src/campaign.rs:
crates/engine/src/executor.rs:
crates/engine/src/scenario.rs:
crates/engine/src/spec.rs:
crates/engine/src/value.rs:

/root/repo/target/release/deps/fig01_tolerance_zones-b2d897771c2cde7e.d: crates/bench/src/bin/fig01_tolerance_zones.rs

/root/repo/target/release/deps/fig01_tolerance_zones-b2d897771c2cde7e: crates/bench/src/bin/fig01_tolerance_zones.rs

crates/bench/src/bin/fig01_tolerance_zones.rs:

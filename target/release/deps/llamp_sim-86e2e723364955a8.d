/root/repo/target/release/deps/llamp_sim-86e2e723364955a8.d: crates/sim/src/lib.rs crates/sim/src/des.rs crates/sim/src/injector.rs crates/sim/src/netgauge_impl.rs crates/sim/src/noise.rs

/root/repo/target/release/deps/libllamp_sim-86e2e723364955a8.rlib: crates/sim/src/lib.rs crates/sim/src/des.rs crates/sim/src/injector.rs crates/sim/src/netgauge_impl.rs crates/sim/src/noise.rs

/root/repo/target/release/deps/libllamp_sim-86e2e723364955a8.rmeta: crates/sim/src/lib.rs crates/sim/src/des.rs crates/sim/src/injector.rs crates/sim/src/netgauge_impl.rs crates/sim/src/noise.rs

crates/sim/src/lib.rs:
crates/sim/src/des.rs:
crates/sim/src/injector.rs:
crates/sim/src/netgauge_impl.rs:
crates/sim/src/noise.rs:

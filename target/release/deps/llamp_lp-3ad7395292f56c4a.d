/root/repo/target/release/deps/llamp_lp-3ad7395292f56c4a.d: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/piecewise.rs crates/lp/src/presolve.rs crates/lp/src/simplex.rs crates/lp/src/solution.rs

/root/repo/target/release/deps/libllamp_lp-3ad7395292f56c4a.rlib: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/piecewise.rs crates/lp/src/presolve.rs crates/lp/src/simplex.rs crates/lp/src/solution.rs

/root/repo/target/release/deps/libllamp_lp-3ad7395292f56c4a.rmeta: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/piecewise.rs crates/lp/src/presolve.rs crates/lp/src/simplex.rs crates/lp/src/solution.rs

crates/lp/src/lib.rs:
crates/lp/src/model.rs:
crates/lp/src/piecewise.rs:
crates/lp/src/presolve.rs:
crates/lp/src/simplex.rs:
crates/lp/src/solution.rs:

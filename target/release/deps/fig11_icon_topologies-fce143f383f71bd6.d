/root/repo/target/release/deps/fig11_icon_topologies-fce143f383f71bd6.d: crates/bench/src/bin/fig11_icon_topologies.rs

/root/repo/target/release/deps/fig11_icon_topologies-fce143f383f71bd6: crates/bench/src/bin/fig11_icon_topologies.rs

crates/bench/src/bin/fig11_icon_topologies.rs:

/root/repo/target/release/deps/llamp_workloads-6726954274094687.d: crates/workloads/src/lib.rs crates/workloads/src/cloverleaf.rs crates/workloads/src/decomp.rs crates/workloads/src/hpcg.rs crates/workloads/src/icon.rs crates/workloads/src/lammps.rs crates/workloads/src/lulesh.rs crates/workloads/src/milc.rs crates/workloads/src/namd.rs crates/workloads/src/npb.rs crates/workloads/src/openmx.rs

/root/repo/target/release/deps/libllamp_workloads-6726954274094687.rlib: crates/workloads/src/lib.rs crates/workloads/src/cloverleaf.rs crates/workloads/src/decomp.rs crates/workloads/src/hpcg.rs crates/workloads/src/icon.rs crates/workloads/src/lammps.rs crates/workloads/src/lulesh.rs crates/workloads/src/milc.rs crates/workloads/src/namd.rs crates/workloads/src/npb.rs crates/workloads/src/openmx.rs

/root/repo/target/release/deps/libllamp_workloads-6726954274094687.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cloverleaf.rs crates/workloads/src/decomp.rs crates/workloads/src/hpcg.rs crates/workloads/src/icon.rs crates/workloads/src/lammps.rs crates/workloads/src/lulesh.rs crates/workloads/src/milc.rs crates/workloads/src/namd.rs crates/workloads/src/npb.rs crates/workloads/src/openmx.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cloverleaf.rs:
crates/workloads/src/decomp.rs:
crates/workloads/src/hpcg.rs:
crates/workloads/src/icon.rs:
crates/workloads/src/lammps.rs:
crates/workloads/src/lulesh.rs:
crates/workloads/src/milc.rs:
crates/workloads/src/namd.rs:
crates/workloads/src/npb.rs:
crates/workloads/src/openmx.rs:

/root/repo/target/release/deps/llamp_bench-6ec6853e987d6464.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libllamp_bench-6ec6853e987d6464.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libllamp_bench-6ec6853e987d6464.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

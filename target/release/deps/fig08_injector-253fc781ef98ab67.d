/root/repo/target/release/deps/fig08_injector-253fc781ef98ab67.d: crates/bench/src/bin/fig08_injector.rs

/root/repo/target/release/deps/fig08_injector-253fc781ef98ab67: crates/bench/src/bin/fig08_injector.rs

crates/bench/src/bin/fig08_injector.rs:

/root/repo/target/release/deps/abl_protocol-c0e041a4945a5c61.d: crates/bench/src/bin/abl_protocol.rs

/root/repo/target/release/deps/abl_protocol-c0e041a4945a5c61: crates/bench/src/bin/abl_protocol.rs

crates/bench/src/bin/abl_protocol.rs:

/root/repo/target/release/deps/fig16_critical_latencies-b277f03410f265e6.d: crates/bench/src/bin/fig16_critical_latencies.rs

/root/repo/target/release/deps/fig16_critical_latencies-b277f03410f265e6: crates/bench/src/bin/fig16_critical_latencies.rs

crates/bench/src/bin/fig16_critical_latencies.rs:

/root/repo/target/release/deps/llamp_trace-7f59799abd20ef03.d: crates/trace/src/lib.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/text.rs

/root/repo/target/release/deps/libllamp_trace-7f59799abd20ef03.rlib: crates/trace/src/lib.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/text.rs

/root/repo/target/release/deps/libllamp_trace-7f59799abd20ef03.rmeta: crates/trace/src/lib.rs crates/trace/src/op.rs crates/trace/src/program.rs crates/trace/src/text.rs

crates/trace/src/lib.rs:
crates/trace/src/op.rs:
crates/trace/src/program.rs:
crates/trace/src/text.rs:

/root/repo/target/release/deps/engine-30821ddf92ef4658.d: crates/bench/benches/engine.rs

/root/repo/target/release/deps/engine-30821ddf92ef4658: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:

/root/repo/target/release/deps/abl_backends-232559f9287e465a.d: crates/bench/src/bin/abl_backends.rs

/root/repo/target/release/deps/abl_backends-232559f9287e465a: crates/bench/src/bin/abl_backends.rs

crates/bench/src/bin/abl_backends.rs:

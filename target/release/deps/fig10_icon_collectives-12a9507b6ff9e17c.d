/root/repo/target/release/deps/fig10_icon_collectives-12a9507b6ff9e17c.d: crates/bench/src/bin/fig10_icon_collectives.rs

/root/repo/target/release/deps/fig10_icon_collectives-12a9507b6ff9e17c: crates/bench/src/bin/fig10_icon_collectives.rs

crates/bench/src/bin/fig10_icon_collectives.rs:

/root/repo/target/release/deps/abl_presolve-53e77c0de3b938ab.d: crates/bench/src/bin/abl_presolve.rs

/root/repo/target/release/deps/abl_presolve-53e77c0de3b938ab: crates/bench/src/bin/abl_presolve.rs

crates/bench/src/bin/abl_presolve.rs:

/root/repo/target/release/deps/llamp-182c9a8c85ac397f.d: src/lib.rs

/root/repo/target/release/deps/libllamp-182c9a8c85ac397f.rlib: src/lib.rs

/root/repo/target/release/deps/libllamp-182c9a8c85ac397f.rmeta: src/lib.rs

src/lib.rs:

//! Content-addressed result cache.
//!
//! Keys are canonical scenario strings (see
//! [`Scenario::base_canonical`](crate::scenario::Scenario::base_canonical))
//! extended with the entry kind, hashed with FNV-1a for the index;
//! the full key string is stored alongside each entry so hash collisions
//! degrade to misses, never to wrong results. Two entry granularities:
//!
//! * **points** — one `(runtime, λ, ρ)` sample per `(scenario-base, ∆L)`,
//!   so campaigns with *overlapping* latency grids reuse each other's
//!   solved points and only compute the set difference;
//! * **zones** — the 1/2/5% tolerance triple per `(scenario-base,
//!   search window)`.
//!
//! The cache is in-memory (`RwLock`-guarded, shared across executor
//! workers) with optional JSON persistence: [`ResultCache::load`] /
//! [`ResultCache::save`] round-trip the store through the same
//! deterministic JSON writer the result files use.
//!
//! ## Integrity (self-healing persistence)
//!
//! A cache file is an accelerant, never an authority — any corruption
//! must degrade to recomputation, not to a crash or a silently wrong
//! result. Three layers enforce that (see `docs/ROBUSTNESS.md`):
//!
//! * **atomic save** — [`ResultCache::save`] writes to a same-directory
//!   temp file, fsyncs, then renames over the target (and fsyncs the
//!   directory), so a crash mid-save leaves either the old file or the
//!   new one, never a torn hybrid;
//! * **per-entry checksums** — every persisted entry carries a `sum`
//!   field (FNV-1a over its key, kind and exact payload bit patterns);
//!   [`ResultCache::load`] recomputes and drops any entry whose checksum
//!   is missing or wrong (counter `cache.quarantined`);
//! * **file quarantine** — an unparseable file is renamed aside to
//!   `<name>.quarantined-<pid>` (counter `cache.quarantined.file`) and
//!   the run starts from an empty cache, preserving the evidence.

use crate::scenario::{AxisPointValue, PointResult, ZonesResult};
use crate::spec::fnv1a;
use crate::value::{parse_json, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// A cached answer.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedEntry {
    /// One sweep sample.
    Point(PointResult),
    /// One multi-parameter grid sample (axes campaigns). Keyed by the
    /// layout-independent absolute `(∆L, ∆G, ∆o)` offsets, so campaigns
    /// with different axis shapes share overlapping points.
    AxisPoint(AxisPointValue),
    /// One tolerance-zone triple.
    Zones(ZonesResult),
}

/// Hit/miss counters (atomic: updated concurrently by workers).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheStats {
    /// Lookups answered from the store.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that required computation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

/// The content-addressed store.
#[derive(Debug, Default)]
pub struct ResultCache {
    // fingerprint → (full key, entry). The full key disambiguates
    // colliding fingerprints.
    map: RwLock<HashMap<u64, Vec<(String, CachedEntry)>>>,
    stats: CacheStats,
}

/// Key for one point entry.
pub fn point_key(base_canonical: &str, delta_l_ns: f64) -> String {
    format!("{base_canonical}|pt|{:016x}", delta_l_ns.to_bits())
}

/// Key for one zones entry (latency-grid campaigns).
pub fn zones_key(base_canonical: &str, search_hi_ns: f64) -> String {
    format!("{base_canonical}|zones|{:016x}", search_hi_ns.to_bits())
}

/// Key for one zones entry computed by an **axes** campaign. Axes
/// scenarios answer zones through the multi-parameter LP, whose numbers
/// agree with the single-variable LP only to numerical tolerance — never
/// bit-for-bit — so the two sweep families must not substitute zone
/// entries for each other (same reasoning as [`axis_point_key`] vs
/// [`point_key`]).
pub fn zones_key_multi(base_canonical: &str, search_hi_ns: f64) -> String {
    format!("{base_canonical}|mzones|{:016x}", search_hi_ns.to_bits())
}

/// Key for one multi-parameter point entry. The key carries the absolute
/// per-parameter offsets `(∆L, ∆G, ∆o)` — missing axes are zero — so it
/// is independent of the requesting campaign's axis order or
/// dimensionality. Distinct from [`point_key`]'s `|pt|` namespace on
/// purpose: grid campaigns answer through the single-variable LP, axes
/// campaigns through the multi-parameter LP, and the two formulations'
/// results must never substitute for each other (they agree only to
/// numerical tolerance, not bit-for-bit). Old cache files therefore stay
/// valid for grid campaigns and simply never collide with axis entries.
pub fn axis_point_key(base_canonical: &str, param_deltas: [f64; 3]) -> String {
    format!(
        "{base_canonical}|apt|l{:016x},g{:016x},o{:016x}",
        param_deltas[0].to_bits(),
        param_deltas[1].to_bits(),
        param_deltas[2].to_bits()
    )
}

/// The `kind` segment of a cache key (`pt`, `apt`, `zones`, `mzones`).
/// Keys are `{base_canonical}|{kind}|{suffix}`; the base may itself
/// contain `|`, so parse from the right.
fn kind_of_key(key: &str) -> &str {
    let mut it = key.rsplitn(3, '|');
    let _suffix = it.next();
    it.next().unwrap_or("other")
}

/// Bump the per-kind obs counter `cache.{kind}.{outcome}`. The format
/// allocation only happens with recording on.
fn count_kind(key: &str, outcome: &str) {
    if llamp_obs::is_enabled() {
        llamp_obs::counter(&format!("cache.{}.{outcome}", kind_of_key(key)), 1);
    }
}

impl ResultCache {
    /// Fresh empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a key, counting the outcome.
    pub fn get(&self, key: &str) -> Option<CachedEntry> {
        let fp = fnv1a(key.as_bytes());
        let map = self.map.read().expect("cache lock");
        let found = map
            .get(&fp)
            .and_then(|bucket| bucket.iter().find(|(k, _)| k == key))
            .map(|(_, e)| e.clone());
        match &found {
            Some(_) => {
                count_kind(key, "hit");
                self.stats.hits.fetch_add(1, Ordering::Relaxed)
            }
            None => {
                count_kind(key, "miss");
                self.stats.misses.fetch_add(1, Ordering::Relaxed)
            }
        };
        found
    }

    /// Peek without touching the counters (used by the scheduler's
    /// full-hit probe so stats reflect real job-time lookups only once).
    pub fn peek(&self, key: &str) -> Option<CachedEntry> {
        let fp = fnv1a(key.as_bytes());
        let map = self.map.read().expect("cache lock");
        map.get(&fp)
            .and_then(|bucket| bucket.iter().find(|(k, _)| k == key))
            .map(|(_, e)| e.clone())
    }

    /// Insert (idempotent; concurrent duplicate inserts of the same
    /// deterministic value are harmless).
    pub fn put(&self, key: String, entry: CachedEntry) {
        count_kind(&key, "put");
        let fp = fnv1a(key.as_bytes());
        let mut map = self.map.write().expect("cache lock");
        let bucket = map.entry(fp).or_default();
        match bucket.iter_mut().find(|(k, _)| *k == key) {
            Some((_, slot)) => *slot = entry,
            None => bucket.push((key, entry)),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.map
            .read()
            .expect("cache lock")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Serialize the store (entries sorted by key for determinism). Each
    /// entry carries its integrity checksum (`sum`).
    pub fn to_value(&self) -> Value {
        let map = self.map.read().expect("cache lock");
        let mut entries: Vec<(String, CachedEntry)> = map
            .values()
            .flat_map(|bucket| bucket.iter().cloned())
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Table(vec![
            ("version".into(), Value::Int(2)),
            (
                "entries".into(),
                Value::Array(
                    entries
                        .into_iter()
                        .map(|(key, entry)| {
                            let sum = entry_checksum(&key, &entry);
                            let mut pairs = vec![
                                ("key".into(), Value::Str(key)),
                                ("sum".into(), Value::Str(format!("{sum:016x}"))),
                            ];
                            match entry {
                                CachedEntry::Point(p) => {
                                    pairs.push(("kind".into(), Value::Str("point".into())));
                                    pairs.push(("delta_l_ns".into(), Value::Float(p.delta_l_ns)));
                                    pairs.push(("runtime_ns".into(), Value::Float(p.runtime_ns)));
                                    pairs.push(("lambda".into(), Value::Float(p.lambda)));
                                    pairs.push(("rho".into(), Value::Float(p.rho)));
                                }
                                CachedEntry::AxisPoint(p) => {
                                    pairs.push(("kind".into(), Value::Str("axis-point".into())));
                                    pairs.push(("runtime_ns".into(), Value::Float(p.runtime_ns)));
                                    pairs.push(("lambda_l".into(), Value::Float(p.lambda_l)));
                                    pairs.push(("lambda_g".into(), Value::Float(p.lambda_g)));
                                    pairs.push(("lambda_o".into(), Value::Float(p.lambda_o)));
                                    pairs.push(("rho_l".into(), Value::Float(p.rho_l)));
                                    pairs.push(("rho_g".into(), Value::Float(p.rho_g)));
                                    pairs.push(("rho_o".into(), Value::Float(p.rho_o)));
                                }
                                CachedEntry::Zones(z) => {
                                    pairs.push(("kind".into(), Value::Str("zones".into())));
                                    pairs.push((
                                        "baseline_runtime_ns".into(),
                                        Value::Float(z.baseline_runtime_ns),
                                    ));
                                    pairs.push(("pct1_ns".into(), float_or_inf(z.pct1_ns)));
                                    pairs.push(("pct2_ns".into(), float_or_inf(z.pct2_ns)));
                                    pairs.push(("pct5_ns".into(), float_or_inf(z.pct5_ns)));
                                }
                            }
                            Value::Table(pairs)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Save to a JSON file atomically: write a same-directory temp file,
    /// fsync it, rename it over `path`, fsync the directory. A crash at
    /// any point leaves either the previous file or the new one intact —
    /// never a torn hybrid.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let g = llamp_obs::span("cache.save");
        if llamp_obs::is_enabled() {
            g.field_u64("entries", self.len() as u64);
        }
        let mut payload = self.to_value().to_json_pretty();
        if llamp_faults::should_inject("cache.save.torn") {
            // Chaos site: simulate the torn in-place write the atomic
            // protocol exists to prevent, so tests can prove the *next*
            // load quarantines and recomputes instead of going wrong.
            payload.truncate(payload.len() / 2);
            return std::fs::write(path, payload);
        }
        let tmp = sibling_path(path, &format!("tmp-{}", std::process::id()));
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(payload.as_bytes())?;
            f.sync_all()?;
        }
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        // Persist the rename itself (best effort — not all platforms
        // support fsync on directories).
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Load from a JSON file produced by [`ResultCache::save`].
    ///
    /// Self-healing, never trusting: an unparseable file is quarantined
    /// (renamed aside, counter `cache.quarantined.file`) and an empty
    /// cache returned; an entry that is malformed, of unknown kind, or
    /// whose integrity checksum is missing or wrong is dropped (counter
    /// `cache.quarantined`) so it gets recomputed. Only a genuinely
    /// unreadable file (I/O error) is reported to the caller.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let g = llamp_obs::span("cache.load");
        let mut text = std::fs::read_to_string(path)?;
        if llamp_faults::should_inject("cache.load.corrupt") {
            // Chaos site: bit-rot the file after reading it, exercising
            // the quarantine path without touching the disk.
            text.truncate(text.len() / 3);
        }
        let cache = Self::new();
        let Ok(doc) = parse_json(&text) else {
            quarantine_file(path);
            return Ok(cache);
        };
        let Some(entries) = doc.get("entries").and_then(Value::as_array) else {
            quarantine_file(path);
            return Ok(cache);
        };
        for e in entries {
            let Some(key) = e.get("key").and_then(Value::as_str) else {
                quarantine_entry();
                continue;
            };
            let entry = match e.get("kind").and_then(Value::as_str) {
                Some("point") => match decode_point(e) {
                    Some(p) => CachedEntry::Point(p),
                    None => {
                        quarantine_entry();
                        continue;
                    }
                },
                Some("axis-point") => match decode_axis_point(e) {
                    Some(p) => CachedEntry::AxisPoint(p),
                    None => {
                        quarantine_entry();
                        continue;
                    }
                },
                Some("zones") => match decode_zones(e) {
                    Some(z) => CachedEntry::Zones(z),
                    None => {
                        quarantine_entry();
                        continue;
                    }
                },
                _ => {
                    quarantine_entry();
                    continue;
                }
            };
            let sum_ok = e
                .get("sum")
                .and_then(Value::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .is_some_and(|s| s == entry_checksum(key, &entry));
            if !sum_ok {
                quarantine_entry();
                continue;
            }
            cache.put(key.to_string(), entry);
        }
        if llamp_obs::is_enabled() {
            g.field_u64("entries", cache.len() as u64);
        }
        Ok(cache)
    }
}

/// `<name>.<tag>` next to `path` (same directory, so `rename` stays
/// within one filesystem).
fn sibling_path(path: &std::path::Path, tag: &str) -> std::path::PathBuf {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("cache.json");
    path.with_file_name(format!("{name}.{tag}"))
}

/// Move an unparseable cache file aside (preserving the evidence) and
/// count the event. Best effort — if the rename fails the file simply
/// stays and gets overwritten by the next save.
fn quarantine_file(path: &std::path::Path) {
    llamp_obs::counter("cache.quarantined", 1);
    llamp_obs::counter("cache.quarantined.file", 1);
    let aside = sibling_path(path, &format!("quarantined-{}", std::process::id()));
    let _ = std::fs::rename(path, &aside);
}

/// Count one dropped (malformed or checksum-failed) entry.
fn quarantine_entry() {
    llamp_obs::counter("cache.quarantined", 1);
}

/// FNV-1a integrity checksum over an entry's key, kind and exact payload
/// bit patterns. Any bit flip in a persisted number changes the sum.
fn entry_checksum(key: &str, entry: &CachedEntry) -> u64 {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(key.len() + 144);
    s.push_str(key);
    let push_bits = |s: &mut String, xs: &[f64]| {
        for x in xs {
            let _ = write!(s, "{:016x}", x.to_bits());
        }
    };
    match entry {
        CachedEntry::Point(p) => {
            s.push_str("|point|");
            push_bits(&mut s, &[p.delta_l_ns, p.runtime_ns, p.lambda, p.rho]);
        }
        CachedEntry::AxisPoint(p) => {
            s.push_str("|axis-point|");
            push_bits(
                &mut s,
                &[
                    p.runtime_ns,
                    p.lambda_l,
                    p.lambda_g,
                    p.lambda_o,
                    p.rho_l,
                    p.rho_g,
                    p.rho_o,
                ],
            );
        }
        CachedEntry::Zones(z) => {
            s.push_str("|zones|");
            push_bits(
                &mut s,
                &[z.baseline_runtime_ns, z.pct1_ns, z.pct2_ns, z.pct5_ns],
            );
        }
    }
    fnv1a(s.as_bytes())
}

/// Infinite tolerances serialise as `null` (JSON has no `inf`);
/// [`inf_or_float`] reverses the mapping.
fn float_or_inf(x: f64) -> Value {
    if x.is_finite() {
        Value::Float(x)
    } else {
        Value::Null
    }
}

fn inf_or_float(v: Option<&Value>) -> Option<f64> {
    match v {
        Some(Value::Null) => Some(f64::INFINITY),
        Some(x) => x.as_f64(),
        None => None,
    }
}

fn decode_point(e: &Value) -> Option<PointResult> {
    Some(PointResult {
        delta_l_ns: e.get("delta_l_ns")?.as_f64()?,
        runtime_ns: e.get("runtime_ns")?.as_f64()?,
        lambda: e.get("lambda")?.as_f64()?,
        rho: e.get("rho")?.as_f64()?,
    })
}

fn decode_axis_point(e: &Value) -> Option<AxisPointValue> {
    Some(AxisPointValue {
        runtime_ns: e.get("runtime_ns")?.as_f64()?,
        lambda_l: e.get("lambda_l")?.as_f64()?,
        lambda_g: e.get("lambda_g")?.as_f64()?,
        lambda_o: e.get("lambda_o")?.as_f64()?,
        rho_l: e.get("rho_l")?.as_f64()?,
        rho_g: e.get("rho_g")?.as_f64()?,
        rho_o: e.get("rho_o")?.as_f64()?,
    })
}

fn decode_zones(e: &Value) -> Option<ZonesResult> {
    Some(ZonesResult {
        baseline_runtime_ns: e.get("baseline_runtime_ns")?.as_f64()?,
        pct1_ns: inf_or_float(e.get("pct1_ns"))?,
        pct2_ns: inf_or_float(e.get("pct2_ns"))?,
        pct5_ns: inf_or_float(e.get("pct5_ns"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(d: f64) -> PointResult {
        PointResult {
            delta_l_ns: d,
            runtime_ns: 100.0 + d,
            lambda: 3.0,
            rho: 0.25,
        }
    }

    #[test]
    fn hit_miss_accounting() {
        let c = ResultCache::new();
        let k = point_key("base", 5.0);
        assert!(c.get(&k).is_none());
        c.put(k.clone(), CachedEntry::Point(point(5.0)));
        assert_eq!(c.get(&k), Some(CachedEntry::Point(point(5.0))));
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn peek_does_not_count() {
        let c = ResultCache::new();
        let k = point_key("base", 1.0);
        c.put(k.clone(), CachedEntry::Point(point(1.0)));
        assert!(c.peek(&k).is_some());
        assert_eq!(c.stats().hits() + c.stats().misses(), 0);
    }

    #[test]
    fn disk_round_trip_including_infinities() {
        let c = ResultCache::new();
        c.put(point_key("b", 0.0), CachedEntry::Point(point(0.0)));
        c.put(
            zones_key("b", 1e6),
            CachedEntry::Zones(ZonesResult {
                baseline_runtime_ns: 42.0,
                pct1_ns: 7.0,
                pct2_ns: f64::INFINITY,
                pct5_ns: f64::INFINITY,
            }),
        );
        let dir = std::env::temp_dir().join(format!("llamp-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        c.save(&path).unwrap();
        let back = ResultCache::load(&path).unwrap();
        assert_eq!(back.len(), 2);
        match back.peek(&zones_key("b", 1e6)) {
            Some(CachedEntry::Zones(z)) => {
                assert_eq!(z.baseline_runtime_ns, 42.0);
                assert!(z.pct2_ns.is_infinite());
            }
            other => panic!("bad entry: {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    fn temp_cache_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("llamp-cache-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Regression test for the torn-write failure mode: a cache file cut
    /// off mid-entry (what an in-place `fs::write` interrupted by a crash
    /// leaves behind) must load as an empty cache with the broken file
    /// quarantined aside — never an error, never a partial store.
    #[test]
    fn truncated_file_is_quarantined_not_fatal() {
        let dir = temp_cache_dir("torn");
        let path = dir.join("cache.json");
        let c = ResultCache::new();
        c.put(point_key("b", 0.0), CachedEntry::Point(point(0.0)));
        c.put(point_key("b", 1.0), CachedEntry::Point(point(1.0)));
        c.save(&path).unwrap();

        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();

        let back = ResultCache::load(&path).unwrap();
        assert_eq!(back.len(), 0, "no entry from a torn file may be trusted");
        assert!(!path.exists(), "broken file must be moved aside");
        let aside: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("quarantined"))
            .collect();
        assert_eq!(aside.len(), 1, "evidence file preserved");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksum_mismatch_drops_only_the_tampered_entry() {
        let dir = temp_cache_dir("sum");
        let path = dir.join("cache.json");
        let c = ResultCache::new();
        c.put(point_key("b", 0.0), CachedEntry::Point(point(0.0)));
        c.put(point_key("b", 1.0), CachedEntry::Point(point(1.0)));
        c.save(&path).unwrap();

        // Flip one stored number without updating its checksum.
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("101.0", "999.0", 1);
        assert_ne!(text, tampered, "fixture must actually tamper a value");
        std::fs::write(&path, tampered).unwrap();

        let back = ResultCache::load(&path).unwrap();
        assert_eq!(back.len(), 1, "intact entry survives, tampered one goes");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsummed_legacy_entries_are_recomputed_not_trusted() {
        // A pre-integrity (version 1) file has no `sum` fields: every
        // entry is dropped for recomputation rather than trusted blindly.
        let dir = temp_cache_dir("legacy");
        let path = dir.join("cache.json");
        let c = ResultCache::new();
        c.put(point_key("b", 0.0), CachedEntry::Point(point(0.0)));
        c.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Strip the sum fields (simulate an old writer).
        let stripped: String = text
            .lines()
            .filter(|l| !l.contains("\"sum\""))
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(&path, stripped).unwrap();
        let back = ResultCache::load(&path).unwrap();
        assert_eq!(back.len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_is_atomic_no_temp_residue() {
        let dir = temp_cache_dir("atomic");
        let path = dir.join("cache.json");
        let c = ResultCache::new();
        c.put(point_key("b", 2.0), CachedEntry::Point(point(2.0)));
        c.save(&path).unwrap();
        c.save(&path).unwrap(); // overwrite path exercises rename-over
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["cache.json".to_string()], "{names:?}");
        let back = ResultCache::load(&path).unwrap();
        assert_eq!(back.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn colliding_keys_coexist() {
        // Different keys in the same bucket must both be retrievable even
        // if FNV collides; simulate by inserting two keys and checking
        // bucket logic handles same-fingerprint lookups (exercised via the
        // shared map path regardless of an actual collision).
        let c = ResultCache::new();
        c.put("ka".into(), CachedEntry::Point(point(1.0)));
        c.put("kb".into(), CachedEntry::Point(point(2.0)));
        assert_eq!(c.peek("ka"), Some(CachedEntry::Point(point(1.0))));
        assert_eq!(c.peek("kb"), Some(CachedEntry::Point(point(2.0))));
    }
}

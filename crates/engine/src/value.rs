//! Dependency-free structured values: a JSON-style document model with a
//! JSON reader/writer and a TOML-subset reader.
//!
//! The build environment has no registry access, so instead of serde the
//! engine parses campaign specs through this small module. Both spec
//! syntaxes (TOML and JSON) decode into the same [`Value`] tree, and all
//! engine output (results files, the cache's on-disk form) is written as
//! canonical JSON through [`Value::to_json`], which is deterministic:
//! tables keep a fixed field order, floats use Rust's shortest round-trip
//! formatting, and non-finite floats map to `null`.

use std::fmt::Write as _;

/// A structured document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (TOML integers; JSON numbers without `.`/exponent).
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Table / object with insertion-ordered keys.
    Table(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a table.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Table(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric coercion: ints widen to float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer accessor (floats with integral values are accepted).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(53) => Some(*f as i64),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Table accessor: the insertion-ordered key/value pairs.
    pub fn as_table(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Table(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Render as compact canonical JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Render as pretty-printed JSON with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => write_json_f64(out, *f),
            Value::Str(s) => write_json_str(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write_json(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Table(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_json_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_json(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// JSON-format a float: shortest round-trip representation; non-finite
/// values become `null` (JSON has no inf/NaN).
fn write_json_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is Rust's shortest round-trip form ("1.0", "1e-12", …),
        // deterministic for a given bit pattern.
        let _ = write!(out, "{f:?}");
    } else {
        out.push_str("null");
    }
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset converted to line/column.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at line {}, column {}",
            self.message, self.line, self.col
        )
    }
}

impl std::error::Error for ParseError {}

fn error_at(input: &str, pos: usize, message: impl Into<String>) -> ParseError {
    let (mut line, mut col) = (1, 1);
    for b in input.as_bytes().iter().take(pos) {
        if *b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    ParseError {
        message: message.into(),
        line,
        col,
    }
}

// ---------------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------------

/// Parse a JSON document.
pub fn parse_json(input: &str) -> Result<Value, ParseError> {
    let mut p = JsonParser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(error_at(input, p.pos, "trailing content after JSON value"));
    }
    Ok(v)
}

struct JsonParser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        error_at(self.input, self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.table(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') | Some(b'f') => self.boolean(),
            Some(b'n') => {
                self.keyword("null")?;
                Ok(Value::Null)
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.input[self.pos..].starts_with(kw) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected '{kw}'")))
        }
    }

    fn boolean(&mut self) -> Result<Value, ParseError> {
        if self.input[self.pos..].starts_with("true") {
            self.pos += 4;
            Ok(Value::Bool(true))
        } else if self.input[self.pos..].starts_with("false") {
            self.pos += 5;
            Ok(Value::Bool(false))
        } else {
            Err(self.err("expected 'true' or 'false'"))
        }
    }

    fn table(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Table(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(Value::Table(pairs));
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(Value::Array(items));
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.input[self.pos..];
            let mut chars = rest.char_indices();
            match chars.next() {
                None => return Err(self.err("unterminated string")),
                Some((_, '"')) => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some((_, '\\')) => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .input
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some((i, c)) => {
                    s.push(c);
                    self.pos += chars.next().map(|(j, _)| j - i).unwrap_or(c.len_utf8());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let mut is_float = false;
        self.eat(b'-');
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| error_at(self.input, start, format!("invalid number '{text}'")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| error_at(self.input, start, format!("invalid number '{text}'")))
        }
    }
}

// ---------------------------------------------------------------------------
// TOML-subset reader
// ---------------------------------------------------------------------------

/// Parse a TOML-subset document into a [`Value::Table`].
///
/// Supported: `key = value` pairs, `[table]` headers, `[[array-of-tables]]`
/// headers, strings (`"..."` with basic escapes), integers, floats,
/// booleans, homogeneous arrays (single- or multi-line), inline tables
/// `{ a = 1 }`, and `#` comments. Unsupported TOML (dotted keys, dates,
/// multi-line strings) is reported as an error — campaign specs don't
/// need it.
pub fn parse_toml(input: &str) -> Result<Value, ParseError> {
    let mut root: Vec<(String, Value)> = Vec::new();
    // Path of the table currently receiving keys; indexes into nested
    // tables are re-resolved per line to keep borrows simple.
    let mut current_path: Vec<String> = Vec::new();
    let mut offset = 0usize;

    let mut lines = input.split_inclusive('\n').peekable();
    while let Some(line) = lines.next() {
        let line_start = offset;
        offset += line.len();
        let trimmed = strip_comment(line).trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("[[") {
            let name = rest
                .strip_suffix("]]")
                .ok_or_else(|| error_at(input, line_start, "unterminated [[header]]"))?
                .trim();
            if name.is_empty() || name.contains('.') {
                return Err(error_at(input, line_start, "unsupported table header"));
            }
            match root.iter_mut().find(|(k, _)| k == name) {
                Some((_, Value::Array(items))) => items.push(Value::Table(Vec::new())),
                Some(_) => {
                    return Err(error_at(
                        input,
                        line_start,
                        format!("[[{name}]] conflicts with an earlier non-array key '{name}'"),
                    ));
                }
                None => root.push((
                    name.to_string(),
                    Value::Array(vec![Value::Table(Vec::new())]),
                )),
            }
            current_path = vec![name.to_string()];
        } else if let Some(rest) = trimmed.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| error_at(input, line_start, "unterminated [header]"))?
                .trim();
            if name.is_empty() || name.contains('.') {
                return Err(error_at(input, line_start, "unsupported table header"));
            }
            match root.iter().find(|(k, _)| k == name) {
                Some((_, Value::Table(_))) | None => {}
                Some(_) => {
                    return Err(error_at(
                        input,
                        line_start,
                        format!("[{name}] conflicts with an earlier non-table key '{name}'"),
                    ));
                }
            }
            if !root.iter().any(|(k, _)| k == name) {
                root.push((name.to_string(), Value::Table(Vec::new())));
            }
            current_path = vec![name.to_string()];
        } else {
            let eq = trimmed
                .find('=')
                .ok_or_else(|| error_at(input, line_start, "expected 'key = value'"))?;
            let key = trimmed[..eq].trim();
            if key.is_empty() || key.contains('.') || key.contains('"') {
                return Err(error_at(input, line_start, "unsupported key"));
            }
            let mut value_text = trimmed[eq + 1..].trim().to_string();
            // Multi-line arrays: keep consuming lines until brackets
            // balance outside strings.
            while !brackets_balanced(&value_text) {
                let Some(next) = lines.next() else {
                    return Err(error_at(input, line_start, "unterminated array"));
                };
                offset += next.len();
                value_text.push(' ');
                value_text.push_str(strip_comment(next).trim());
            }
            let value =
                parse_toml_value(&value_text).map_err(|msg| error_at(input, line_start, msg))?;
            let table = resolve_path(&mut root, &current_path);
            if table.iter().any(|(k, _)| k == key) {
                return Err(error_at(
                    input,
                    line_start,
                    format!("duplicate key '{key}'"),
                ));
            }
            table.push((key.to_string(), value));
        }
    }
    Ok(Value::Table(root))
}

/// Remove a `#` comment that is outside any string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn brackets_balanced(text: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut prev_backslash = false;
    for c in text.chars() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '[' | '{' if !in_str => depth += 1,
            ']' | '}' if !in_str => depth -= 1,
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    depth <= 0
}

/// Find the mutable table addressed by `path` ("" = root, one segment =
/// named table or the last element of an array-of-tables).
fn resolve_path<'a>(
    root: &'a mut Vec<(String, Value)>,
    path: &[String],
) -> &'a mut Vec<(String, Value)> {
    if path.is_empty() {
        return root;
    }
    let name = &path[0];
    let idx = root
        .iter()
        .position(|(k, _)| k == name)
        .expect("header registered");
    match &mut root[idx].1 {
        Value::Table(pairs) => pairs,
        Value::Array(items) => match items.last_mut() {
            Some(Value::Table(pairs)) => pairs,
            _ => unreachable!("array tables always end with a table"),
        },
        _ => unreachable!("headers only create tables or arrays"),
    }
}

/// Parse a single TOML value expression.
fn parse_toml_value(text: &str) -> Result<Value, String> {
    let text = text.trim();
    if text.is_empty() {
        return Err("empty value".into());
    }
    if let Some(rest) = text.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| "unterminated string".to_string())?;
        return unescape_toml(inner);
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if text.starts_with('[') {
        if !text.ends_with(']') {
            return Err("unterminated array".into());
        }
        let items = split_top_level(&text[1..text.len() - 1])?;
        return Ok(Value::Array(
            items
                .into_iter()
                .map(|item| parse_toml_value(item.trim()))
                .collect::<Result<_, _>>()?,
        ));
    }
    if text.starts_with('{') {
        if !text.ends_with('}') {
            return Err("unterminated inline table".into());
        }
        let mut pairs = Vec::new();
        for item in split_top_level(&text[1..text.len() - 1])? {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let eq = item
                .find('=')
                .ok_or_else(|| format!("expected 'key = value' in inline table, got '{item}'"))?;
            let key = item[..eq].trim();
            pairs.push((key.to_string(), parse_toml_value(item[eq + 1..].trim())?));
        }
        return Ok(Value::Table(pairs));
    }
    // Number: TOML allows underscores as separators.
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    if cleaned.contains(['.', 'e', 'E']) || cleaned == "inf" || cleaned == "-inf" {
        cleaned
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("invalid value '{text}'"))
    } else {
        cleaned
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("invalid value '{text}'"))
    }
}

fn unescape_toml(inner: &str) -> Result<Value, String> {
    let mut s = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            s.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => s.push('"'),
            Some('\\') => s.push('\\'),
            Some('n') => s.push('\n'),
            Some('t') => s.push('\t'),
            Some('r') => s.push('\r'),
            other => return Err(format!("unsupported escape '\\{:?}'", other)),
        }
    }
    Ok(Value::Str(s))
}

/// Split on top-level commas (outside nested brackets and strings).
fn split_top_level(text: &str) -> Result<Vec<&str>, String> {
    let mut items = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut prev_backslash = false;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '[' | '{' if !in_str => depth += 1,
            ']' | '}' if !in_str => depth -= 1,
            ',' if !in_str && depth == 0 => {
                items.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
        if depth < 0 {
            return Err("unbalanced brackets".into());
        }
    }
    if !text[start..].trim().is_empty() {
        items.push(&text[start..]);
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let doc = Value::Table(vec![
            ("name".into(), Value::Str("x \"quoted\"".into())),
            ("n".into(), Value::Int(-3)),
            ("pi".into(), Value::Float(3.25)),
            ("inf".into(), Value::Float(f64::INFINITY)),
            (
                "arr".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Table(vec![])),
        ]);
        let text = doc.to_json();
        let back = parse_json(&text).unwrap();
        // INFINITY serialises as null; everything else survives.
        assert_eq!(back.get("name"), Some(&Value::Str("x \"quoted\"".into())));
        assert_eq!(back.get("n"), Some(&Value::Int(-3)));
        assert_eq!(back.get("pi"), Some(&Value::Float(3.25)));
        assert_eq!(back.get("inf"), Some(&Value::Null));
        assert_eq!(parse_json(&back.to_json()).unwrap(), back);
    }

    #[test]
    fn json_pretty_parses_back() {
        let doc = Value::Table(vec![(
            "xs".into(),
            Value::Array(vec![Value::Int(1), Value::Int(2)]),
        )]);
        assert_eq!(parse_json(&doc.to_json_pretty()).unwrap(), doc);
    }

    #[test]
    fn toml_subset_parses() {
        let text = r#"
name = "demo"  # comment
threads = 4
ratio = 1.5
flag = true

[grid]
deltas_ns = [0.0, 10.5,
             20.0]
window = { lo = 0, hi = 100 }

[[workloads]]
app = "lulesh"
ranks = 8

[[workloads]]
app = "milc"
ranks = 16
"#;
        let v = parse_toml(text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("demo"));
        assert_eq!(v.get("threads").unwrap().as_i64(), Some(4));
        assert_eq!(v.get("flag"), Some(&Value::Bool(true)));
        let grid = v.get("grid").unwrap();
        assert_eq!(grid.get("deltas_ns").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            grid.get("window").unwrap().get("hi").unwrap().as_i64(),
            Some(100)
        );
        let wl = v.get("workloads").unwrap().as_array().unwrap();
        assert_eq!(wl.len(), 2);
        assert_eq!(wl[1].get("app").unwrap().as_str(), Some("milc"));
    }

    #[test]
    fn toml_rejects_header_key_collisions() {
        // A scalar key followed by a same-named header must be a clean
        // parse error, not a panic.
        assert!(parse_toml("workloads = 3\n[[workloads]]\napp = \"x\"").is_err());
        assert!(parse_toml("grid = 1\n[grid]\nx = 2").is_err());
        assert!(parse_toml("[grid]\nx = 2\n[[grid]]\ny = 3").is_err());
    }

    #[test]
    fn toml_rejects_unsupported() {
        assert!(parse_toml("a.b = 1").is_err());
        assert!(parse_toml("a = 1\na = 2").is_err());
        assert!(parse_toml("x =").is_err());
    }
}

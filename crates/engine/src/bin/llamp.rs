//! `llamp` — the unified campaign CLI.
//!
//! ```text
//! llamp run <spec.toml|spec.json> [--threads N] [--cache FILE]
//!           [--out FILE] [--csv FILE] [--timeout-ms N] [--quiet]
//!           [--metrics] [--metrics-out FILE] [--trace-out FILE]
//! llamp list-workloads
//! llamp report <results.json> [--csv FILE] [--metrics FILE]
//! ```
//!
//! `run` executes a campaign spec (see `examples/campaign.toml`),
//! optionally persisting the result cache across invocations; `report`
//! renders a results file as an aligned tolerance table. Run statistics
//! (threads, cache hit rate, wall time) go to stderr so stdout stays
//! clean for piped JSON.
//!
//! Telemetry is strictly out-of-band: `--metrics` / `--trace-out` /
//! `--metrics-out` turn on the `llamp-obs` recorder, and everything it
//! collects goes to stderr or to sidecar files — the results JSON stays
//! byte-identical with tracing on or off (see docs/OBSERVABILITY.md).

use llamp_engine::value::{parse_json, Value};
use llamp_engine::{
    metrics_value, parse_backend, render_metrics, run_campaign_checked, CampaignSpec,
    ExecutorConfig, ResultCache, SweepStart,
};
use llamp_workloads::App;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// Typed CLI failure, mapped onto the documented exit-code table (see
/// README § Exit codes): 2 usage, 3 input parse, 4 I/O, 5 campaign
/// completed with failures past the fault budget (partial results were
/// still written), 1 anything else.
enum CliError {
    /// Bad command line (unknown command/flag, wrong arity, bad number).
    Usage(String),
    /// An input file did not parse (spec, results, metrics sidecar).
    Parse(String),
    /// A file could not be read or written.
    Io(String),
    /// The campaign ran but more scenarios failed than the fault budget
    /// tolerates; the partial results file was written before this error.
    Campaign(String),
    /// Everything else.
    Internal(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Internal(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Parse(_) => 3,
            CliError::Io(_) => 4,
            CliError::Campaign(_) => 5,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Parse(m)
            | CliError::Io(m)
            | CliError::Campaign(m)
            | CliError::Internal(m) => m,
        }
    }
}

fn main() -> ExitCode {
    llamp_util::tune_for_large_traces();
    // Deterministic chaos: LLAMP_FAULTS / LLAMP_FAULTS_SEED arm the
    // fault-injection registry for this process (see docs/ROBUSTNESS.md).
    if let Err(e) = llamp_faults::init_from_env() {
        eprintln!("llamp: LLAMP_FAULTS: {e}");
        return ExitCode::from(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("list-workloads") => cmd_list_workloads(),
        Some("gen") => cmd_gen(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!(
            "unknown command '{other}'\n\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("llamp: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}

const USAGE: &str = "\
llamp — LLAMP campaign driver

USAGE:
  llamp run <spec.toml|spec.json> [OPTIONS]   execute a campaign spec
  llamp list-workloads                        list workload proxies
  llamp gen <workload> [GEN OPTIONS]          emit a (scaled) synthetic trace
  llamp report <results.json> [--csv FILE]    summarise a results file

Campaign specs sweep workloads x topologies x params x backends over a
latency grid ([grid]) or multi-parameter L/G/o axes ([[axes]]). The
complete field reference is docs/SPEC.md; runnable examples live in
examples/campaign.toml (grid) and examples/heatmap.toml (L x G axes).

RUN OPTIONS:
  --threads N       worker threads (default: all cores)
  --no-reduce       analyse raw execution graphs (skip the
                    makespan-preserving reduction pipeline; reduced and
                    raw runs never share cache entries)
  --cache FILE      load/save the result cache (JSON; created if missing)
  --out FILE        write results JSON here (default: stdout)
  --csv FILE        also write a flat CSV of all sweep points
  --backends LIST   override the spec's backends (comma-separated:
                    parametric | eval | lp | lp-dense | lp-sparse |
                    lp-parametric)
  --sweep-start P   override the spec's sweep_start policy: anchor (every
                    grid point re-solves from the anchor basis) | crash
                    (every point solves fresh from the longest-path crash
                    basis; points shard across idle threads) | auto
                    (crash above 10k LP rows, anchor below; default)
  --timeout-ms N    per-scenario timeout (default: unlimited)
  --retries N       re-run a panicked/timed-out scenario up to N times
                    before recording the failure (default: 1)
  --fault-budget N  tolerate up to N failed scenarios; their slots stay
                    typed errors in the results file. One more and the
                    run exits 5 — after writing all outputs (default: 0)
  --metrics         record telemetry and print the metrics summary
                    (solver/reduction totals, span tree, cache counters,
                    solve-time histograms) to stderr; the results JSON is
                    unaffected
  --metrics-out F   also write the metrics document to a JSON sidecar
                    (render later with 'llamp report ... --metrics F')
  --trace-out F     also write a Chrome trace-event file (load in
                    chrome://tracing or Perfetto)
  --solver-stats    deprecated alias for --metrics
  --quiet           suppress the run summary

GEN OPTIONS:
  --rank-mult N     multiply the bench-standard 8-rank shape (default 1)
  --iter-mult N     multiply the outer iteration count (default 1)
  --out FILE        write the trace text here (default: stdout, unless
                    --stats is given)
  --stats           don't dump the trace; stream-ingest it, run the
                    reduction pipeline and print size/timing stats
                    (combine with --out to do both)

  Multipliers in the tens push the execution graph into the 10^5-10^7
  vertex range; see docs/SCALING.md.

REPORT OPTIONS:
  --csv FILE        also write the tolerance table as CSV
  --metrics FILE    render a metrics sidecar written by 'run --metrics-out'
  --solver-stats    deprecated: print counters embedded by old 'run
                    --solver-stats' results files

EXIT CODES:
  0 success   1 internal error   2 usage error   3 input parse error
  4 I/O error   5 campaign failures exceeded --fault-budget
";

/// Minimal flag parser: positionals plus `--key value` / `--flag`.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Result<Self, String> {
        let mut out = Self {
            positional: Vec::new(),
            flags: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if bool_flags.contains(&name) {
                    out.flags.push((name.to_string(), None));
                } else if value_flags.contains(&name) {
                    let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                    out.flags.push((name.to_string(), Some(v.clone())));
                } else {
                    return Err(format!("unknown option --{name}"));
                }
            } else {
                out.positional.push(a.clone());
            }
        }
        Ok(out)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == name)
    }
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let args = Args::parse(
        args,
        &[
            "threads",
            "cache",
            "out",
            "csv",
            "backends",
            "sweep-start",
            "timeout-ms",
            "fault-budget",
            "retries",
            "metrics-out",
            "trace-out",
        ],
        &["quiet", "metrics", "solver-stats", "no-reduce"],
    )
    .map_err(CliError::Usage)?;
    let [spec_path] = args.positional.as_slice() else {
        return Err(CliError::Usage(format!(
            "'run' takes exactly one spec file\n\n{USAGE}"
        )));
    };
    if args.has("solver-stats") {
        eprintln!("llamp: note: --solver-stats is a deprecated alias for --metrics");
    }
    // Any telemetry sink turns the recorder on; without one, every obs
    // entry point stays a single relaxed atomic load.
    let telemetry = args.has("metrics")
        || args.has("solver-stats")
        || args.get("metrics-out").is_some()
        || args.get("trace-out").is_some();
    if telemetry {
        llamp_obs::enable();
    }
    let source = std::fs::read_to_string(spec_path)
        .map_err(|e| CliError::Io(format!("cannot read {spec_path}: {e}")))?;
    let mut spec =
        CampaignSpec::parse(&source, spec_path).map_err(|e| CliError::Parse(e.to_string()))?;
    if let Some(list) = args.get("backends") {
        spec.backends = list
            .split(',')
            .map(|b| parse_backend(b.trim()).map_err(|e| CliError::Usage(e.to_string())))
            .collect::<Result<Vec<_>, _>>()?;
        if spec.backends.is_empty() {
            return Err(CliError::Usage(
                "--backends: need at least one backend".into(),
            ));
        }
        spec.canonicalize();
    }
    if args.has("no-reduce") {
        spec.reduce = false;
    }
    if let Some(policy) = args.get("sweep-start") {
        spec.sweep_start = SweepStart::parse(policy.trim())
            .map_err(|e| CliError::Usage(format!("--sweep-start: {e}")))?;
    }

    let threads = match args.get("threads") {
        None => 0,
        Some(t) => t
            .parse::<usize>()
            .map_err(|_| CliError::Usage(format!("--threads: '{t}' is not a number")))?,
    };
    let job_timeout = match args.get("timeout-ms") {
        None => None,
        Some(t) => Some(Duration::from_millis(t.parse::<u64>().map_err(|_| {
            CliError::Usage(format!("--timeout-ms: '{t}' is not a number"))
        })?)),
    };
    let fault_budget = match args.get("fault-budget") {
        None => 0,
        Some(n) => n
            .parse::<usize>()
            .map_err(|_| CliError::Usage(format!("--fault-budget: '{n}' is not a number")))?,
    };
    let max_retries = match args.get("retries") {
        None => ExecutorConfig::default().max_retries,
        Some(n) => n
            .parse::<u32>()
            .map_err(|_| CliError::Usage(format!("--retries: '{n}' is not a number")))?,
    };
    let config = ExecutorConfig {
        threads,
        job_timeout,
        max_retries,
        ..Default::default()
    };

    let cache_path = args.get("cache").map(PathBuf::from);
    let cache = match &cache_path {
        Some(p) if p.exists() => ResultCache::load(p)
            .map_err(|e| CliError::Io(format!("cannot load cache {}: {e}", p.display())))?,
        _ => ResultCache::new(),
    };

    // A blown fault budget still produces the full partial result: write
    // every output first, fail the process last.
    let (result, summary, campaign_failure) =
        match run_campaign_checked(&spec, &config, &cache, fault_budget) {
            Ok((result, summary)) => (result, summary, None),
            Err(e) => {
                let rendered = e.to_string();
                (e.result, e.summary, Some(rendered))
            }
        };

    if let Some(p) = &cache_path {
        cache
            .save(p)
            .map_err(|e| CliError::Io(format!("cannot save cache {}: {e}", p.display())))?;
    }

    // The results file is byte-identical with telemetry on or off: the
    // recorder never touches it.
    let json = result.to_json();
    match args.get("out") {
        Some(path) => std::fs::write(path, &json)
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?,
        None => print!("{json}"),
    }
    if let Some(path) = args.get("csv") {
        std::fs::write(path, result.to_csv())
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
    }

    // Drain the recorder (after the cache save, so its span is included).
    let metrics_doc = telemetry.then(|| {
        let snapshot = llamp_obs::take();
        llamp_obs::disable();
        if let Some(path) = args.get("trace-out") {
            if let Err(e) = std::fs::write(path, snapshot.chrome_trace_json()) {
                eprintln!("llamp: cannot write {path}: {e}");
            }
        }
        metrics_value(&summary, &snapshot.summary())
    });
    if let (Some(doc), Some(path)) = (&metrics_doc, args.get("metrics-out")) {
        std::fs::write(path, doc.to_json_pretty())
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
    }
    if !args.has("quiet") {
        eprintln!(
            "campaign '{}' ({:016x})",
            result.name, result.spec_fingerprint
        );
        match &metrics_doc {
            // One rendering path for all telemetry (run summary included):
            // `llamp report --metrics` replays the sidecar through the
            // same formatter.
            Some(doc) => eprintln!("{}", render_metrics(doc)),
            None => eprintln!("{}", summary.render()),
        }
    }
    if let Some(rendered) = campaign_failure {
        return Err(CliError::Campaign(format!(
            "{rendered}see the results file for the failing scenarios"
        )));
    }
    Ok(())
}

fn cmd_list_workloads() -> Result<(), CliError> {
    println!("{:<12} {:>10} character", "name", "paper o");
    println!("{}", "-".repeat(72));
    for app in App::ALL {
        println!(
            "{:<12} {:>7.1} µs {}",
            app.name().to_ascii_lowercase(),
            app.paper_o() / 1_000.0,
            describe(app)
        );
    }
    println!("\nUse these names in [[workloads]] entries of a campaign spec.");
    Ok(())
}

fn describe(app: App) -> &'static str {
    match app {
        App::Lulesh => "3D 26-neighbour nonblocking halo + dt-allreduce (weak)",
        App::Hpcg => "27-pt halo, dot-product allreduces, MG V-cycle (weak)",
        App::Milc => "4D lattice, dependent CG halo chains + global sums (strong)",
        App::Icon => "icosahedral neighbour exchange, compute-heavy (strong)",
        App::Lammps => "forward/reverse 6-dir comm, neighbour rebuilds (weak)",
        App::Openmx => "bcast/reduce-heavy DFT steps (weak)",
        App::Cloverleaf => "2D 4-neighbour halo + field reductions (weak)",
    }
}

fn cmd_gen(args: &[String]) -> Result<(), CliError> {
    let args = Args::parse(
        args,
        &["rank-mult", "iter-mult", "out"],
        &["stats", "metrics"],
    )
    .map_err(CliError::Usage)?;
    if args.has("metrics") {
        llamp_obs::enable();
    }
    let [name] = args.positional.as_slice() else {
        return Err(CliError::Usage(format!(
            "'gen' takes exactly one workload name\n\n{USAGE}"
        )));
    };
    let app = App::parse(name).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown workload '{name}' (see 'llamp list-workloads')"
        ))
    })?;
    let mult = |flag: &str| -> Result<u32, CliError> {
        match args.get(flag) {
            None => Ok(1),
            Some(v) => v
                .parse::<u32>()
                .map_err(|_| CliError::Usage(format!("--{flag}: '{v}' is not a number"))),
        }
    };
    let (rank_mult, iter_mult) = (mult("rank-mult")?, mult("iter-mult")?);
    let set = llamp_workloads::scaled(app, rank_mult, iter_mult);

    if args.has("stats") {
        use llamp_schedgen::{graph_of_programs, GraphConfig, ReduceConfig};
        let t0 = std::time::Instant::now();
        let graph = graph_of_programs(&set, &GraphConfig::paper())
            .map_err(|e| CliError::Internal(e.to_string()))?;
        let ingest = t0.elapsed();
        let t1 = std::time::Instant::now();
        let red = graph.reduced(&ReduceConfig::default());
        let reduce = t1.elapsed();
        println!(
            "workload        {} x{rank_mult} ranks x{iter_mult} iters\n\
             ranks           {}\n\
             records         {}\n\
             vertices        {}\n\
             edges           {}\n\
             ingest          {:.1} ms\n\
             reduce          {:.1} ms\n\
             {}",
            app.name(),
            set.nranks,
            set.num_records(),
            graph.num_vertices(),
            graph.num_edges(),
            ingest.as_secs_f64() * 1e3,
            reduce.as_secs_f64() * 1e3,
            red.stats().render(),
        );
    }

    if args.get("out").is_some() || !args.has("stats") {
        let trace = set.trace(&llamp_trace::TracerConfig::default());
        let text = llamp_trace::text::write_trace(&trace);
        match args.get("out") {
            Some(path) => std::fs::write(path, &text)
                .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?,
            None => print!("{text}"),
        }
    }
    if args.has("metrics") {
        let snapshot = llamp_obs::take();
        llamp_obs::disable();
        eprint!("{}", snapshot.summary().render());
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), CliError> {
    let args =
        Args::parse(args, &["csv", "metrics"], &["solver-stats"]).map_err(CliError::Usage)?;
    let [path] = args.positional.as_slice() else {
        return Err(CliError::Usage(format!(
            "'report' takes exactly one results file\n\n{USAGE}"
        )));
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
    let doc = parse_json(&text).map_err(|e| CliError::Parse(format!("{path}: {e}")))?;
    let name = doc.get("name").and_then(Value::as_str).unwrap_or("?");
    let scenarios = doc
        .get("scenarios")
        .and_then(Value::as_array)
        .ok_or_else(|| CliError::Parse(format!("{path}: not a llamp results file")))?;

    println!("# campaign '{name}' — {} scenario(s)\n", scenarios.len());
    let fmt_tol = |v: Option<&Value>| -> String {
        match v {
            Some(Value::Null) => "inf".into(),
            Some(x) => x
                .as_f64()
                .map(|t| format!("{:.1}", t / 1_000.0))
                .unwrap_or_else(|| "?".into()),
            None => "?".into(),
        }
    };
    println!(
        "{:<38} {:<10} {:>12} {:>10} {:>10} {:>10}",
        "workload | topology", "backend", "T0 [ms]", "1% [µs]", "2% [µs]", "5% [µs]"
    );
    println!("{}", "-".repeat(96));
    let mut rows_csv = String::from(
        "workload,topology,params,backend,baseline_runtime_ns,pct1_ns,pct2_ns,pct5_ns\n",
    );
    for s in scenarios {
        let sc = s.get("scenario");
        let field = |k: &str| -> String {
            sc.and_then(|t| t.get(k))
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string()
        };
        if let Some(err) = s.get("error").and_then(Value::as_str) {
            println!(
                "{:<38} {:<10} FAILED: {err}",
                format!("{} | {}", field("workload"), field("topology")),
                field("backend")
            );
            continue;
        }
        let zones = s.get("zones");
        let z = |k: &str| zones.and_then(|z| z.get(k));
        let t0 = z("baseline_runtime_ns")
            .and_then(Value::as_f64)
            .map(|t| format!("{:.3}", t / 1e6))
            .unwrap_or_else(|| "?".into());
        println!(
            "{:<38} {:<10} {:>12} {:>10} {:>10} {:>10}",
            format!("{} | {}", field("workload"), field("topology")),
            field("backend"),
            t0,
            fmt_tol(z("pct1_ns")),
            fmt_tol(z("pct2_ns")),
            fmt_tol(z("pct5_ns"))
        );
        let raw = |k: &str| -> String {
            match z(k) {
                Some(Value::Null) => "inf".into(),
                Some(x) => x.as_f64().map(|f| format!("{f:?}")).unwrap_or_default(),
                None => String::new(),
            }
        };
        rows_csv.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            field("workload"),
            field("topology"),
            field("params"),
            field("backend"),
            raw("baseline_runtime_ns"),
            raw("pct1_ns"),
            raw("pct2_ns"),
            raw("pct5_ns"),
        ));
    }
    if let Some(csv_path) = args.get("csv") {
        std::fs::write(csv_path, rows_csv)
            .map_err(|e| CliError::Io(format!("cannot write {csv_path}: {e}")))?;
    }
    if let Some(metrics_path) = args.get("metrics") {
        // The sidecar renders through the same formatter `run --metrics`
        // uses, so the replay is byte-identical to the live summary.
        let text = std::fs::read_to_string(metrics_path)
            .map_err(|e| CliError::Io(format!("cannot read {metrics_path}: {e}")))?;
        let metrics_doc =
            parse_json(&text).map_err(|e| CliError::Parse(format!("{metrics_path}: {e}")))?;
        println!("\n# metrics ({metrics_path})\n");
        print!("{}", render_metrics(&metrics_doc));
    }
    if args.has("solver-stats") {
        eprintln!(
            "llamp: note: --solver-stats is deprecated; use 'run --metrics-out F' \
             and 'report --metrics F'"
        );
        let print_block = |key: &str, title: &str| match doc.get(key) {
            Some(Value::Table(pairs)) => {
                println!("\n# {title} (as embedded by an old 'run --solver-stats')");
                for (k, v) in pairs {
                    let rendered = match v {
                        Value::Int(i) => i.to_string(),
                        Value::Float(f) => format!("{f:.3e}"),
                        other => other.to_json(),
                    };
                    println!("{k:<24} {rendered}");
                }
            }
            _ => println!("\n(no {title} embedded; use 'run --metrics-out' + 'report --metrics')"),
        };
        print_block("solver_stats", "lp solver totals");
        print_block("reduction_stats", "graph reduction totals");
    }
    Ok(())
}

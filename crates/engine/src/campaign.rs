//! Campaign orchestration: spec → scenario jobs → parallel execution with
//! caching → deterministic results.
//!
//! The runner expands a canonical [`CampaignSpec`] into its deduplicated,
//! sorted scenario list, probes the cache for *full hits* (every grid
//! point and the zones already present → the scenario is assembled without
//! building its graph), dispatches the rest onto the work-stealing
//! executor — each job computes only its cache-missing pieces — and
//! assembles a [`CampaignResult`] whose JSON form is byte-identical across
//! runs and thread counts: entries are ordered by canonical scenario key
//! and contain no wall-clock data (timings live in [`RunSummary`], which
//! is reported separately).

use crate::cache::{
    axis_point_key, point_key, zones_key, zones_key_multi, CachedEntry, ResultCache,
};
use crate::executor::{run_jobs, ExecutorConfig, JobStatus};
use crate::scenario::{
    expand, AxisPointResult, AxisPointValue, PointResult, Scenario, ScenarioOutcome, ZonesResult,
};
use crate::spec::CampaignSpec;
use crate::value::Value;
use llamp_core::{ReductionStats, SolveStats};
use std::time::{Duration, Instant};

/// How one scenario's answer was obtained (summary bookkeeping; never part
/// of the deterministic results file).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Every piece came from the cache; the graph was never built.
    FullCacheHit,
    /// Computed (possibly with partial cache reuse).
    Computed,
    /// The job panicked.
    Panicked,
    /// The job exceeded the per-job timeout.
    TimedOut,
    /// The job reported an analysis error.
    Failed,
}

/// Why one scenario produced no outcome, typed by failure mode. The
/// rendered `Display` strings are byte-stable — they are what lands in
/// the deterministic results file's `error` field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The job panicked (isolated by the executor's `catch_unwind`);
    /// payload is the rendered panic message.
    Panicked(String),
    /// The job exceeded the per-job timeout.
    TimedOut {
        /// How long the job actually ran.
        elapsed: Duration,
    },
    /// The analysis itself reported an error (bad workload, infeasible
    /// tolerance cap, solver failure past the fallback ladder, ...).
    Failed(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Panicked(msg) => write!(f, "panic: {msg}"),
            ScenarioError::TimedOut { elapsed } => {
                write!(f, "timed out after {:.3}s", elapsed.as_secs_f64())
            }
            ScenarioError::Failed(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// One scenario's slot in a campaign result.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The scenario.
    pub scenario: Scenario,
    /// The outcome, or the typed failure.
    pub outcome: Result<ScenarioOutcome, ScenarioError>,
}

/// The deterministic product of a campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Campaign name (from the spec).
    pub name: String,
    /// Content hash of the canonical spec.
    pub spec_fingerprint: u64,
    /// Per-scenario results, ordered by canonical scenario key.
    pub scenarios: Vec<ScenarioResult>,
}

/// Run statistics (reported alongside, never inside, the results file).
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Scenarios before deduplication.
    pub jobs_requested: usize,
    /// Scenarios after deduplication.
    pub jobs_unique: usize,
    /// Scenarios answered wholly from the cache (no graph build).
    pub full_cache_hits: usize,
    /// Scenarios dispatched to the executor.
    pub jobs_executed: usize,
    /// Point/zone-level cache hits during the run.
    pub cache_hits: u64,
    /// Point/zone-level cache misses during the run.
    pub cache_misses: u64,
    /// Worker threads used.
    pub threads: usize,
    /// The sweep-start policy in force (spec field or CLI override),
    /// rendered as its spec-level name (`anchor` / `crash` / `auto`).
    pub sweep_start: String,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-scenario provenance, aligned with the result's scenario order.
    pub provenance: Vec<Provenance>,
    /// Aggregate LP solver-effort counters across the scenarios that
    /// actually solved LPs this run (cache hits contribute nothing, so
    /// these — like the timings — live beside, never inside, the
    /// deterministic results file).
    pub solver: SolveStats,
    /// Aggregate graph-reduction counters across the scenarios that
    /// ran the reduction pipeline this run (full cache hits never build
    /// a graph, and `reduce = false` scenarios contribute nothing). Wall-clock bearing like the timings, so
    /// reported beside — never inside — the deterministic results file.
    pub reduction: ReductionStats,
}

impl RunSummary {
    /// Point/zone-level cache hit fraction in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Render a human-readable block.
    pub fn render(&self) -> String {
        format!(
            "scenarios: {} requested, {} unique, {} full cache hits, {} executed\n\
             cache: {} hits, {} misses ({:.1}% hit rate)\n\
             threads: {}, elapsed: {:.3}s",
            self.jobs_requested,
            self.jobs_unique,
            self.full_cache_hits,
            self.jobs_executed,
            self.cache_hits,
            self.cache_misses,
            100.0 * self.hit_rate(),
            self.threads,
            self.elapsed.as_secs_f64()
        )
    }

    /// Render the aggregate LP solver counters (empty string when no LP
    /// ran this campaign).
    pub fn render_solver_stats(&self) -> String {
        if self.solver.iterations == 0 {
            String::new()
        } else {
            format!("lp solver totals\n{}", self.solver.render())
        }
    }

    /// Render the aggregate graph-reduction counters (empty string when
    /// every scenario was a full cache hit and no graph was built).
    pub fn render_reduction_stats(&self) -> String {
        if self.reduction.is_empty() {
            String::new()
        } else {
            format!("graph reduction totals\n{}", self.reduction.render())
        }
    }
}

/// Run a campaign against a (possibly pre-warmed) cache.
pub fn run_campaign(
    spec: &CampaignSpec,
    config: &ExecutorConfig,
    cache: &ResultCache,
) -> (CampaignResult, RunSummary) {
    let campaign_span = llamp_obs::span("campaign");
    let started = Instant::now();
    let hits_before = cache.stats().hits();
    let misses_before = cache.stats().misses();

    // The requested count reflects the caller's spec as written; the
    // unique count reflects the canonicalized (sorted + deduplicated)
    // sweep actually run.
    let jobs_requested =
        spec.workloads.len() * spec.topologies.len() * spec.params.len() * spec.backends.len();
    let mut canonical_spec = spec.clone();
    canonical_spec.canonicalize();
    let all = expand(&canonical_spec);
    let jobs_unique = all.len();

    // Split into full cache hits (assembled inline, counted as hits) and
    // jobs that need the executor.
    let mut slots: Vec<Option<(Result<ScenarioOutcome, ScenarioError>, Provenance)>> =
        vec![None; all.len()];
    let mut solver = SolveStats::default();
    let mut reduction = ReductionStats::default();
    let mut to_run: Vec<(usize, &Scenario)> = Vec::new();
    for (i, sc) in all.iter().enumerate() {
        match assemble_from_cache(sc, cache) {
            Some(outcome) => slots[i] = Some((Ok(outcome), Provenance::FullCacheHit)),
            None => to_run.push((i, sc)),
        }
    }
    let jobs_executed = to_run.len();
    let full_cache_hits = jobs_unique - jobs_executed;

    let threads = config.effective_threads().min(jobs_executed.max(1));
    // Threads left idle by the scenario fan-out are lent to each
    // scenario's own sweep loop (crash-started points are independent, so
    // they shard across workers). A campaign with more scenarios than
    // threads keeps every scenario single-threaded, exactly as before.
    let point_threads = (config.effective_threads() / jobs_executed.max(1)).max(1);
    let statuses = run_jobs(config, to_run.iter().map(|(_, sc)| *sc).collect(), |sc| {
        run_one(sc, cache, point_threads)
    });
    for ((idx, _), status) in to_run.iter().zip(statuses) {
        slots[*idx] = Some(match status {
            JobStatus::Done(Ok((outcome, inserts, stats, red))) => {
                // Publish computed pieces only for jobs that finished
                // within budget: a timed-out or panicked job must leave
                // no trace, or a rerun would silently flip it from error
                // to full-cache-hit success.
                for (key, entry) in inserts {
                    cache.put(key, entry);
                }
                solver.merge(&stats);
                reduction.merge(&red);
                (Ok(outcome), Provenance::Computed)
            }
            JobStatus::Done(Err(msg)) => (Err(ScenarioError::Failed(msg)), Provenance::Failed),
            JobStatus::Panicked(msg) => (Err(ScenarioError::Panicked(msg)), Provenance::Panicked),
            JobStatus::TimedOut { elapsed } => (
                Err(ScenarioError::TimedOut { elapsed }),
                Provenance::TimedOut,
            ),
        });
    }

    let mut scenarios = Vec::with_capacity(all.len());
    let mut provenance = Vec::with_capacity(all.len());
    for (sc, slot) in all.into_iter().zip(slots) {
        let (outcome, prov) = slot.expect("every scenario resolved");
        scenarios.push(ScenarioResult {
            scenario: sc,
            outcome,
        });
        provenance.push(prov);
    }

    let result = CampaignResult {
        name: canonical_spec.name.clone(),
        spec_fingerprint: canonical_spec.fingerprint(),
        scenarios,
    };
    let summary = RunSummary {
        jobs_requested,
        jobs_unique,
        full_cache_hits,
        jobs_executed,
        cache_hits: cache.stats().hits() - hits_before,
        cache_misses: cache.stats().misses() - misses_before,
        threads,
        sweep_start: canonical_spec.sweep_start.name().to_string(),
        elapsed: started.elapsed(),
        provenance,
        solver,
        reduction,
    };
    if llamp_obs::is_enabled() {
        campaign_span.field_str("name", &result.name);
        campaign_span.field_u64("jobs_unique", jobs_unique as u64);
        campaign_span.field_u64("full_cache_hits", full_cache_hits as u64);
        campaign_span.field_u64("jobs_executed", jobs_executed as u64);
    }
    (result, summary)
}

/// A campaign that completed but exceeded its fault budget. This is a
/// *report*, not an abort: it carries the full partial [`CampaignResult`]
/// (failed scenarios hold their typed [`ScenarioError`]) and the
/// [`RunSummary`], so completed work is never discarded — callers write
/// the partial results file and surface the failure list.
#[derive(Debug)]
pub struct CampaignError {
    /// The partial result (every scenario present; failed ones as `Err`).
    pub result: CampaignResult,
    /// The run summary.
    pub summary: RunSummary,
    /// `(canonical scenario key, cause)` for every failed scenario, in
    /// result order.
    pub failures: Vec<(String, ScenarioError)>,
    /// The budget that was in force.
    pub fault_budget: usize,
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} of {} scenario(s) failed (fault budget {}); partial results retained",
            self.failures.len(),
            self.result.scenarios.len(),
            self.fault_budget
        )?;
        for (key, cause) in &self.failures {
            writeln!(f, "  {key}: {cause}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CampaignError {}

/// Run a campaign under a fault budget: at most `fault_budget` failed
/// scenarios are tolerated (their slots stay as typed errors in the
/// result; the rest of the campaign is unaffected). One more and the
/// whole run comes back as a [`CampaignError`] — still carrying the
/// partial result, never discarding completed work. `fault_budget = 0`
/// is the strict mode: any failure fails the campaign.
pub fn run_campaign_checked(
    spec: &CampaignSpec,
    config: &ExecutorConfig,
    cache: &ResultCache,
    fault_budget: usize,
) -> Result<(CampaignResult, RunSummary), Box<CampaignError>> {
    let (result, summary) = run_campaign(spec, config, cache);
    let failures: Vec<(String, ScenarioError)> = result
        .scenarios
        .iter()
        .filter_map(|sr| {
            sr.outcome
                .as_ref()
                .err()
                .map(|e| (sr.scenario.base_canonical(), e.clone()))
        })
        .collect();
    if failures.len() > fault_budget {
        return Err(Box::new(CampaignError {
            result,
            summary,
            failures,
            fault_budget,
        }));
    }
    Ok((result, summary))
}

/// Probe (without counting) whether every piece of a scenario is cached;
/// if so, replay the lookups through the counting path and assemble.
fn assemble_from_cache(sc: &Scenario, cache: &ResultCache) -> Option<ScenarioOutcome> {
    let base = sc.base_canonical();
    if !sc.axes.is_empty() {
        let zk = zones_key_multi(&base, sc.grid.search_hi_ns);
        let tuples = sc.axis_points();
        let all_present = cache.peek(&zk).is_some()
            && tuples.iter().all(|t| {
                cache
                    .peek(&axis_point_key(&base, sc.param_deltas(t)))
                    .is_some()
            });
        if !all_present {
            return None;
        }
        let zones = match cache.get(&zk)? {
            CachedEntry::Zones(z) => z,
            _ => return None,
        };
        let mut points = Vec::with_capacity(tuples.len());
        for t in tuples {
            match cache.get(&axis_point_key(&base, sc.param_deltas(&t)))? {
                CachedEntry::AxisPoint(v) => points.push(AxisPointResult {
                    deltas: t,
                    value: v,
                }),
                _ => return None,
            }
        }
        return Some(ScenarioOutcome {
            zones,
            sweep: Vec::new(),
            points,
        });
    }
    let zk = zones_key(&base, sc.grid.search_hi_ns);
    let all_present = cache.peek(&zk).is_some()
        && sc
            .grid
            .deltas_ns
            .iter()
            .all(|&d| cache.peek(&point_key(&base, d)).is_some());
    if !all_present {
        return None;
    }
    // Count the real lookups now that assembly is guaranteed.
    let zones = match cache.get(&zk)? {
        CachedEntry::Zones(z) => z,
        _ => return None,
    };
    let mut sweep = Vec::with_capacity(sc.grid.deltas_ns.len());
    for &d in &sc.grid.deltas_ns {
        match cache.get(&point_key(&base, d))? {
            CachedEntry::Point(p) => sweep.push(p),
            _ => return None,
        }
    }
    Some(ScenarioOutcome {
        zones,
        sweep,
        points: Vec::new(),
    })
}

/// Execute one scenario: look up cached pieces, compute the rest. Newly
/// computed pieces are *returned* rather than inserted — the campaign
/// runner publishes them only when the job completes within its budget.
type ComputedInserts = Vec<(String, CachedEntry)>;

/// What a computed job hands back to the campaign runner.
type JobOutput = (ScenarioOutcome, ComputedInserts, SolveStats, ReductionStats);

fn run_one(sc: &Scenario, cache: &ResultCache, point_threads: usize) -> Result<JobOutput, String> {
    if !sc.axes.is_empty() {
        return run_one_axes(sc, cache);
    }
    let span = llamp_obs::span("scenario");
    let base = sc.base_canonical();
    if llamp_obs::is_enabled() {
        span.field_str("key", &base);
    }
    let mut cached_points: Vec<Option<PointResult>> = Vec::with_capacity(sc.grid.deltas_ns.len());
    let mut missing: Vec<f64> = Vec::new();
    for &d in &sc.grid.deltas_ns {
        match cache.get(&point_key(&base, d)) {
            Some(CachedEntry::Point(p)) => cached_points.push(Some(p)),
            _ => {
                cached_points.push(None);
                missing.push(d);
            }
        }
    }
    let zk = zones_key(&base, sc.grid.search_hi_ns);
    let cached_zones = match cache.get(&zk) {
        Some(CachedEntry::Zones(z)) => Some(z),
        _ => None,
    };

    let mut reduction = ReductionStats::default();
    let (computed_points, computed_zones, stats): (
        Vec<PointResult>,
        Option<ZonesResult>,
        SolveStats,
    ) = if missing.is_empty() && cached_zones.is_some() {
        (Vec::new(), None, SolveStats::default())
    } else {
        let analyzer = sc.build_analyzer()?;
        if sc.reduce {
            reduction = *analyzer.reduction_stats();
        }
        sc.compute_with(&analyzer, &missing, cached_zones.is_none(), point_threads)?
    };

    // Merge computed points back into grid order, collecting the inserts
    // for post-completion publication.
    let mut inserts: ComputedInserts = Vec::new();
    let mut computed_iter = computed_points.into_iter();
    let mut sweep = Vec::with_capacity(cached_points.len());
    for (slot, &d) in cached_points.into_iter().zip(&sc.grid.deltas_ns) {
        match slot {
            Some(p) => sweep.push(p),
            None => {
                let p = computed_iter
                    .next()
                    .ok_or_else(|| "backend returned fewer points than requested".to_string())?;
                inserts.push((point_key(&base, d), CachedEntry::Point(p)));
                sweep.push(p);
            }
        }
    }
    let zones = match (cached_zones, computed_zones) {
        (Some(z), _) => z,
        (None, Some(z)) => {
            inserts.push((zk, CachedEntry::Zones(z)));
            z
        }
        (None, None) => return Err("backend returned no zones".to_string()),
    };
    Ok((
        ScenarioOutcome {
            zones,
            sweep,
            points: Vec::new(),
        },
        inserts,
        stats,
        reduction,
    ))
}

/// The axes-campaign variant of [`run_one`]: grid points are delta
/// *tuples*, cached at per-parameter-offset granularity so overlapping
/// axis grids recompute only their set difference.
fn run_one_axes(sc: &Scenario, cache: &ResultCache) -> Result<JobOutput, String> {
    let span = llamp_obs::span("scenario");
    let base = sc.base_canonical();
    if llamp_obs::is_enabled() {
        span.field_str("key", &base);
    }
    let tuples = sc.axis_points();
    let mut cached_points: Vec<Option<AxisPointValue>> = Vec::with_capacity(tuples.len());
    let mut missing: Vec<Vec<f64>> = Vec::new();
    for t in &tuples {
        match cache.get(&axis_point_key(&base, sc.param_deltas(t))) {
            Some(CachedEntry::AxisPoint(v)) => cached_points.push(Some(v)),
            _ => {
                cached_points.push(None);
                missing.push(t.clone());
            }
        }
    }
    let zk = zones_key_multi(&base, sc.grid.search_hi_ns);
    let cached_zones = match cache.get(&zk) {
        Some(CachedEntry::Zones(z)) => Some(z),
        _ => None,
    };

    let mut reduction = ReductionStats::default();
    let (computed_points, computed_zones, stats): (
        Vec<AxisPointValue>,
        Option<ZonesResult>,
        SolveStats,
    ) = if missing.is_empty() && cached_zones.is_some() {
        (Vec::new(), None, SolveStats::default())
    } else {
        let analyzer = sc.build_analyzer()?;
        if sc.reduce {
            reduction = *analyzer.reduction_stats();
        }
        sc.compute_axes(&analyzer, &missing, cached_zones.is_none())?
    };

    let mut inserts: ComputedInserts = Vec::new();
    let mut computed_iter = computed_points.into_iter();
    let mut points = Vec::with_capacity(tuples.len());
    for (slot, t) in cached_points.into_iter().zip(tuples) {
        let value = match slot {
            Some(v) => v,
            None => {
                let v = computed_iter
                    .next()
                    .ok_or_else(|| "backend returned fewer points than requested".to_string())?;
                inserts.push((
                    axis_point_key(&base, sc.param_deltas(&t)),
                    CachedEntry::AxisPoint(v),
                ));
                v
            }
        };
        points.push(AxisPointResult { deltas: t, value });
    }
    let zones = match (cached_zones, computed_zones) {
        (Some(z), _) => z,
        (None, Some(z)) => {
            inserts.push((zk, CachedEntry::Zones(z)));
            z
        }
        (None, None) => return Err("backend returned no zones".to_string()),
    };
    Ok((
        ScenarioOutcome {
            zones,
            sweep: Vec::new(),
            points,
        },
        inserts,
        stats,
        reduction,
    ))
}

impl CampaignResult {
    /// Serialize deterministically (see module docs).
    pub fn to_value(&self) -> Value {
        Value::Table(vec![
            ("name".into(), Value::Str(self.name.clone())),
            (
                "spec_fingerprint".into(),
                Value::Str(format!("{:016x}", self.spec_fingerprint)),
            ),
            (
                "scenarios".into(),
                Value::Array(
                    self.scenarios
                        .iter()
                        .map(|sr| {
                            let mut pairs = vec![
                                ("scenario".into(), sr.scenario.to_value()),
                                (
                                    "key".into(),
                                    Value::Str(format!("{:016x}", sr.scenario.fingerprint())),
                                ),
                            ];
                            match &sr.outcome {
                                Ok(outcome) => {
                                    pairs.push(("zones".into(), zones_to_value(&outcome.zones)));
                                    if sr.scenario.axes.is_empty() {
                                        pairs.push((
                                            "sweep".into(),
                                            Value::Array(
                                                outcome.sweep.iter().map(point_to_value).collect(),
                                            ),
                                        ));
                                    } else {
                                        pairs.push((
                                            "points".into(),
                                            Value::Array(
                                                outcome
                                                    .points
                                                    .iter()
                                                    .map(axis_point_to_value)
                                                    .collect(),
                                            ),
                                        ));
                                    }
                                }
                                Err(e) => {
                                    pairs.push(("error".into(), Value::Str(e.to_string())));
                                }
                            }
                            Value::Table(pairs)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The results file body (pretty JSON, trailing newline, byte-stable).
    pub fn to_json(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// Flat CSV: one row per sweep point. Axes campaigns widen the schema
    /// to per-parameter deltas, sensitivities and ratios (absent axes
    /// report a zero delta).
    pub fn to_csv(&self) -> String {
        let axes_mode = self.scenarios.iter().any(|sr| !sr.scenario.axes.is_empty());
        if axes_mode {
            let mut out = String::from(
                "workload,topology,params,backend,delta_l_ns,delta_g,delta_o_ns,\
                 runtime_ns,lambda_l,lambda_g,lambda_o,rho_l,rho_g,rho_o\n",
            );
            for sr in &self.scenarios {
                if let Ok(outcome) = &sr.outcome {
                    for p in &outcome.points {
                        let [dl, dg, d_o] = sr.scenario.param_deltas(&p.deltas);
                        let v = &p.value;
                        out.push_str(&format!(
                            "{},{},{},{},{dl:?},{dg:?},{d_o:?},{:?},{:?},{:?},{:?},{:?},{:?},{:?}\n",
                            csv_field(&sr.scenario.workload.canonical()),
                            csv_field(&sr.scenario.topology.canonical()),
                            csv_field(&sr.scenario.params.canonical()),
                            sr.scenario.backend.name(),
                            v.runtime_ns,
                            v.lambda_l,
                            v.lambda_g,
                            v.lambda_o,
                            v.rho_l,
                            v.rho_g,
                            v.rho_o
                        ));
                    }
                }
            }
            return out;
        }
        let mut out =
            String::from("workload,topology,params,backend,delta_l_ns,runtime_ns,lambda,rho\n");
        for sr in &self.scenarios {
            if let Ok(outcome) = &sr.outcome {
                for p in &outcome.sweep {
                    out.push_str(&format!(
                        "{},{},{},{},{:?},{:?},{:?},{:?}\n",
                        csv_field(&sr.scenario.workload.canonical()),
                        csv_field(&sr.scenario.topology.canonical()),
                        csv_field(&sr.scenario.params.canonical()),
                        sr.scenario.backend.name(),
                        p.delta_l_ns,
                        p.runtime_ns,
                        p.lambda,
                        p.rho
                    ));
                }
            }
        }
        out
    }
}

fn csv_field(s: &str) -> String {
    if s.contains(',') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn zones_to_value(z: &ZonesResult) -> Value {
    let inf = |x: f64| {
        if x.is_finite() {
            Value::Float(x)
        } else {
            Value::Null
        }
    };
    Value::Table(vec![
        (
            "baseline_runtime_ns".into(),
            Value::Float(z.baseline_runtime_ns),
        ),
        ("pct1_ns".into(), inf(z.pct1_ns)),
        ("pct2_ns".into(), inf(z.pct2_ns)),
        ("pct5_ns".into(), inf(z.pct5_ns)),
    ])
}

fn point_to_value(p: &PointResult) -> Value {
    Value::Table(vec![
        ("delta_l_ns".into(), Value::Float(p.delta_l_ns)),
        ("runtime_ns".into(), Value::Float(p.runtime_ns)),
        ("lambda".into(), Value::Float(p.lambda)),
        ("rho".into(), Value::Float(p.rho)),
    ])
}

fn axis_point_to_value(p: &AxisPointResult) -> Value {
    let v = &p.value;
    Value::Table(vec![
        (
            "deltas".into(),
            Value::Array(p.deltas.iter().map(|&d| Value::Float(d)).collect()),
        ),
        ("runtime_ns".into(), Value::Float(v.runtime_ns)),
        ("lambda_l".into(), Value::Float(v.lambda_l)),
        ("lambda_g".into(), Value::Float(v.lambda_g)),
        ("lambda_o".into(), Value::Float(v.lambda_o)),
        ("rho_l".into(), Value::Float(v.rho_l)),
        ("rho_g".into(), Value::Float(v.rho_g)),
        ("rho_o".into(), Value::Float(v.rho_o)),
    ])
}

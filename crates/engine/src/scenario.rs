//! A [`Scenario`] is one cell of a campaign's cartesian product: one
//! workload on one topology under one parameter set, answered by one
//! backend over the campaign's latency grid. Scenarios are the engine's
//! unit of scheduling, caching and reporting.

use crate::executor::{run_jobs, ExecutorConfig};
use crate::spec::{
    axes_canonical, fnv1a, grid_canonical, AxisSpec, Backend, CampaignSpec, GridSpec, ParamsPreset,
    ParamsSpec, SweepStart, TopologySpec, WorkloadSpec,
};
use crate::value::Value;
use llamp_core::{Analyzer, Binding, GraphLp, ParamPoint, ReduceConfig, SolveStats, SweepParam};
use llamp_model::LogGPSParams;
use llamp_schedgen::{graph_of_programs, GraphConfig};
use llamp_topo::{Dragonfly, FatTree};

/// One job: the atomic unit of campaign execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Workload under analysis.
    pub workload: WorkloadSpec,
    /// Network topology (or uniform latency).
    pub topology: TopologySpec,
    /// LogGPS parameter set.
    pub params: ParamsSpec,
    /// Backend answering the questions.
    pub backend: Backend,
    /// Latency grid (added latency above the scenario's base value).
    /// `grid.deltas_ns` is empty when `axes` is non-empty.
    pub grid: GridSpec,
    /// Multi-parameter sweep axes (empty for classic latency grids).
    pub axes: Vec<AxisSpec>,
    /// Whether the graph reduction pipeline runs before lowering. Part
    /// of the base canonical key: reduced and unreduced answers agree
    /// only to numerical tolerance and must never share cache entries.
    pub reduce: bool,
    /// Where LP sweep-point solves start (campaign-wide policy). Pure
    /// performance: anchor- and crash-started points land on the same
    /// final basis, and canonical extraction makes the answer a function
    /// of (model, final basis) alone — so this is *excluded* from
    /// canonical keys, fingerprints and result files.
    pub sweep_start: SweepStart,
}

/// One sweep sample of a scenario result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointResult {
    /// Added latency `∆L` above the base value (ns).
    pub delta_l_ns: f64,
    /// Predicted runtime (ns).
    pub runtime_ns: f64,
    /// Latency sensitivity `λ_L`.
    pub lambda: f64,
    /// Latency ratio `ρ_L`.
    pub rho: f64,
}

/// The answer at one multi-parameter grid point, independent of which
/// axes layout produced it (this is the cached record: campaigns whose
/// axes merely *overlap* in absolute `(∆L, ∆G, ∆o)` offsets share these
/// regardless of their axis ordering or dimensionality).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisPointValue {
    /// Predicted runtime (ns).
    pub runtime_ns: f64,
    /// Latency sensitivity `λ_L = ∂T/∂L`.
    pub lambda_l: f64,
    /// Bandwidth sensitivity `λ_G = ∂T/∂G`.
    pub lambda_g: f64,
    /// Overhead sensitivity `λ_o = ∂T/∂o`.
    pub lambda_o: f64,
    /// Latency ratio `ρ_L = λ_L·L/T` at the point.
    pub rho_l: f64,
    /// Bandwidth ratio `ρ_G = λ_G·G/T` at the point.
    pub rho_g: f64,
    /// Overhead ratio `ρ_o = λ_o·o/T` at the point.
    pub rho_o: f64,
}

/// One sample of a multi-parameter sweep: the axis-aligned delta tuple
/// (in the scenario's axes order) plus the answer.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisPointResult {
    /// Per-axis deltas above the scenario's base values, aligned with
    /// [`Scenario::axes`].
    pub deltas: Vec<f64>,
    /// The answer at the point.
    pub value: AxisPointValue,
}

/// The 1/2/5% tolerance zones plus the baseline they are relative to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZonesResult {
    /// Runtime at the base latency (ns).
    pub baseline_runtime_ns: f64,
    /// Max added latency before >1% slowdown (ns; infinite = never within
    /// the search window).
    pub pct1_ns: f64,
    /// Max added latency before >2% slowdown (ns).
    pub pct2_ns: f64,
    /// Max added latency before >5% slowdown (ns).
    pub pct5_ns: f64,
}

/// A fully answered scenario. Exactly one of `sweep` (latency-grid
/// campaigns) and `points` (multi-parameter axes campaigns) is populated.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Tolerance zones (always latency-based, at the base values of the
    /// other parameters).
    pub zones: ZonesResult,
    /// Sweep samples, in grid order (latency-grid campaigns).
    pub sweep: Vec<PointResult>,
    /// Multi-parameter samples, in cartesian-product order with the last
    /// axis varying fastest (axes campaigns).
    pub points: Vec<AxisPointResult>,
}

impl Scenario {
    /// Canonical identity of the full job (cache key for whole-scenario
    /// lookups; sweep included).
    pub fn canonical(&self) -> String {
        if self.axes.is_empty() {
            format!("{}|{}", self.base_canonical(), grid_canonical(&self.grid))
        } else {
            format!(
                "{}|{}",
                self.base_canonical(),
                axes_canonical(&self.axes, self.grid.search_hi_ns)
            )
        }
    }

    /// The cartesian product of the axis delta lists, in deterministic
    /// order: first axis outermost, last axis varying fastest — so
    /// consecutive points form warm 1-D cross-sections along the last
    /// axis. Empty for latency-grid scenarios.
    pub fn axis_points(&self) -> Vec<Vec<f64>> {
        if self.axes.is_empty() {
            return Vec::new();
        }
        let total: usize = self.axes.iter().map(|a| a.deltas.len()).product();
        let mut out = Vec::with_capacity(total);
        let mut idx = vec![0usize; self.axes.len()];
        loop {
            out.push(
                idx.iter()
                    .zip(&self.axes)
                    .map(|(&i, a)| a.deltas[i])
                    .collect(),
            );
            // Odometer increment, last axis fastest.
            let mut k = self.axes.len();
            loop {
                if k == 0 {
                    return out;
                }
                k -= 1;
                idx[k] += 1;
                if idx[k] < self.axes[k].deltas.len() {
                    break;
                }
                idx[k] = 0;
            }
        }
    }

    /// Map an axis-aligned delta tuple onto the absolute per-parameter
    /// deltas `(∆L, ∆G, ∆o)` — the layout-independent identity of a grid
    /// point (missing axes contribute zero).
    pub fn param_deltas(&self, deltas: &[f64]) -> [f64; 3] {
        let mut out = [0.0; 3];
        for (a, &d) in self.axes.iter().zip(deltas) {
            match a.param {
                SweepParam::L => out[0] = d,
                SweepParam::G => out[1] = d,
                SweepParam::O => out[2] = d,
            }
        }
        out
    }

    /// Canonical identity *excluding* the grid: the key space for
    /// per-point cache entries, so campaigns with overlapping grids share
    /// solved points. The reduction state is part of the key (`r1`/`r0`),
    /// so reduced and unreduced points never collide — and every key
    /// differs from the pre-reduction engine's, invalidating stale
    /// caches wholesale rather than silently reusing them.
    pub fn base_canonical(&self) -> String {
        format!(
            "{}|{}|{}|{}|r{}",
            self.workload.canonical(),
            self.topology.canonical(),
            self.params.canonical(),
            self.backend.name(),
            u8::from(self.reduce)
        )
    }

    /// Content hash of [`Scenario::canonical`].
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }

    /// Effective LogGPS parameters: preset → workload `o` default →
    /// explicit overrides.
    pub fn effective_params(&self) -> LogGPSParams {
        let mut p = match self.params.preset {
            ParamsPreset::Cscs => LogGPSParams::cscs_testbed(self.workload.ranks),
            ParamsPreset::PizDaint => LogGPSParams::piz_daint(self.workload.ranks),
            ParamsPreset::Didactic => {
                let mut d = LogGPSParams::didactic();
                d.p = self.workload.ranks;
                d
            }
        };
        p.o = self
            .params
            .o_ns
            .or(self.workload.o_ns)
            .unwrap_or_else(|| self.workload.app.paper_o());
        if let Some(l) = self.params.l_ns {
            p.l = l;
        }
        if let Some(s) = self.params.s_bytes {
            p.s = s;
        }
        p
    }

    /// Build the analyzer (graph construction + binding + the reduction
    /// pipeline when `reduce` is on). This is the expensive part of a
    /// job; the campaign runner skips it entirely when every grid point
    /// is already cached.
    pub fn build_analyzer(&self) -> Result<Analyzer, String> {
        let g = llamp_obs::span("scenario.build");
        if llamp_obs::is_enabled() {
            g.field_str("workload", &self.workload.canonical());
            g.field_str("backend", self.backend.name());
        }
        let set = self
            .workload
            .app
            .programs(self.workload.ranks, self.workload.iters as usize);
        let graph = graph_of_programs(&set, &GraphConfig::paper())
            .map_err(|e| format!("graph build failed: {e}"))?;
        let params = self.effective_params();
        let placement: Vec<u32> = (0..self.workload.ranks).collect();
        let cfg = if self.reduce {
            ReduceConfig::default()
        } else {
            ReduceConfig::none()
        };
        Ok(match &self.topology {
            TopologySpec::Uniform => Analyzer::new_with_config(&graph, &params, &cfg),
            TopologySpec::FatTree {
                k,
                l_wire_ns,
                d_switch_ns,
            } => Analyzer::with_binding_config(
                &graph,
                Binding::wire(&params, &FatTree::new(*k), &placement, *d_switch_ns),
                *l_wire_ns,
                &cfg,
            ),
            TopologySpec::Dragonfly {
                groups,
                routers,
                hosts,
                l_wire_ns,
                d_switch_ns,
            } => Analyzer::with_binding_config(
                &graph,
                Binding::wire(
                    &params,
                    &Dragonfly::new(*groups, *routers, *hosts),
                    &placement,
                    *d_switch_ns,
                ),
                *l_wire_ns,
                &cfg,
            ),
        })
    }

    /// Answer the scenario's missing pieces with its backend.
    ///
    /// `need_deltas` selects which grid points to compute (the campaign
    /// runner passes only cache misses); `need_zones` likewise. Returned
    /// points follow `need_deltas` order. The third element reports the
    /// LP solver's effort counters (zeroed for the non-LP backends);
    /// being wall-clock-free but cache-dependent, they belong in
    /// [`crate::RunSummary`], never in the deterministic results file.
    pub fn compute(
        &self,
        analyzer: &Analyzer,
        need_deltas: &[f64],
        need_zones: bool,
    ) -> Result<(Vec<PointResult>, Option<ZonesResult>, SolveStats), String> {
        self.compute_with(analyzer, need_deltas, need_zones, 1)
    }

    /// [`Scenario::compute`] with an explicit intra-scenario thread
    /// budget. When the sweep-start policy resolves to crash-per-point
    /// (every point independent by construction), `point_threads > 1`
    /// shards the grid across the work-stealing executor with one solver
    /// clone per chunk; results merge in input order, so the answer is
    /// byte-identical at any thread count.
    pub fn compute_with(
        &self,
        analyzer: &Analyzer,
        need_deltas: &[f64],
        need_zones: bool,
        point_threads: usize,
    ) -> Result<(Vec<PointResult>, Option<ZonesResult>, SolveStats), String> {
        let base = analyzer.base_l();
        let hi = base + self.grid.search_hi_ns;
        match self.backend {
            Backend::Parametric => {
                let points = analyzer
                    .sweep(need_deltas)
                    .into_iter()
                    .map(|p| PointResult {
                        delta_l_ns: p.delta_l,
                        runtime_ns: p.runtime,
                        lambda: p.lambda,
                        rho: p.rho,
                    })
                    .collect();
                let zones = need_zones.then(|| {
                    let z = analyzer.tolerance_zones(hi);
                    ZonesResult {
                        baseline_runtime_ns: z.baseline_runtime,
                        pct1_ns: z.pct1,
                        pct2_ns: z.pct2,
                        pct5_ns: z.pct5,
                    }
                });
                Ok((points, zones, SolveStats::default()))
            }
            Backend::Eval => {
                let points = need_deltas
                    .iter()
                    .map(|&d| {
                        let e = llamp_obs::time("eval.point_ns", || analyzer.evaluate(base + d));
                        PointResult {
                            delta_l_ns: d,
                            runtime_ns: e.runtime,
                            lambda: e.lambda,
                            rho: e.rho(base + d),
                        }
                    })
                    .collect();
                let zones = need_zones.then(|| eval_zones(analyzer, base, hi));
                Ok((points, zones, SolveStats::default()))
            }
            Backend::Lp(solver) => {
                let mut lp = analyzer
                    .lp_named(solver.solver_name())
                    .expect("LpSolver names map onto llamp-lp backends");
                // One cold anchor solve at the base latency; every grid
                // point and tolerance flip warm-starts from this basis.
                // Seeding from a shared anchor — rather than chaining each
                // warm solve off the previous one — keeps every answer a
                // pure function of (scenario, query): chained trajectories
                // would depend on *which* points were cache misses, and
                // could settle on different degenerate-equivalent bases
                // per factorisation. This is what makes LP results
                // byte-identical across lp-* backends and cache states.
                let anchor = lp
                    .predict(base)
                    .map_err(|e| format!("LP baseline solve failed: {e:?}"))?;
                let anchor_basis = lp.warm_basis();
                let seed = |lp: &mut GraphLp| {
                    if let Some(b) = &anchor_basis {
                        lp.seed_backend(b);
                    }
                };
                // Resolve the sweep-start policy against this scenario's
                // model size: crash-per-point above the row threshold
                // (where far points re-seeded from the anchor replay
                // thousands of pivots), anchor-seeding below. Either way
                // each point lands on the same final basis, so the bytes
                // never depend on the policy.
                let start = self.sweep_start.resolve(lp.model().num_constraints());
                let mut extra_stats = SolveStats::default();
                let mut points = Vec::with_capacity(need_deltas.len());
                if start == SweepStart::Crash {
                    let threads = point_threads.clamp(1, need_deltas.len().max(1));
                    if threads <= 1 {
                        for &d in need_deltas {
                            // Reset: `predict` arms the per-point
                            // longest-path crash when no warm state is
                            // retained.
                            lp.reset_backend();
                            let p = llamp_obs::time("lp.point_ns", || lp.predict(base + d))
                                .map_err(|e| format!("LP solve failed at ∆L={d}: {e:?}"))?;
                            points.push(PointResult {
                                delta_l_ns: d,
                                runtime_ns: p.runtime,
                                lambda: p.lambda,
                                rho: p.rho(base + d),
                            });
                        }
                    } else {
                        // Crash-started points are independent: shard the
                        // grid into contiguous chunks, one solver clone
                        // per chunk, and merge in input order — the
                        // byte-identity contract holds at any thread
                        // count because each point's answer is a pure
                        // function of (scenario, point).
                        let chunk_len = need_deltas.len().div_ceil(threads);
                        let chunks: Vec<Vec<f64>> =
                            need_deltas.chunks(chunk_len).map(<[f64]>::to_vec).collect();
                        let cfg = ExecutorConfig {
                            threads,
                            job_timeout: None,
                            max_retries: 0,
                            retry_backoff_ms: 0,
                        };
                        let solver_name = solver.solver_name();
                        let outs = run_jobs(&cfg, chunks, |chunk: &Vec<f64>| {
                            let mut lp = analyzer
                                .lp_named(solver_name)
                                .expect("LpSolver names map onto llamp-lp backends");
                            let mut pts = Vec::with_capacity(chunk.len());
                            for &d in chunk {
                                lp.reset_backend();
                                let p = llamp_obs::time("lp.point_ns", || lp.predict(base + d))
                                    .map_err(|e| format!("LP solve failed at ∆L={d}: {e:?}"))?;
                                pts.push(PointResult {
                                    delta_l_ns: d,
                                    runtime_ns: p.runtime,
                                    lambda: p.lambda,
                                    rho: p.rho(base + d),
                                });
                            }
                            Ok::<_, String>((pts, lp.solver_stats()))
                        });
                        for status in outs {
                            let (pts, st) = status
                                .ok()
                                .ok_or_else(|| "sweep point worker failed".to_string())??;
                            points.extend(pts);
                            extra_stats.merge(&st);
                        }
                    }
                } else {
                    for &d in need_deltas {
                        seed(&mut lp);
                        let p = llamp_obs::time("lp.point_ns", || lp.predict(base + d))
                            .map_err(|e| format!("LP solve failed at ∆L={d}: {e:?}"))?;
                        points.push(PointResult {
                            delta_l_ns: d,
                            runtime_ns: p.runtime,
                            lambda: p.lambda,
                            rho: p.rho(base + d),
                        });
                    }
                }
                let zones = if need_zones {
                    // Zones stay anchor-seeded under every sweep-start
                    // policy: the tolerance flip changes the objective,
                    // which the crash plan does not model, and the zones
                    // are pure functions of the anchor basis — so policy
                    // cannot change their bytes by construction.
                    let t0 = anchor.runtime;
                    let mut zone = |pct: f64| -> Result<f64, String> {
                        let cap = t0 * (1.0 + pct / 100.0);
                        seed(&mut lp);
                        let l = llamp_obs::time("lp.zone_ns", || lp.tolerance(base, cap))
                            .map_err(|e| format!("LP tolerance solve failed: {e:?}"))?;
                        Ok(if l - base >= self.grid.search_hi_ns {
                            f64::INFINITY
                        } else {
                            l - base
                        })
                    };
                    Some(ZonesResult {
                        baseline_runtime_ns: t0,
                        pct1_ns: zone(1.0)?,
                        pct2_ns: zone(2.0)?,
                        pct5_ns: zone(5.0)?,
                    })
                } else {
                    None
                };
                let mut stats = lp.solver_stats();
                stats.merge(&extra_stats);
                Ok((points, zones, stats))
            }
        }
    }

    /// Answer an axes scenario's missing grid points (and zones) with its
    /// backend. `need_points` holds axis-aligned delta tuples (the
    /// campaign runner passes only cache misses); returned values follow
    /// its order.
    ///
    /// The LP path keeps the anchor-seeding discipline of
    /// [`Scenario::compute`]: one cold solve at the scenario's base
    /// `(L, G, o)` point, then every grid point re-seeds from that anchor
    /// basis and re-solves with moved bounds — consecutive points of a
    /// 1-D cross-section differ in a single lower bound, which the
    /// parametric backend's directional shortcut answers with zero
    /// pivots. Every answer stays a pure function of (scenario, point),
    /// so results are byte-identical across `lp-*` backends and cache
    /// states.
    pub fn compute_axes(
        &self,
        analyzer: &Analyzer,
        need_points: &[Vec<f64>],
        need_zones: bool,
    ) -> Result<(Vec<AxisPointValue>, Option<ZonesResult>, SolveStats), String> {
        let base = analyzer.base_point();
        let hi = base.l + self.grid.search_hi_ns;
        let at = |deltas: &[f64]| -> ParamPoint {
            let [dl, dg, d_o] = self.param_deltas(deltas);
            ParamPoint {
                l: base.l + dl,
                g: base.g + dg,
                o: base.o + d_o,
            }
        };
        let value_of = |runtime: f64, lam: [f64; 3], p: ParamPoint| -> AxisPointValue {
            let rho = |lambda: f64, v: f64| {
                if runtime <= 0.0 {
                    0.0
                } else {
                    lambda * v / runtime
                }
            };
            AxisPointValue {
                runtime_ns: runtime,
                lambda_l: lam[0],
                lambda_g: lam[1],
                lambda_o: lam[2],
                rho_l: rho(lam[0], p.l),
                rho_g: rho(lam[1], p.g),
                rho_o: rho(lam[2], p.o),
            }
        };
        match self.backend {
            Backend::Parametric | Backend::Eval => {
                let points = need_points
                    .iter()
                    .map(|deltas| {
                        let p = at(deltas);
                        let e = llamp_obs::time("eval.point_ns", || analyzer.evaluate_multi(p));
                        value_of(e.runtime, [e.lambda_l, e.lambda_g, e.lambda_o], p)
                    })
                    .collect();
                let zones = need_zones.then(|| match self.backend {
                    // The envelope backend answers zones exactly from the
                    // T(L) profile (G, o at base); eval bisects.
                    Backend::Parametric => {
                        let z = analyzer.tolerance_zones(hi);
                        ZonesResult {
                            baseline_runtime_ns: z.baseline_runtime,
                            pct1_ns: z.pct1,
                            pct2_ns: z.pct2,
                            pct5_ns: z.pct5,
                        }
                    }
                    _ => eval_zones(analyzer, base.l, hi),
                });
                Ok((points, zones, SolveStats::default()))
            }
            Backend::Lp(solver) => {
                let mut lp = analyzer
                    .multi_lp_named(solver.solver_name())
                    .expect("LpSolver names map onto llamp-lp backends");
                // One cold anchor at the base point; every query re-seeds
                // from its basis (see the `compute` comment for why
                // anchor-seeding, not chaining, is what keeps results
                // byte-identical across backends and cache states).
                let anchor = lp
                    .predict(base)
                    .map_err(|e| format!("LP baseline solve failed: {e:?}"))?;
                let anchor_basis = lp.warm_basis();
                let seed = |lp: &mut llamp_core::GraphMultiLp| {
                    if let Some(b) = &anchor_basis {
                        lp.seed_backend(b);
                    }
                };
                // Same sweep-start policy as `compute`: a crash-resolved
                // policy arms the per-point longest-path crash (a reset
                // backend lets `predict` seed it lazily), instead of
                // re-seeding every point from the anchor.
                let start = self.sweep_start.resolve(lp.model().num_constraints());
                let mut points = Vec::with_capacity(need_points.len());
                for deltas in need_points {
                    let p = at(deltas);
                    if start == SweepStart::Crash {
                        lp.reset_backend();
                    } else {
                        seed(&mut lp);
                    }
                    let pred = llamp_obs::time("lp.point_ns", || lp.predict(p))
                        .map_err(|e| format!("LP solve failed at {deltas:?}: {e:?}"))?;
                    points.push(value_of(
                        pred.runtime,
                        [pred.lambda_l, pred.lambda_g, pred.lambda_o],
                        p,
                    ));
                }
                let zones = if need_zones {
                    let t0 = anchor.runtime;
                    let mut zone = |pct: f64| -> Result<f64, String> {
                        let cap = t0 * (1.0 + pct / 100.0);
                        seed(&mut lp);
                        let l = llamp_obs::time("lp.zone_ns", || {
                            lp.tolerance(SweepParam::L, base, cap)
                        })
                        .map_err(|e| format!("LP tolerance solve failed: {e:?}"))?;
                        Ok(if l - base.l >= self.grid.search_hi_ns {
                            f64::INFINITY
                        } else {
                            l - base.l
                        })
                    };
                    Some(ZonesResult {
                        baseline_runtime_ns: t0,
                        pct1_ns: zone(1.0)?,
                        pct2_ns: zone(2.0)?,
                        pct5_ns: zone(5.0)?,
                    })
                } else {
                    None
                };
                Ok((points, zones, lp.solver_stats()))
            }
        }
    }

    /// Re-encode for result files (canonical order; round-trips through
    /// the spec decoders).
    pub fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("workload".into(), Value::Str(self.workload.canonical())),
            ("topology".into(), Value::Str(self.topology.canonical())),
            ("params".into(), Value::Str(self.params.canonical())),
            ("backend".into(), Value::Str(self.backend.name().into())),
            ("reduce".into(), Value::Bool(self.reduce)),
        ];
        if !self.axes.is_empty() {
            pairs.push((
                "axes".into(),
                Value::Array(
                    self.axes
                        .iter()
                        .map(|a| Value::Str(a.param.name().into()))
                        .collect(),
                ),
            ));
        }
        Value::Table(pairs)
    }
}

/// Tolerance zones via monotone bisection on direct evaluation — the
/// backend-honest way to answer zones without an envelope.
fn eval_zones(analyzer: &Analyzer, base: f64, hi: f64) -> ZonesResult {
    let t0 = analyzer.evaluate(base).runtime;
    let zone = |pct: f64| -> f64 {
        let cap = t0 * (1.0 + pct / 100.0);
        if analyzer.evaluate(hi).runtime <= cap {
            return f64::INFINITY;
        }
        if analyzer.evaluate(base).runtime > cap {
            return 0.0;
        }
        let (mut lo, mut up) = (base, hi);
        // 64 bisection steps: below f64 resolution on any realistic span.
        for _ in 0..64 {
            let mid = 0.5 * (lo + up);
            if analyzer.evaluate(mid).runtime <= cap {
                lo = mid;
            } else {
                up = mid;
            }
        }
        lo - base
    };
    ZonesResult {
        baseline_runtime_ns: t0,
        pct1_ns: zone(1.0),
        pct2_ns: zone(2.0),
        pct5_ns: zone(5.0),
    }
}

/// Expand a canonical spec into its scenario set, sorted by canonical key
/// and deduplicated — the deterministic job list of a campaign.
pub fn expand(spec: &CampaignSpec) -> Vec<Scenario> {
    let mut out = Vec::with_capacity(
        spec.workloads.len() * spec.topologies.len() * spec.params.len() * spec.backends.len(),
    );
    for w in &spec.workloads {
        for t in &spec.topologies {
            for p in &spec.params {
                for b in &spec.backends {
                    out.push(Scenario {
                        workload: w.clone(),
                        topology: t.clone(),
                        params: p.clone(),
                        backend: *b,
                        grid: spec.grid.clone(),
                        axes: spec.axes.clone(),
                        reduce: spec.reduce,
                        sweep_start: spec.sweep_start,
                    });
                }
            }
        }
    }
    out.sort_by_key(Scenario::canonical);
    out.dedup_by(|a, b| a.canonical() == b.canonical());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    fn small_spec() -> CampaignSpec {
        CampaignSpec::parse(
            r#"
name = "unit"
backends = ["parametric", "eval", "lp"]
[grid]
deltas_ns = [0.0, 50000.0]
search_hi_ns = 500000.0
[[workloads]]
app = "cloverleaf"
ranks = 4
iters = 1
"#,
            "x.toml",
        )
        .unwrap()
    }

    #[test]
    fn expansion_is_sorted_and_complete() {
        let spec = small_spec();
        let jobs = expand(&spec);
        assert_eq!(jobs.len(), 3);
        let keys: Vec<String> = jobs.iter().map(Scenario::canonical).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn backends_agree_on_sweep_points() {
        let spec = small_spec();
        let jobs = expand(&spec);
        let mut results = Vec::new();
        for job in &jobs {
            let a = job.build_analyzer().unwrap();
            let (points, zones, _) = job.compute(&a, &job.grid.deltas_ns, true).unwrap();
            results.push((job.backend, points, zones.unwrap()));
        }
        // All three backends answer the same questions; runtimes must agree
        // to numerical tolerance at every grid point.
        for w in results.windows(2) {
            let (_, pa, za) = &w[0];
            let (_, pb, zb) = &w[1];
            for (x, y) in pa.iter().zip(pb) {
                assert!(
                    (x.runtime_ns - y.runtime_ns).abs() <= 1e-6 * (1.0 + x.runtime_ns),
                    "runtime mismatch: {x:?} vs {y:?}"
                );
            }
            let tol = 1e-3 * (1.0 + za.baseline_runtime_ns);
            assert!((za.baseline_runtime_ns - zb.baseline_runtime_ns).abs() <= tol);
        }
    }

    #[test]
    fn fingerprint_distinguishes_backends_but_not_grid_for_base() {
        let spec = small_spec();
        let jobs = expand(&spec);
        assert_ne!(jobs[0].fingerprint(), jobs[1].fingerprint());
        let mut other = jobs[0].clone();
        other.grid.deltas_ns.push(123.0);
        assert_eq!(jobs[0].base_canonical(), other.base_canonical());
        assert_ne!(jobs[0].canonical(), other.canonical());
    }
}

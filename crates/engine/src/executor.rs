//! Work-stealing parallel executor.
//!
//! Jobs are distributed round-robin across per-worker deques; a worker
//! pops from the front of its own deque and, when empty, steals from the
//! back of the longest sibling deque — the classic split that keeps local
//! work cache-warm while idle workers drain stragglers. Built on std
//! threads and locks only (`std::thread::scope`, `Mutex`, channels): no
//! external runtime.
//!
//! Each job runs under `catch_unwind`, so one panicking scenario is
//! reported as [`JobStatus::Panicked`] instead of tearing down the
//! campaign, and its wall time is checked against an optional per-job
//! timeout: a job that exceeds it is reported as [`JobStatus::TimedOut`]
//! and its (late) result discarded. Cooperative timeout is the honest
//! contract without killing threads; a genuinely wedged job holds its
//! worker but cannot block the other workers from finishing the queue.
//!
//! Results are returned **in input order**, so executor output is
//! deterministic regardless of thread count or steal interleaving.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Executor configuration.
#[derive(Debug, Clone, Default)]
pub struct ExecutorConfig {
    /// Worker count; 0 = one per available core.
    pub threads: usize,
    /// Per-job wall-clock budget; `None` = unlimited.
    pub job_timeout: Option<Duration>,
}

impl ExecutorConfig {
    /// Resolved worker count (≥ 1).
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Terminal state of one job.
#[derive(Debug)]
pub enum JobStatus<R> {
    /// Completed within budget.
    Done(R),
    /// The job panicked; payload is the rendered panic message.
    Panicked(String),
    /// The job finished after its deadline; the result was discarded.
    TimedOut {
        /// How long the job actually ran.
        elapsed: Duration,
    },
}

impl<R> JobStatus<R> {
    /// The result, if the job completed in time.
    pub fn ok(self) -> Option<R> {
        match self {
            JobStatus::Done(r) => Some(r),
            _ => None,
        }
    }
}

/// Run `f` over `jobs` on a work-stealing pool, returning per-job
/// statuses in input order.
pub fn run_jobs<J, R, F>(config: &ExecutorConfig, jobs: Vec<J>, f: F) -> Vec<JobStatus<R>>
where
    J: Send,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let run_span = llamp_obs::span("exec.run");
    let n_jobs = jobs.len();
    let threads = config.effective_threads().min(n_jobs.max(1));
    if llamp_obs::is_enabled() {
        run_span.field_u64("jobs", n_jobs as u64);
        run_span.field_u64("workers", threads as u64);
    }
    // Per-worker deques, seeded round-robin.
    let deques: Vec<Mutex<VecDeque<(usize, J)>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        deques[i % threads]
            .lock()
            .expect("deque lock")
            .push_back((i, job));
    }

    let results: Mutex<Vec<Option<JobStatus<R>>>> = Mutex::new((0..n_jobs).map(|_| None).collect());
    let f = &f;
    let deques = &deques;
    let results_ref = &results;
    let timeout = config.job_timeout;

    std::thread::scope(|scope| {
        for me in 0..threads {
            scope.spawn(move || {
                let mut busy_ns = 0u64;
                loop {
                    // Own deque first (front: FIFO locally for cache
                    // warmth of freshly seeded batches).
                    let next = deques[me].lock().expect("deque lock").pop_front();
                    let (idx, job, was_stolen) = match next {
                        Some((idx, j)) => (idx, j, false),
                        None => {
                            // Steal from the back of the fullest sibling.
                            let victim = (0..threads)
                                .filter(|&v| v != me)
                                .max_by_key(|&v| deques[v].lock().expect("deque lock").len());
                            let stolen = victim
                                .and_then(|v| deques[v].lock().expect("deque lock").pop_back());
                            match stolen {
                                Some((idx, j)) => (idx, j, true),
                                // All deques empty: no job creates new
                                // jobs, so the queue is drained for good.
                                None => break,
                            }
                        }
                    };
                    // `exec.job` is the root span on this worker thread,
                    // so the thread's buffer flushes at every job end.
                    let job_span = llamp_obs::span("exec.job");
                    let started = Instant::now();
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(&job)));
                    let elapsed = started.elapsed();
                    let status = match outcome {
                        Err(panic) => JobStatus::Panicked(panic_message(panic)),
                        Ok(_) if timeout.is_some_and(|t| elapsed > t) => {
                            JobStatus::TimedOut { elapsed }
                        }
                        Ok(r) => JobStatus::Done(r),
                    };
                    if llamp_obs::is_enabled() {
                        job_span.field_u64("idx", idx as u64);
                        job_span.field_u64("stolen", u64::from(was_stolen));
                        busy_ns += elapsed.as_nanos() as u64;
                        llamp_obs::counter("exec.jobs", 1);
                        if was_stolen {
                            llamp_obs::counter("exec.steals", 1);
                        }
                        match &status {
                            JobStatus::Panicked(_) => llamp_obs::counter("exec.panics", 1),
                            JobStatus::TimedOut { .. } => llamp_obs::counter("exec.timeouts", 1),
                            JobStatus::Done(_) => {}
                        }
                        llamp_obs::observe_ns("exec.job_ns", elapsed.as_nanos() as u64);
                    }
                    drop(job_span);
                    results_ref.lock().expect("results lock")[idx] = Some(status);
                }
                if llamp_obs::is_enabled() {
                    llamp_obs::counter(&format!("exec.w{me}.busy_ns"), busy_ns);
                }
            });
        }
    });

    results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|s| s.expect("every job ran"))
        .collect()
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_jobs_run_in_input_order() {
        let cfg = ExecutorConfig {
            threads: 4,
            job_timeout: None,
        };
        let jobs: Vec<u64> = (0..100).collect();
        let out = run_jobs(&cfg, jobs, |&j| j * 2);
        assert_eq!(out.len(), 100);
        for (i, s) in out.into_iter().enumerate() {
            assert_eq!(s.ok(), Some(i as u64 * 2));
        }
    }

    #[test]
    fn panics_are_isolated() {
        let cfg = ExecutorConfig {
            threads: 2,
            job_timeout: None,
        };
        let out = run_jobs(&cfg, vec![1, 2, 3], |&j| {
            if j == 2 {
                panic!("job {j} exploded");
            }
            j
        });
        assert!(matches!(out[0], JobStatus::Done(1)));
        match &out[1] {
            JobStatus::Panicked(msg) => assert!(msg.contains("exploded")),
            other => panic!("expected panic status, got {other:?}"),
        }
        assert!(matches!(out[2], JobStatus::Done(3)));
    }

    #[test]
    fn slow_jobs_time_out() {
        let cfg = ExecutorConfig {
            threads: 2,
            job_timeout: Some(Duration::from_millis(10)),
        };
        let out = run_jobs(&cfg, vec![0u64, 50], |&ms| {
            std::thread::sleep(Duration::from_millis(ms));
            ms
        });
        assert!(matches!(out[0], JobStatus::Done(0)));
        assert!(matches!(out[1], JobStatus::TimedOut { .. }));
    }

    #[test]
    fn work_stealing_drains_imbalanced_queues() {
        // One worker's seeded jobs are heavy; others must steal them.
        let cfg = ExecutorConfig {
            threads: 4,
            job_timeout: None,
        };
        let counter = AtomicUsize::new(0);
        let jobs: Vec<usize> = (0..64).collect();
        let out = run_jobs(&cfg, jobs, |_| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(out.len(), 64);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let run = |threads| {
            let cfg = ExecutorConfig {
                threads,
                job_timeout: None,
            };
            run_jobs(&cfg, (0..37u64).collect(), |&j| j * j)
                .into_iter()
                .map(|s| s.ok().unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }
}

//! Work-stealing parallel executor.
//!
//! Jobs are distributed round-robin across per-worker deques; a worker
//! pops from the front of its own deque and, when empty, steals from the
//! back of the longest sibling deque — the classic split that keeps local
//! work cache-warm while idle workers drain stragglers. Built on std
//! threads and locks only (`std::thread::scope`, `Mutex`, channels): no
//! external runtime.
//!
//! Each job runs under `catch_unwind`, so one panicking scenario is
//! reported as [`JobStatus::Panicked`] instead of tearing down the
//! campaign, and its wall time is checked against an optional per-job
//! timeout: a job that exceeds it is reported as [`JobStatus::TimedOut`]
//! and its (late) result discarded. Cooperative timeout is the honest
//! contract without killing threads; a genuinely wedged job holds its
//! worker but cannot block the other workers from finishing the queue.
//!
//! Results are returned **in input order**, so executor output is
//! deterministic regardless of thread count or steal interleaving.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Worker count; 0 = one per available core.
    pub threads: usize,
    /// Per-job wall-clock budget; `None` = unlimited.
    pub job_timeout: Option<Duration>,
    /// Extra attempts for a job that panicked or timed out. The first
    /// run is not a retry: `max_retries = 1` allows up to two runs.
    /// Deterministic jobs that fail deterministically simply fail
    /// `1 + max_retries` times; the retry exists for faults that do not
    /// reproduce (injected chaos, load-dependent timeouts).
    pub max_retries: u32,
    /// Deterministic backoff before retry `k` (1-based): sleeps
    /// `k * retry_backoff_ms`. 0 = retry immediately.
    pub retry_backoff_ms: u64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            job_timeout: None,
            max_retries: 1,
            retry_backoff_ms: 0,
        }
    }
}

impl ExecutorConfig {
    /// Resolved worker count (≥ 1).
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Terminal state of one job.
#[derive(Debug)]
pub enum JobStatus<R> {
    /// Completed within budget.
    Done(R),
    /// The job panicked; payload is the rendered panic message.
    Panicked(String),
    /// The job finished after its deadline; the result was discarded.
    TimedOut {
        /// How long the job actually ran.
        elapsed: Duration,
    },
}

impl<R> JobStatus<R> {
    /// The result, if the job completed in time.
    pub fn ok(self) -> Option<R> {
        match self {
            JobStatus::Done(r) => Some(r),
            _ => None,
        }
    }
}

/// Run `f` over `jobs` on a work-stealing pool, returning per-job
/// statuses in input order.
pub fn run_jobs<J, R, F>(config: &ExecutorConfig, jobs: Vec<J>, f: F) -> Vec<JobStatus<R>>
where
    J: Send,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let run_span = llamp_obs::span("exec.run");
    let n_jobs = jobs.len();
    let threads = config.effective_threads().min(n_jobs.max(1));
    if llamp_obs::is_enabled() {
        run_span.field_u64("jobs", n_jobs as u64);
        run_span.field_u64("workers", threads as u64);
    }
    // Per-worker deques, seeded round-robin. Entries carry the attempt
    // number so retries stay bounded.
    let deques: Vec<Mutex<VecDeque<(usize, u32, J)>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        deques[i % threads]
            .lock()
            .expect("deque lock")
            .push_back((i, 0, job));
    }

    let results: Mutex<Vec<Option<JobStatus<R>>>> = Mutex::new((0..n_jobs).map(|_| None).collect());
    let f = &f;
    let deques = &deques;
    let results_ref = &results;
    let timeout = config.job_timeout;
    let max_retries = config.max_retries;
    let retry_backoff_ms = config.retry_backoff_ms;

    std::thread::scope(|scope| {
        for me in 0..threads {
            scope.spawn(move || {
                let mut busy_ns = 0u64;
                loop {
                    // Own deque first (front: FIFO locally for cache
                    // warmth of freshly seeded batches).
                    let next = deques[me].lock().expect("deque lock").pop_front();
                    let (idx, attempt, job, was_stolen) = match next {
                        Some((idx, a, j)) => (idx, a, j, false),
                        None => {
                            // Steal from the back of the fullest sibling.
                            let victim = (0..threads)
                                .filter(|&v| v != me)
                                .max_by_key(|&v| deques[v].lock().expect("deque lock").len());
                            let stolen = victim
                                .and_then(|v| deques[v].lock().expect("deque lock").pop_back());
                            match stolen {
                                Some((idx, a, j)) => (idx, a, j, true),
                                // All deques empty for this worker: a
                                // retry can only be re-enqueued by the
                                // worker that will itself keep looping
                                // (it pushes to its own deque), so an
                                // exit here never strands a job.
                                None => break,
                            }
                        }
                    };
                    // `exec.job` is the root span on this worker thread,
                    // so the thread's buffer flushes at every job end.
                    let job_span = llamp_obs::span("exec.job");
                    let started = Instant::now();
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        if llamp_faults::should_inject("exec.job.panic") {
                            panic!("injected fault: exec.job.panic");
                        }
                        f(&job)
                    }));
                    let elapsed = started.elapsed();
                    let status = match outcome {
                        Err(panic) => JobStatus::Panicked(panic_message(panic)),
                        Ok(_) if timeout.is_some_and(|t| elapsed > t) => {
                            JobStatus::TimedOut { elapsed }
                        }
                        Ok(r) => JobStatus::Done(r),
                    };
                    if llamp_obs::is_enabled() {
                        job_span.field_u64("idx", idx as u64);
                        job_span.field_u64("stolen", u64::from(was_stolen));
                        busy_ns += elapsed.as_nanos() as u64;
                        llamp_obs::counter("exec.jobs", 1);
                        if was_stolen {
                            llamp_obs::counter("exec.steals", 1);
                        }
                        match &status {
                            JobStatus::Panicked(_) => llamp_obs::counter("exec.panics", 1),
                            JobStatus::TimedOut { .. } => llamp_obs::counter("exec.timeouts", 1),
                            JobStatus::Done(_) => {}
                        }
                        llamp_obs::observe_ns("exec.job_ns", elapsed.as_nanos() as u64);
                    }
                    drop(job_span);
                    // Bounded retry: a failed attempt below the retry
                    // budget goes back on this worker's own deque (which
                    // this loop will drain), after a deterministic
                    // linear backoff.
                    if !matches!(status, JobStatus::Done(_)) && attempt < max_retries {
                        llamp_obs::counter("exec.retry", 1);
                        if retry_backoff_ms > 0 {
                            std::thread::sleep(Duration::from_millis(
                                u64::from(attempt + 1) * retry_backoff_ms,
                            ));
                        }
                        deques[me]
                            .lock()
                            .expect("deque lock")
                            .push_back((idx, attempt + 1, job));
                        continue;
                    }
                    results_ref.lock().expect("results lock")[idx] = Some(status);
                }
                if llamp_obs::is_enabled() {
                    llamp_obs::counter(&format!("exec.w{me}.busy_ns"), busy_ns);
                }
            });
        }
    });

    results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|s| s.expect("every job ran"))
        .collect()
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_jobs_run_in_input_order() {
        let cfg = ExecutorConfig {
            threads: 4,
            job_timeout: None,
            ..Default::default()
        };
        let jobs: Vec<u64> = (0..100).collect();
        let out = run_jobs(&cfg, jobs, |&j| j * 2);
        assert_eq!(out.len(), 100);
        for (i, s) in out.into_iter().enumerate() {
            assert_eq!(s.ok(), Some(i as u64 * 2));
        }
    }

    #[test]
    fn panics_are_isolated() {
        let cfg = ExecutorConfig {
            threads: 2,
            job_timeout: None,
            ..Default::default()
        };
        let out = run_jobs(&cfg, vec![1, 2, 3], |&j| {
            if j == 2 {
                panic!("job {j} exploded");
            }
            j
        });
        assert!(matches!(out[0], JobStatus::Done(1)));
        match &out[1] {
            JobStatus::Panicked(msg) => assert!(msg.contains("exploded")),
            other => panic!("expected panic status, got {other:?}"),
        }
        assert!(matches!(out[2], JobStatus::Done(3)));
    }

    #[test]
    fn slow_jobs_time_out() {
        let cfg = ExecutorConfig {
            threads: 2,
            job_timeout: Some(Duration::from_millis(10)),
            ..Default::default()
        };
        let out = run_jobs(&cfg, vec![0u64, 50], |&ms| {
            std::thread::sleep(Duration::from_millis(ms));
            ms
        });
        assert!(matches!(out[0], JobStatus::Done(0)));
        assert!(matches!(out[1], JobStatus::TimedOut { .. }));
    }

    #[test]
    fn work_stealing_drains_imbalanced_queues() {
        // One worker's seeded jobs are heavy; others must steal them.
        let cfg = ExecutorConfig {
            threads: 4,
            job_timeout: None,
            ..Default::default()
        };
        let counter = AtomicUsize::new(0);
        let jobs: Vec<usize> = (0..64).collect();
        let out = run_jobs(&cfg, jobs, |_| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(out.len(), 64);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn transient_panic_recovers_on_retry() {
        // Job 1 panics on its first attempt only; with the default retry
        // budget of one, the re-run succeeds and the campaign sees a
        // clean `Done` — the failure is fully absorbed.
        let cfg = ExecutorConfig {
            threads: 2,
            job_timeout: None,
            ..Default::default()
        };
        let first = AtomicUsize::new(0);
        let out = run_jobs(&cfg, vec![0usize, 1, 2], |&j| {
            if j == 1 && first.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            j * 10
        });
        assert!(matches!(out[0], JobStatus::Done(0)));
        assert!(matches!(out[1], JobStatus::Done(10)));
        assert!(matches!(out[2], JobStatus::Done(20)));
    }

    #[test]
    fn persistent_panic_exhausts_bounded_retries() {
        // A deterministic panic must fail exactly `1 + max_retries`
        // times, then surface as `Panicked` — bounded, not infinite.
        let cfg = ExecutorConfig {
            threads: 1,
            job_timeout: None,
            max_retries: 2,
            retry_backoff_ms: 0,
        };
        let attempts = AtomicUsize::new(0);
        let out: Vec<JobStatus<()>> = run_jobs(&cfg, vec![()], |_| {
            attempts.fetch_add(1, Ordering::SeqCst);
            panic!("always");
        });
        assert!(matches!(&out[0], JobStatus::Panicked(m) if m.contains("always")));
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn zero_retries_preserves_fail_fast() {
        let cfg = ExecutorConfig {
            threads: 1,
            job_timeout: None,
            max_retries: 0,
            retry_backoff_ms: 0,
        };
        let attempts = AtomicUsize::new(0);
        let out: Vec<JobStatus<()>> = run_jobs(&cfg, vec![()], |_| {
            attempts.fetch_add(1, Ordering::SeqCst);
            panic!("once");
        });
        assert!(matches!(&out[0], JobStatus::Panicked(_)));
        assert_eq!(attempts.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let run = |threads| {
            let cfg = ExecutorConfig {
                threads,
                job_timeout: None,
                ..Default::default()
            };
            run_jobs(&cfg, (0..37u64).collect(), |&j| j * j)
                .into_iter()
                .map(|s| s.ok().unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }
}

//! The metrics sidecar: one encoding and **one rendering path** for run
//! telemetry.
//!
//! `llamp run --metrics` builds a [`Value`] document with
//! [`metrics_value`] (run statistics + aggregate solver/reduction
//! counters + the obs span/counter/histogram summary), renders it with
//! [`render_metrics`], and optionally writes it to a sidecar file
//! (`--metrics-out`). `llamp report --metrics FILE` parses that sidecar
//! and calls the *same* [`render_metrics`] — there is no second
//! formatter to drift out of sync.
//!
//! The sidecar exists because telemetry is cache-state and wall-clock
//! dependent: embedding it in the results file would break the
//! byte-identity contract (results JSON is a pure function of the
//! canonical spec). Keeping it in a separate document keeps both
//! properties: deterministic results, inspectable telemetry.

use crate::campaign::RunSummary;
use crate::value::Value;
use llamp_core::{ReductionStats, SolveStats};
use llamp_obs::{HistogramSummary, SpanAgg, Summary};

/// Encode a run's full telemetry as one JSON-able document.
pub fn metrics_value(summary: &RunSummary, obs: &Summary) -> Value {
    let int = |v: u64| Value::Int(v as i64);
    let mut pairs = vec![
        ("version".into(), Value::Int(1)),
        (
            "run".into(),
            Value::Table(vec![
                ("jobs_requested".into(), int(summary.jobs_requested as u64)),
                ("jobs_unique".into(), int(summary.jobs_unique as u64)),
                (
                    "full_cache_hits".into(),
                    int(summary.full_cache_hits as u64),
                ),
                ("jobs_executed".into(), int(summary.jobs_executed as u64)),
                ("cache_hits".into(), int(summary.cache_hits)),
                ("cache_misses".into(), int(summary.cache_misses)),
                ("threads".into(), int(summary.threads as u64)),
                (
                    "sweep_start".into(),
                    Value::Str(summary.sweep_start.clone()),
                ),
                (
                    "elapsed_s".into(),
                    Value::Float(summary.elapsed.as_secs_f64()),
                ),
            ]),
        ),
    ];
    if summary.solver.iterations > 0 {
        pairs.push(("solver".into(), solver_stats_value(&summary.solver)));
    }
    if !summary.reduction.is_empty() {
        pairs.push((
            "reduction".into(),
            reduction_stats_value(&summary.reduction),
        ));
    }
    if !obs.is_empty() {
        pairs.push(("obs".into(), obs_summary_value(obs)));
    }
    Value::Table(pairs)
}

/// Encode the aggregate LP solver counters.
pub fn solver_stats_value(s: &SolveStats) -> Value {
    let int = |v: u64| Value::Int(v as i64);
    Value::Table(vec![
        ("iterations".into(), int(s.iterations)),
        ("phase1_iterations".into(), int(s.phase1_iterations)),
        ("pivots".into(), int(s.pivots)),
        ("bound_flips".into(), int(s.bound_flips)),
        ("refactorizations".into(), int(s.refactorizations)),
        ("devex_resets".into(), int(s.devex_resets)),
        ("ftran_calls".into(), int(s.ftran_calls)),
        ("ftran_density".into(), Value::Float(s.ftran_density())),
        ("btran_calls".into(), int(s.btran_calls)),
        ("btran_density".into(), Value::Float(s.btran_density())),
        ("pricing_full_scans".into(), int(s.pricing_full_scans)),
        (
            "pricing_candidate_scans".into(),
            int(s.pricing_candidate_scans),
        ),
        ("max_resync_drift".into(), Value::Float(s.max_resync_drift)),
    ])
}

/// Encode the aggregate graph-reduction counters.
pub fn reduction_stats_value(s: &ReductionStats) -> Value {
    let int = |v: u64| Value::Int(v as i64);
    Value::Table(vec![
        ("vertices_before".into(), int(s.vertices_before)),
        ("vertices_after".into(), int(s.vertices_after)),
        ("edges_before".into(), int(s.edges_before)),
        ("edges_after".into(), int(s.edges_after)),
        ("rows_before".into(), int(s.rows_before)),
        ("rows_after".into(), int(s.rows_after)),
        ("chain_merges".into(), int(s.chain_merges)),
        ("folds".into(), int(s.folds)),
        ("redundant_removed".into(), int(s.redundant_removed)),
        ("rounds".into(), int(s.rounds)),
    ])
}

/// Encode an obs [`Summary`] (spans/counters/gauges/histograms).
fn obs_summary_value(obs: &Summary) -> Value {
    let int = |v: u64| Value::Int(v as i64);
    Value::Table(vec![
        (
            "spans".into(),
            Value::Array(
                obs.spans
                    .iter()
                    .map(|s| {
                        let mut pairs = vec![
                            ("path".into(), Value::Str(s.path.clone())),
                            ("count".into(), int(s.count)),
                            ("total_ns".into(), int(s.total_ns)),
                            ("min_ns".into(), int(s.min_ns)),
                            ("max_ns".into(), int(s.max_ns)),
                        ];
                        if !s.fields.is_empty() {
                            pairs.push((
                                "fields".into(),
                                Value::Table(
                                    s.fields
                                        .iter()
                                        .map(|(k, v)| (k.clone(), Value::Float(*v)))
                                        .collect(),
                                ),
                            ));
                        }
                        if !s.labels.is_empty() {
                            pairs.push((
                                "labels".into(),
                                Value::Table(
                                    s.labels
                                        .iter()
                                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                                        .collect(),
                                ),
                            ));
                        }
                        Value::Table(pairs)
                    })
                    .collect(),
            ),
        ),
        (
            "counters".into(),
            Value::Table(
                obs.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), int(*v)))
                    .collect(),
            ),
        ),
        (
            "gauges".into(),
            Value::Table(
                obs.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Float(*v)))
                    .collect(),
            ),
        ),
        (
            "hists".into(),
            Value::Table(
                obs.hists
                    .iter()
                    .map(|(k, h)| {
                        (
                            k.clone(),
                            Value::Table(vec![
                                ("count".into(), int(h.count)),
                                ("sum".into(), int(h.sum)),
                                ("min".into(), int(h.min)),
                                ("max".into(), int(h.max)),
                                ("p50".into(), int(h.p50)),
                                ("p90".into(), int(h.p90)),
                                ("p99".into(), int(h.p99)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decode the `obs` section back into an obs [`Summary`] (inverse of the
/// encoder above; unknown or malformed rows are skipped).
fn obs_summary_from_value(v: &Value) -> Summary {
    let u = |x: Option<&Value>| x.and_then(Value::as_i64).unwrap_or(0).max(0) as u64;
    let mut out = Summary::default();
    if let Some(spans) = v.get("spans").and_then(Value::as_array) {
        for s in spans {
            let Some(path) = s.get("path").and_then(Value::as_str) else {
                continue;
            };
            let mut agg = SpanAgg {
                path: path.to_string(),
                depth: path.matches('/').count(),
                count: u(s.get("count")),
                total_ns: u(s.get("total_ns")),
                min_ns: u(s.get("min_ns")),
                max_ns: u(s.get("max_ns")),
                fields: Vec::new(),
                labels: Vec::new(),
            };
            if let Some(Value::Table(fields)) = s.get("fields") {
                for (k, fv) in fields {
                    if let Some(x) = fv.as_f64() {
                        agg.fields.push((k.clone(), x));
                    }
                }
            }
            if let Some(Value::Table(labels)) = s.get("labels") {
                for (k, lv) in labels {
                    if let Some(x) = lv.as_str() {
                        agg.labels.push((k.clone(), x.to_string()));
                    }
                }
            }
            out.spans.push(agg);
        }
    }
    if let Some(Value::Table(counters)) = v.get("counters") {
        for (k, cv) in counters {
            out.counters.push((k.clone(), u(Some(cv))));
        }
    }
    if let Some(Value::Table(gauges)) = v.get("gauges") {
        for (k, gv) in gauges {
            if let Some(x) = gv.as_f64() {
                out.gauges.push((k.clone(), x));
            }
        }
    }
    if let Some(Value::Table(hists)) = v.get("hists") {
        for (k, hv) in hists {
            out.hists.push((
                k.clone(),
                HistogramSummary {
                    count: u(hv.get("count")),
                    sum: u(hv.get("sum")),
                    min: u(hv.get("min")),
                    max: u(hv.get("max")),
                    p50: u(hv.get("p50")),
                    p90: u(hv.get("p90")),
                    p99: u(hv.get("p99")),
                },
            ));
        }
    }
    out
}

/// Render a metrics document. This is THE metrics formatter: both
/// `llamp run --metrics` (fresh document) and `llamp report --metrics`
/// (sidecar file) call it, so the two can never disagree.
pub fn render_metrics(doc: &Value) -> String {
    let mut out = String::new();
    if let Some(run) = doc.get("run") {
        let u = |k: &str| run.get(k).and_then(Value::as_i64).unwrap_or(0);
        let hits = u("cache_hits");
        let misses = u("cache_misses");
        let rate = if hits + misses > 0 {
            100.0 * hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "scenarios: {} requested, {} unique, {} full cache hits, {} executed\n\
             cache: {hits} hits, {misses} misses ({rate:.1}% hit rate)\n\
             threads: {}, sweep start: {}, elapsed: {:.3}s\n",
            u("jobs_requested"),
            u("jobs_unique"),
            u("full_cache_hits"),
            u("jobs_executed"),
            u("threads"),
            run.get("sweep_start")
                .and_then(Value::as_str)
                .unwrap_or("auto"),
            run.get("elapsed_s").and_then(Value::as_f64).unwrap_or(0.0),
        ));
    }
    let block = |out: &mut String, key: &str, title: &str| {
        if let Some(Value::Table(pairs)) = doc.get(key) {
            out.push_str(&format!("\n{title}\n"));
            for (k, v) in pairs {
                let rendered = match v {
                    Value::Int(i) => i.to_string(),
                    Value::Float(f) => format!("{f:.3e}"),
                    other => other.to_json(),
                };
                out.push_str(&format!("{k:<24} {rendered}\n"));
            }
        }
    };
    block(&mut out, "solver", "lp solver totals");
    block(&mut out, "reduction", "graph reduction totals");
    if let Some(obs) = doc.get("obs") {
        let rendered = obs_summary_from_value(obs).render();
        if !rendered.is_empty() {
            out.push('\n');
            out.push_str(&rendered);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Provenance;
    use std::time::Duration;

    fn summary() -> RunSummary {
        RunSummary {
            jobs_requested: 4,
            jobs_unique: 3,
            full_cache_hits: 1,
            jobs_executed: 2,
            cache_hits: 5,
            cache_misses: 15,
            threads: 2,
            sweep_start: "auto".to_string(),
            elapsed: Duration::from_millis(1500),
            provenance: vec![Provenance::Computed; 3],
            solver: SolveStats {
                iterations: 10,
                ..Default::default()
            },
            reduction: ReductionStats::default(),
        }
    }

    #[test]
    fn sidecar_round_trips_through_the_single_renderer() {
        let mut obs = Summary::default();
        obs.spans.push(SpanAgg {
            path: "campaign".into(),
            depth: 0,
            count: 1,
            total_ns: 2_000_000,
            min_ns: 2_000_000,
            max_ns: 2_000_000,
            fields: vec![("jobs_unique".into(), 3.0)],
            labels: vec![("name".into(), "unit".into())],
        });
        obs.counters.push(("cache.pt.hit".into(), 5));
        obs.hists.push((
            "lp.point_ns".into(),
            HistogramSummary {
                count: 7,
                sum: 700,
                min: 50,
                max: 200,
                p50: 96,
                p90: 192,
                p99: 192,
            },
        ));
        let doc = metrics_value(&summary(), &obs);
        let live = render_metrics(&doc);
        // The sidecar replay must render byte-identically to the live run.
        let replayed = crate::value::parse_json(&doc.to_json_pretty()).unwrap();
        assert_eq!(live, render_metrics(&replayed));
        assert!(live.contains("scenarios: 4 requested"));
        assert!(live.contains("lp solver totals"));
        assert!(live.contains("cache.pt.hit"));
        assert!(live.contains("lp.point_ns"));
        assert!(live.contains("name=unit"));
    }

    #[test]
    fn empty_sections_are_omitted() {
        let mut s = summary();
        s.solver = SolveStats::default();
        let doc = metrics_value(&s, &Summary::default());
        assert!(doc.get("solver").is_none());
        assert!(doc.get("reduction").is_none());
        assert!(doc.get("obs").is_none());
        let rendered = render_metrics(&doc);
        assert!(rendered.contains("cache: 5 hits, 15 misses"));
        assert!(!rendered.contains("lp solver totals"));
    }
}

//! Declarative campaign specifications.
//!
//! A [`CampaignSpec`] describes a cartesian sweep: every combination of
//! workload × topology × parameter set × backend becomes one
//! [`Scenario`](crate::scenario::Scenario), all sharing one sweep — a
//! latency grid, or multi-parameter [`AxisSpec`] axes. Specs are
//! written in TOML (or JSON with the same shape) and decode through
//! [`crate::value::Value`]; see `examples/campaign.toml` for the format.
//!
//! Canonicalisation (`CampaignSpec::canonicalize`) sorts and deduplicates
//! every dimension and the latency grid, so two specs describing the same
//! sweep — in any order, in either syntax — produce identical scenario
//! sets, identical content hashes, and therefore identical cache keys.

use crate::value::{parse_json, parse_toml, Value};
pub use llamp_core::SweepParam;
use llamp_workloads::App;
use std::fmt::Write as _;

/// One workload axis entry: an application proxy at a given scale.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Which application skeleton.
    pub app: App,
    /// MPI rank count.
    pub ranks: u32,
    /// Outer iterations of the proxy's main loop.
    pub iters: u32,
    /// Optional override of the per-message overhead `o` (ns); defaults
    /// to the application's paper-matched value.
    pub o_ns: Option<f64>,
}

/// One topology axis entry.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// Uniform end-to-end latency: the analysis variable is `L` itself.
    Uniform,
    /// Three-tier fat tree; the analysis variable is the per-wire latency.
    FatTree {
        /// Switch radix `k` (hosts = k³/4).
        k: u32,
        /// Baseline per-wire latency (ns).
        l_wire_ns: f64,
        /// Per-switch traversal delay (ns).
        d_switch_ns: f64,
    },
    /// Dragonfly; the analysis variable is the per-wire latency.
    Dragonfly {
        /// Number of groups.
        groups: u32,
        /// Routers per group.
        routers: u32,
        /// Hosts per router.
        hosts: u32,
        /// Baseline per-wire latency (ns).
        l_wire_ns: f64,
        /// Per-switch traversal delay (ns).
        d_switch_ns: f64,
    },
}

/// Cluster parameter presets (paper §III-B / §IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ParamsPreset {
    /// The 188-node CSCS validation test-bed.
    Cscs,
    /// Piz Daint as measured for the ICON case study.
    PizDaint,
    /// The paper's didactic running example.
    Didactic,
}

impl ParamsPreset {
    /// Spec-file name.
    pub fn name(&self) -> &'static str {
        match self {
            ParamsPreset::Cscs => "cscs",
            ParamsPreset::PizDaint => "piz-daint",
            ParamsPreset::Didactic => "didactic",
        }
    }
}

/// One LogGPS parameter axis entry: a preset plus overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamsSpec {
    /// Base preset.
    pub preset: ParamsPreset,
    /// Override the base latency `L` (ns).
    pub l_ns: Option<f64>,
    /// Override the per-message overhead `o` (ns). Takes precedence over
    /// the workload-level override.
    pub o_ns: Option<f64>,
    /// Override the rendezvous threshold `S` (bytes).
    pub s_bytes: Option<u64>,
}

/// Which simplex variant answers an `lp-*` backend (see
/// `llamp_lp::backend`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LpSolver {
    /// Dense basis inverse — the cross-validation reference.
    Dense,
    /// Sparse LU + eta file — the at-scale simplex (what plain `"lp"`
    /// means).
    Sparse,
    /// Sparse simplex + warm starts + the Algorithm-2 basis-stability
    /// shortcut — best for latency sweeps.
    Parametric,
    /// Sparse simplex + dual-simplex re-solves for the bound moves a
    /// sweep performs.
    Dual,
}

impl LpSolver {
    /// The `llamp_lp::backend::by_name` name.
    pub fn solver_name(&self) -> &'static str {
        match self {
            LpSolver::Dense => "dense",
            LpSolver::Sparse => "sparse",
            LpSolver::Parametric => "parametric",
            LpSolver::Dual => "dual",
        }
    }
}

/// Analysis backend answering the sweep (all cross-validated in
/// `llamp-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Backend {
    /// Exact `T(L)` envelope in one pass (`ParametricProfile`).
    Parametric,
    /// The paper's Algorithm 1 LP, solved per grid point by the chosen
    /// simplex variant. All four variants produce byte-identical results;
    /// they differ only in speed.
    Lp(LpSolver),
    /// Direct critical-path evaluation per grid point.
    Eval,
}

impl Backend {
    /// Spec-file name (also the cache-key component, so results are keyed
    /// per solver variant).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Parametric => "parametric",
            Backend::Lp(LpSolver::Dense) => "lp-dense",
            Backend::Lp(LpSolver::Sparse) => "lp-sparse",
            Backend::Lp(LpSolver::Parametric) => "lp-parametric",
            Backend::Lp(LpSolver::Dual) => "lp-dual",
            Backend::Eval => "eval",
        }
    }
}

/// Parse a backend name as used in spec files and `llamp run --backends`:
/// `parametric`, `eval`, `lp-dense`, `lp-sparse`, `lp-parametric`,
/// `lp-dual`, or the aliases `lp` / `simplex` (→ `lp-sparse`).
pub fn parse_backend(name: &str) -> Result<Backend, SpecError> {
    match name.to_ascii_lowercase().as_str() {
        "parametric" => Ok(Backend::Parametric),
        "lp" | "simplex" | "lp-sparse" => Ok(Backend::Lp(LpSolver::Sparse)),
        "lp-dense" => Ok(Backend::Lp(LpSolver::Dense)),
        "lp-parametric" => Ok(Backend::Lp(LpSolver::Parametric)),
        "lp-dual" => Ok(Backend::Lp(LpSolver::Dual)),
        "eval" | "evaluate" => Ok(Backend::Eval),
        _ => Err(err(format!(
            "unknown backend '{name}' (expected parametric | eval | lp | lp-dense | lp-sparse | lp-parametric | lp-dual)"
        ))),
    }
}

/// Where each LP sweep point's solve starts from.
///
/// Inside a basis-stability window the anchor-seeded warm solve and the
/// per-point longest-path crash land on the *same* basis, and canonical
/// extraction makes every answer a pure function of (model, final
/// basis) — so the policy changes solver effort, never campaign bytes.
/// It is therefore excluded from canonical keys and cache identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepStart {
    /// Seed every grid point from the scenario's anchor basis (the
    /// historic discipline; cheapest for small models, where far points
    /// replay few pivots).
    Anchor,
    /// Start every grid point from its own longest-path crash basis
    /// (zero pivots at any size; the only viable start at 10⁵+ rows,
    /// where anchor-seeded far points replay thousands of pivots).
    Crash,
    /// `Crash` above [`SWEEP_CRASH_ROW_THRESHOLD`] reduced LP rows,
    /// `Anchor` below (the default).
    #[default]
    Auto,
}

/// Reduced-row count above which [`SweepStart::Auto`] crash-starts sweep
/// points. All seed workloads sit far below (81–360 rows); the 10⁵+-row
/// scaled shapes sit far above — the crossover where anchor re-seeding
/// starts replaying thousands of pivots per far point is around 10⁴ rows
/// (see docs/SCALING.md).
pub const SWEEP_CRASH_ROW_THRESHOLD: usize = 10_000;

impl SweepStart {
    /// Spec-file / CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            SweepStart::Anchor => "anchor",
            SweepStart::Crash => "crash",
            SweepStart::Auto => "auto",
        }
    }

    /// Parse a spec-file / CLI name.
    pub fn parse(name: &str) -> Result<Self, SpecError> {
        match name.to_ascii_lowercase().as_str() {
            "anchor" => Ok(SweepStart::Anchor),
            "crash" => Ok(SweepStart::Crash),
            "auto" => Ok(SweepStart::Auto),
            _ => Err(err(format!(
                "unknown sweep_start '{name}' (expected anchor | crash | auto)"
            ))),
        }
    }

    /// Resolve `Auto` against a concrete model size.
    pub fn resolve(&self, lp_rows: usize) -> SweepStart {
        match self {
            SweepStart::Auto => {
                if lp_rows >= SWEEP_CRASH_ROW_THRESHOLD {
                    SweepStart::Crash
                } else {
                    SweepStart::Anchor
                }
            }
            fixed => *fixed,
        }
    }
}

/// The latency grid shared by all scenarios of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Added-latency samples `∆L` (ns) above each scenario's base value.
    /// Empty when the campaign sweeps explicit [`AxisSpec`] axes instead.
    pub deltas_ns: Vec<f64>,
    /// Upper search bound for the 1/2/5% tolerance zones (ns above base).
    pub search_hi_ns: f64,
}

/// One sweep axis of a multi-parameter campaign: a LogGPS parameter plus
/// the delta samples above each scenario's base value of that parameter
/// (`L`/`o` in ns, `G` in ns/byte). A campaign's `axes` expand to the
/// cartesian product of their delta lists; each 1-D cross-section is
/// answered through the warm-start protocol exactly like a latency grid.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisSpec {
    /// The swept parameter.
    pub param: SweepParam,
    /// Delta samples above the scenario's base value (sorted, deduplicated
    /// by canonicalisation).
    pub deltas: Vec<f64>,
}

impl AxisSpec {
    /// Canonical fragment.
    pub fn canonical(&self) -> String {
        let mut s = format!("{}[", self.param.name());
        for (i, d) in self.deltas.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}", f(*d));
        }
        s.push(']');
        s
    }

    fn to_value(&self) -> Value {
        Value::Table(vec![
            ("param".into(), Value::Str(self.param.name().into())),
            (
                "deltas".into(),
                Value::Array(self.deltas.iter().map(|&d| Value::Float(d)).collect()),
            ),
        ])
    }
}

/// A full campaign: the cartesian product of the four axes under one
/// sweep (a latency grid, or multi-parameter axes).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (used in reports and output files).
    pub name: String,
    /// Workload axis.
    pub workloads: Vec<WorkloadSpec>,
    /// Topology axis.
    pub topologies: Vec<TopologySpec>,
    /// Parameter-set axis.
    pub params: Vec<ParamsSpec>,
    /// Backend axis.
    pub backends: Vec<Backend>,
    /// Shared latency grid (`grid.deltas_ns` is empty when `axes` is
    /// non-empty; `grid.search_hi_ns` always holds the tolerance-zone
    /// search window).
    pub grid: GridSpec,
    /// Multi-parameter sweep axes (empty for classic latency-grid
    /// campaigns). Sorted by canonical parameter order `L < G < o`.
    pub axes: Vec<AxisSpec>,
    /// Run the makespan-preserving graph reduction pipeline before
    /// lowering (default `true`). Part of every scenario's cache-key
    /// identity: reduced and unreduced answers agree only to numerical
    /// tolerance, so they must never substitute for each other.
    pub reduce: bool,
    /// Where LP sweep-point solves start (default [`SweepStart::Auto`]).
    /// A pure performance policy: byte-identical results either way, so
    /// it is *not* part of canonical keys or cache identities.
    pub sweep_start: SweepStart,
}

/// Spec decoding / validation failure.
#[derive(Debug, Clone)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// Parse an application name as used in spec files (`llamp
/// list-workloads` prints the list).
pub fn parse_app(name: &str) -> Result<App, SpecError> {
    App::ALL
        .iter()
        .copied()
        .find(|a| a.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            err(format!(
                "unknown app '{name}' (expected one of: {})",
                App::ALL.map(|a| a.name().to_ascii_lowercase()).join(", ")
            ))
        })
}

impl CampaignSpec {
    /// Parse a spec from TOML or JSON source. `path_hint` selects the
    /// syntax by extension; content sniffing (`{` first) is the fallback.
    pub fn parse(source: &str, path_hint: &str) -> Result<Self, SpecError> {
        let is_json = path_hint.ends_with(".json")
            || (!path_hint.ends_with(".toml") && source.trim_start().starts_with('{'));
        let value = if is_json {
            parse_json(source).map_err(|e| err(format!("JSON: {e}")))?
        } else {
            parse_toml(source).map_err(|e| err(format!("TOML: {e}")))?
        };
        Self::from_value(&value)
    }

    /// Decode from a parsed document. Unknown keys are rejected (a typo
    /// must fail loudly, not silently fall back to a default); the
    /// accepted field set is [`SPEC_FIELDS`], documented in
    /// `docs/SPEC.md`.
    pub fn from_value(value: &Value) -> Result<Self, SpecError> {
        check_table(value, "", "campaign")?;
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("campaign")
            .to_string();

        let workloads = req_array(value, "workloads")?
            .iter()
            .map(decode_workload)
            .collect::<Result<Vec<_>, _>>()?;
        let topologies = match value.get("topologies") {
            None => vec![TopologySpec::Uniform],
            Some(v) => v
                .as_array()
                .ok_or_else(|| err("'topologies' must be an array of tables"))?
                .iter()
                .map(decode_topology)
                .collect::<Result<Vec<_>, _>>()?,
        };
        let params = match value.get("params") {
            None => vec![ParamsSpec {
                preset: ParamsPreset::Cscs,
                l_ns: None,
                o_ns: None,
                s_bytes: None,
            }],
            Some(v) => v
                .as_array()
                .ok_or_else(|| err("'params' must be an array of tables"))?
                .iter()
                .map(decode_params)
                .collect::<Result<Vec<_>, _>>()?,
        };
        let backends = match value.get("backends") {
            None => vec![Backend::Parametric],
            Some(v) => v
                .as_array()
                .ok_or_else(|| err("'backends' must be an array of strings"))?
                .iter()
                .map(|b| parse_backend(b.as_str().ok_or_else(|| err("backend must be a string"))?))
                .collect::<Result<Vec<_>, _>>()?,
        };
        let axes = match value.get("axes") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or_else(|| err("'axes' must be an array of tables ([[axes]])"))?
                .iter()
                .map(decode_axis)
                .collect::<Result<Vec<_>, _>>()?,
        };
        let grid = decode_grid(value.get("grid"), !axes.is_empty())?;
        let grid = match value.get("search_hi_ns") {
            None => grid,
            Some(v) => {
                // The top-level key is an alias, not an override: a spec
                // giving both sources must fail loudly (same rule as the
                // deltas/window conflict), not silently pick one.
                if value
                    .get("grid")
                    .is_some_and(|g| g.get("search_hi_ns").is_some())
                {
                    return Err(err(
                        "'search_hi_ns' and 'grid.search_hi_ns' are mutually exclusive — \
                         give the zone search window one way",
                    ));
                }
                GridSpec {
                    search_hi_ns: v
                        .as_f64()
                        .ok_or_else(|| err("'search_hi_ns' must be a number"))?,
                    ..grid
                }
            }
        };

        let reduce = match value.get("reduce") {
            None => true,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| err("'reduce' must be a boolean"))?,
        };

        let sweep_start = match value.get("sweep_start") {
            None => SweepStart::Auto,
            Some(v) => SweepStart::parse(
                v.as_str()
                    .ok_or_else(|| err("'sweep_start' must be a string"))?,
            )?,
        };

        let mut spec = Self {
            name,
            workloads,
            topologies,
            params,
            backends,
            grid,
            axes,
            reduce,
            sweep_start,
        };
        spec.validate()?;
        spec.canonicalize();
        Ok(spec)
    }

    fn validate(&self) -> Result<(), SpecError> {
        if self.workloads.is_empty() {
            return Err(err("at least one [[workloads]] entry is required"));
        }
        if self.axes.is_empty() {
            if self.grid.deltas_ns.is_empty() {
                return Err(err("the latency grid needs at least one point"));
            }
        } else {
            if !self.grid.deltas_ns.is_empty() {
                return Err(err(
                    "'grid' deltas and 'axes' are mutually exclusive: a multi-parameter \
                     campaign declares its L samples as an axes entry with param = \"L\"",
                ));
            }
            for (i, a) in self.axes.iter().enumerate() {
                if a.deltas.is_empty() {
                    return Err(err(format!("axis {} needs at least one delta", a.param)));
                }
                for d in &a.deltas {
                    if !d.is_finite() || *d < 0.0 {
                        return Err(err(format!(
                            "axis {} delta {d} must be finite and >= 0",
                            a.param
                        )));
                    }
                }
                if self.axes[..i].iter().any(|b| b.param == a.param) {
                    return Err(err(format!(
                        "duplicate axis for parameter {} (merge the delta lists)",
                        a.param
                    )));
                }
            }
        }
        if !self.grid.search_hi_ns.is_finite() || self.grid.search_hi_ns <= 0.0 {
            return Err(err("grid.search_hi_ns must be positive and finite"));
        }
        for d in &self.grid.deltas_ns {
            if !d.is_finite() || *d < 0.0 {
                return Err(err(format!("grid delta {d} must be finite and >= 0")));
            }
        }
        for w in &self.workloads {
            if w.ranks < 2 {
                return Err(err(format!("{}: ranks must be >= 2", w.app.name())));
            }
            if w.iters == 0 {
                return Err(err(format!("{}: iters must be >= 1", w.app.name())));
            }
        }
        for t in &self.topologies {
            let nodes = t.num_nodes();
            if let Some(n) = nodes {
                if let Some(w) = self.workloads.iter().find(|w| w.ranks > n) {
                    return Err(err(format!(
                        "topology {} has {n} hosts but workload {} needs {} ranks",
                        t.canonical(),
                        w.app.name(),
                        w.ranks
                    )));
                }
            }
        }
        Ok(())
    }

    /// Sort + deduplicate every axis and the grid. Idempotent; called by
    /// the decoder so parsed specs are always canonical.
    pub fn canonicalize(&mut self) {
        sort_dedup_by_key(&mut self.workloads, WorkloadSpec::canonical);
        sort_dedup_by_key(&mut self.topologies, TopologySpec::canonical);
        sort_dedup_by_key(&mut self.params, ParamsSpec::canonical);
        self.backends.sort();
        self.backends.dedup();
        self.grid.deltas_ns.sort_by(f64::total_cmp);
        self.grid
            .deltas_ns
            .dedup_by(|a, b| a.to_bits() == b.to_bits());
        self.axes.sort_by_key(|a| a.param);
        for a in &mut self.axes {
            a.deltas.sort_by(f64::total_cmp);
            a.deltas.dedup_by(|x, y| x.to_bits() == y.to_bits());
        }
    }

    /// Canonical string form: the deterministic identity of the campaign's
    /// sweep (name excluded — two differently named campaigns over the
    /// same sweep share cache entries).
    pub fn canonical(&self) -> String {
        let mut s = String::new();
        for w in &self.workloads {
            let _ = write!(s, "w:{};", w.canonical());
        }
        for t in &self.topologies {
            let _ = write!(s, "t:{};", t.canonical());
        }
        for p in &self.params {
            let _ = write!(s, "p:{};", p.canonical());
        }
        for b in &self.backends {
            let _ = write!(s, "b:{};", b.name());
        }
        let _ = write!(s, "r:{};", u8::from(self.reduce));
        if self.axes.is_empty() {
            let _ = write!(s, "g:{}", grid_canonical(&self.grid));
        } else {
            let _ = write!(
                s,
                "g:{}",
                axes_canonical(&self.axes, self.grid.search_hi_ns)
            );
        }
        s
    }

    /// Content hash of the canonical form (FNV-1a, stable across runs and
    /// platforms).
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }

    /// Re-encode as a document (JSON-compatible), preserving canonical
    /// order — parsing the encoding yields an identical spec.
    pub fn to_value(&self) -> Value {
        let mut doc = Value::Table(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("reduce".into(), Value::Bool(self.reduce)),
            (
                "workloads".into(),
                Value::Array(self.workloads.iter().map(WorkloadSpec::to_value).collect()),
            ),
            (
                "topologies".into(),
                Value::Array(self.topologies.iter().map(TopologySpec::to_value).collect()),
            ),
            (
                "params".into(),
                Value::Array(self.params.iter().map(ParamsSpec::to_value).collect()),
            ),
            (
                "backends".into(),
                Value::Array(
                    self.backends
                        .iter()
                        .map(|b| Value::Str(b.name().into()))
                        .collect(),
                ),
            ),
            (
                "grid".into(),
                Value::Table(if self.axes.is_empty() {
                    vec![
                        (
                            "deltas_ns".into(),
                            Value::Array(
                                self.grid
                                    .deltas_ns
                                    .iter()
                                    .map(|&d| Value::Float(d))
                                    .collect(),
                            ),
                        ),
                        ("search_hi_ns".into(), Value::Float(self.grid.search_hi_ns)),
                    ]
                } else {
                    vec![("search_hi_ns".into(), Value::Float(self.grid.search_hi_ns))]
                }),
            ),
        ]);
        if !self.axes.is_empty() {
            if let Value::Table(pairs) = &mut doc {
                pairs.push((
                    "axes".into(),
                    Value::Array(self.axes.iter().map(AxisSpec::to_value).collect()),
                ));
            }
        }
        // A non-default sweep-start policy round-trips; the default stays
        // implicit so existing encodings are byte-identical.
        if self.sweep_start != SweepStart::Auto {
            if let Value::Table(pairs) = &mut doc {
                pairs.push((
                    "sweep_start".into(),
                    Value::Str(self.sweep_start.name().into()),
                ));
            }
        }
        doc
    }
}

fn sort_dedup_by_key<T>(items: &mut Vec<T>, key: impl Fn(&T) -> String) {
    items.sort_by_key(|i| key(i));
    items.dedup_by(|a, b| key(a) == key(b));
}

/// FNV-1a 64-bit hash: tiny, dependency-free, and stable — exactly what a
/// content-addressed cache key needs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Render a float in its shortest round-trip form for canonical keys.
fn f(x: f64) -> String {
    format!("{x:?}")
}

impl WorkloadSpec {
    /// Canonical fragment.
    pub fn canonical(&self) -> String {
        format!(
            "{},r{},i{},o{}",
            self.app.name().to_ascii_lowercase(),
            self.ranks,
            self.iters,
            self.o_ns.map(f).unwrap_or_else(|| "paper".into())
        )
    }

    fn to_value(&self) -> Value {
        let mut pairs = vec![
            (
                "app".into(),
                Value::Str(self.app.name().to_ascii_lowercase()),
            ),
            ("ranks".into(), Value::Int(self.ranks as i64)),
            ("iters".into(), Value::Int(self.iters as i64)),
        ];
        if let Some(o) = self.o_ns {
            pairs.push(("o_ns".into(), Value::Float(o)));
        }
        Value::Table(pairs)
    }
}

impl TopologySpec {
    /// Host capacity, when the topology constrains it.
    pub fn num_nodes(&self) -> Option<u32> {
        match self {
            TopologySpec::Uniform => None,
            TopologySpec::FatTree { k, .. } => Some(k * k * k / 4),
            TopologySpec::Dragonfly {
                groups,
                routers,
                hosts,
                ..
            } => Some(groups * routers * hosts),
        }
    }

    /// Canonical fragment.
    pub fn canonical(&self) -> String {
        match self {
            TopologySpec::Uniform => "uniform".into(),
            TopologySpec::FatTree {
                k,
                l_wire_ns,
                d_switch_ns,
            } => format!("fattree,k{k},w{},d{}", f(*l_wire_ns), f(*d_switch_ns)),
            TopologySpec::Dragonfly {
                groups,
                routers,
                hosts,
                l_wire_ns,
                d_switch_ns,
            } => format!(
                "dragonfly,g{groups},a{routers},p{hosts},w{},d{}",
                f(*l_wire_ns),
                f(*d_switch_ns)
            ),
        }
    }

    fn to_value(&self) -> Value {
        match self {
            TopologySpec::Uniform => {
                Value::Table(vec![("kind".into(), Value::Str("uniform".into()))])
            }
            TopologySpec::FatTree {
                k,
                l_wire_ns,
                d_switch_ns,
            } => Value::Table(vec![
                ("kind".into(), Value::Str("fattree".into())),
                ("k".into(), Value::Int(*k as i64)),
                ("l_wire_ns".into(), Value::Float(*l_wire_ns)),
                ("d_switch_ns".into(), Value::Float(*d_switch_ns)),
            ]),
            TopologySpec::Dragonfly {
                groups,
                routers,
                hosts,
                l_wire_ns,
                d_switch_ns,
            } => Value::Table(vec![
                ("kind".into(), Value::Str("dragonfly".into())),
                ("groups".into(), Value::Int(*groups as i64)),
                ("routers".into(), Value::Int(*routers as i64)),
                ("hosts".into(), Value::Int(*hosts as i64)),
                ("l_wire_ns".into(), Value::Float(*l_wire_ns)),
                ("d_switch_ns".into(), Value::Float(*d_switch_ns)),
            ]),
        }
    }
}

impl ParamsSpec {
    /// Canonical fragment.
    pub fn canonical(&self) -> String {
        format!(
            "{},l{},o{},s{}",
            self.preset.name(),
            self.l_ns.map(f).unwrap_or_else(|| "-".into()),
            self.o_ns.map(f).unwrap_or_else(|| "-".into()),
            self.s_bytes
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into())
        )
    }

    fn to_value(&self) -> Value {
        let mut pairs = vec![("preset".into(), Value::Str(self.preset.name().into()))];
        if let Some(l) = self.l_ns {
            pairs.push(("l_ns".into(), Value::Float(l)));
        }
        if let Some(o) = self.o_ns {
            pairs.push(("o_ns".into(), Value::Float(o)));
        }
        if let Some(s) = self.s_bytes {
            pairs.push(("s_bytes".into(), Value::Int(s as i64)));
        }
        Value::Table(pairs)
    }
}

/// Canonical fragment of a grid.
pub fn grid_canonical(grid: &GridSpec) -> String {
    let mut s = String::new();
    for d in &grid.deltas_ns {
        let _ = write!(s, "{},", f(*d));
    }
    let _ = write!(s, "hi{}", f(grid.search_hi_ns));
    s
}

/// Canonical fragment of a multi-parameter sweep (axes plus the zone
/// search window).
pub fn axes_canonical(axes: &[AxisSpec], search_hi_ns: f64) -> String {
    let mut s = String::from("axes:");
    for a in axes {
        let _ = write!(s, "{};", a.canonical());
    }
    let _ = write!(s, "hi{}", f(search_hi_ns));
    s
}

/// Every field path the spec decoders accept, as documented in
/// `docs/SPEC.md`. The decoders reject unknown keys against the same
/// lists, and a test enumerates this constant against the documentation —
/// adding a field without documenting it fails the build.
pub const SPEC_FIELDS: &[&str] = &[
    "name",
    "reduce",
    "sweep_start",
    "backends",
    "search_hi_ns",
    "workloads",
    "workloads.app",
    "workloads.ranks",
    "workloads.iters",
    "workloads.o_ns",
    "topologies",
    "topologies.kind",
    "topologies.k",
    "topologies.l_wire_ns",
    "topologies.d_switch_ns",
    "topologies.groups",
    "topologies.routers",
    "topologies.hosts",
    "params",
    "params.preset",
    "params.l_ns",
    "params.o_ns",
    "params.s_bytes",
    "grid",
    "grid.deltas_ns",
    "grid.window",
    "grid.window.lo",
    "grid.window.hi",
    "grid.window.points",
    "grid.search_hi_ns",
    "axes",
    "axes.param",
    "axes.deltas",
    "axes.deltas_ns",
    "axes.window",
    "axes.window.lo",
    "axes.window.hi",
    "axes.window.points",
];

/// The keys [`SPEC_FIELDS`] allows directly under `prefix` (`""` for the
/// top level). This is what makes the constant *authoritative*: the
/// unknown-key check ([`check_table`]) derives every allow-list from it,
/// so a field cannot be parseable yet missing from `SPEC_FIELDS` (and
/// hence, via the docs test, from `docs/SPEC.md`).
fn allowed_keys(prefix: &str) -> Vec<&'static str> {
    let mut out: Vec<&'static str> = SPEC_FIELDS
        .iter()
        .filter_map(|f| {
            if prefix.is_empty() {
                (!f.contains('.')).then_some(*f)
            } else {
                f.strip_prefix(prefix)
                    .and_then(|r| r.strip_prefix('.'))
                    .map(|r| r.split('.').next().unwrap())
            }
        })
        .collect();
    out.dedup();
    out
}

/// Reject unknown keys in a decoded table against the [`SPEC_FIELDS`]
/// path `prefix`: a typo in a spec must fail loudly instead of silently
/// selecting a default.
fn check_table(v: &Value, prefix: &str, ctx: &str) -> Result<(), SpecError> {
    let Some(pairs) = v.as_table() else {
        return Ok(());
    };
    let allowed = allowed_keys(prefix);
    for (k, _) in pairs {
        if !allowed.contains(&k.as_str()) {
            return Err(err(format!(
                "unknown key '{k}' in {ctx} (expected one of: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn req_array<'v>(value: &'v Value, key: &str) -> Result<&'v [Value], SpecError> {
    value
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| err(format!("'{key}' must be an array of tables ([[{key}]])")))
}

fn get_f64(v: &Value, key: &str) -> Result<Option<f64>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| err(format!("'{key}' must be a number"))),
    }
}

fn get_u32(v: &Value, key: &str) -> Result<Option<u32>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_i64()
            .filter(|i| *i >= 0 && *i <= u32::MAX as i64)
            .map(|i| Some(i as u32))
            .ok_or_else(|| err(format!("'{key}' must be a non-negative integer"))),
    }
}

fn decode_workload(v: &Value) -> Result<WorkloadSpec, SpecError> {
    check_table(v, "workloads", "a [[workloads]] entry")?;
    let app_name = v
        .get("app")
        .and_then(Value::as_str)
        .ok_or_else(|| err("workload needs an 'app' name"))?;
    Ok(WorkloadSpec {
        app: parse_app(app_name)?,
        ranks: get_u32(v, "ranks")?.unwrap_or(8),
        iters: get_u32(v, "iters")?.unwrap_or(2),
        o_ns: get_f64(v, "o_ns")?,
    })
}

fn decode_topology(v: &Value) -> Result<TopologySpec, SpecError> {
    check_table(v, "topologies", "a [[topologies]] entry")?;
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| err("topology needs a 'kind'"))?;
    match kind.to_ascii_lowercase().as_str() {
        "uniform" => Ok(TopologySpec::Uniform),
        "fattree" | "fat-tree" => Ok(TopologySpec::FatTree {
            k: get_u32(v, "k")?.unwrap_or(8),
            l_wire_ns: get_f64(v, "l_wire_ns")?.unwrap_or(274.0),
            d_switch_ns: get_f64(v, "d_switch_ns")?.unwrap_or(108.0),
        }),
        "dragonfly" => Ok(TopologySpec::Dragonfly {
            groups: get_u32(v, "groups")?.unwrap_or(9),
            routers: get_u32(v, "routers")?.unwrap_or(4),
            hosts: get_u32(v, "hosts")?.unwrap_or(2),
            l_wire_ns: get_f64(v, "l_wire_ns")?.unwrap_or(274.0),
            d_switch_ns: get_f64(v, "d_switch_ns")?.unwrap_or(108.0),
        }),
        _ => Err(err(format!(
            "unknown topology kind '{kind}' (expected uniform | fattree | dragonfly)"
        ))),
    }
}

fn decode_params(v: &Value) -> Result<ParamsSpec, SpecError> {
    check_table(v, "params", "a [[params]] entry")?;
    let preset = match v.get("preset").and_then(Value::as_str) {
        None => ParamsPreset::Cscs,
        Some(p) => match p.to_ascii_lowercase().as_str() {
            "cscs" | "cscs-testbed" => ParamsPreset::Cscs,
            "piz-daint" | "pizdaint" | "piz_daint" => ParamsPreset::PizDaint,
            "didactic" => ParamsPreset::Didactic,
            _ => {
                return Err(err(format!(
                    "unknown preset '{p}' (expected cscs | piz-daint | didactic)"
                )))
            }
        },
    };
    Ok(ParamsSpec {
        preset,
        l_ns: get_f64(v, "l_ns")?,
        o_ns: get_f64(v, "o_ns")?,
        s_bytes: v
            .get("s_bytes")
            .map(|x| {
                x.as_i64()
                    .filter(|i| *i >= 0)
                    .map(|i| i as u64)
                    .ok_or_else(|| err("'s_bytes' must be a non-negative integer"))
            })
            .transpose()?,
    })
}

/// Decode a delta list: either an explicit `deltas`/`deltas_ns` array or
/// a `window = { lo, hi, points }` linspace. `None` when the table
/// carries neither; an error when it carries more than one source (a
/// leftover key must fail loudly, not silently lose to the other).
fn decode_deltas(v: &Value, ctx: &str) -> Result<Option<Vec<f64>>, SpecError> {
    let sources: Vec<&str> = ["deltas_ns", "deltas", "window"]
        .into_iter()
        .filter(|k| v.get(k).is_some())
        .collect();
    if sources.len() > 1 {
        return Err(err(format!(
            "{ctx}: '{}' and '{}' are mutually exclusive — give the samples one way",
            sources[0], sources[1]
        )));
    }
    for key in ["deltas_ns", "deltas"] {
        if let Some(list) = v.get(key) {
            let arr = list
                .as_array()
                .ok_or_else(|| err(format!("'{key}' must be an array of numbers")))?;
            let deltas = arr
                .iter()
                .map(|x| {
                    x.as_f64()
                        .ok_or_else(|| err(format!("'{key}' must be numbers")))
                })
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(Some(deltas));
        }
    }
    if let Some(win) = v.get("window") {
        check_table(win, &format!("{ctx}.window"), &format!("{ctx}.window"))?;
        let lo = get_f64(win, "lo")?.unwrap_or(0.0);
        let hi = get_f64(win, "hi")?.ok_or_else(|| err(format!("{ctx}.window needs 'hi'")))?;
        let points = get_u32(win, "points")?.unwrap_or(9).max(2) as usize;
        if hi <= lo {
            return Err(err(format!("{ctx}.window: hi must exceed lo")));
        }
        return Ok(Some(
            (0..points)
                .map(|i| lo + (hi - lo) * i as f64 / (points - 1) as f64)
                .collect(),
        ));
    }
    Ok(None)
}

fn decode_grid(v: Option<&Value>, has_axes: bool) -> Result<GridSpec, SpecError> {
    let default_hi = 2_000_000.0;
    let Some(v) = v else {
        return Ok(GridSpec {
            deltas_ns: if has_axes { vec![] } else { vec![0.0] },
            search_hi_ns: default_hi,
        });
    };
    check_table(v, "grid", "grid")?;
    let search_hi_ns = get_f64(v, "search_hi_ns")?.unwrap_or(default_hi);
    let deltas_ns = decode_deltas(v, "grid")?;
    match (deltas_ns, has_axes) {
        (Some(_), true) => Err(err(
            "a campaign with 'axes' must not also declare grid deltas; \
             put the L samples in an axes entry with param = \"L\"",
        )),
        (None, true) => Ok(GridSpec {
            deltas_ns: vec![],
            search_hi_ns,
        }),
        (Some(deltas_ns), false) => Ok(GridSpec {
            deltas_ns,
            search_hi_ns,
        }),
        (None, false) => Err(err(
            "grid needs either 'deltas_ns' or 'window = { lo, hi, points }'",
        )),
    }
}

fn decode_axis(v: &Value) -> Result<AxisSpec, SpecError> {
    check_table(v, "axes", "an [[axes]] entry")?;
    let name = v
        .get("param")
        .and_then(Value::as_str)
        .ok_or_else(|| err("axis needs a 'param' (\"L\", \"G\" or \"o\")"))?;
    let param = SweepParam::parse(name)
        .ok_or_else(|| err(format!("unknown axis param '{name}' (expected L | G | o)")))?;
    let deltas = decode_deltas(v, "axes")?.ok_or_else(|| {
        err("axis needs either 'deltas' (ns; ns/byte for G) or 'window = { lo, hi, points }'")
    })?;
    Ok(AxisSpec { param, deltas })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
name = "t"
backends = ["eval", "parametric", "eval"]

[grid]
deltas_ns = [10000.0, 0.0, 10000.0]
search_hi_ns = 1e6

[[workloads]]
app = "milc"
ranks = 8

[[workloads]]
app = "lulesh"
ranks = 8
"#;

    #[test]
    fn canonicalization_sorts_and_dedups() {
        let spec = CampaignSpec::parse(SPEC, "x.toml").unwrap();
        assert_eq!(spec.backends, vec![Backend::Parametric, Backend::Eval]);
        assert_eq!(spec.grid.deltas_ns, vec![0.0, 10_000.0]);
        assert_eq!(spec.workloads[0].app.name(), "LULESH");
    }

    #[test]
    fn hash_is_order_independent_and_syntax_independent() {
        let a = CampaignSpec::parse(SPEC, "x.toml").unwrap();
        // Same sweep, different order and written as JSON via re-encoding.
        let json = a.to_value().to_json();
        let b = CampaignSpec::parse(&json, "x.json").unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        // A typo must fail loudly, not silently pick a default.
        for bad in [
            "name = \"t\"\ngrids = 1\n[[workloads]]\napp = \"milc\"\n",
            "name = \"t\"\n[[workloads]]\napp = \"milc\"\nrank = 8\n",
            "name = \"t\"\n[grid]\ndeltas = [0.0]\n[[workloads]]\napp = \"milc\"\n",
            "name = \"t\"\n[[axes]]\nparam = \"L\"\ndelta = [0.0]\n[[workloads]]\napp = \"milc\"\n",
        ] {
            let err = CampaignSpec::parse(bad, "x.toml").unwrap_err();
            assert!(
                err.0.contains("unknown key") || err.0.contains("needs"),
                "{err}"
            );
        }
    }

    #[test]
    fn axes_and_grid_deltas_are_mutually_exclusive() {
        let bad = r#"
name = "t"
[grid]
deltas_ns = [0.0]
[[axes]]
param = "G"
deltas = [0.0]
[[workloads]]
app = "milc"
"#;
        assert!(CampaignSpec::parse(bad, "x.toml").is_err());
        // Duplicate axis params are rejected.
        let dup = r#"
name = "t"
[[axes]]
param = "L"
deltas_ns = [0.0]
[[axes]]
param = "L"
deltas_ns = [10.0]
[[workloads]]
app = "milc"
"#;
        assert!(CampaignSpec::parse(dup, "x.toml").is_err());
    }

    #[test]
    fn conflicting_delta_sources_are_rejected() {
        // Two ways of giving the samples in one table must error, not
        // silently prefer one.
        for bad in [
            "name = \"t\"\n[grid]\ndeltas_ns = [0.0]\nwindow = { hi = 10.0 }\n[[workloads]]\napp = \"milc\"\n",
            "name = \"t\"\n[[axes]]\nparam = \"L\"\ndeltas = [0.0]\ndeltas_ns = [1.0]\n[[workloads]]\napp = \"milc\"\n",
            "name = \"t\"\n[[axes]]\nparam = \"G\"\ndeltas = [0.0]\nwindow = { hi = 1.0 }\n[[workloads]]\napp = \"milc\"\n",
            "name = \"t\"\nsearch_hi_ns = 2e6\n[grid]\ndeltas_ns = [0.0]\nsearch_hi_ns = 5e5\n[[workloads]]\napp = \"milc\"\n",
        ] {
            let err = CampaignSpec::parse(bad, "x.toml").unwrap_err();
            assert!(err.0.contains("mutually exclusive"), "{err}");
        }
    }

    #[test]
    fn decoder_allow_lists_derive_from_spec_fields() {
        // The unknown-key checks must stay in lockstep with SPEC_FIELDS
        // (which the docs test in turn checks against docs/SPEC.md).
        assert_eq!(
            allowed_keys(""),
            vec![
                "name",
                "reduce",
                "sweep_start",
                "backends",
                "search_hi_ns",
                "workloads",
                "topologies",
                "params",
                "grid",
                "axes"
            ]
        );
        assert_eq!(
            allowed_keys("workloads"),
            vec!["app", "ranks", "iters", "o_ns"]
        );
        assert_eq!(
            allowed_keys("grid"),
            vec!["deltas_ns", "window", "search_hi_ns"]
        );
        assert_eq!(allowed_keys("grid.window"), vec!["lo", "hi", "points"]);
        assert_eq!(
            allowed_keys("axes"),
            vec!["param", "deltas", "deltas_ns", "window"]
        );
    }

    #[test]
    fn axis_windows_expand_like_grid_windows() {
        let spec = CampaignSpec::parse(
            r#"
name = "t"
[[axes]]
param = "G"
window = { lo = 0.0, hi = 0.1, points = 3 }
[[workloads]]
app = "milc"
"#,
            "x.toml",
        )
        .unwrap();
        assert_eq!(spec.axes.len(), 1);
        assert_eq!(spec.axes[0].param, SweepParam::G);
        assert_eq!(spec.axes[0].deltas, vec![0.0, 0.05, 0.1]);
        assert!(spec.grid.deltas_ns.is_empty());
    }

    #[test]
    fn validation_rejects_oversubscribed_topology() {
        let bad = r#"
name = "bad"
[[workloads]]
app = "hpcg"
ranks = 64
[[topologies]]
kind = "dragonfly"
groups = 2
routers = 2
hosts = 2
"#;
        assert!(CampaignSpec::parse(bad, "x.toml").is_err());
    }
}

#![deny(missing_docs)]
//! # llamp-engine — the scenario-campaign subsystem
//!
//! LLAMP's value comes from sweeping *many* scenarios — workloads ×
//! topologies × parameter sets × latency grids × backends — not from
//! one-shot figures. This crate turns the analyzer stack into a batched
//! campaign system and is the chassis later scaling work (sharding,
//! async, remote backends) plugs into:
//!
//! | module | role |
//! |---|---|
//! | [`spec`] | declarative campaign specs (TOML/JSON), canonicalisation, content hashing |
//! | [`scenario`] | the job unit: spec cell → analyzer → backend answers |
//! | [`executor`] | work-stealing std-thread pool with panic isolation and per-job timeouts |
//! | [`cache`] | content-addressed result cache (point + zone granularity, optional JSON persistence) |
//! | [`campaign`] | orchestration: expand → dedup → probe cache → execute → deterministic results |
//! | [`value`] | dependency-free JSON/TOML document layer (the registry is unreachable in this build environment, so no serde) |
//!
//! The front door is the `llamp` binary (`src/bin/llamp.rs`):
//!
//! ```text
//! llamp run examples/campaign.toml --out results.json --cache cache.json
//! llamp list-workloads
//! llamp report results.json
//! ```
//!
//! ## Determinism contract
//!
//! A campaign's results JSON is a pure function of its canonical spec:
//! scenario entries are sorted by canonical key, floats use shortest
//! round-trip formatting, and no wall-clock data enters the file. Running
//! with 1 thread, N threads, a cold cache or a warm cache produces
//! byte-identical output (run statistics are reported separately via
//! [`campaign::RunSummary`]). This is what makes the cache safe: a cache
//! hit can only ever substitute a value that recomputation would have
//! reproduced exactly.
//!
//! ## Caching granularity
//!
//! Cache entries live at point level (`scenario-base × ∆L`) and zone
//! level (`scenario-base × search window`), not campaign level, so a new
//! campaign whose latency grid merely *overlaps* an earlier one reuses
//! every shared point and computes only the set difference. A scenario
//! whose pieces are all cached never builds its execution graph at all.

pub mod cache;
pub mod campaign;
pub mod executor;
pub mod metrics;
pub mod scenario;
pub mod spec;
pub mod value;

pub use cache::{CacheStats, CachedEntry, ResultCache};
pub use campaign::{
    run_campaign, run_campaign_checked, CampaignError, CampaignResult, Provenance, RunSummary,
    ScenarioError, ScenarioResult,
};
pub use executor::{run_jobs, ExecutorConfig, JobStatus};
pub use metrics::{metrics_value, render_metrics};
pub use scenario::{
    expand, AxisPointResult, AxisPointValue, PointResult, Scenario, ScenarioOutcome, ZonesResult,
};
pub use spec::{
    parse_backend, AxisSpec, Backend, CampaignSpec, GridSpec, LpSolver, ParamsPreset, ParamsSpec,
    SpecError, SweepParam, SweepStart, TopologySpec, WorkloadSpec,
};
pub use value::Value;

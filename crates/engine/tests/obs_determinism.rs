//! The observability determinism contract (ISSUE 6): results JSON must
//! be byte-identical with telemetry on or off, across thread counts and
//! backends — the recorder lives strictly beside the result channel.
//!
//! Obs state is process-global, so every test serializes through a
//! session lock (this test binary is its own process; `cargo test`'s
//! threaded harness only interleaves the tests within it).

use llamp_engine::value::parse_json;
use llamp_engine::{run_campaign, CampaignSpec, ExecutorConfig, ResultCache};
use std::sync::{Mutex, OnceLock};

fn session_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

const SPEC: &str = r#"
name = "obs-itest"
backends = ["parametric", "eval", "lp-sparse", "lp-parametric"]

[grid]
deltas_ns = [0.0, 20000.0, 40000.0]
search_hi_ns = 1000000.0

[[workloads]]
app = "cloverleaf"
ranks = 4
iters = 1
"#;

fn spec() -> CampaignSpec {
    CampaignSpec::parse(SPEC, "obs.toml").unwrap()
}

fn config(threads: usize) -> ExecutorConfig {
    ExecutorConfig {
        threads,
        job_timeout: None,
        ..Default::default()
    }
}

#[test]
fn results_are_byte_identical_with_tracing_on_and_off() {
    let _guard = session_lock().lock().unwrap();
    llamp_obs::disable();
    let off = run_campaign(&spec(), &config(1), &ResultCache::new())
        .0
        .to_json();

    llamp_obs::enable();
    let on_1 = run_campaign(&spec(), &config(1), &ResultCache::new())
        .0
        .to_json();
    let on_3 = run_campaign(&spec(), &config(3), &ResultCache::new())
        .0
        .to_json();
    let snapshot = llamp_obs::take();
    llamp_obs::disable();

    assert_eq!(off, on_1, "telemetry must never leak into results JSON");
    assert_eq!(off, on_3, "telemetry must stay out-of-band across threads");

    // The recorder actually saw the runs: spans from every layer.
    let summary = snapshot.summary();
    for path in [
        "campaign",
        "exec.job",
        "exec.job/scenario",
        "exec.job/scenario/scenario.build",
        "exec.job/scenario/scenario.build/reduce",
        "exec.job/scenario/scenario.build/schedgen.build",
        "exec.job/scenario/scenario.build/trace.ingest",
        "exec.job/scenario/lp.solve",
    ] {
        assert!(
            summary.spans.iter().any(|s| s.path == path),
            "span path {path:?} missing from {:?}",
            summary
                .spans
                .iter()
                .map(|s| s.path.as_str())
                .collect::<Vec<_>>()
        );
    }
    assert!(
        summary.hists.iter().any(|(k, _)| k == "lp.point_ns"),
        "per-point LP solve histogram missing"
    );
}

#[test]
fn chrome_trace_export_is_valid_json() {
    let _guard = session_lock().lock().unwrap();
    llamp_obs::enable();
    run_campaign(&spec(), &config(2), &ResultCache::new());
    let snapshot = llamp_obs::take();
    llamp_obs::disable();

    assert!(!snapshot.events.is_empty());
    let trace = snapshot.chrome_trace_json();
    let doc = parse_json(&trace).expect("chrome trace must parse as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), snapshot.events.len());
    for e in events {
        assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
        assert!(e.get("dur").and_then(|v| v.as_f64()).is_some());
    }
}

//! Integration tests for the campaign subsystem: spec round-trips, cache
//! semantics across runs, thread-count determinism, and the cross-backend
//! byte-identity contract of the LP solver variants.

use llamp_engine::{run_campaign, CampaignSpec, ExecutorConfig, Provenance, ResultCache};

const SPEC: &str = r#"
name = "itest"
backends = ["parametric", "eval"]

[grid]
deltas_ns = [0.0, 20000.0, 40000.0]
search_hi_ns = 1000000.0

[[workloads]]
app = "milc"
ranks = 4
iters = 1

[[workloads]]
app = "cloverleaf"
ranks = 4
iters = 1

[[topologies]]
kind = "uniform"

[[topologies]]
kind = "fattree"
k = 4
"#;

fn spec() -> CampaignSpec {
    CampaignSpec::parse(SPEC, "itest.toml").unwrap()
}

fn config(threads: usize) -> ExecutorConfig {
    ExecutorConfig {
        threads,
        job_timeout: None,
        ..Default::default()
    }
}

#[test]
fn spec_round_trip_preserves_hash_and_content() {
    let a = spec();
    // Canonical JSON re-encoding parses back to the identical spec.
    let b = CampaignSpec::parse(&a.to_value().to_json(), "x.json").unwrap();
    assert_eq!(a, b);
    assert_eq!(a.fingerprint(), b.fingerprint());
    // A reordered-but-equivalent TOML spec hashes identically.
    let reordered = r#"
name = "renamed-on-purpose"
backends = ["eval", "parametric"]

[grid]
deltas_ns = [40000.0, 0.0, 20000.0, 0.0]
search_hi_ns = 1000000.0

[[workloads]]
app = "cloverleaf"
ranks = 4
iters = 1

[[workloads]]
app = "milc"
ranks = 4
iters = 1

[[topologies]]
kind = "fattree"
k = 4

[[topologies]]
kind = "uniform"
"#;
    let c = CampaignSpec::parse(reordered, "y.toml").unwrap();
    // The name is not part of the sweep identity.
    assert_eq!(a.fingerprint(), c.fingerprint());
    // A genuinely different sweep hashes differently.
    let mut d = a.clone();
    d.grid.search_hi_ns *= 2.0;
    assert_ne!(a.fingerprint(), d.fingerprint());
}

#[test]
fn second_run_is_all_cache_hits_and_byte_identical() {
    let spec = spec();
    let cache = ResultCache::new();
    let (r1, s1) = run_campaign(&spec, &config(1), &cache);
    assert_eq!(s1.jobs_unique, 8, "2 workloads x 2 topologies x 2 backends");
    assert_eq!(s1.cache_hits, 0, "cold cache cannot hit");
    assert!(s1.cache_misses > 0);
    assert!(s1.provenance.iter().all(|p| *p == Provenance::Computed));

    let (r2, s2) = run_campaign(&spec, &config(1), &cache);
    assert_eq!(s2.cache_misses, 0, "warm cache must not recompute anything");
    assert!(s2.hit_rate() >= 0.9, "hit rate {}", s2.hit_rate());
    assert!(s2.provenance.iter().all(|p| *p == Provenance::FullCacheHit));
    assert_eq!(r1.to_json(), r2.to_json(), "results must be byte-identical");
}

#[test]
fn overlapping_grid_reuses_shared_points() {
    let a = spec();
    let cache = ResultCache::new();
    run_campaign(&a, &config(1), &cache);
    let misses_before = cache.stats().misses();

    // Extend the grid by one new point: only the new point (plus nothing
    // else) may miss per scenario.
    let mut b = a.clone();
    b.grid.deltas_ns.push(60_000.0);
    b.canonicalize();
    let (result, summary) = run_campaign(&b, &config(1), &cache);
    assert!(result.scenarios.iter().all(|s| s.outcome.is_ok()));
    let new_misses = cache.stats().misses() - misses_before;
    assert_eq!(
        new_misses, 8,
        "exactly one new grid point per scenario should miss"
    );
    assert!(summary.hit_rate() > 0.7, "hit rate {}", summary.hit_rate());
}

#[test]
fn cache_persistence_round_trips_through_disk() {
    let spec = spec();
    let cache = ResultCache::new();
    let (r1, _) = run_campaign(&spec, &config(1), &cache);

    let dir = std::env::temp_dir().join(format!("llamp-itest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.json");
    cache.save(&path).unwrap();

    let reloaded = ResultCache::load(&path).unwrap();
    assert_eq!(reloaded.len(), cache.len());
    let (r2, s2) = run_campaign(&spec, &config(1), &reloaded);
    assert_eq!(s2.cache_misses, 0);
    assert_eq!(r1.to_json(), r2.to_json());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn thread_count_does_not_change_results() {
    let spec = spec();
    // Fresh caches so both runs compute everything.
    let (r1, s1) = run_campaign(&spec, &config(1), &ResultCache::new());
    let (r2, s2) = run_campaign(&spec, &config(2), &ResultCache::new());
    assert_eq!(s1.jobs_executed, s2.jobs_executed);
    assert_eq!(
        r1, r2,
        "2-thread campaign must equal 1-thread campaign result-for-result"
    );
    assert_eq!(r1.to_json(), r2.to_json());
}

#[test]
fn lp_backends_are_byte_identical() {
    // The four LP solver variants (dense inverse, sparse LU, sparse +
    // parametric warm-start shortcut, sparse + dual-simplex re-solves)
    // must produce *byte-identical* numbers: same canonical extraction
    // from the same final bases. Only the backend label may differ
    // between their serialized scenarios.
    let spec = CampaignSpec::parse(
        r#"
name = "lp-identity"
backends = ["lp-dense", "lp-sparse", "lp-parametric", "lp-dual"]

[grid]
window = { lo = 0.0, hi = 80000.0, points = 5 }
search_hi_ns = 1000000.0

[[workloads]]
app = "cloverleaf"
ranks = 4
iters = 1

[[workloads]]
app = "milc"
ranks = 4
iters = 1
"#,
        "ident.toml",
    )
    .unwrap();
    let (result, _) = run_campaign(&spec, &config(2), &ResultCache::new());
    assert_eq!(result.scenarios.len(), 8, "2 workloads x 4 LP backends");
    // Group by workload, compare the serialized outcome (zones + sweep)
    // across the four backends byte for byte.
    for app in ["cloverleaf", "milc"] {
        let bodies: Vec<(String, String)> = result
            .scenarios
            .iter()
            .filter(|s| s.scenario.workload.canonical().starts_with(app))
            .map(|s| {
                let outcome = s.outcome.as_ref().expect("scenario solved");
                let body = s
                    .scenario
                    .to_value()
                    .to_json()
                    .replace(s.scenario.backend.name(), "<backend>");
                let zones = format!("{:?}", outcome.zones);
                let sweep = format!("{:?}", outcome.sweep);
                (body, format!("{zones}|{sweep}"))
            })
            .collect();
        assert_eq!(bodies.len(), 4, "{app}");
        for pair in bodies.windows(2) {
            assert_eq!(pair[0].0, pair[1].0, "{app}: scenario identity differs");
            assert_eq!(
                pair[0].1, pair[1].1,
                "{app}: results differ across LP backends"
            );
        }
    }
}

#[test]
fn lp_points_are_cache_state_independent() {
    // Each LP grid point warm-starts from the scenario's base-latency
    // anchor, never from a neighbouring point — so computing a *subset*
    // of the grid (because the rest was cached) must produce the same
    // bytes as computing the whole grid fresh.
    let parse = |deltas: &str| {
        CampaignSpec::parse(
            &format!(
                r#"
name = "cache-independence"
backends = ["lp-sparse"]
[grid]
deltas_ns = [{deltas}]
search_hi_ns = 1000000.0
[[workloads]]
app = "milc"
ranks = 4
iters = 1
"#
            ),
            "x.toml",
        )
        .unwrap()
    };
    // Warm a cache with a 2-point grid, then run the 3-point superset
    // against it: only the middle point computes, warm-started from the
    // anchor.
    let cache = ResultCache::new();
    run_campaign(&parse("0.0, 40000.0"), &config(1), &cache);
    let (with_cache, s1) = run_campaign(&parse("0.0, 20000.0, 40000.0"), &config(1), &cache);
    assert!(s1.cache_hits > 0, "the superset run must reuse points");
    // The same superset computed entirely fresh.
    let (fresh, _) = run_campaign(
        &parse("0.0, 20000.0, 40000.0"),
        &config(1),
        &ResultCache::new(),
    );
    assert_eq!(
        with_cache.to_json(),
        fresh.to_json(),
        "cached-subset and fresh runs must be byte-identical"
    );
}

#[test]
fn duplicate_scenarios_are_deduplicated() {
    let mut dup = spec();
    let w = dup.workloads[0].clone();
    dup.workloads.push(w);
    let (_, summary) = run_campaign(&dup, &config(1), &ResultCache::new());
    assert_eq!(summary.jobs_requested, 12, "3 workload entries x 2 x 2");
    assert_eq!(
        summary.jobs_unique, 8,
        "duplicate workload must not add jobs"
    );
}

#[test]
fn timed_out_jobs_leave_no_cache_entries() {
    let spec = spec();
    let cache = ResultCache::new();
    let zero_budget = ExecutorConfig {
        threads: 1,
        job_timeout: Some(std::time::Duration::ZERO),
        ..Default::default()
    };
    let (result, summary) = run_campaign(&spec, &zero_budget, &cache);
    assert!(
        summary
            .provenance
            .iter()
            .all(|p| *p == Provenance::TimedOut),
        "a zero budget must time every job out"
    );
    assert!(result.scenarios.iter().all(|s| s.outcome.is_err()));
    // Timed-out work must not be published: a rerun must recompute, not
    // silently flip to full-cache-hit success.
    assert!(cache.is_empty(), "cache has {} leaked entries", cache.len());
    let (r2, s2) = run_campaign(&spec, &config(1), &cache);
    assert!(s2.provenance.iter().all(|p| *p == Provenance::Computed));
    assert!(r2.scenarios.iter().all(|s| s.outcome.is_ok()));
}

const AXES_SPEC: &str = r#"
name = "axes-itest"
backends = ["lp-sparse", "lp-parametric"]
search_hi_ns = 1000000.0

[[axes]]
param = "L"
deltas_ns = [0.0, 20000.0, 40000.0]

[[axes]]
param = "G"
deltas = [0.0, 0.05]

[[workloads]]
app = "cloverleaf"
ranks = 4
iters = 1
"#;

fn axes_spec() -> CampaignSpec {
    CampaignSpec::parse(AXES_SPEC, "axes.toml").unwrap()
}

#[test]
fn two_axis_campaign_end_to_end() {
    let spec = axes_spec();
    assert_eq!(spec.axes.len(), 2);
    assert!(spec.grid.deltas_ns.is_empty());
    let cache = ResultCache::new();
    let (r1, s1) = run_campaign(&spec, &config(2), &cache);
    assert!(r1.scenarios.iter().all(|s| s.outcome.is_ok()));
    for s in &r1.scenarios {
        let outcome = s.outcome.as_ref().unwrap();
        assert_eq!(outcome.points.len(), 6, "3 L x 2 G points");
        assert!(outcome.sweep.is_empty(), "axes campaigns have no 1-D sweep");
        // The cartesian product is in lexicographic order, L outermost.
        let tuples: Vec<&[f64]> = outcome.points.iter().map(|p| p.deltas.as_slice()).collect();
        assert_eq!(tuples[0], [0.0, 0.0]);
        assert_eq!(tuples[1], [0.0, 0.05]);
        assert_eq!(tuples[2], [20_000.0, 0.0]);
        // Runtime grows along both axes; λ_G > 0 once G matters.
        let v0 = &outcome.points[0].value;
        let v1 = &outcome.points[1].value;
        assert!(v1.runtime_ns >= v0.runtime_ns);
        assert!(v0.lambda_l >= 0.0 && v0.lambda_g >= 0.0 && v0.lambda_o >= 0.0);
        assert!(outcome.zones.baseline_runtime_ns > 0.0);
    }
    // Second run: pure cache assembly, byte-identical.
    let (r2, s2) = run_campaign(&spec, &config(1), &cache);
    assert_eq!(s2.cache_misses, 0);
    assert!(s2.provenance.iter().all(|p| *p == Provenance::FullCacheHit));
    assert_eq!(r1.to_json(), r2.to_json());
    assert!(s1.cache_misses > 0);
}

#[test]
fn two_axis_lp_backends_are_byte_identical_across_cache_states() {
    // lp-sparse and lp-parametric must agree byte-for-byte on the 2-D
    // grid, and a run that computes only the set difference against a
    // warm cache must reproduce the fresh bytes exactly.
    let spec = axes_spec();
    let (fresh, _) = run_campaign(&spec, &config(2), &ResultCache::new());
    let mut bodies: Vec<String> = fresh
        .scenarios
        .iter()
        .map(|s| {
            let o = s.outcome.as_ref().unwrap();
            format!("{:?}|{:?}", o.zones, o.points)
        })
        .collect();
    assert_eq!(bodies.len(), 2, "one scenario per LP backend");
    bodies.dedup();
    assert_eq!(bodies.len(), 1, "lp backends differ on the 2-D grid");

    // Warm a cache with a 1-D L slice (G axis pinned to its base), then
    // run the full 2-D grid: the shared (∆L, 0) points hit, the rest
    // compute — and the bytes must equal the all-fresh run.
    let slice = CampaignSpec::parse(
        r#"
name = "axes-slice"
backends = ["lp-sparse", "lp-parametric"]
search_hi_ns = 1000000.0
[[axes]]
param = "L"
deltas_ns = [0.0, 20000.0, 40000.0]
[[workloads]]
app = "cloverleaf"
ranks = 4
iters = 1
"#,
        "slice.toml",
    )
    .unwrap();
    let cache = ResultCache::new();
    run_campaign(&slice, &config(1), &cache);
    let (warm, sw) = run_campaign(&spec, &config(1), &cache);
    assert!(sw.cache_hits > 0, "1-D slice points must be reused in 2-D");
    assert_eq!(warm.to_json(), fresh.to_json());
}

#[test]
fn axes_cross_sections_solve_warm_from_one_anchor() {
    // The acceptance bar: one cold anchor per scenario, every grid
    // cross-section warm. Compare the solver effort of the full 2-D grid
    // against a single-point campaign (the anchor alone): the 5 extra
    // points and 3 zone flips together must cost less than the anchor
    // did, which is only possible if they all start from its basis.
    let one_point = CampaignSpec::parse(
        r#"
name = "anchor-only"
backends = ["lp-parametric"]
search_hi_ns = 1000000.0
[[axes]]
param = "L"
deltas_ns = [0.0]
[[axes]]
param = "G"
deltas = [0.0]
[[workloads]]
app = "cloverleaf"
ranks = 4
iters = 1
"#,
        "one.toml",
    )
    .unwrap();
    let mut grid = axes_spec();
    grid.backends = vec![llamp_engine::parse_backend("lp-parametric").unwrap()];
    grid.canonicalize();
    let (_, s_anchor) = run_campaign(&one_point, &config(1), &ResultCache::new());
    let (_, s_grid) = run_campaign(&grid, &config(1), &ResultCache::new());
    let anchor_iters = s_anchor.solver.iterations;
    assert!(anchor_iters > 0);
    assert!(
        s_grid.solver.iterations < 2 * anchor_iters,
        "6-point grid ({} iters) must stay warm relative to its anchor ({} iters)",
        s_grid.solver.iterations,
        anchor_iters
    );
}

#[test]
fn axes_spec_round_trip_and_canonical_order() {
    let a = axes_spec();
    // JSON re-encoding parses back identically.
    let b = CampaignSpec::parse(&a.to_value().to_json(), "x.json").unwrap();
    assert_eq!(a, b);
    assert_eq!(a.fingerprint(), b.fingerprint());
    // Axis order in the file does not matter: G-before-L canonicalises to
    // L-before-G and hashes identically.
    let swapped = r#"
name = "swapped"
backends = ["lp-parametric", "lp-sparse"]
search_hi_ns = 1000000.0
[[axes]]
param = "G"
deltas = [0.05, 0.0]
[[axes]]
param = "L"
deltas_ns = [40000.0, 0.0, 20000.0]
[[workloads]]
app = "cloverleaf"
ranks = 4
iters = 1
"#;
    let c = CampaignSpec::parse(swapped, "y.toml").unwrap();
    assert_eq!(a.fingerprint(), c.fingerprint());
    // A different sweep hashes differently.
    let mut d = a.clone();
    d.axes[1].deltas.push(0.1);
    assert_ne!(a.fingerprint(), d.fingerprint());
}

#[test]
fn solver_stats_surface_in_run_summary() {
    // LP scenarios report their solver effort through the RunSummary side
    // channel (never the deterministic results file): a computed run has
    // iterations, a fully cached rerun has none — while the results stay
    // byte-identical across the two.
    let spec = CampaignSpec::parse(
        r#"
name = "stats"
backends = ["lp-sparse"]
[grid]
deltas_ns = [0.0, 40000.0]
search_hi_ns = 500000.0
[[workloads]]
app = "cloverleaf"
ranks = 4
iters = 1
"#,
        "stats.toml",
    )
    .unwrap();
    let cache = ResultCache::new();
    let (r1, s1) = run_campaign(&spec, &config(1), &cache);
    assert!(
        s1.solver.iterations > 0 && s1.solver.ftran_calls > 0,
        "computed LP run must report solver effort: {:?}",
        s1.solver
    );
    assert!(!s1.render_solver_stats().is_empty());
    let (r2, s2) = run_campaign(&spec, &config(1), &cache);
    assert_eq!(s2.solver.iterations, 0, "cached rerun solves nothing");
    assert!(s2.render_solver_stats().is_empty());
    assert_eq!(r1.to_json(), r2.to_json(), "stats never leak into results");
}

#[test]
fn reduced_and_unreduced_runs_never_share_cache_entries() {
    // Same sweep with reduction on and off: different spec fingerprints,
    // different cache keys (so the shared cache never cross-substitutes),
    // and answers that agree to tolerance but need not be bitwise equal.
    let on = spec();
    let mut off = spec();
    off.reduce = false;
    assert!(on.reduce);
    assert_ne!(on.fingerprint(), off.fingerprint());

    let cache = ResultCache::new();
    let (r_on, s_on) = run_campaign(&on, &config(2), &cache);
    let entries_after_on = cache.len();
    let (r_off, s_off) = run_campaign(&off, &config(2), &cache);
    // The second run found nothing reusable: every piece recomputed.
    assert_eq!(
        s_off.full_cache_hits, 0,
        "raw run must not hit reduced entries"
    );
    assert_eq!(cache.len(), 2 * entries_after_on);
    // Reduction ran only in the first campaign.
    assert!(!s_on.reduction.is_empty());
    assert!(s_on.reduction.rows_after < s_on.reduction.rows_before);
    // The raw run reports no reduction activity at all (so `llamp run
    // --no-reduce` never prints a reduction-totals block).
    assert!(s_off.reduction.is_empty());

    // Semantically identical answers (numerical tolerance).
    for (a, b) in r_on.scenarios.iter().zip(&r_off.scenarios) {
        let (oa, ob) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
        for (pa, pb) in oa.sweep.iter().zip(&ob.sweep) {
            assert!(
                (pa.runtime_ns - pb.runtime_ns).abs() <= 1e-9 * (1.0 + pa.runtime_ns),
                "reduced {} vs raw {}",
                pa.runtime_ns,
                pb.runtime_ns
            );
            assert!((pa.lambda - pb.lambda).abs() <= 1e-9);
        }
    }

    // And a reduced re-run against the shared cache is a pure hit.
    let (r_on2, s_on2) = run_campaign(&on, &config(1), &cache);
    assert_eq!(s_on2.full_cache_hits, s_on2.jobs_unique);
    assert_eq!(r_on.to_json(), r_on2.to_json());
}

#[test]
fn reduction_keeps_double_run_byte_identity() {
    // The determinism contract with reduction on (the default): two runs
    // from cold caches at different thread counts are byte-identical.
    let s = spec();
    let (r1, _) = run_campaign(&s, &config(1), &ResultCache::new());
    let (r2, _) = run_campaign(&s, &config(4), &ResultCache::new());
    assert_eq!(r1.to_json(), r2.to_json());
}

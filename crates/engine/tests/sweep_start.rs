//! The sweep-start policy contract: where a grid point's LP re-solve
//! *starts* (the scenario's anchor basis, a fresh longest-path crash
//! basis, or the row-count-driven `auto` choice) is pure strategy — the
//! campaign results file must stay byte-identical across all three
//! policies, every LP backend, and every thread count. These tests pin
//! that contract on the seven seed workloads.

use llamp_engine::spec::SWEEP_CRASH_ROW_THRESHOLD;
use llamp_engine::{run_campaign, CampaignSpec, ExecutorConfig, ResultCache, SweepStart};

/// All seven workload proxies x all four byte-identical LP variants.
const ALL_WORKLOADS_SPEC: &str = r#"
name = "sweep-start-identity"
backends = ["lp-dense", "lp-sparse", "lp-parametric", "lp-dual"]

[grid]
deltas_ns = [0.0, 20000.0, 40000.0, 80000.0]
search_hi_ns = 1000000.0

[[workloads]]
app = "lulesh"
ranks = 8
iters = 1

[[workloads]]
app = "hpcg"
ranks = 4
iters = 1

[[workloads]]
app = "milc"
ranks = 4
iters = 1

[[workloads]]
app = "icon"
ranks = 4
iters = 1

[[workloads]]
app = "lammps"
ranks = 4
iters = 1

[[workloads]]
app = "openmx"
ranks = 4
iters = 1

[[workloads]]
app = "cloverleaf"
ranks = 4
iters = 1
"#;

fn spec_with(start: SweepStart) -> CampaignSpec {
    let mut spec = CampaignSpec::parse(ALL_WORKLOADS_SPEC, "sweep.toml").unwrap();
    spec.sweep_start = start;
    spec
}

fn config(threads: usize) -> ExecutorConfig {
    ExecutorConfig {
        threads,
        job_timeout: None,
        ..Default::default()
    }
}

#[test]
fn policies_are_byte_identical_on_all_workloads_and_lp_backends() {
    // 7 workloads x 4 LP backends under each policy; the three results
    // files must be byte-for-byte equal (and every scenario must solve).
    let (anchor, s_anchor) = run_campaign(
        &spec_with(SweepStart::Anchor),
        &config(4),
        &ResultCache::new(),
    );
    assert_eq!(anchor.scenarios.len(), 28, "7 workloads x 4 LP backends");
    assert!(anchor.scenarios.iter().all(|s| s.outcome.is_ok()));
    assert_eq!(s_anchor.sweep_start, "anchor");

    let (crash, s_crash) = run_campaign(
        &spec_with(SweepStart::Crash),
        &config(4),
        &ResultCache::new(),
    );
    assert!(crash.scenarios.iter().all(|s| s.outcome.is_ok()));
    assert_eq!(s_crash.sweep_start, "crash");

    let (auto, s_auto) = run_campaign(
        &spec_with(SweepStart::Auto),
        &config(4),
        &ResultCache::new(),
    );
    assert_eq!(s_auto.sweep_start, "auto");

    assert_eq!(
        anchor.to_json(),
        crash.to_json(),
        "crash-start sweep bytes differ from anchor-start"
    );
    assert_eq!(
        anchor.to_json(),
        auto.to_json(),
        "auto-policy sweep bytes differ from anchor-start"
    );
}

#[test]
fn crash_point_parallelism_is_thread_deterministic() {
    // One scenario + many threads is the shape that lends idle workers to
    // the sweep loop (point_threads > 1): the sharded run must reproduce
    // the single-threaded bytes exactly, and a warm-cache rerun must
    // assemble the same file again.
    let one = r#"
name = "crash-shard"
backends = ["lp-sparse"]
sweep_start = "crash"

[grid]
window = { lo = 0.0, hi = 100000.0, points = 12 }
search_hi_ns = 1000000.0

[[workloads]]
app = "milc"
ranks = 4
iters = 1
"#;
    let spec = CampaignSpec::parse(one, "shard.toml").unwrap();
    assert_eq!(spec.sweep_start, SweepStart::Crash);
    let (r1, _) = run_campaign(&spec, &config(1), &ResultCache::new());
    let cache = ResultCache::new();
    let (r4, _) = run_campaign(&spec, &config(4), &cache);
    assert_eq!(
        r1.to_json(),
        r4.to_json(),
        "sharded crash-start sweep must be byte-identical to serial"
    );
    let (r4b, s4b) = run_campaign(&spec, &config(4), &cache);
    assert_eq!(s4b.cache_misses, 0);
    assert_eq!(r1.to_json(), r4b.to_json());
}

#[test]
fn policy_is_excluded_from_canonical_identity_and_cache_keys() {
    // sweep_start is strategy, not sweep identity: fingerprints match
    // across policies, and a cache warmed under one policy fully answers
    // a run under another.
    let anchor = spec_with(SweepStart::Anchor);
    let crash = spec_with(SweepStart::Crash);
    assert_eq!(anchor.fingerprint(), crash.fingerprint());

    let cache = ResultCache::new();
    let (r1, _) = run_campaign(&anchor, &config(4), &cache);
    let (r2, s2) = run_campaign(&crash, &config(4), &cache);
    assert_eq!(s2.cache_misses, 0, "policies must share cache entries");
    assert_eq!(s2.full_cache_hits, s2.jobs_unique);
    assert_eq!(r1.to_json(), r2.to_json());
}

#[test]
fn spec_field_round_trips_and_auto_resolves_on_rows() {
    // Non-default policies survive the spec JSON round-trip; the default
    // stays implicit (absent from the encoded document).
    let crash = spec_with(SweepStart::Crash);
    let encoded = crash.to_value().to_json();
    assert!(encoded.contains("sweep_start"));
    let back = CampaignSpec::parse(&encoded, "x.json").unwrap();
    assert_eq!(back.sweep_start, SweepStart::Crash);
    let auto = spec_with(SweepStart::Auto);
    assert!(!auto.to_value().to_json().contains("sweep_start"));

    // The auto policy keys on LP rows: small models anchor, huge crash.
    assert_eq!(SweepStart::Auto.resolve(100), SweepStart::Anchor);
    assert_eq!(
        SweepStart::Auto.resolve(SWEEP_CRASH_ROW_THRESHOLD),
        SweepStart::Crash
    );
    // Fixed policies ignore the row count.
    assert_eq!(SweepStart::Crash.resolve(1), SweepStart::Crash);
    assert_eq!(SweepStart::Anchor.resolve(usize::MAX), SweepStart::Anchor);

    // Unknown names are a spec error.
    assert!(SweepStart::parse("eager").is_err());
}

#[test]
fn cli_rejects_bad_sweep_start_with_usage_exit_code() {
    // `llamp run --sweep-start nope` is a usage error: exit code 2, like
    // any other malformed flag (documented in README § Exit codes).
    let dir = std::env::temp_dir().join(format!("llamp-sweepcli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("spec.toml");
    std::fs::write(
        &spec_path,
        "name = \"cli\"\nbackends = [\"lp-sparse\"]\n[grid]\ndeltas_ns = [0.0, 20000.0]\nsearch_hi_ns = 500000.0\n[[workloads]]\napp = \"milc\"\nranks = 4\niters = 1\n",
    )
    .unwrap();
    let bad = std::process::Command::new(env!("CARGO_BIN_EXE_llamp"))
        .args(["run", spec_path.to_str().unwrap(), "--sweep-start", "nope"])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(2), "bad policy must exit 2");
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(
        stderr.contains("sweep-start") && stderr.contains("nope"),
        "stderr should name the flag and the bad value: {stderr}"
    );

    // A valid override runs, reports the policy in --metrics, and emits
    // the same results bytes as the default policy.
    let run = |extra: &[&str]| {
        let out_path = dir.join(format!("out-{}.json", extra.join("-").replace("--", "")));
        let mut args = vec![
            "run",
            spec_path.to_str().unwrap(),
            "--threads",
            "2",
            "--metrics",
            "--out",
            out_path.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_llamp"))
            .args(&args)
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(0), "{:?}", out);
        (
            std::fs::read_to_string(&out_path).unwrap(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (default_json, default_err) = run(&[]);
    let (crash_json, crash_err) = run(&["--sweep-start", "crash"]);
    assert!(default_err.contains("sweep start: auto"), "{default_err}");
    assert!(crash_err.contains("sweep start: crash"), "{crash_err}");
    assert_eq!(default_json, crash_json, "policy must not change results");
    std::fs::remove_dir_all(&dir).ok();
}

//! Chaos integration suite (ISSUE 8): end-to-end fault injection across
//! the trace → solve → campaign pipeline.
//!
//! The resilience contract under test:
//!
//! 1. **Recovered runs are byte-identical.** When every injected fault is
//!    absorbed by a recovery mechanism (solver fallback ladder, executor
//!    retry, cache quarantine-and-recompute), the results JSON is exactly
//!    the bytes a fault-free run produces.
//! 2. **Unrecovered faults are typed errors.** Past the recovery budget,
//!    failures surface as [`ScenarioError`] / [`CampaignError`] values
//!    with partial results retained — never a panic, never a corrupt file.
//!
//! The fault registry and obs recorder are process-global, so every test
//! serializes through a session lock and clears the registry on exit.

use llamp_engine::{
    run_campaign, run_campaign_checked, CampaignSpec, ExecutorConfig, ResultCache, ScenarioError,
};
use std::sync::{Mutex, OnceLock};

fn session_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Lock the session, recovering from a poisoned mutex (a failed chaos
/// test must not cascade into every later test).
fn chaos_session() -> std::sync::MutexGuard<'static, ()> {
    let guard = match session_lock().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    llamp_faults::clear();
    guard
}

const SPEC: &str = r#"
name = "chaos-itest"
backends = ["parametric", "lp-sparse"]

[grid]
deltas_ns = [0.0, 20000.0]
search_hi_ns = 1000000.0

[[workloads]]
app = "cloverleaf"
ranks = 4
iters = 1
"#;

fn spec() -> CampaignSpec {
    CampaignSpec::parse(SPEC, "chaos.toml").unwrap()
}

fn config(max_retries: u32) -> ExecutorConfig {
    // 1 worker thread: fault hit-order is then a pure function of the
    // (deterministic) scenario order, so count arms land reproducibly.
    ExecutorConfig {
        threads: 1,
        job_timeout: None,
        max_retries,
        retry_backoff_ms: 0,
    }
}

fn run_bytes(max_retries: u32) -> String {
    let cache = ResultCache::new();
    let (result, _) = run_campaign(&spec(), &config(max_retries), &cache);
    result.to_json()
}

#[test]
fn solver_stall_recovery_is_byte_identical() {
    let _g = chaos_session();
    let clean = run_bytes(0);
    llamp_faults::configure("solve.stall:1", 0).unwrap();
    let faulted = run_bytes(0);
    assert!(llamp_faults::fired_total() >= 1, "fault never fired");
    llamp_faults::clear();
    assert_eq!(
        clean, faulted,
        "solver fallback ladder must reproduce the fault-free bytes"
    );
}

#[test]
fn executor_panic_recovery_is_byte_identical_and_counted() {
    let _g = chaos_session();
    let clean = run_bytes(1);
    llamp_faults::configure("exec.job.panic:1", 0).unwrap();
    llamp_obs::enable();
    let faulted = run_bytes(1);
    let snap = llamp_obs::take();
    llamp_obs::disable();
    llamp_faults::clear();
    assert_eq!(
        clean, faulted,
        "a retried panic must reproduce the fault-free bytes"
    );
    assert!(
        snap.counters.get("exec.retry").copied().unwrap_or(0) >= 1,
        "retry must be visible as exec.retry"
    );
    assert!(
        snap.counters.get("fault.injected").copied().unwrap_or(0) >= 1,
        "injection must be visible as fault.injected"
    );
}

#[test]
fn torn_cache_write_quarantines_and_recomputes_identically() {
    let _g = chaos_session();
    let dir = std::env::temp_dir().join(format!("llamp-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.json");

    let cache = ResultCache::new();
    let (result, _) = run_campaign(&spec(), &config(0), &cache);
    let clean = result.to_json();

    // Tear the write mid-file, as a crash or full disk would.
    llamp_faults::configure("cache.save.torn:1", 0).unwrap();
    cache.save(&path).unwrap();
    llamp_faults::clear();

    // Reload: the damage is detected, the file quarantined, and the run
    // recomputes from scratch to the exact same bytes.
    let reloaded = ResultCache::load(&path).unwrap();
    assert!(!path.exists(), "torn file should have been quarantined");
    let (again, summary) = run_campaign(&spec(), &config(0), &reloaded);
    assert_eq!(clean, again.to_json());
    assert_eq!(summary.cache_hits, 0, "nothing salvageable should hit");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unrecovered_faults_are_typed_errors_with_partial_results() {
    let _g = chaos_session();
    // Every job panics and retries are off: nothing can recover.
    llamp_faults::configure("exec.job.panic:0.999999", 0).unwrap();
    let err = run_campaign_checked(&spec(), &config(0), &ResultCache::new(), 0)
        .expect_err("a blown fault budget must be an error");
    llamp_faults::clear();
    assert!(!err.failures.is_empty());
    for (key, cause) in &err.failures {
        assert!(!key.is_empty());
        assert!(
            matches!(cause, ScenarioError::Panicked(m) if m.contains("injected")),
            "expected an injected panic, got {cause:?}"
        );
    }
    // The partial result still carries every scenario slot, typed.
    assert_eq!(err.result.scenarios.len(), err.summary.jobs_unique);
    let rendered = err.to_string();
    assert!(rendered.contains("fault budget"));
}

#[test]
fn fault_budget_tolerates_bounded_failures() {
    let _g = chaos_session();
    // Exactly one job panics (count arm), retries off.
    llamp_faults::configure("exec.job.panic:1", 0).unwrap();
    let (result, _) = run_campaign_checked(&spec(), &config(0), &ResultCache::new(), 1)
        .expect("one failure within a budget of one must pass");
    llamp_faults::clear();
    let failed = result
        .scenarios
        .iter()
        .filter(|s| s.outcome.is_err())
        .count();
    assert_eq!(failed, 1, "the failed slot stays a typed error");

    // The same single failure with a zero budget is a campaign error.
    llamp_faults::configure("exec.job.panic:1", 0).unwrap();
    let err = run_campaign_checked(&spec(), &config(0), &ResultCache::new(), 0)
        .expect_err("budget 0 tolerates nothing");
    llamp_faults::clear();
    assert_eq!(err.failures.len(), 1);
    assert_eq!(err.fault_budget, 0);
}

//! Cache-level telemetry (ISSUE 6, satellite 3): the per-kind obs
//! counters `cache.{pt,apt,zones,mzones}.{hit,miss,put}` must match the
//! cache behaviour actually observed — cold run, warm run, and a disk
//! round-trip — for both cache-key families (grid campaigns use
//! `pt`/`zones`, axes campaigns use `apt`/`mzones`).
//!
//! Obs state is process-global; every test serializes through a session
//! lock (this binary is its own process).

use llamp_engine::{run_campaign, CampaignSpec, ExecutorConfig, ResultCache};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

fn session_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

const GRID_SPEC: &str = r#"
name = "cache-obs-grid"
backends = ["parametric"]

[grid]
deltas_ns = [0.0, 20000.0, 40000.0]
search_hi_ns = 1000000.0

[[workloads]]
app = "cloverleaf"
ranks = 4
iters = 1
"#;

const AXES_SPEC: &str = r#"
name = "cache-obs-axes"
backends = ["lp-parametric"]
search_hi_ns = 1000000.0

[[axes]]
param = "L"
deltas_ns = [0.0, 20000.0]

[[axes]]
param = "G"
deltas = [0.0, 0.05]

[[workloads]]
app = "cloverleaf"
ranks = 4
iters = 1
"#;

fn config() -> ExecutorConfig {
    ExecutorConfig {
        threads: 1,
        job_timeout: None,
        ..Default::default()
    }
}

/// Run one campaign under a fresh obs session; return its counters.
fn counters_of(spec: &CampaignSpec, cache: &ResultCache) -> BTreeMap<String, u64> {
    llamp_obs::enable();
    let (result, _) = run_campaign(spec, &config(), cache);
    assert!(result.scenarios.iter().all(|s| s.outcome.is_ok()));
    let snapshot = llamp_obs::take();
    llamp_obs::disable();
    snapshot.counters
}

fn get(c: &BTreeMap<String, u64>, k: &str) -> u64 {
    c.get(k).copied().unwrap_or(0)
}

#[test]
fn grid_campaign_counts_pt_and_zones_kinds() {
    let _guard = session_lock().lock().unwrap();
    let spec = CampaignSpec::parse(GRID_SPEC, "grid.toml").unwrap();
    let cache = ResultCache::new();

    // Cold: every point and the zones triple miss once, then publish.
    let cold = counters_of(&spec, &cache);
    assert_eq!(get(&cold, "cache.pt.miss"), 3);
    assert_eq!(get(&cold, "cache.pt.put"), 3);
    assert_eq!(get(&cold, "cache.zones.miss"), 1);
    assert_eq!(get(&cold, "cache.zones.put"), 1);
    assert_eq!(get(&cold, "cache.pt.hit"), 0);
    assert_eq!(get(&cold, "cache.zones.hit"), 0);

    // Warm: the full-cache-hit probe replays every lookup as a hit; no
    // misses, no new entries.
    let warm = counters_of(&spec, &cache);
    assert_eq!(get(&warm, "cache.pt.hit"), 3);
    assert_eq!(get(&warm, "cache.zones.hit"), 1);
    assert_eq!(get(&warm, "cache.pt.miss"), 0);
    assert_eq!(get(&warm, "cache.pt.put"), 0);
    assert_eq!(get(&warm, "cache.zones.miss"), 0);

    // Disk round-trip: loading admits every saved entry back through
    // `put` (counted per kind), after which the run is all hits again.
    let dir = std::env::temp_dir().join(format!("llamp-obs-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.json");
    cache.save(&path).unwrap();

    llamp_obs::enable();
    let reloaded = ResultCache::load(&path).unwrap();
    let load_counters = llamp_obs::take().counters;
    llamp_obs::disable();
    assert_eq!(get(&load_counters, "cache.pt.put"), 3);
    assert_eq!(get(&load_counters, "cache.zones.put"), 1);

    let replayed = counters_of(&spec, &reloaded);
    assert_eq!(get(&replayed, "cache.pt.hit"), 3);
    assert_eq!(get(&replayed, "cache.zones.hit"), 1);
    assert_eq!(get(&replayed, "cache.pt.miss"), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn axes_campaign_counts_apt_and_mzones_kinds() {
    let _guard = session_lock().lock().unwrap();
    let spec = CampaignSpec::parse(AXES_SPEC, "axes.toml").unwrap();
    let cache = ResultCache::new();

    // 2×2 axis grid → 4 apt entries plus one mzones triple; the grid
    // kinds must not appear at all.
    let cold = counters_of(&spec, &cache);
    assert_eq!(get(&cold, "cache.apt.miss"), 4);
    assert_eq!(get(&cold, "cache.apt.put"), 4);
    assert_eq!(get(&cold, "cache.mzones.miss"), 1);
    assert_eq!(get(&cold, "cache.mzones.put"), 1);
    assert_eq!(get(&cold, "cache.pt.miss"), 0);
    assert_eq!(get(&cold, "cache.zones.miss"), 0);

    let warm = counters_of(&spec, &cache);
    assert_eq!(get(&warm, "cache.apt.hit"), 4);
    assert_eq!(get(&warm, "cache.mzones.hit"), 1);
    assert_eq!(get(&warm, "cache.apt.miss"), 0);
    assert_eq!(get(&warm, "cache.apt.put"), 0);
}

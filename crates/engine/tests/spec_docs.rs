//! `docs/SPEC.md` must cover every field the spec parser accepts: this
//! test enumerates the parser's authoritative field list
//! ([`llamp_engine::spec::SPEC_FIELDS`]) plus the accepted backend,
//! preset and sweep-parameter names, and requires each to appear
//! (backtick-quoted) in the documentation. Adding a spec field without
//! documenting it — or documenting a field the parser does not accept —
//! fails here.

use llamp_engine::spec::SPEC_FIELDS;

fn spec_md() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/SPEC.md");
    std::fs::read_to_string(path).expect("docs/SPEC.md exists")
}

#[test]
fn every_parser_field_is_documented() {
    let doc = spec_md();
    for field in SPEC_FIELDS {
        // Leaf name, backtick-quoted, must appear (e.g. "grid.window.lo"
        // requires `lo`). Table headers in SPEC.md quote keys this way.
        let leaf = field.rsplit('.').next().unwrap();
        assert!(
            doc.contains(&format!("`{leaf}`")),
            "docs/SPEC.md does not document spec field '{field}'"
        );
    }
}

#[test]
fn every_backend_preset_and_param_name_is_documented() {
    let doc = spec_md();
    for backend in [
        "parametric",
        "eval",
        "lp",
        "lp-dense",
        "lp-sparse",
        "lp-parametric",
        "lp-dual",
    ] {
        assert!(
            doc.contains(&format!("`{backend}`")),
            "docs/SPEC.md does not document backend '{backend}'"
        );
    }
    for preset in ["cscs", "piz-daint", "didactic"] {
        assert!(
            doc.contains(&format!("`{preset}`")),
            "docs/SPEC.md does not document preset '{preset}'"
        );
    }
    for param in llamp_engine::SweepParam::ALL {
        assert!(
            doc.contains(&format!("`{}`", param.name())),
            "docs/SPEC.md does not document sweep param '{param}'"
        );
    }
}

#[test]
fn documented_table_keys_exist_in_the_parser() {
    // The reverse direction: every key documented in a SPEC.md field
    // table (rows shaped "| `key` | ...") must be accepted by the
    // parser. Only leaf keys are listed in tables, so compare leaves.
    let doc = spec_md();
    let leaves: Vec<&str> = SPEC_FIELDS
        .iter()
        .map(|f| f.rsplit('.').next().unwrap())
        .collect();
    let backends = [
        "parametric",
        "eval",
        "lp",
        "lp-sparse",
        "lp-dense",
        "lp-parametric",
        "lp-dual",
    ];
    // Only rows of *field* tables count — those whose header row is
    // "| key | type | default | meaning |" (the backend and cache-kind
    // tables have different headers).
    let mut in_field_table = false;
    for line in doc.lines() {
        if line.starts_with("| key |") {
            in_field_table = true;
            continue;
        }
        if !line.starts_with('|') {
            in_field_table = false;
            continue;
        }
        if !in_field_table {
            continue;
        }
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        let Some(key) = rest.split('`').next() else {
            continue;
        };
        if backends.contains(&key) {
            continue;
        }
        // Table rows may use dotted paths ("window.lo"); compare leaves.
        let leaf = key.rsplit('.').next().unwrap();
        assert!(
            leaves.contains(&leaf),
            "docs/SPEC.md documents '{key}' but the parser does not accept it"
        );
    }
}

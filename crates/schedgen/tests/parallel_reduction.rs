//! Property tests for the partitioned (rank-parallel) reduction path.
//!
//! The partitioned reducer splits the graph into rank-local regions with
//! virtual boundary vertices at every cross-rank edge, reduces regions
//! independently, and stitches the survivors back together. Three
//! properties must hold on *arbitrary* multi-rank DAGs:
//!
//! 1. **Thread invariance** — the stitched [`ReducedGraph`] is a pure
//!    function of the input graph: bit-identical (same `Debug` image,
//!    which covers vertices, edges, costs, provenance and stats) at any
//!    worker count.
//! 2. **Makespan preservation** — the longest path through the reduced
//!    graph equals the longest path through the raw graph for every
//!    LogGPS binding, whether the reduction ran on the global path or
//!    the partitioned path.
//! 3. **Home totality** — every original vertex maps to a surviving
//!    home vertex, so dual lift-back has somewhere to land.

use llamp_schedgen::{
    reduce, CostExpr, EdgeKind, ExecGraph, GraphBuilder, GraphView, ReduceConfig, VertexKind,
};
use proptest::prelude::*;

/// Longest-path makespan of any [`GraphView`] under a concrete LogGPS
/// binding, via one sweep over the topological order. This is the
/// quantity the reduction passes promise to preserve exactly.
fn makespan<V: GraphView + ?Sized>(g: &V, o: f64, l: f64, big_g: f64) -> f64 {
    let mut finish = vec![0.0_f64; g.num_vertices()];
    let mut best = 0.0_f64;
    for &v in g.topo_order() {
        let mut start = 0.0_f64;
        for e in g.preds(v) {
            start = start.max(finish[e.other as usize] + e.cost.eval(o, l, big_g));
        }
        let f = start + g.vertex(v).cost.eval(o, l, big_g);
        finish[v as usize] = f;
        best = best.max(f);
    }
    best
}

/// One random layered SPMD-ish DAG: `nranks` ranks, each a chain of
/// `layers` calc vertices, plus random intra-rank skip edges and random
/// forward cross-rank comm edges. Layer ordering guarantees acyclicity.
#[derive(Clone, Debug)]
struct RandomDag {
    nranks: u32,
    layers: u32,
    /// Per-vertex compute cost in ns (index = rank * layers + layer).
    costs: Vec<f64>,
    /// Intra-rank skip edges: (rank, from_layer, to_layer, cost_ns).
    skips: Vec<(u32, u32, u32, f64)>,
    /// Cross-rank comm edges: (from_rank, from_layer, to_rank, to_layer, bytes).
    crossings: Vec<(u32, u32, u32, u32, u64)>,
}

impl RandomDag {
    fn build(&self) -> ExecGraph {
        let n = (self.nranks * self.layers) as usize;
        let mut b = GraphBuilder::with_capacity(self.nranks, n, n + self.skips.len());
        let id = |r: u32, i: u32| r * self.layers + i;
        for r in 0..self.nranks {
            for i in 0..self.layers {
                let c = self.costs[id(r, i) as usize];
                b.add_vertex(r, VertexKind::Calc, CostExpr::constant(c));
                if i > 0 {
                    b.add_edge(id(r, i - 1), id(r, i), EdgeKind::Local, CostExpr::ZERO);
                }
            }
        }
        for &(r, from, to, c) in &self.skips {
            b.add_edge(
                id(r, from),
                id(r, to),
                EdgeKind::Local,
                CostExpr::constant(c),
            );
        }
        for &(fr, fi, tr, ti, bytes) in &self.crossings {
            b.add_edge(
                id(fr, fi),
                id(tr, ti),
                EdgeKind::Comm,
                CostExpr::wire(bytes),
            );
        }
        b.finish().expect("layer ordering keeps the DAG acyclic")
    }
}

fn dag_strategy() -> impl Strategy<Value = RandomDag> {
    (2u32..=4, 3u32..=10).prop_flat_map(|(nranks, layers)| {
        let n = (nranks * layers) as usize;
        let costs = prop::collection::vec(0.0f64..5_000.0, n);
        // Skip edges jump at least two layers so they are never parallel
        // to the chain; about half carry zero cost to exercise the
        // zero-cost fold paths.
        let skips = prop::collection::vec(
            (
                0..nranks,
                0..layers.saturating_sub(2),
                any::<bool>(),
                0.0f64..2_000.0,
            ),
            0..=8,
        )
        .prop_map(move |raw| {
            raw.into_iter()
                .map(|(r, from, zero, c)| (r, from, from + 2, if zero { 0.0 } else { c }))
                .collect::<Vec<_>>()
        });
        // Cross edges always go strictly forward in layer index, so the
        // combined graph stays a DAG regardless of rank pairing.
        let crossings =
            prop::collection::vec((0..nranks, 0..layers - 1, 0..nranks, 1u64..65_536), 1..=10)
                .prop_map(move |raw| {
                    raw.into_iter()
                        .map(|(fr, fi, tr, bytes)| {
                            let tr = if tr == fr { (fr + 1) % nranks } else { tr };
                            (fr, fi, tr, fi + 1, bytes)
                        })
                        .collect::<Vec<_>>()
                });
        (costs, skips, crossings).prop_map(move |(costs, skips, crossings)| RandomDag {
            nranks,
            layers,
            costs,
            skips,
            crossings,
        })
    })
}

fn partitioned_cfg(threads: usize) -> ReduceConfig {
    ReduceConfig {
        threads,
        par_threshold: 0, // force the region path even on tiny graphs
        ..ReduceConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 1 + 3: thread-count invariance and home totality.
    #[test]
    fn partitioned_reduction_is_deterministic_across_threads(dag in dag_strategy()) {
        let g = dag.build();
        let r1 = reduce(&g, &partitioned_cfg(1));
        let img1 = format!("{r1:?}");
        for threads in [2usize, 4] {
            let rt = reduce(&g, &partitioned_cfg(threads));
            prop_assert!(
                img1 == format!("{rt:?}"),
                "reduction output differs between 1 and {} threads",
                threads
            );
        }
        let n = r1.graph().num_vertices() as u32;
        for orig in 0..g.num_vertices() as u32 {
            prop_assert!(r1.home_of(orig) < n, "vertex {} lost its home", orig);
        }
    }

    /// Property 2: the reduced graph has the same longest-path makespan
    /// as the raw graph under several LogGPS bindings — on both the
    /// global reduction path and the partitioned one.
    #[test]
    fn reduction_preserves_makespan(dag in dag_strategy()) {
        let g = dag.build();
        let global = reduce(&g, &ReduceConfig::default());
        let parted = reduce(&g, &partitioned_cfg(4));
        for (o, l, big_g) in [
            (0.0, 0.0, 0.0),
            (5_000.0, 1_000.0, 0.04),
            (1_500.0, 25_000.0, 0.9),
        ] {
            let want = makespan(&g, o, l, big_g);
            for (name, r) in [("global", &global), ("partitioned", &parted)] {
                let got = makespan(r.graph(), o, l, big_g);
                prop_assert!(
                    llamp_util::approx_eq(want, got, 1e-6, 1e-9),
                    "{} path: raw makespan {} != reduced {} at (o={}, l={}, G={})",
                    name, want, got, o, l, big_g
                );
            }
        }
    }
}

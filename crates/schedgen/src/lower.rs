//! Lowering of matched point-to-point messages into graph gadgets.
//!
//! * **Eager** (`bytes < S`): the send vertex costs `o` on the sender, the
//!   receive vertex costs `o` on the receiver, and the communication edge
//!   costs `L + (s−1)·G` — exactly Fig. 3C of the paper.
//! * **Rendezvous** (`bytes ≥ S`): the REQ/data/FIN handshake of Fig. 14 is
//!   modelled with a handshake vertex `H` satisfying
//!   `T(H) ≥ T(send issued)` and `T(H) ≥ T(recv posted) + L`, after which
//!   the sender completes at `H + 3o + 3L + (s−1)G` and the receiver at
//!   `H + 2o + 3L + (s−1)G` — the exact constraint structure of the LP in
//!   Fig. 15 (Appendix B).

use crate::graph::{CostExpr, EdgeKind, GraphBuilder, VertexKind};

/// The four interesting vertices of a lowered message.
#[derive(Debug, Clone, Copy)]
pub struct LoweredMessage {
    /// Sender-side issue vertex (chain continues here for `Isend`).
    pub issue: u32,
    /// Sender-side completion (chain continues here for blocking `Send`;
    /// `Wait` targets for `Isend`).
    pub send_done: u32,
    /// Receiver-side posting vertex (chain continues here for `Irecv`).
    pub post: u32,
    /// Receiver-side completion (delivery; `Recv`/`Wait` continue here).
    pub recv_done: u32,
}

/// Shared p2p lowering context: the graph under construction plus the
/// rendezvous threshold `S`.
pub struct Lowering<'a> {
    /// Graph being built.
    pub builder: &'a mut GraphBuilder,
    /// Rendezvous threshold in bytes (messages of at least this size
    /// handshake).
    pub rndv_threshold: u64,
}

impl<'a> Lowering<'a> {
    /// Lower one matched message. `pred_s`/`pred_r` are the chain vertices
    /// after which the send is issued / the receive is posted.
    pub fn message(
        &mut self,
        sender: u32,
        pred_s: u32,
        receiver: u32,
        pred_r: u32,
        bytes: u64,
        tag: u32,
    ) -> LoweredMessage {
        if bytes < self.rndv_threshold {
            self.eager(sender, pred_s, receiver, pred_r, bytes, tag)
        } else {
            self.rendezvous(sender, pred_s, receiver, pred_r, bytes, tag)
        }
    }

    fn eager(
        &mut self,
        sender: u32,
        pred_s: u32,
        receiver: u32,
        pred_r: u32,
        bytes: u64,
        tag: u32,
    ) -> LoweredMessage {
        let b = &mut *self.builder;
        let s = b.add_vertex(
            sender,
            VertexKind::Send {
                peer: receiver,
                bytes,
                tag,
            },
            CostExpr::o(1.0),
        );
        b.add_edge(pred_s, s, EdgeKind::Local, CostExpr::ZERO);
        // Posting and delivery are distinct vertices (paper Fig. 13): an
        // `Irecv`'s chain continues from the zero-cost post, while the
        // delivery vertex needs both the post and the message.
        let post = b.add_vertex(receiver, VertexKind::Calc, CostExpr::ZERO);
        b.add_edge(pred_r, post, EdgeKind::Local, CostExpr::ZERO);
        let r = b.add_vertex(
            receiver,
            VertexKind::Recv {
                peer: sender,
                bytes,
                tag,
            },
            CostExpr::o(1.0),
        );
        b.add_edge(post, r, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(s, r, EdgeKind::Comm, CostExpr::wire(bytes));
        LoweredMessage {
            issue: s,
            send_done: s,
            post,
            recv_done: r,
        }
    }

    fn rendezvous(
        &mut self,
        sender: u32,
        pred_s: u32,
        receiver: u32,
        pred_r: u32,
        bytes: u64,
        tag: u32,
    ) -> LoweredMessage {
        let b = &mut *self.builder;
        // Issue and post are zero-cost: the protocol's costs sit on the
        // handshake's outgoing edges (Fig. 15).
        let s = b.add_vertex(
            sender,
            VertexKind::Send {
                peer: receiver,
                bytes,
                tag,
            },
            CostExpr::ZERO,
        );
        b.add_edge(pred_s, s, EdgeKind::Local, CostExpr::ZERO);
        let r = b.add_vertex(
            receiver,
            VertexKind::Recv {
                peer: sender,
                bytes,
                tag,
            },
            CostExpr::ZERO,
        );
        b.add_edge(pred_r, r, EdgeKind::Local, CostExpr::ZERO);

        let h = b.add_vertex(sender, VertexKind::Handshake, CostExpr::ZERO);
        b.add_edge(s, h, EdgeKind::Rendezvous, CostExpr::ZERO);
        // REQ from the receiver reaches the sender one latency later.
        b.add_edge(
            r,
            h,
            EdgeKind::Rendezvous,
            CostExpr {
                l_count: 1.0,
                ..CostExpr::ZERO
            },
        );
        let body = bytes.saturating_sub(1) as f64;
        let send_done = b.add_vertex(sender, VertexKind::Calc, CostExpr::ZERO);
        b.add_edge(
            h,
            send_done,
            EdgeKind::Rendezvous,
            CostExpr {
                o_count: 3.0,
                l_count: 3.0,
                gbytes: body,
                ..CostExpr::ZERO
            },
        );
        let recv_done = b.add_vertex(receiver, VertexKind::Calc, CostExpr::ZERO);
        b.add_edge(
            h,
            recv_done,
            EdgeKind::Rendezvous,
            CostExpr {
                o_count: 2.0,
                l_count: 3.0,
                gbytes: body,
                ..CostExpr::ZERO
            },
        );
        LoweredMessage {
            issue: s,
            send_done,
            post: r,
            recv_done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn anchors(b: &mut GraphBuilder) -> (u32, u32) {
        let a0 = b.add_vertex(0, VertexKind::Calc, CostExpr::ZERO);
        let a1 = b.add_vertex(1, VertexKind::Calc, CostExpr::ZERO);
        (a0, a1)
    }

    #[test]
    fn eager_message_shape() {
        let mut b = GraphBuilder::new(2);
        let (a0, a1) = anchors(&mut b);
        let mut low = Lowering {
            builder: &mut b,
            rndv_threshold: 1024,
        };
        let m = low.message(0, a0, 1, a1, 100, 7);
        assert_eq!(m.issue, m.send_done);
        // Posting precedes delivery (Fig. 13): distinct vertices.
        assert_ne!(m.post, m.recv_done);
        let g = b.finish().unwrap();
        assert_eq!(g.num_messages(), 1);
        // Recv has two preds: local chain + comm edge.
        assert_eq!(g.preds(m.recv_done).len(), 2);
        assert!(g
            .preds(m.recv_done)
            .iter()
            .any(|e| e.kind == EdgeKind::Comm && e.cost.l_count == 1.0 && e.cost.gbytes == 99.0));
    }

    #[test]
    fn rendezvous_message_shape() {
        let mut b = GraphBuilder::new(2);
        let (a0, a1) = anchors(&mut b);
        let mut low = Lowering {
            builder: &mut b,
            rndv_threshold: 1024,
        };
        let m = low.message(0, a0, 1, a1, 4096, 0);
        assert_ne!(m.issue, m.send_done);
        assert_ne!(m.post, m.recv_done);
        let g = b.finish().unwrap();
        // Handshake vertex exists with two rendezvous preds.
        let h = (0..g.num_vertices() as u32)
            .find(|&v| g.vertex(v).kind == VertexKind::Handshake)
            .unwrap();
        assert_eq!(g.preds(h).len(), 2);
        // Sender completion edge carries 3o + 3L + (s-1)G.
        let e = g.preds(m.send_done)[0];
        assert_eq!(e.cost.o_count, 3.0);
        assert_eq!(e.cost.l_count, 3.0);
        assert_eq!(e.cost.gbytes, 4095.0);
        // Receiver completion edge carries 2o + 3L + (s-1)G.
        let e = g.preds(m.recv_done)[0];
        assert_eq!(e.cost.o_count, 2.0);
        assert_eq!(e.cost.l_count, 3.0);
    }

    #[test]
    fn threshold_boundary_is_rendezvous() {
        let mut b = GraphBuilder::new(2);
        let (a0, a1) = anchors(&mut b);
        let mut low = Lowering {
            builder: &mut b,
            rndv_threshold: 4096,
        };
        let m = low.message(0, a0, 1, a1, 4096, 0);
        assert_ne!(m.issue, m.send_done, "S-byte message must handshake");
    }
}

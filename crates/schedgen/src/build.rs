//! Trace → execution-graph compilation (the heart of Schedgen).
//!
//! The compiler walks each rank's trace, inferring `calc` vertices from the
//! gaps between consecutive records (paper §II-A / Fig. 3), matching sends
//! with receives by `(source, destination, tag)` in posting order (MPI's
//! non-overtaking rule), lowering each matched message through the
//! eager/rendezvous gadgets of [`crate::lower`], wiring `Wait`/`Waitall`
//! vertices to the completions of their requests (Fig. 13), and expanding
//! collectives with the configured algorithms ([`crate::collectives`]).

use crate::collectives::{expand, CollectiveConfig};
use crate::graph::{CostExpr, EdgeKind, ExecGraph, GraphBuilder, GraphError, VertexKind};
use crate::lower::Lowering;
use llamp_trace::{CallKind, Trace};
use llamp_util::FxHashMap;
use std::collections::VecDeque;

/// Compilation options.
#[derive(Debug, Clone, Copy)]
pub struct GraphConfig {
    /// Rendezvous threshold `S` in bytes. Messages of at least this size
    /// use the handshake protocol. `u64::MAX` disables rendezvous.
    pub rndv_threshold: u64,
    /// Collective-substitution algorithms.
    pub collectives: CollectiveConfig,
}

impl GraphConfig {
    /// Everything eager, default collective algorithms — the common setup
    /// for unit analyses.
    pub fn eager() -> Self {
        Self {
            rndv_threshold: u64::MAX,
            collectives: CollectiveConfig::default(),
        }
    }

    /// The paper's measured threshold: `S = 256 KiB`.
    pub fn paper() -> Self {
        Self {
            rndv_threshold: 256 * 1024,
            collectives: CollectiveConfig::default(),
        }
    }
}

impl Default for GraphConfig {
    /// Defaults to the paper's configuration (`S = 256 KiB`), *not* to a
    /// zero threshold — a zero `rndv_threshold` would silently route every
    /// message through the rendezvous gadget.
    fn default() -> Self {
        Self::paper()
    }
}

/// Compilation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// `Wait` on a request id never produced by `Isend`/`Irecv`.
    UnknownRequest {
        /// Offending rank.
        rank: u32,
        /// Offending request id.
        req: u32,
    },
    /// Two in-flight nonblocking calls share a request id on one rank.
    DuplicateRequest {
        /// Offending rank.
        rank: u32,
        /// Offending request id.
        req: u32,
    },
    /// Sends and receives over a `(src, dst, tag)` channel don't pair up.
    UnmatchedMessages {
        /// Sender rank.
        src: u32,
        /// Receiver rank.
        dst: u32,
        /// Message tag.
        tag: u32,
        /// Number of unmatched sends (negative: unmatched receives).
        excess_sends: i64,
    },
    /// Ranks disagree on the sequence of collectives.
    CollectiveMismatch {
        /// Index of the collective instance in program order.
        instance: usize,
    },
    /// The matched graph contains a cycle (e.g. a deadlocking trace).
    Cycle,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnknownRequest { rank, req } => {
                write!(f, "rank {rank}: wait on unknown request {req}")
            }
            BuildError::DuplicateRequest { rank, req } => {
                write!(f, "rank {rank}: request {req} reused while in flight")
            }
            BuildError::UnmatchedMessages {
                src,
                dst,
                tag,
                excess_sends,
            } => write!(
                f,
                "channel {src}->{dst} tag {tag}: {excess_sends:+} unmatched sends"
            ),
            BuildError::CollectiveMismatch { instance } => {
                write!(f, "collective instance {instance}: ranks disagree")
            }
            BuildError::Cycle => write!(f, "matched trace produces a cyclic graph"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<GraphError> for BuildError {
    fn from(_: GraphError) -> Self {
        BuildError::Cycle
    }
}

/// One pending point-to-point operation awaiting matching.
#[derive(Debug, Clone, Copy)]
struct PendingP2p {
    /// Global id indexing the `completions` table.
    id: usize,
    /// The chain vertex preceding the call.
    pre: u32,
    /// Continuation anchor on the chain (`None` for the halves of a
    /// `Sendrecv`, which join through a shared wait vertex instead).
    cont: Option<u32>,
    bytes: u64,
    blocking: bool,
}

/// A `Wait`-like vertex and the pending-op ids it depends on.
#[derive(Debug, Clone)]
struct PendingWait {
    vertex: u32,
    op_ids: Vec<usize>,
}

/// One rank's view of a collective instance.
#[derive(Debug, Clone)]
struct CollPort {
    kind: CallKind,
    entry: u32,
    exit: u32,
}

/// Compile a trace into an execution graph.
pub fn build_graph(trace: &Trace, cfg: &GraphConfig) -> Result<ExecGraph, BuildError> {
    let mut ingest = GraphIngest::with_capacity(trace.nranks, cfg, trace.num_records());
    for rank_trace in &trace.ranks {
        ingest.begin_rank(rank_trace.rank);
        for rec in &rank_trace.records {
            ingest.record(&rec.kind, rec.start, rec.end)?;
        }
    }
    ingest.finish()
}

/// Incremental trace → graph compiler: the streaming core behind
/// [`build_graph`]. Sources that know their records up front (a
/// [`llamp_trace::ProgramSet`] replay, the streaming text parser) feed
/// rank sections with [`GraphIngest::begin_rank`] + [`GraphIngest::record`]
/// — each record borrows its [`CallKind`], so ingestion allocates nothing
/// per record beyond the graph arenas themselves — and
/// [`GraphIngest::finish`] runs message matching, collective expansion
/// and the single-pass CSR finalisation.
#[derive(Debug)]
pub struct GraphIngest {
    nranks: u32,
    cfg: GraphConfig,
    builder: GraphBuilder,
    /// Matching queues: channel (src, dst, tag) -> pending ops in order.
    send_q: FxHashMap<(u32, u32, u32), VecDeque<PendingP2p>>,
    recv_q: FxHashMap<(u32, u32, u32), VecDeque<PendingP2p>>,
    waits: Vec<PendingWait>,
    /// collectives[i][r] = rank r's port for the i-th collective.
    collectives: Vec<Vec<Option<CollPort>>>,
    next_op_id: usize,
    // Walk state of the current rank section.
    rank: u32,
    tail: u32,
    prev_end: f64,
    /// In-flight nonblocking requests of the current rank: req -> op id.
    inflight: FxHashMap<u32, usize>,
    coll_idx: usize,
    started: bool,
}

impl GraphIngest {
    /// Start an ingest for `nranks` ranks with default-sized arenas.
    pub fn new(nranks: u32, cfg: &GraphConfig) -> Self {
        Self::with_capacity(nranks, cfg, 0)
    }

    /// Start an ingest with arenas pre-sized from a total record-count
    /// hint. The eager point-to-point gadget dominates real traces at
    /// roughly 3 vertices and 5 edges per record (continuation, gap calc
    /// and the shared message gadget); collective expansions add more,
    /// and the arenas still grow past an under-estimate.
    pub fn with_capacity(nranks: u32, cfg: &GraphConfig, records_hint: usize) -> Self {
        Self {
            nranks,
            cfg: *cfg,
            builder: GraphBuilder::with_capacity(nranks, 3 * records_hint, 5 * records_hint),
            send_q: FxHashMap::default(),
            recv_q: FxHashMap::default(),
            waits: Vec::new(),
            collectives: Vec::new(),
            next_op_id: 0,
            rank: 0,
            tail: 0,
            prev_end: 0.0,
            inflight: FxHashMap::default(),
            coll_idx: 0,
            started: false,
        }
    }

    /// Number of vertices accumulated so far.
    pub fn num_vertices(&self) -> usize {
        self.builder.num_vertices()
    }

    /// Open rank `r`'s section: adds its start vertex (the paper's Init)
    /// and resets the per-rank walk state.
    pub fn begin_rank(&mut self, r: u32) {
        self.rank = r;
        self.tail = self.builder.add_vertex(r, VertexKind::Calc, CostExpr::ZERO);
        self.prev_end = 0.0;
        self.inflight.clear();
        self.coll_idx = 0;
        self.started = true;
    }

    /// Feed one record of the current rank section.
    pub fn record(&mut self, kind: &CallKind, start: f64, end: f64) -> Result<(), BuildError> {
        debug_assert!(self.started, "record before begin_rank");
        let r = self.rank;
        // Compute gap becomes a calc vertex (Fig. 3B).
        let gap = start - self.prev_end;
        if gap > 0.0 {
            let c = self
                .builder
                .add_vertex(r, VertexKind::Calc, CostExpr::constant(gap));
            self.builder
                .add_edge(self.tail, c, EdgeKind::Local, CostExpr::ZERO);
            self.tail = c;
        }
        self.prev_end = end.max(self.prev_end);

        match kind {
            CallKind::Init | CallKind::Finalize => {}
            CallKind::Send { peer, bytes, tag } => {
                let id = self.alloc_id();
                let cont = self.builder.add_vertex(r, VertexKind::Calc, CostExpr::ZERO);
                self.send_q
                    .entry((r, *peer, *tag))
                    .or_default()
                    .push_back(PendingP2p {
                        id,
                        pre: self.tail,
                        cont: Some(cont),
                        bytes: *bytes,
                        blocking: true,
                    });
                self.tail = cont;
            }
            CallKind::Recv { peer, bytes, tag } => {
                let id = self.alloc_id();
                let cont = self.builder.add_vertex(r, VertexKind::Calc, CostExpr::ZERO);
                self.recv_q
                    .entry((*peer, r, *tag))
                    .or_default()
                    .push_back(PendingP2p {
                        id,
                        pre: self.tail,
                        cont: Some(cont),
                        bytes: *bytes,
                        blocking: true,
                    });
                self.tail = cont;
            }
            CallKind::Isend {
                peer,
                bytes,
                tag,
                req,
            } => {
                let id = self.alloc_id();
                if self.inflight.insert(*req, id).is_some() {
                    return Err(BuildError::DuplicateRequest { rank: r, req: *req });
                }
                let cont = self.builder.add_vertex(r, VertexKind::Calc, CostExpr::ZERO);
                self.send_q
                    .entry((r, *peer, *tag))
                    .or_default()
                    .push_back(PendingP2p {
                        id,
                        pre: self.tail,
                        cont: Some(cont),
                        bytes: *bytes,
                        blocking: false,
                    });
                self.tail = cont;
            }
            CallKind::Irecv {
                peer,
                bytes,
                tag,
                req,
            } => {
                let id = self.alloc_id();
                if self.inflight.insert(*req, id).is_some() {
                    return Err(BuildError::DuplicateRequest { rank: r, req: *req });
                }
                let cont = self.builder.add_vertex(r, VertexKind::Calc, CostExpr::ZERO);
                self.recv_q
                    .entry((*peer, r, *tag))
                    .or_default()
                    .push_back(PendingP2p {
                        id,
                        pre: self.tail,
                        cont: Some(cont),
                        bytes: *bytes,
                        blocking: false,
                    });
                self.tail = cont;
            }
            CallKind::Wait { req } => {
                let id = self
                    .inflight
                    .remove(req)
                    .ok_or(BuildError::UnknownRequest { rank: r, req: *req })?;
                let w = self.builder.add_vertex(r, VertexKind::Calc, CostExpr::ZERO);
                self.builder
                    .add_edge(self.tail, w, EdgeKind::Local, CostExpr::ZERO);
                self.waits.push(PendingWait {
                    vertex: w,
                    op_ids: vec![id],
                });
                self.tail = w;
            }
            CallKind::Waitall { reqs } => {
                let mut ids = Vec::with_capacity(reqs.len());
                for req in reqs {
                    ids.push(
                        self.inflight
                            .remove(req)
                            .ok_or(BuildError::UnknownRequest { rank: r, req: *req })?,
                    );
                }
                let w = self.builder.add_vertex(r, VertexKind::Calc, CostExpr::ZERO);
                self.builder
                    .add_edge(self.tail, w, EdgeKind::Local, CostExpr::ZERO);
                self.waits.push(PendingWait {
                    vertex: w,
                    op_ids: ids,
                });
                self.tail = w;
            }
            CallKind::Sendrecv {
                dst,
                send_bytes,
                send_tag,
                src,
                recv_bytes,
                recv_tag,
            } => {
                // Lower as isend ‖ irecv + waitall on a shared anchor.
                let sid = self.alloc_id();
                let rid = self.alloc_id();
                self.send_q
                    .entry((r, *dst, *send_tag))
                    .or_default()
                    .push_back(PendingP2p {
                        id: sid,
                        pre: self.tail,
                        cont: None,
                        bytes: *send_bytes,
                        blocking: false,
                    });
                self.recv_q
                    .entry((*src, r, *recv_tag))
                    .or_default()
                    .push_back(PendingP2p {
                        id: rid,
                        pre: self.tail,
                        cont: None,
                        bytes: *recv_bytes,
                        blocking: false,
                    });
                let w = self.builder.add_vertex(r, VertexKind::Calc, CostExpr::ZERO);
                self.builder
                    .add_edge(self.tail, w, EdgeKind::Local, CostExpr::ZERO);
                self.waits.push(PendingWait {
                    vertex: w,
                    op_ids: vec![sid, rid],
                });
                self.tail = w;
            }
            coll if coll.is_collective() => {
                let entry = self.tail;
                let exit = self.builder.add_vertex(r, VertexKind::Calc, CostExpr::ZERO);
                if self.collectives.len() <= self.coll_idx {
                    self.collectives
                        .resize(self.coll_idx + 1, vec![None; self.nranks as usize]);
                }
                self.collectives[self.coll_idx][r as usize] = Some(CollPort {
                    kind: coll.clone(),
                    entry,
                    exit,
                });
                self.coll_idx += 1;
                self.tail = exit;
            }
            _ => unreachable!(),
        }
        Ok(())
    }

    fn alloc_id(&mut self) -> usize {
        let id = self.next_op_id;
        self.next_op_id += 1;
        id
    }

    /// Match and lower point-to-point channels, expand collectives, wire
    /// waits and finalise the CSR graph.
    pub fn finish(self) -> Result<ExecGraph, BuildError> {
        let GraphIngest {
            nranks,
            cfg,
            mut builder,
            mut send_q,
            recv_q,
            waits,
            collectives,
            next_op_id,
            ..
        } = self;
        let total_ops = next_op_id;
        let mut completions: Vec<u32> = vec![u32::MAX; total_ops];
        let match_span = llamp_obs::span("ingest.match");
        {
            let mut low = Lowering {
                builder: &mut builder,
                rndv_threshold: cfg.rndv_threshold,
            };
            let mut recv_q = recv_q;
            for (&(src, dst, tag), sends) in send_q.iter_mut() {
                let recvs = recv_q.get_mut(&(src, dst, tag));
                let n_recvs = recvs.as_ref().map_or(0, |q| q.len());
                if sends.len() != n_recvs {
                    return Err(BuildError::UnmatchedMessages {
                        src,
                        dst,
                        tag,
                        excess_sends: sends.len() as i64 - n_recvs as i64,
                    });
                }
                let recvs = recvs.expect("non-empty send queue implies recv queue");
                while let (Some(s), Some(rv)) = (sends.pop_front(), recvs.pop_front()) {
                    let m = low.message(src, s.pre, dst, rv.pre, s.bytes, tag);
                    completions[s.id] = m.send_done;
                    completions[rv.id] = m.recv_done;
                    if let Some(cont) = s.cont {
                        let from = if s.blocking { m.send_done } else { m.issue };
                        low.builder
                            .add_edge(from, cont, EdgeKind::Local, CostExpr::ZERO);
                    }
                    if let Some(cont) = rv.cont {
                        let from = if rv.blocking { m.recv_done } else { m.post };
                        low.builder
                            .add_edge(from, cont, EdgeKind::Local, CostExpr::ZERO);
                    }
                }
            }
            // Any recv channel that never saw a send is unmatched.
            for (&(src, dst, tag), recvs) in recv_q.iter() {
                if !recvs.is_empty() {
                    return Err(BuildError::UnmatchedMessages {
                        src,
                        dst,
                        tag,
                        excess_sends: -(recvs.len() as i64),
                    });
                }
            }

            // Expand collectives with a private tag namespace per instance.
            for (i, ports) in collectives.iter().enumerate() {
                let mut entries = Vec::with_capacity(nranks as usize);
                let mut exits = Vec::with_capacity(nranks as usize);
                let mut kind: Option<&CallKind> = None;
                for port in ports {
                    let port = port
                        .as_ref()
                        .ok_or(BuildError::CollectiveMismatch { instance: i })?;
                    match kind {
                        None => kind = Some(&port.kind),
                        Some(k) if *k == port.kind => {}
                        Some(_) => return Err(BuildError::CollectiveMismatch { instance: i }),
                    }
                    entries.push(port.entry);
                    exits.push(port.exit);
                }
                let kind = kind.expect("nranks > 0");
                let tag = 0x4000_0000u32 + i as u32;
                expand(&mut low, &cfg.collectives, kind, &entries, &exits, tag);
            }
        }

        // Wire waits to completions.
        for w in &waits {
            for &id in &w.op_ids {
                let c = completions[id];
                debug_assert_ne!(c, u32::MAX, "wait on unlowered op");
                builder.add_edge(c, w.vertex, EdgeKind::Local, CostExpr::ZERO);
            }
        }
        drop(match_span);

        let _csr = llamp_obs::span("ingest.csr");
        Ok(builder.finish()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_trace::{ProgramSet, TracerConfig};

    fn trace_of(set: &ProgramSet) -> Trace {
        set.trace(&TracerConfig::default())
    }

    /// The paper's Fig. 3 example: both ranks compute, rank 0 sends, rank 1
    /// receives, both compute again.
    fn blocking_example() -> Trace {
        trace_of(&ProgramSet::spmd(2, |rank, b| {
            if rank == 0 {
                b.comp(1_000.0);
                b.send(1, 4, 0);
                b.comp(1_000.0);
            } else {
                b.comp(500.0);
                b.recv(0, 4, 0);
                b.comp(1_000.0);
            }
        }))
    }

    #[test]
    fn blocking_p2p_builds() {
        let g = build_graph(&blocking_example(), &GraphConfig::eager()).unwrap();
        let (_calc, send, recv, hs) = g.kind_counts();
        assert_eq!(send, 1);
        assert_eq!(recv, 1);
        assert_eq!(hs, 0);
        assert_eq!(g.num_messages(), 1);
        // The recv vertex has the comm edge with the right wire cost.
        let rv = (0..g.num_vertices() as u32)
            .find(|&v| g.vertex(v).kind.is_recv())
            .unwrap();
        let comm = g
            .preds(rv)
            .iter()
            .find(|e| e.kind == EdgeKind::Comm)
            .unwrap();
        assert_eq!(comm.cost.l_count, 1.0);
        assert_eq!(comm.cost.gbytes, 3.0);
    }

    #[test]
    fn nonblocking_wait_depends_on_completion() {
        // Fig. 13: Isend/Irecv + Wait.
        let tr = trace_of(&ProgramSet::spmd(2, |rank, b| {
            if rank == 0 {
                b.comp(100.0);
                let rq = b.isend(1, 64, 3);
                b.comp(400.0);
                b.wait(rq);
            } else {
                let rq = b.irecv(0, 64, 3);
                b.comp(50.0);
                b.wait(rq);
            }
        }));
        let g = build_graph(&tr, &GraphConfig::eager()).unwrap();
        // Receiver wait vertex must have >= 2 preds (chain + recv).
        // Find the recv vertex then check one of its successors is a join.
        let rv = (0..g.num_vertices() as u32)
            .find(|&v| g.vertex(v).kind.is_recv())
            .unwrap();
        assert!(g.succs(rv).iter().any(|e| g.preds(e.other).len() >= 2));
    }

    #[test]
    fn rendezvous_threshold_applies() {
        let tr = trace_of(&ProgramSet::spmd(2, |rank, b| {
            if rank == 0 {
                b.send(1, 1 << 20, 0);
            } else {
                b.recv(0, 1 << 20, 0);
            }
        }));
        let g = build_graph(&tr, &GraphConfig::paper()).unwrap();
        let (_, _, _, hs) = g.kind_counts();
        assert_eq!(hs, 1, "1 MiB message must use rendezvous");
    }

    #[test]
    fn unmatched_send_rejected() {
        let tr = trace_of(&ProgramSet::spmd(2, |rank, b| {
            if rank == 0 {
                b.send(1, 8, 0);
            }
        }));
        match build_graph(&tr, &GraphConfig::eager()) {
            Err(BuildError::UnmatchedMessages {
                excess_sends: 1, ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unmatched_recv_rejected() {
        let tr = trace_of(&ProgramSet::spmd(2, |rank, b| {
            if rank == 1 {
                b.recv(0, 8, 0);
            }
        }));
        match build_graph(&tr, &GraphConfig::eager()) {
            Err(BuildError::UnmatchedMessages {
                excess_sends: -1, ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_request_rejected() {
        let tr = trace_of(&ProgramSet::new(vec![{
            let mut b = llamp_trace::ProgramBuilder::new();
            b.wait(42);
            b.build()
        }]));
        match build_graph(&tr, &GraphConfig::eager()) {
            Err(BuildError::UnknownRequest { rank: 0, req: 42 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn collective_mismatch_rejected() {
        let tr = trace_of(&ProgramSet::spmd(2, |rank, b| {
            if rank == 0 {
                b.allreduce(8);
            } else {
                b.barrier();
            }
        }));
        match build_graph(&tr, &GraphConfig::eager()) {
            Err(BuildError::CollectiveMismatch { instance: 0 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sendrecv_produces_one_message_each_way() {
        let tr = trace_of(&ProgramSet::spmd(2, |rank, b| {
            let peer = 1 - rank;
            b.sendrecv(peer, 128, 0, peer, 128, 0);
        }));
        let g = build_graph(&tr, &GraphConfig::eager()).unwrap();
        assert_eq!(g.num_messages(), 2);
    }

    #[test]
    fn collectives_expand_for_various_sizes() {
        for algo_ranks in [2u32, 3, 4, 5, 7, 8, 16] {
            let tr = trace_of(&ProgramSet::spmd(algo_ranks, |_, b| {
                b.allreduce(64);
                b.barrier();
                b.bcast(256, 0);
                b.reduce(256, 1 % algo_ranks);
                b.allgather(32);
                b.alltoall(16);
            }));
            let g = build_graph(&tr, &GraphConfig::eager())
                .unwrap_or_else(|e| panic!("P={algo_ranks}: {e}"));
            assert!(g.num_messages() > 0, "P={algo_ranks}");
        }
    }

    #[test]
    fn recursive_doubling_message_count_power_of_two() {
        let tr = trace_of(&ProgramSet::spmd(8, |_, b| {
            b.allreduce(64);
        }));
        let g = build_graph(&tr, &GraphConfig::eager()).unwrap();
        // 8 ranks, lg(8) = 3 rounds, 8 messages per round.
        assert_eq!(g.num_messages(), 24);
    }

    #[test]
    fn ring_allreduce_message_count() {
        let mut cfg = GraphConfig::eager();
        cfg.collectives.allreduce = crate::collectives::AllreduceAlgo::Ring;
        let tr = trace_of(&ProgramSet::spmd(4, |_, b| {
            b.allreduce(64);
        }));
        let g = build_graph(&tr, &cfg).unwrap();
        // 2(P-1) rounds x P messages.
        assert_eq!(g.num_messages(), 2 * 3 * 4);
    }

    #[test]
    fn dissemination_barrier_message_count() {
        let tr = trace_of(&ProgramSet::spmd(8, |_, b| {
            b.barrier();
        }));
        let g = build_graph(&tr, &GraphConfig::eager()).unwrap();
        // lg(8) = 3 rounds x 8 messages.
        assert_eq!(g.num_messages(), 24);
    }

    #[test]
    fn binomial_bcast_message_count() {
        let tr = trace_of(&ProgramSet::spmd(8, |_, b| {
            b.bcast(1024, 3);
        }));
        let g = build_graph(&tr, &GraphConfig::eager()).unwrap();
        // A binomial tree delivers to P-1 ranks: 7 messages.
        assert_eq!(g.num_messages(), 7);
    }

    #[test]
    fn deadlock_cycle_detected() {
        // Two blocking sends facing each other with blocking recvs after —
        // a classic deadlock; the matched graph is cyclic under blocking
        // semantics? With eager sends this is legal (eager buffering), so
        // construct a real cycle: both ranks Recv first, then Send.
        let tr = trace_of(&ProgramSet::spmd(2, |rank, b| {
            let peer = 1 - rank;
            b.recv(peer, 8, 0);
            b.send(peer, 8, 0);
        }));
        match build_graph(&tr, &GraphConfig::eager()) {
            Err(BuildError::Cycle) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn contraction_shrinks_built_graph() {
        let g = build_graph(&blocking_example(), &GraphConfig::eager()).unwrap();
        let cg = g.contracted();
        assert!(cg.num_vertices() < g.num_vertices());
        assert_eq!(cg.num_messages(), g.num_messages());
    }
}

//! The unified graph-lowering view.
//!
//! Every analysis in this workspace — Algorithm 1's LP, the
//! multi-parameter LP, direct critical-path evaluation, and the
//! parametric envelope — consumes an execution graph through the same
//! access pattern: walk the vertices in topological order, bind each
//! vertex/edge cost, and combine predecessors. [`GraphView`] is that
//! pattern as a trait, implemented by both the raw [`ExecGraph`] and the
//! reduced IR ([`crate::reduce::ReducedGraph`]), so every builder is
//! written once and inherits graph reduction for free.

use crate::graph::{EdgeRef, ExecGraph, Vertex};

/// Read-only access to an execution graph in the shape the analysis
/// builders need: CSR adjacency plus a precomputed topological order.
pub trait GraphView {
    /// World size of the traced job.
    fn nranks(&self) -> u32;

    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Vertex accessor.
    fn vertex(&self, v: u32) -> &Vertex;

    /// Predecessor edges of `v`.
    fn preds(&self, v: u32) -> &[EdgeRef];

    /// Successor edges of `v`.
    fn succs(&self, v: u32) -> &[EdgeRef];

    /// Vertices in a topological order.
    fn topo_order(&self) -> &[u32];
}

impl GraphView for ExecGraph {
    fn nranks(&self) -> u32 {
        ExecGraph::nranks(self)
    }

    fn num_vertices(&self) -> usize {
        ExecGraph::num_vertices(self)
    }

    fn vertex(&self, v: u32) -> &Vertex {
        ExecGraph::vertex(self, v)
    }

    fn preds(&self, v: u32) -> &[EdgeRef] {
        ExecGraph::preds(self, v)
    }

    fn succs(&self, v: u32) -> &[EdgeRef] {
        ExecGraph::succs(self, v)
    }

    fn topo_order(&self) -> &[u32] {
        ExecGraph::topo_order(self)
    }
}

/// The number of constraint rows Algorithm 1 generates for a graph
/// without building the model: one row per in-edge of every
/// multi-predecessor vertex (each spawns a merge variable `y_v`) plus one
/// row per sink (the makespan bounds `t ≥ T_v`). Single-predecessor
/// vertices extend affine expressions and contribute nothing — which is
/// why chain contraction alone never shrinks the LP, and the fold /
/// redundancy passes of [`crate::reduce`](mod@crate::reduce) do.
pub fn alg1_row_count<V: GraphView + ?Sized>(g: &V) -> u64 {
    let mut rows = 0u64;
    for v in 0..g.num_vertices() as u32 {
        let np = g.preds(v).len();
        if np > 1 {
            rows += np as u64;
        }
        if g.succs(v).is_empty() {
            rows += 1;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CostExpr, EdgeKind, GraphBuilder, VertexKind};

    #[test]
    fn row_count_matches_algorithm1_shape() {
        // Diamond: a → {b, c} → d. d is a 2-pred join (2 rows) and the
        // only sink (1 row).
        let mut b = GraphBuilder::new(1);
        let a = b.add_vertex(0, VertexKind::Calc, CostExpr::constant(1.0));
        let x = b.add_vertex(0, VertexKind::Calc, CostExpr::constant(2.0));
        let y = b.add_vertex(0, VertexKind::Calc, CostExpr::constant(3.0));
        let d = b.add_vertex(0, VertexKind::Calc, CostExpr::constant(4.0));
        b.add_edge(a, x, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(a, y, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(x, d, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(y, d, EdgeKind::Local, CostExpr::ZERO);
        let g = b.finish().unwrap();
        assert_eq!(alg1_row_count(&g), 3);
    }
}

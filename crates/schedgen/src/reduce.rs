//! Makespan-preserving graph reduction: the pipeline between trace
//! compilation and analysis lowering.
//!
//! The LP stays tractable by exploiting the *structure* of the MPI
//! dependency graph before the solver ever sees it (paper §II-D3 credits
//! presolve; here the same reductions happen at the graph level, where
//! they also speed up the envelope and evaluation backends). Three pass
//! families, all exact — the reduced graph predicts the same makespan
//! `T(L, G, o)`, the same sensitivities and the same critical latencies
//! for **every** parameter value:
//!
//! * **serial-chain contraction** — a vertex whose single `Local`
//!   in-edge comes from a single-successor vertex merges into that
//!   predecessor, coefficients accumulated (`max`-free segments are
//!   associative);
//! * **vertex folds** (the generalised zero-weight merge) — a vertex
//!   with exactly one `Local` *out*-edge folds forward into its consumer,
//!   its cost pushed onto every in-edge (`max(a, b) + c =
//!   max(a + c, b + c)`): this is what actually removes LP rows, because
//!   it dissolves multi-predecessor join vertices into their unique
//!   consumer. The mirror backward fold (single `Local` in-edge) folds
//!   pass-through vertices into their producer.
//! * **redundant-dependency elimination** — an in-edge whose implied
//!   bound is dominated by a sibling's for every non-negative parameter
//!   value is dropped: sibling edges whose sources share an exact
//!   single-predecessor chain root are compared symbolically, and
//!   zero-cost `Local` edges with an alternative path (bounded DFS) are
//!   transitively redundant.
//!
//! The pipeline carries a full **provenance map**: every reduced vertex
//! remembers the ordered original vertices it absorbed, every reduced
//! edge the original vertices folded into it, so critical paths (and with
//! them `λ` attributions, `ρ` shares and critical-latency certificates)
//! lift back to original graph entities via [`ReducedGraph::lift_path`].
//!
//! The reduced graph is for *analysis*: like [`ExecGraph::contracted`]
//! (now a thin wrapper over the chains-only pipeline), `Send`/`Recv`
//! semantics survive only on unmerged vertices, so don't feed it to the
//! simulator.

use crate::graph::{CostExpr, EdgeKind, EdgeRef, ExecGraph, GraphBuilder, Vertex, VertexKind};
use crate::view::{alg1_row_count, GraphView};
use llamp_util::FxHashMap;

/// Which reduction passes run, and their effort bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceConfig {
    /// Serial-chain contraction (coefficient accumulation).
    pub chains: bool,
    /// Forward/backward vertex folds (generalised zero-weight merging).
    pub folds: bool,
    /// Redundant-dependency elimination (sibling domination + bounded
    /// transitive search).
    pub redundant: bool,
    /// Maximum pass rounds; the pipeline stops earlier at a fixpoint.
    pub max_rounds: u32,
    /// Visited-vertex cap per transitive-elimination search.
    pub dfs_cap: usize,
    /// Worker threads for the region-parallel path (`0` = one per
    /// available core). Thread count never changes the output: regions
    /// are reduced independently and stitched in rank order, so any
    /// thread count produces the same bytes.
    pub threads: usize,
    /// Minimum vertex count before the region-parallel path engages.
    /// Below it (or with a single rank) the pipeline runs the classic
    /// whole-graph fixpoint, which can reduce slightly further on small
    /// graphs (cross-rank edges are never contracted on the region path,
    /// and redundancy searches do not look across region boundaries).
    pub par_threshold: usize,
}

impl Default for ReduceConfig {
    fn default() -> Self {
        Self {
            chains: true,
            folds: true,
            redundant: true,
            max_rounds: 8,
            dfs_cap: 128,
            threads: 0,
            par_threshold: 65_536,
        }
    }
}

impl ReduceConfig {
    /// No reduction at all: [`reduce()`] returns the identity
    /// [`ReducedGraph`] (the raw graph with trivial provenance).
    pub fn none() -> Self {
        Self {
            chains: false,
            folds: false,
            redundant: false,
            max_rounds: 0,
            dfs_cap: 0,
            threads: 0,
            par_threshold: usize::MAX,
        }
    }

    /// Serial-chain contraction only — the historical
    /// [`ExecGraph::contracted`] behaviour.
    pub fn chains_only() -> Self {
        Self {
            chains: true,
            folds: false,
            redundant: false,
            ..Self::default()
        }
    }

    /// True when no pass is enabled.
    pub fn is_identity(&self) -> bool {
        self.max_rounds == 0 || !(self.chains || self.folds || self.redundant)
    }
}

/// What the pipeline did: sizes before → after plus per-pass counters.
/// Campaigns aggregate these into the run summary exactly like the LP
/// `SolveStats` — being cache-state dependent they live *beside*, never
/// inside, deterministic result files. Wall-clock pass timings are not
/// carried here: each pass runs under an `llamp-obs` span
/// (`reduce/reduce.chains` etc.), so timing lives in the telemetry
/// channel where it belongs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReductionStats {
    /// Vertices in the input graph.
    pub vertices_before: u64,
    /// Vertices after reduction.
    pub vertices_after: u64,
    /// Edges in the input graph.
    pub edges_before: u64,
    /// Edges after reduction.
    pub edges_after: u64,
    /// Algorithm-1 LP rows the input graph would generate.
    pub rows_before: u64,
    /// Algorithm-1 LP rows the reduced graph generates.
    pub rows_after: u64,
    /// Serial-chain merges performed.
    pub chain_merges: u64,
    /// Forward/backward vertex folds performed.
    pub folds: u64,
    /// Redundant in-edges removed.
    pub redundant_removed: u64,
    /// Pass rounds executed before the fixpoint (or the round cap).
    pub rounds: u64,
}

impl ReductionStats {
    /// Accumulate another graph's reduction counters (campaign
    /// aggregation).
    pub fn merge(&mut self, other: &ReductionStats) {
        self.vertices_before += other.vertices_before;
        self.vertices_after += other.vertices_after;
        self.edges_before += other.edges_before;
        self.edges_after += other.edges_after;
        self.rows_before += other.rows_before;
        self.rows_after += other.rows_after;
        self.chain_merges += other.chain_merges;
        self.folds += other.folds;
        self.redundant_removed += other.redundant_removed;
        self.rounds += other.rounds;
    }

    /// True when no graph went through the pipeline (all counters zero).
    pub fn is_empty(&self) -> bool {
        self.vertices_before == 0
    }

    /// Human-readable block (the shape `llamp run` prints).
    pub fn render(&self) -> String {
        let ratio = |before: u64, after: u64| -> String {
            if after == 0 {
                "-".into()
            } else {
                format!("{:.2}x", before as f64 / after as f64)
            }
        };
        format!(
            "vertices        {} -> {} ({})\n\
             edges           {} -> {} ({})\n\
             lp rows         {} -> {} ({})\n\
             passes          {} chain merges, {} folds, {} redundant edges, {} rounds",
            self.vertices_before,
            self.vertices_after,
            ratio(self.vertices_before, self.vertices_after),
            self.edges_before,
            self.edges_after,
            ratio(self.edges_before, self.edges_after),
            self.rows_before,
            self.rows_after,
            ratio(self.rows_before, self.rows_after),
            self.chain_merges,
            self.folds,
            self.redundant_removed,
            self.rounds,
        )
    }
}

/// The reduced IR: a smaller [`ExecGraph`] plus the provenance map that
/// lifts analysis results back to original graph entities. Implements
/// [`GraphView`], so every analysis builder consumes it exactly like a
/// raw graph.
#[derive(Debug, Clone)]
pub struct ReducedGraph {
    graph: ExecGraph,
    /// CSR: reduced vertex → ordered original member ids (head first).
    member_start: Vec<u32>,
    member_ids: Vec<u32>,
    /// Flat slot offsets: `pred_offset[v] + i` indexes the via list of
    /// `graph.preds(v)[i]`.
    pred_offset: Vec<u32>,
    /// CSR over pred slots: original vertices folded into each edge,
    /// ordered source-side → target-side.
    via_start: Vec<u32>,
    via_ids: Vec<u32>,
    /// Original vertex → the reduced vertex it is accounted under.
    home: Vec<u32>,
    stats: ReductionStats,
}

impl ReducedGraph {
    /// The identity reduction: the raw graph, trivial provenance, zeroed
    /// pass counters (sizes recorded unchanged).
    pub fn identity(g: &ExecGraph) -> Self {
        let n = g.num_vertices();
        let mut pred_offset = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        pred_offset.push(0);
        for v in 0..n as u32 {
            acc += g.preds(v).len() as u32;
            pred_offset.push(acc);
        }
        let rows = alg1_row_count(g);
        Self {
            member_start: (0..=n as u32).collect(),
            member_ids: (0..n as u32).collect(),
            pred_offset,
            via_start: vec![0; acc as usize + 1],
            via_ids: Vec::new(),
            home: (0..n as u32).collect(),
            stats: ReductionStats {
                vertices_before: n as u64,
                vertices_after: n as u64,
                edges_before: g.num_edges() as u64,
                edges_after: g.num_edges() as u64,
                rows_before: rows,
                rows_after: rows,
                ..ReductionStats::default()
            },
            graph: g.clone(),
        }
    }

    /// The reduced execution graph itself.
    pub fn graph(&self) -> &ExecGraph {
        &self.graph
    }

    /// Discard the provenance, keeping only the reduced graph.
    pub fn into_graph(self) -> ExecGraph {
        self.graph
    }

    /// What the pipeline did.
    pub fn stats(&self) -> &ReductionStats {
        &self.stats
    }

    /// Ordered original member vertices of a reduced vertex (head first;
    /// always non-empty).
    pub fn members(&self, v: u32) -> &[u32] {
        let s = self.member_start[v as usize] as usize;
        let e = self.member_start[v as usize + 1] as usize;
        &self.member_ids[s..e]
    }

    /// The original vertex a reduced vertex stands for (its chain head).
    pub fn lift_vertex(&self, v: u32) -> u32 {
        self.members(v)[0]
    }

    /// The reduced vertex an *original* vertex is accounted under —
    /// the inverse of [`ReducedGraph::members`] /
    /// [`ReducedGraph::edge_via`] (vertices folded into an edge map to
    /// the edge's target).
    pub fn home_of(&self, orig: u32) -> u32 {
        self.home[orig as usize]
    }

    /// Original vertices folded into the `i`-th predecessor edge of `v`
    /// (ordered from the source side to `v`).
    pub fn edge_via(&self, v: u32, i: usize) -> &[u32] {
        let slot = self.pred_offset[v as usize] as usize + i;
        let s = self.via_start[slot] as usize;
        let e = self.via_start[slot + 1] as usize;
        &self.via_ids[s..e]
    }

    /// Lift a path of reduced vertices (e.g. a critical path reported by
    /// the evaluator) back to a path of **original** vertices: member
    /// chains are expanded in order and the original vertices folded into
    /// each traversed edge are spliced between them. Consecutive lifted
    /// vertices are connected in the original graph.
    pub fn lift_path(&self, path: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        for (i, &v) in path.iter().enumerate() {
            if i > 0 {
                let prev = path[i - 1];
                let idx = self
                    .graph
                    .preds(v)
                    .iter()
                    .position(|e| e.other == prev)
                    .expect("lift_path follows reduced edges");
                out.extend_from_slice(self.edge_via(v, idx));
            }
            out.extend_from_slice(self.members(v));
        }
        out
    }
}

impl GraphView for ReducedGraph {
    fn nranks(&self) -> u32 {
        self.graph.nranks()
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn vertex(&self, v: u32) -> &Vertex {
        self.graph.vertex(v)
    }

    fn preds(&self, v: u32) -> &[EdgeRef] {
        self.graph.preds(v)
    }

    fn succs(&self, v: u32) -> &[EdgeRef] {
        self.graph.succs(v)
    }

    fn topo_order(&self) -> &[u32] {
        self.graph.topo_order()
    }
}

impl ExecGraph {
    /// Run the reduction pipeline on this graph (see [`reduce()`]).
    pub fn reduced(&self, cfg: &ReduceConfig) -> ReducedGraph {
        reduce(self, cfg)
    }
}

/// Run the configured reduction passes to a fixpoint (bounded by
/// `cfg.max_rounds`) and package the result with its provenance map.
///
/// Graphs at or above `cfg.par_threshold` vertices (with more than one
/// rank) take the **region-parallel** path: the graph is partitioned into
/// rank-local regions, each cross-rank edge is split into two per-region
/// half-edges (see `Reducer::from_region`), regions reduce
/// independently on `cfg.threads` workers, and the survivors are
/// stitched back in rank order — halves recombined into whole cross
/// edges — for a serial finishing fixpoint. The output is a pure
/// function of the graph and the config: any thread count yields
/// bit-identical results.
pub fn reduce(g: &ExecGraph, cfg: &ReduceConfig) -> ReducedGraph {
    if cfg.is_identity() {
        return ReducedGraph::identity(g);
    }
    let outer = llamp_obs::span("reduce");
    let reduced = if g.num_vertices() >= cfg.par_threshold && g.nranks() > 1 {
        reduce_partitioned(g, cfg)
    } else {
        let mut r = Reducer::from_graph(g);
        r.stats.vertices_before = g.num_vertices() as u64;
        r.stats.edges_before = g.num_edges() as u64;
        r.stats.rows_before = alg1_row_count(g);
        run_rounds(&mut r, cfg);
        r.finish(g.num_vertices(), Vec::new())
    };
    if llamp_obs::is_enabled() {
        let s = reduced.stats();
        outer.field_u64("vertices_before", s.vertices_before);
        outer.field_u64("vertices_after", s.vertices_after);
        outer.field_u64("rows_before", s.rows_before);
        outer.field_u64("rows_after", s.rows_after);
        outer.field_u64("rounds", s.rounds);
    }
    reduced
}

/// The pass fixpoint shared by the whole-graph path, each rank-local
/// region and the stitched finishing stage.
fn run_rounds(r: &mut Reducer, cfg: &ReduceConfig) {
    let dbg = std::env::var_os("LLAMP_PASS_DEBUG").is_some();
    for _ in 0..cfg.max_rounds {
        let mut changed = 0u64;
        if cfg.chains {
            changed += dbg_pass(dbg, r, "chains", |r| {
                traced_pass("reduce.chains", || r.pass_chains())
            });
        }
        if cfg.folds {
            changed += dbg_pass(dbg, r, "folds", |r| {
                traced_pass("reduce.folds", || r.pass_folds())
            });
        }
        if cfg.redundant {
            changed += dbg_pass(dbg, r, "redundant", |r| {
                traced_pass("reduce.redundant", || r.pass_redundant(cfg.dfs_cap))
            });
        }
        r.stats.rounds += 1;
        if changed == 0 {
            break;
        }
    }
}

fn dbg_pass(dbg: bool, r: &mut Reducer, name: &str, f: impl FnOnce(&mut Reducer) -> u64) -> u64 {
    if !dbg {
        return f(r);
    }
    let n = r.valive.iter().filter(|&&a| a).count();
    let e = r.edges.iter().filter(|e| e.alive).count();
    let t = std::time::Instant::now();
    let changed = f(r);
    eprintln!(
        "[pass] {name:10} n={n:8} e={e:8} changed={changed:8} {:8.1} ms",
        t.elapsed().as_secs_f64() * 1e3
    );
    changed
}

/// Region-parallel reduction: partition by vertex rank, split cross-rank
/// edges into per-region half-edges (see [`Reducer::from_region`]),
/// reduce each region independently, stitch survivors in rank order and
/// run a serial finishing fixpoint over the merged graph.
///
/// Determinism argument: each region's reduction is a pure function of
/// its region subgraph (intra edges plus its halves of the cross edges);
/// regions only read their own arenas, so worker scheduling cannot
/// influence them. The stitch iterates regions in rank order and each
/// region's arena in allocation order, then recombines cross-edge halves
/// in original arena order — the two halves of a cross edge live in
/// different regions and touch disjoint fields (source-side cost/via
/// prefix vs target-side cost/via suffix), so their merge is order-free.
/// Every id assignment is order-fixed, and the finishing fixpoint plus
/// [`Reducer::finish`] are serial. Bit-identical output at any thread
/// count follows.
fn reduce_partitioned(g: &ExecGraph, cfg: &ReduceConfig) -> ReducedGraph {
    let n = g.num_vertices();
    let nranks = g.nranks() as usize;

    let part_span = llamp_obs::span("reduce.par.partition");
    // Partition vertices into rank regions (ascending global id).
    let mut region_verts: Vec<Vec<u32>> = vec![Vec::new(); nranks];
    let mut local_of = vec![0u32; n];
    for v in 0..n as u32 {
        let r = g.vertex(v).rank as usize;
        local_of[v as usize] = region_verts[r].len() as u32;
        region_verts[r].push(v);
    }
    // Collect cross-rank edges (in arena order) and hand each region the
    // list of halves it owns: `(cross id, is_source)` pairs. `src_pos` /
    // `dst_pos` remember each half's position in its region's incident
    // list so the stitch can find it again.
    let mut cross: Vec<(u32, u32, EdgeKind, CostExpr)> = Vec::new();
    let mut incident: Vec<Vec<(u32, bool)>> = vec![Vec::new(); nranks];
    let mut src_pos: Vec<u32> = Vec::new();
    let mut dst_pos: Vec<u32> = Vec::new();
    for v in 0..n as u32 {
        let rt = g.vertex(v).rank;
        for e in g.preds(v) {
            let rs = g.vertex(e.other).rank;
            if rs != rt {
                let cid = cross.len() as u32;
                src_pos.push(incident[rs as usize].len() as u32);
                incident[rs as usize].push((cid, true));
                dst_pos.push(incident[rt as usize].len() as u32);
                incident[rt as usize].push((cid, false));
                cross.push((e.other, v, e.kind, e.cost));
            }
        }
    }
    drop(part_span);
    llamp_obs::counter("reduce.par.regions", nranks as u64);

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        cfg.threads
    };
    // Each worker builds, reduces and compacts one region at a time, so
    // an arena's memory is recycled into the next region instead of
    // growing the peak footprint (and the kernel's fault bill).
    let workers = threads.min(nranks).max(1);
    let mut outs: Vec<Option<RegionOut>> = (0..nranks).map(|_| None).collect();
    let reduce_region = |r: usize| {
        let mut arena = Reducer::from_region(g, &region_verts[r], &local_of, &cross, &incident[r]);
        run_rounds(&mut arena, cfg);
        arena.into_region_out(incident[r].len())
    };
    if workers <= 1 {
        for (r, slot) in outs.iter_mut().enumerate() {
            *slot = Some(reduce_region(r));
        }
    } else {
        let chunk = nranks.div_ceil(workers);
        std::thread::scope(|s| {
            for (ci, slice) in outs.chunks_mut(chunk).enumerate() {
                let reduce_region = &reduce_region;
                s.spawn(move || {
                    let g = llamp_obs::span("reduce.par.worker");
                    for (i, slot) in slice.iter_mut().enumerate() {
                        *slot = Some(reduce_region(ci * chunk + i));
                    }
                    if llamp_obs::is_enabled() {
                        g.field_u64("regions", slice.len() as u64);
                    }
                });
            }
        });
    }
    let mut outs: Vec<RegionOut> = outs.into_iter().map(|o| o.expect("region ran")).collect();

    // Stitch: survivors of each region in rank order, then the
    // recombined cross edges, then a serial finishing fixpoint.
    let stitch_span = llamp_obs::span("reduce.par.stitch");
    let mut stats = ReductionStats::default();
    for o in &outs {
        stats.chain_merges += o.stats.chain_merges;
        stats.folds += o.stats.folds;
        stats.redundant_removed += o.stats.redundant_removed;
        stats.rounds = stats.rounds.max(o.stats.rounds);
    }
    stats.vertices_before = n as u64;
    stats.edges_before = g.num_edges() as u64;
    stats.rows_before = alg1_row_count(g);

    let n_surv: usize = outs.iter().map(|o| o.verts.len()).sum();
    let e_surv: usize = outs.iter().map(|o| o.edges.len()).sum::<usize>() + cross.len();
    // Survivor-local index -> stitched id offset, per region (rank order).
    let mut base = Vec::with_capacity(nranks);
    let mut acc = 0u32;
    for o in &outs {
        base.push(acc);
        acc += o.verts.len() as u32;
    }
    let mut st = Reducer {
        nranks: g.nranks(),
        verts: Vec::with_capacity(n_surv),
        valive: vec![true; n_surv],
        members: Vec::with_capacity(n_surv),
        head: Vec::with_capacity(n_surv),
        first_virtual: n_surv as u32,
        edges: Vec::with_capacity(e_surv),
        inc: vec![Vec::new(); n_surv],
        out: vec![Vec::new(); n_surv],
        stats,
    };
    // Region edges that died carrying provenance (redundant-eliminated
    // after folds routed vertices through them) still owe those vertices
    // a home: remember the dead edge's target by its original head id.
    let mut dead_via: Vec<(u32, Vec<u32>)> = Vec::new();
    let push_edge = |st: &mut Reducer, e: REdge| {
        let id = st.edges.len() as u32;
        st.inc[e.to as usize].push(id);
        st.out[e.from as usize].push(id);
        st.edges.push(e);
    };
    for (r, o) in outs.iter_mut().enumerate() {
        let b = base[r];
        st.verts.append(&mut o.verts);
        st.head.append(&mut o.head);
        st.members.append(&mut o.members);
        dead_via.append(&mut o.dead_via);
        for e in o.edges.drain(..) {
            push_edge(
                &mut st,
                REdge {
                    from: e.from + b,
                    to: e.to + b,
                    ..e
                },
            );
        }
    }
    // Recombine each cross edge from its two halves: the source half's
    // current origin and accumulated (cost, via prefix) from the source
    // region, the target half's current target and (cost, via suffix)
    // from the target region.
    for (cid, &(gf, gt, kind, _)) in cross.iter().enumerate() {
        let sr = g.vertex(gf).rank as usize;
        let tr = g.vertex(gt).rank as usize;
        let (sf, scost, mut via) = {
            let h = &mut outs[sr].halves[src_pos[cid] as usize];
            (h.0, h.1, std::mem::take(&mut h.2))
        };
        let (tt, tcost, tvia) = {
            let h = &mut outs[tr].halves[dst_pos[cid] as usize];
            (h.0, h.1, std::mem::take(&mut h.2))
        };
        via.extend(tvia);
        debug_assert!(
            sf != u32::MAX && tt != u32::MAX,
            "cross-edge endpoint lost in region reduction"
        );
        push_edge(
            &mut st,
            REdge {
                from: sf + base[sr],
                to: tt + base[tr],
                kind,
                cost: scost.add(&tcost),
                via,
                alive: true,
            },
        );
    }
    drop(stitch_span);
    run_rounds(&mut st, cfg);
    st.finish(n, dead_via)
}

/// The compact survivor set extracted from one region's arena (see
/// [`Reducer::into_region_out`]); everything the stitch needs, in a
/// footprint proportional to the *reduced* region.
struct RegionOut {
    /// Surviving real vertices in arena-slot (= ascending original id)
    /// order, with their head ids and member lists.
    verts: Vec<Vertex>,
    head: Vec<u32>,
    members: Vec<Vec<u32>>,
    /// Live intra-region edges in arena order, endpoints renumbered to
    /// survivor-local indexes.
    edges: Vec<REdge>,
    /// Via lists of dead intra-region edges, keyed by the dead edge's
    /// target as an original head id.
    dead_via: Vec<(u32, Vec<u32>)>,
    /// Per incident half-edge (same order as the region's incident
    /// list): the real endpoint as a survivor-local index, plus the
    /// half's accumulated cost and via list.
    halves: Vec<(u32, CostExpr, Vec<u32>)>,
    stats: ReductionStats,
}

/// Run one reduction pass under an obs span carrying its change count.
fn traced_pass(name: &'static str, f: impl FnOnce() -> u64) -> u64 {
    let g = llamp_obs::span(name);
    let changed = f();
    if llamp_obs::is_enabled() {
        g.field_u64("changed", changed);
    }
    changed
}

/// One mutable edge of the reduction arena. Edges are only ever rewired
/// or killed, never created, so arena indices are stable and every pass
/// iterating them is deterministic.
#[derive(Debug, Clone)]
struct REdge {
    from: u32,
    to: u32,
    kind: EdgeKind,
    cost: CostExpr,
    /// Original vertices folded into this edge, source-side first.
    via: Vec<u32>,
    alive: bool,
}

struct Reducer {
    nranks: u32,
    verts: Vec<Vertex>,
    valive: Vec<bool>,
    /// Ordered original members absorbed by each live vertex (head
    /// first; starts as the vertex itself).
    members: Vec<Vec<u32>>,
    /// Arena slot -> **original** graph vertex id (`members[v][0]`,
    /// stable even after the member list is taken during stitching). On
    /// the whole-graph path this is the identity.
    head: Vec<u32>,
    /// Slots `>= first_virtual` are per-cross-edge boundary anchors on
    /// the region path (see [`Reducer::from_region`]): zero-cost
    /// vertices with the sentinel rank `u32::MAX`, so the same-rank
    /// guards in every pass keep them inert. Equal to `verts.len()` on
    /// the whole-graph path and the stitched arena.
    first_virtual: u32,
    edges: Vec<REdge>,
    /// Incoming/outgoing edge-id lists. Entries can go stale when an
    /// edge dies or is rewired; readers filter, `compact` prunes.
    inc: Vec<Vec<u32>>,
    out: Vec<Vec<u32>>,
    stats: ReductionStats,
}

impl Reducer {
    fn from_graph(g: &ExecGraph) -> Self {
        let n = g.num_vertices();
        let mut edges = Vec::with_capacity(g.num_edges());
        let mut inc: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in 0..n as u32 {
            for e in g.preds(v) {
                let id = edges.len() as u32;
                edges.push(REdge {
                    from: e.other,
                    to: v,
                    kind: e.kind,
                    cost: e.cost,
                    via: Vec::new(),
                    alive: true,
                });
                inc[v as usize].push(id);
                out[e.other as usize].push(id);
            }
        }
        Self {
            nranks: g.nranks(),
            verts: g.vertices().to_vec(),
            valive: vec![true; n],
            members: (0..n as u32).map(|v| vec![v]).collect(),
            head: (0..n as u32).collect(),
            first_virtual: n as u32,
            edges,
            inc,
            out,
            stats: ReductionStats::default(),
        }
    }

    /// A rank-local region arena: `verts` are the region's original
    /// vertex ids (ascending), edges are the intra-region edges in arena
    /// order. Members and via lists carry **original** ids.
    ///
    /// Each cross-region edge incident on this region becomes a
    /// **half-edge** anchored to its own virtual boundary vertex: a
    /// source half `u -> B` (zero cost) for an outgoing cross edge, a
    /// target half `B -> v` (carrying the cross edge's cost) for an
    /// incoming one. The anchors have rank `u32::MAX` and degree one, so
    /// no pass can merge, fold or eliminate them — but every *real*
    /// vertex now sees its full global degree, and the generic rewiring
    /// in the passes transforms the halves exactly as it would the cross
    /// edge itself (cost pushes accumulate on the half, folded vertices
    /// land in its via list, merges move its real endpoint). The stitch
    /// recombines the two halves of each cross edge afterwards.
    ///
    /// `incident` lists this region's (cross-edge id, is-source) pairs in
    /// cross-arena order; the `k`-th entry's half-edge gets arena id
    /// `intra_edge_count + k`.
    fn from_region(
        g: &ExecGraph,
        verts: &[u32],
        local_of: &[u32],
        cross: &[(u32, u32, EdgeKind, CostExpr)],
        incident: &[(u32, bool)],
    ) -> Self {
        let n = verts.len();
        let total = n + incident.len();
        let mut edges = Vec::new();
        let mut inc: Vec<Vec<u32>> = vec![Vec::new(); total];
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); total];
        for (lv, &gv) in verts.iter().enumerate() {
            let rank = g.vertex(gv).rank;
            for e in g.preds(gv) {
                if g.vertex(e.other).rank != rank {
                    continue;
                }
                let lu = local_of[e.other as usize];
                let id = edges.len() as u32;
                edges.push(REdge {
                    from: lu,
                    to: lv as u32,
                    kind: e.kind,
                    cost: e.cost,
                    via: Vec::new(),
                    alive: true,
                });
                inc[lv].push(id);
                out[lu as usize].push(id);
            }
        }
        let mut arena: Vec<Vertex> = Vec::with_capacity(total);
        arena.extend(verts.iter().map(|&gv| *g.vertex(gv)));
        let mut members: Vec<Vec<u32>> = Vec::with_capacity(total);
        members.extend(verts.iter().map(|&gv| vec![gv]));
        let mut head = Vec::with_capacity(total);
        head.extend_from_slice(verts);
        for (k, &(cid, is_src)) in incident.iter().enumerate() {
            let b = (n + k) as u32;
            arena.push(Vertex {
                rank: u32::MAX,
                kind: VertexKind::Calc,
                cost: CostExpr::ZERO,
            });
            members.push(Vec::new());
            head.push(u32::MAX);
            let (gf, gt, kind, cost) = cross[cid as usize];
            let eid = edges.len() as u32;
            if is_src {
                let lu = local_of[gf as usize];
                edges.push(REdge {
                    from: lu,
                    to: b,
                    kind,
                    cost: CostExpr::ZERO,
                    via: Vec::new(),
                    alive: true,
                });
                out[lu as usize].push(eid);
                inc[b as usize].push(eid);
            } else {
                let lv = local_of[gt as usize];
                edges.push(REdge {
                    from: b,
                    to: lv,
                    kind,
                    cost,
                    via: Vec::new(),
                    alive: true,
                });
                inc[lv as usize].push(eid);
                out[b as usize].push(eid);
            }
        }
        Self {
            nranks: g.nranks(),
            verts: arena,
            valive: vec![true; total],
            members,
            head,
            first_virtual: n as u32,
            edges,
            inc,
            out,
            stats: ReductionStats::default(),
        }
    }

    /// Consume a reduced region arena into its compact survivor set.
    /// `n_incident` is the region's half-edge count; halves occupy the
    /// last `n_incident` arena edge slots (see [`Reducer::from_region`]).
    fn into_region_out(mut self, n_incident: usize) -> RegionOut {
        let fv = self.first_virtual as usize;
        let n_intra = self.edges.len() - n_incident;
        let mut surv_of = vec![u32::MAX; fv];
        let mut verts = Vec::new();
        let mut head = Vec::new();
        let mut members = Vec::new();
        for (lv, slot) in surv_of.iter_mut().enumerate() {
            if self.valive[lv] {
                *slot = verts.len() as u32;
                verts.push(self.verts[lv]);
                head.push(self.head[lv]);
                members.push(std::mem::take(&mut self.members[lv]));
            }
        }
        let mut edges = Vec::new();
        let mut dead_via = Vec::new();
        for e in &mut self.edges[..n_intra] {
            if e.alive {
                let (f, t) = (surv_of[e.from as usize], surv_of[e.to as usize]);
                debug_assert!(f != u32::MAX && t != u32::MAX, "live edge endpoint died");
                edges.push(REdge {
                    from: f,
                    to: t,
                    kind: e.kind,
                    cost: e.cost,
                    via: std::mem::take(&mut e.via),
                    alive: true,
                });
            } else if !e.via.is_empty() {
                dead_via.push((self.head[e.to as usize], std::mem::take(&mut e.via)));
            }
        }
        let mut halves = Vec::with_capacity(n_incident);
        for e in &mut self.edges[n_intra..] {
            debug_assert!(e.alive, "boundary half-edge died in region pass");
            // The real endpoint (the other one is this half's virtual
            // boundary anchor).
            let real = if (e.from as usize) < fv { e.from } else { e.to };
            halves.push((surv_of[real as usize], e.cost, std::mem::take(&mut e.via)));
        }
        RegionOut {
            verts,
            head,
            members,
            edges,
            dead_via,
            halves,
            stats: self.stats,
        }
    }

    fn live_in(&self, v: u32) -> Vec<u32> {
        self.inc[v as usize]
            .iter()
            .copied()
            .filter(|&e| self.edges[e as usize].alive && self.edges[e as usize].to == v)
            .collect()
    }

    fn live_out(&self, v: u32) -> Vec<u32> {
        self.out[v as usize]
            .iter()
            .copied()
            .filter(|&e| self.edges[e as usize].alive && self.edges[e as usize].from == v)
            .collect()
    }

    /// Prune stale adjacency entries (dead or rewired edges).
    fn compact(&mut self) {
        for v in 0..self.verts.len() {
            let edges = &self.edges;
            self.inc[v].retain(|&e| edges[e as usize].alive && edges[e as usize].to == v as u32);
            self.out[v].retain(|&e| edges[e as usize].alive && edges[e as usize].from == v as u32);
        }
    }

    /// Topological order of the live subgraph (Kahn, ascending-id queue
    /// seeding — deterministic).
    fn topo(&self) -> Vec<u32> {
        let n = self.verts.len();
        let mut indeg = vec![0u32; n];
        for e in &self.edges {
            if e.alive {
                indeg[e.to as usize] += 1;
            }
        }
        let mut queue: Vec<u32> = (0..n as u32)
            .filter(|&v| self.valive[v as usize] && indeg[v as usize] == 0)
            .collect();
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            for eid in self.live_out(v) {
                let t = self.edges[eid as usize].to;
                let d = &mut indeg[t as usize];
                *d -= 1;
                if *d == 0 {
                    queue.push(t);
                }
            }
        }
        queue
    }

    /// Serial-chain contraction: merge `v` into its sole `Local`
    /// predecessor `u` when `u`'s only successor is `v` (same rank),
    /// accumulating edge + vertex cost into `u`.
    fn pass_chains(&mut self) -> u64 {
        self.compact();
        let order = self.topo();
        let mut merged = 0u64;
        for &v in &order {
            if !self.valive[v as usize] {
                continue;
            }
            let ins = self.live_in(v);
            if ins.len() != 1 {
                continue;
            }
            let eid = ins[0] as usize;
            if self.edges[eid].kind != EdgeKind::Local {
                continue;
            }
            let u = self.edges[eid].from;
            if u == v
                || !self.valive[u as usize]
                || self.verts[u as usize].rank != self.verts[v as usize].rank
                || self.live_out(u).len() != 1
            {
                continue;
            }
            let add = self.edges[eid].cost.add(&self.verts[v as usize].cost);
            self.verts[u as usize].cost = self.verts[u as usize].cost.add(&add);
            let via = std::mem::take(&mut self.edges[eid].via);
            self.members[u as usize].extend(via);
            let mv = std::mem::take(&mut self.members[v as usize]);
            self.members[u as usize].extend(mv);
            self.edges[eid].alive = false;
            self.valive[v as usize] = false;
            for oid in self.live_out(v) {
                self.edges[oid as usize].from = u;
                self.out[u as usize].push(oid);
            }
            merged += 1;
        }
        self.stats.chain_merges += merged;
        merged
    }

    /// Vertex folds. Forward: a vertex with exactly one `Local` out-edge
    /// (same rank, ≥ 1 pred) dissolves into its consumer, cost pushed
    /// onto every in-edge — `max` distributes over `+`, so the makespan
    /// is exact, and join vertices stop spawning LP rows of their own.
    /// Backward: the mirror for a single `Local` in-edge (≥ 1 succ).
    fn pass_folds(&mut self) -> u64 {
        self.compact();
        let order = self.topo();
        let mut count = 0u64;
        for &v in &order {
            if !self.valive[v as usize] {
                continue;
            }
            let outs = self.live_out(v);
            let ins = self.live_in(v);
            // Forward fold into the unique consumer.
            if outs.len() == 1 && !ins.is_empty() {
                let fid = outs[0] as usize;
                let w = self.edges[fid].to;
                if self.edges[fid].kind == EdgeKind::Local
                    && self.valive[w as usize]
                    && self.verts[w as usize].rank == self.verts[v as usize].rank
                {
                    let push = self.verts[v as usize].cost.add(&self.edges[fid].cost);
                    let fvia = std::mem::take(&mut self.edges[fid].via);
                    let mv = std::mem::take(&mut self.members[v as usize]);
                    for &eid in &ins {
                        let e = &mut self.edges[eid as usize];
                        debug_assert_ne!(e.from, w, "fold would create a self edge");
                        e.cost = e.cost.add(&push);
                        e.via.extend(mv.iter().copied());
                        e.via.extend(fvia.iter().copied());
                        e.to = w;
                        self.inc[w as usize].push(eid);
                    }
                    self.edges[fid].alive = false;
                    self.valive[v as usize] = false;
                    count += 1;
                    continue;
                }
            }
            // Backward fold into the unique producer.
            if ins.len() == 1 && !outs.is_empty() {
                let eid = ins[0] as usize;
                let u = self.edges[eid].from;
                if self.edges[eid].kind == EdgeKind::Local
                    && self.valive[u as usize]
                    && self.verts[u as usize].rank == self.verts[v as usize].rank
                {
                    let push = self.edges[eid].cost.add(&self.verts[v as usize].cost);
                    let evia = std::mem::take(&mut self.edges[eid].via);
                    let mv = std::mem::take(&mut self.members[v as usize]);
                    for &oid in &outs {
                        let o = &mut self.edges[oid as usize];
                        debug_assert_ne!(o.to, u, "fold would create a self edge");
                        o.cost = push.add(&o.cost);
                        let mut via = evia.clone();
                        via.extend(mv.iter().copied());
                        via.append(&mut o.via);
                        o.via = via;
                        o.from = u;
                        self.out[u as usize].push(oid);
                    }
                    self.edges[eid].alive = false;
                    self.valive[v as usize] = false;
                    count += 1;
                }
            }
        }
        self.stats.folds += count;
        count
    }

    /// Redundant-dependency elimination at join vertices.
    ///
    /// (a) *Sibling domination*: in-edges whose sources sit on exact
    /// single-predecessor chains from a **shared root** `a` imply bounds
    /// `T_a + offset + edge` with symbolic (per-parameter) offsets; an
    /// edge componentwise-dominated by a sibling for every non-negative
    /// parameter value is implied and removed (ties keep the
    /// lowest-index edge).
    ///
    /// (b) *Transitive elimination*: a zero-cost `Local` in-edge with an
    /// alternative all-non-negative path from its source (bounded DFS,
    /// `dfs_cap` visits) is implied by that path.
    fn pass_redundant(&mut self, dfs_cap: usize) -> u64 {
        self.compact();
        let order = self.topo();
        let n = self.verts.len();
        let mut pos = vec![u32::MAX; n];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i as u32;
        }
        // Exact chain roots: root[v]/off[v] such that T_v = T_root + off
        // for all parameter values (only holds along single-in-edge
        // chains; off includes the chain vertices' own costs).
        let mut root: Vec<u32> = (0..n as u32).collect();
        let mut off: Vec<CostExpr> = vec![CostExpr::ZERO; n];
        for &v in &order {
            let ins = self.live_in(v);
            if ins.len() == 1 {
                let e = &self.edges[ins[0] as usize];
                root[v as usize] = root[e.from as usize];
                off[v as usize] = off[e.from as usize]
                    .add(&e.cost)
                    .add(&self.verts[v as usize].cost);
            }
        }
        let mut removed = 0u64;
        let mut stamp = vec![0u32; n];
        let mut cur_stamp = 0u32;
        for &v in &order {
            let ins = self.live_in(v);
            if ins.len() < 2 {
                continue;
            }
            // (a) sibling domination on shared exact-chain roots.
            for (i, &ei) in ins.iter().enumerate() {
                if !self.edges[ei as usize].alive {
                    continue;
                }
                let (ri, bi) = {
                    let e = &self.edges[ei as usize];
                    (root[e.from as usize], off[e.from as usize].add(&e.cost))
                };
                for (j, &ej) in ins.iter().enumerate() {
                    if i == j || !self.edges[ej as usize].alive {
                        continue;
                    }
                    let e = &self.edges[ej as usize];
                    if root[e.from as usize] != ri {
                        continue;
                    }
                    let bj = off[e.from as usize].add(&e.cost);
                    if dominated(&bi, &bj) && (bi != bj || j < i) {
                        self.edges[ei as usize].alive = false;
                        removed += 1;
                        break;
                    }
                }
            }
            // (b) bounded transitive search for zero-cost Local edges.
            let still: Vec<u32> = ins
                .iter()
                .copied()
                .filter(|&e| self.edges[e as usize].alive)
                .collect();
            let mut live_count = still.len();
            if live_count < 2 {
                continue;
            }
            for &ei in &still {
                if live_count < 2 {
                    break;
                }
                let e = &self.edges[ei as usize];
                if e.kind != EdgeKind::Local || !e.cost.is_zero() {
                    continue;
                }
                let u = e.from;
                cur_stamp += 1;
                if self.reaches(u, v, ei, dfs_cap, &pos, &mut stamp, cur_stamp) {
                    self.edges[ei as usize].alive = false;
                    live_count -= 1;
                    removed += 1;
                }
            }
        }
        self.stats.redundant_removed += removed;
        removed
    }

    /// Is there a path `u ⇝ target` avoiding `skip_edge` whose edge and
    /// intermediate-vertex costs are all componentwise non-negative?
    /// Bounded to `cap` visited vertices; only explores vertices
    /// topologically before `target`.
    #[allow(clippy::too_many_arguments)]
    fn reaches(
        &self,
        u: u32,
        target: u32,
        skip_edge: u32,
        cap: usize,
        pos: &[u32],
        stamp: &mut [u32],
        cur: u32,
    ) -> bool {
        let mut stack = vec![u];
        stamp[u as usize] = cur;
        let mut visited = 0usize;
        while let Some(x) = stack.pop() {
            visited += 1;
            if visited > cap {
                return false;
            }
            for &oid in &self.out[x as usize] {
                let e = &self.edges[oid as usize];
                if !e.alive || e.from != x || oid == skip_edge || !nonneg(&e.cost) {
                    continue;
                }
                let y = e.to;
                if y == target {
                    return true;
                }
                if stamp[y as usize] == cur
                    || pos[y as usize] >= pos[target as usize]
                    || !nonneg(&self.verts[y as usize].cost)
                {
                    continue;
                }
                stamp[y as usize] = cur;
                stack.push(y);
            }
        }
        false
    }

    /// Rebuild the reduced [`ExecGraph`] and assemble the provenance map.
    ///
    /// `orig_n` is the **original** graph's vertex count (provenance
    /// arrays index original ids — on the region-parallel path the arena
    /// is the stitched survivor set, not the original graph).
    /// `extra_via` carries via lists of region edges that died before
    /// stitching, keyed by the dead edge's target as an original head id.
    fn finish(mut self, orig_n: usize, extra_via: Vec<(u32, Vec<u32>)>) -> ReducedGraph {
        let _span = llamp_obs::span("reduce.finish");
        // Only whole-graph or stitched arenas reach here; boundary
        // anchors never survive a stitch.
        debug_assert_eq!(self.first_virtual as usize, self.verts.len());
        self.compact();
        // Pre-deduplicate parallel zero-cost Local edges ourselves so the
        // builder's internal dedup can never desynchronise the via table.
        let mut seen: FxHashMap<(u32, u32), ()> = FxHashMap::default();
        for e in self.edges.iter_mut() {
            if e.alive
                && e.kind == EdgeKind::Local
                && e.cost.is_zero()
                && seen.insert((e.from, e.to), ()).is_some()
            {
                e.alive = false;
            }
        }

        let n = self.verts.len();
        let n_live = self.valive.iter().filter(|&&a| a).count();
        let e_live = self.edges.iter().filter(|e| e.alive).count();
        let mut new_id = vec![u32::MAX; n];
        let mut builder = GraphBuilder::with_capacity(self.nranks, n_live, e_live);
        let mut member_start: Vec<u32> = vec![0];
        let mut member_ids: Vec<u32> = Vec::new();
        for (v, vert) in self.verts.iter().enumerate() {
            if self.valive[v] {
                new_id[v] = builder.add_vertex(vert.rank, vert.kind, vert.cost);
                member_ids.extend_from_slice(&self.members[v]);
                member_start.push(member_ids.len() as u32);
            }
        }
        // Edges in arena order, bucketed by (new) target so the via table
        // aligns with the builder's per-target pred fill order.
        let n_new = member_start.len() - 1;
        let mut bucket: Vec<Vec<u32>> = vec![Vec::new(); n_new];
        for (eid, e) in self.edges.iter().enumerate() {
            if !e.alive {
                continue;
            }
            let (f, t) = (new_id[e.from as usize], new_id[e.to as usize]);
            debug_assert!(f != u32::MAX && t != u32::MAX, "edge endpoint died");
            builder.add_edge(f, t, e.kind, e.cost);
            bucket[t as usize].push(eid as u32);
        }
        let graph = builder.finish().expect("reduction preserves acyclicity");

        let mut pred_offset: Vec<u32> = Vec::with_capacity(n_new + 1);
        let mut via_start: Vec<u32> = vec![0];
        let mut via_ids: Vec<u32> = Vec::new();
        let mut acc = 0u32;
        pred_offset.push(0);
        for (v, slots) in bucket.iter().enumerate() {
            // Hard assert (release builds included): the via table is
            // aligned with the builder's per-target pred fill order, and
            // relies on the pre-dedup above replicating GraphBuilder's
            // drop rule exactly. If the builder's rule ever drifts, fail
            // loudly here instead of silently mis-attributing provenance.
            assert_eq!(
                graph.preds(v as u32).len(),
                slots.len(),
                "GraphBuilder dropped edges the reduction pre-dedup kept: \
                 via table would desynchronise"
            );
            for &eid in slots {
                via_ids.extend_from_slice(&self.edges[eid as usize].via);
                via_start.push(via_ids.len() as u32);
            }
            acc += slots.len() as u32;
            pred_offset.push(acc);
        }

        let mut home = vec![u32::MAX; orig_n];
        for (v, members) in self.members.iter().enumerate() {
            if self.valive[v] {
                for &m in members {
                    home[m as usize] = new_id[v];
                }
            }
        }
        // Vertices folded into edges map to the edge's target. Dead edges
        // (removed as redundant, or deduplicated above) still carry their
        // via lists, and their target may itself have been folded onward —
        // resolve through the target's own home, iterating until stable
        // (each round resolves at least one fold layer, so this is bounded
        // by the fold depth). Dead targets resolve through their *head*
        // (original id), which on the whole-graph path is the arena id
        // itself; pre-stitch casualties in `extra_via` resolve the same
        // way, directly by original head id.
        loop {
            let mut changed = false;
            for e in &self.edges {
                let target_home = if self.valive[e.to as usize] {
                    new_id[e.to as usize]
                } else {
                    home[self.head[e.to as usize] as usize]
                };
                if target_home == u32::MAX {
                    continue;
                }
                for &x in &e.via {
                    if home[x as usize] == u32::MAX {
                        home[x as usize] = target_home;
                        changed = true;
                    }
                }
            }
            for (to_orig, via) in &extra_via {
                let target_home = home[*to_orig as usize];
                if target_home == u32::MAX {
                    continue;
                }
                for &x in via {
                    if home[x as usize] == u32::MAX {
                        home[x as usize] = target_home;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        debug_assert!(
            graph.num_vertices() == 0 || home.iter().all(|&h| h != u32::MAX),
            "every original vertex has a home in the reduced graph"
        );

        self.stats.vertices_after = graph.num_vertices() as u64;
        self.stats.edges_after = graph.num_edges() as u64;
        self.stats.rows_after = alg1_row_count(&graph);
        ReducedGraph {
            graph,
            member_start,
            member_ids,
            pred_offset,
            via_start,
            via_ids,
            home,
            stats: self.stats,
        }
    }
}

/// `a ≤ b` in every cost component: the bound `T + a·θ` is implied by
/// `T + b·θ` for all non-negative parameter values.
fn dominated(a: &CostExpr, b: &CostExpr) -> bool {
    a.const_ns <= b.const_ns
        && a.o_count <= b.o_count
        && a.l_count <= b.l_count
        && a.gbytes <= b.gbytes
}

/// Every component non-negative (true for every cost the trace compiler
/// emits; guarded here so hand-built graphs with negative costs are never
/// mis-reduced).
fn nonneg(c: &CostExpr) -> bool {
    c.const_ns >= 0.0 && c.o_count >= 0.0 && c.l_count >= 0.0 && c.gbytes >= 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VertexKind;

    fn calc(b: &mut GraphBuilder, rank: u32, ns: f64) -> u32 {
        b.add_vertex(rank, VertexKind::Calc, CostExpr::constant(ns))
    }

    #[test]
    fn identity_reduction_round_trips() {
        let mut b = GraphBuilder::new(1);
        let a = calc(&mut b, 0, 1.0);
        let c = calc(&mut b, 0, 2.0);
        b.add_edge(a, c, EdgeKind::Local, CostExpr::ZERO);
        let g = b.finish().unwrap();
        let r = reduce(&g, &ReduceConfig::none());
        assert_eq!(r.graph().num_vertices(), 2);
        assert_eq!(r.members(0), &[0]);
        assert_eq!(r.lift_path(&[0, 1]), vec![0, 1]);
        assert_eq!(r.stats().rows_before, r.stats().rows_after);
    }

    #[test]
    fn chains_only_matches_legacy_contraction() {
        let mut b = GraphBuilder::new(1);
        let a = calc(&mut b, 0, 1.0);
        let c = calc(&mut b, 0, 2.0);
        let d = calc(&mut b, 0, 3.0);
        b.add_edge(a, c, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(c, d, EdgeKind::Local, CostExpr::ZERO);
        let g = b.finish().unwrap();
        let r = reduce(&g, &ReduceConfig::chains_only());
        assert_eq!(r.graph().num_vertices(), 1);
        assert_eq!(r.graph().vertex(0).cost.const_ns, 6.0);
        assert_eq!(r.members(0), &[0, 1, 2]);
        assert_eq!(r.home_of(2), 0);
        assert_eq!(r.lift_path(&[0]), vec![0, 1, 2]);
    }

    #[test]
    fn forward_fold_dissolves_single_consumer_joins() {
        // Join j = max(a, x) + 5, consumed only by w (which also has a
        // third pred, so the chain pass cannot fire): folding j into w
        // pushes the 5 onto j's in-edges, deleting j's LP rows.
        let mut b = GraphBuilder::new(1);
        let a = calc(&mut b, 0, 1.0);
        let x = calc(&mut b, 0, 2.0);
        let j = calc(&mut b, 0, 5.0);
        let w = calc(&mut b, 0, 7.0);
        let y = calc(&mut b, 0, 3.0);
        b.add_edge(a, j, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(x, j, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(j, w, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(y, w, EdgeKind::Local, CostExpr::ZERO);
        let g = b.finish().unwrap();
        let r = reduce(&g, &ReduceConfig::default());
        let rg = r.graph();
        // j dissolved into w: 4 vertices remain (a, x, y, w).
        assert_eq!(rg.num_vertices(), 4);
        let sink = (0..rg.num_vertices() as u32)
            .find(|&v| rg.succs(v).is_empty())
            .unwrap();
        // The two edges routed through j carry its pushed cost.
        let pushed = rg
            .preds(sink)
            .iter()
            .filter(|e| e.cost.const_ns == 5.0)
            .count();
        assert_eq!(pushed, 2, "j's cost pushed onto both in-edges");
        assert_eq!(r.stats().rows_after, 4); // 3 join rows + 1 sink row
                                             // Provenance: j is accounted under the sink, spliced into edges.
        assert_eq!(r.home_of(j), sink);
        let via_pred = rg
            .preds(sink)
            .iter()
            .position(|e| e.cost.const_ns == 5.0)
            .unwrap();
        let from = rg.preds(sink)[via_pred].other;
        let lifted = r.lift_path(&[from, sink]);
        assert!(lifted.contains(&j));
    }

    #[test]
    fn sibling_domination_removes_implied_edges() {
        // w has in-edges from both s and s's own chain root t:
        //   t --(0)--> s(cost 5) --(0)--> w   and   t --(0)--> w.
        // The direct t edge is implied (T_s = T_t + 5 ≥ T_t).
        let mut b = GraphBuilder::new(1);
        let t = calc(&mut b, 0, 1.0);
        let s = calc(&mut b, 0, 5.0);
        let w0 = calc(&mut b, 0, 0.0);
        b.add_edge(t, s, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(s, w0, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(t, w0, EdgeKind::Local, CostExpr::ZERO);
        let g = b.finish().unwrap();
        let cfg = ReduceConfig {
            chains: false,
            folds: false,
            redundant: true,
            ..ReduceConfig::default()
        };
        let r = reduce(&g, &cfg);
        assert_eq!(r.stats().redundant_removed, 1);
        assert_eq!(r.graph().num_edges(), 2);
    }

    #[test]
    fn transitive_zero_edge_removed_through_join_paths() {
        // u --(0)--> v redundant because u → j → v exists, where j is a
        // join (so u is not on an exact chain — only the DFS finds it).
        let mut b = GraphBuilder::new(1);
        let u = calc(&mut b, 0, 1.0);
        let other = calc(&mut b, 0, 1.0);
        let j = calc(&mut b, 0, 2.0);
        let v = calc(&mut b, 0, 0.0);
        b.add_edge(u, j, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(other, j, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(j, v, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(u, v, EdgeKind::Local, CostExpr::ZERO);
        let g = b.finish().unwrap();
        let cfg = ReduceConfig {
            chains: false,
            folds: false,
            redundant: true,
            ..ReduceConfig::default()
        };
        let r = reduce(&g, &cfg);
        assert!(r.stats().redundant_removed >= 1);
        // v keeps only the j edge; rows shrink accordingly.
        assert!(r.stats().rows_after < r.stats().rows_before);
    }

    #[test]
    fn home_is_total_even_when_via_edges_are_deduplicated() {
        // Zero-cost diamond u -> {a, b} -> w: both arms fold into w as
        // parallel zero-cost edges carrying via [a] and [b]; one edge is
        // then removed as redundant. The vertex folded into the dead
        // edge must still resolve to a home in the reduced graph.
        let mut bld = GraphBuilder::new(1);
        let u = calc(&mut bld, 0, 1.0);
        let a = calc(&mut bld, 0, 0.0);
        let b2 = calc(&mut bld, 0, 0.0);
        let w = calc(&mut bld, 0, 2.0);
        bld.add_edge(u, a, EdgeKind::Local, CostExpr::ZERO);
        bld.add_edge(u, b2, EdgeKind::Local, CostExpr::ZERO);
        bld.add_edge(a, w, EdgeKind::Local, CostExpr::ZERO);
        bld.add_edge(b2, w, EdgeKind::Local, CostExpr::ZERO);
        let g = bld.finish().unwrap();
        let r = reduce(&g, &ReduceConfig::default());
        let n = r.graph().num_vertices() as u32;
        for orig in 0..g.num_vertices() as u32 {
            let h = r.home_of(orig);
            assert!(h < n, "vertex {orig} lost its home ({h})");
        }
    }

    #[test]
    fn partitioned_reduction_is_thread_invariant_and_total() {
        // Two ranks, cross-rank comm edges; par_threshold 0 forces the
        // region path even on this tiny graph. Output must be a pure
        // function of the graph — identical Debug image at any thread
        // count — and every original vertex must keep a home.
        let mut b = GraphBuilder::new(2);
        let a0 = calc(&mut b, 0, 1.0);
        let a1 = calc(&mut b, 0, 2.0);
        let a2 = calc(&mut b, 0, 3.0);
        let c0 = calc(&mut b, 1, 4.0);
        let c1 = calc(&mut b, 1, 5.0);
        let c2 = calc(&mut b, 1, 0.0);
        b.add_edge(a0, a1, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(a1, a2, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(c0, c1, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(c1, c2, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(a1, c2, EdgeKind::Comm, CostExpr::wire(8));
        b.add_edge(c0, a2, EdgeKind::Comm, CostExpr::wire(8));
        let g = b.finish().unwrap();
        let run = |threads: usize| {
            reduce(
                &g,
                &ReduceConfig {
                    threads,
                    par_threshold: 0,
                    ..ReduceConfig::default()
                },
            )
        };
        let r1 = run(1);
        let img1 = format!("{r1:?}");
        for threads in [2, 4, 8] {
            assert_eq!(img1, format!("{:?}", run(threads)), "threads={threads}");
        }
        let n = r1.graph().num_vertices() as u32;
        for orig in 0..g.num_vertices() as u32 {
            assert!(r1.home_of(orig) < n, "vertex {orig} lost its home");
        }
        // Cross-rank comm edges are never contracted on the region path.
        assert_eq!(r1.graph().nranks(), 2);
        assert_eq!(
            r1.graph()
                .vertices()
                .iter()
                .enumerate()
                .filter(|(v, _)| {
                    r1.graph()
                        .preds(*v as u32)
                        .iter()
                        .any(|e| e.kind == EdgeKind::Comm)
                })
                .count(),
            2
        );
    }

    #[test]
    fn comm_edges_and_ranks_are_preserved() {
        let mut b = GraphBuilder::new(2);
        let s = b.add_vertex(
            0,
            VertexKind::Send {
                peer: 1,
                bytes: 8,
                tag: 0,
            },
            CostExpr::o(1.0),
        );
        let r0 = b.add_vertex(
            1,
            VertexKind::Recv {
                peer: 0,
                bytes: 8,
                tag: 0,
            },
            CostExpr::o(1.0),
        );
        b.add_edge(s, r0, EdgeKind::Comm, CostExpr::wire(8));
        let g = b.finish().unwrap();
        let red = reduce(&g, &ReduceConfig::default());
        assert_eq!(red.graph().num_messages(), 1);
        assert_eq!(red.graph().nranks(), 2);
    }
}

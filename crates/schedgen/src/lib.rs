//! # llamp-schedgen — trace → execution graph compilation
//!
//! A reimplementation of the LogGOPSim toolchain's *Schedgen* (paper §II-A):
//! it parses MPI traces, infers computation from timestamp gaps, matches
//! point-to-point messages, substitutes collectives with point-to-point
//! algorithms, and emits execution graphs in a GOAL-style format.
//!
//! * [`graph`] — the CSR execution-graph representation with *symbolic*
//!   LogGPS costs ([`graph::CostExpr`]), chain contraction (the graph-level
//!   presolve), and topological ordering.
//! * [`lower`] — eager and rendezvous lowering gadgets (paper Figs. 3, 14,
//!   15).
//! * [`collectives`] — recursive doubling, ring, binomial-tree, linear and
//!   dissemination algorithm expansions (§IV-1).
//! * [`build`] — the trace compiler ([`build::build_graph`]).
//! * [`goal`] — GOAL-dialect writer/parser.
//! * [`reduce`](mod@reduce) — the makespan-preserving reduction pipeline
//!   ([`reduce::ReducedGraph`] with provenance lift-back).
//! * [`view`] — the [`view::GraphView`] lowering trait every analysis
//!   builder consumes (implemented by raw and reduced graphs alike).

pub mod build;
pub mod collectives;
pub mod goal;
pub mod graph;
pub mod lower;
pub mod reduce;
pub mod view;

pub use build::{build_graph, BuildError, GraphConfig};
pub use collectives::{
    AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, BarrierAlgo, BcastAlgo, CollectiveConfig,
    ReduceAlgo,
};
pub use graph::{CostExpr, EdgeKind, EdgeRef, ExecGraph, GraphBuilder, Vertex, VertexKind};
pub use reduce::{reduce, ReduceConfig, ReducedGraph, ReductionStats};
pub use view::{alg1_row_count, GraphView};

use llamp_trace::{ProgramSet, TracerConfig};

/// Convenience: trace a program set with the default tracer and compile it.
pub fn graph_of_programs(set: &ProgramSet, cfg: &GraphConfig) -> Result<ExecGraph, BuildError> {
    let trace = {
        let g = llamp_obs::span("trace.ingest");
        let trace = set.trace(&TracerConfig::default());
        if llamp_obs::is_enabled() {
            g.field_u64("ranks", u64::from(trace.nranks));
            g.field_u64("records", trace.num_records() as u64);
        }
        trace
    };
    let g = llamp_obs::span("schedgen.build");
    let graph = build_graph(&trace, cfg)?;
    if llamp_obs::is_enabled() {
        g.field_u64("vertices", graph.num_vertices() as u64);
        g.field_u64("edges", graph.num_edges() as u64);
    }
    Ok(graph)
}

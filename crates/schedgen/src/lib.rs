//! # llamp-schedgen — trace → execution graph compilation
//!
//! A reimplementation of the LogGOPSim toolchain's *Schedgen* (paper §II-A):
//! it parses MPI traces, infers computation from timestamp gaps, matches
//! point-to-point messages, substitutes collectives with point-to-point
//! algorithms, and emits execution graphs in a GOAL-style format.
//!
//! * [`graph`] — the CSR execution-graph representation with *symbolic*
//!   LogGPS costs ([`graph::CostExpr`]), chain contraction (the graph-level
//!   presolve), and topological ordering.
//! * [`lower`] — eager and rendezvous lowering gadgets (paper Figs. 3, 14,
//!   15).
//! * [`collectives`] — recursive doubling, ring, binomial-tree, linear and
//!   dissemination algorithm expansions (§IV-1).
//! * [`build`] — the trace compiler ([`build::build_graph`]).
//! * [`goal`] — GOAL-dialect writer/parser.
//! * [`reduce`](mod@reduce) — the makespan-preserving reduction pipeline
//!   ([`reduce::ReducedGraph`] with provenance lift-back).
//! * [`view`] — the [`view::GraphView`] lowering trait every analysis
//!   builder consumes (implemented by raw and reduced graphs alike).

pub mod build;
pub mod collectives;
pub mod goal;
pub mod graph;
pub mod lower;
pub mod reduce;
pub mod view;

pub use build::{build_graph, BuildError, GraphConfig, GraphIngest};
pub use collectives::{
    AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, BarrierAlgo, BcastAlgo, CollectiveConfig,
    ReduceAlgo,
};
pub use graph::{CostExpr, EdgeKind, EdgeRef, ExecGraph, GraphBuilder, Vertex, VertexKind};
pub use reduce::{reduce, ReduceConfig, ReducedGraph, ReductionStats};
pub use view::{alg1_row_count, GraphView};

use llamp_trace::{ProgramSet, TracerConfig};

/// Convenience: trace a program set with the default tracer and compile it.
///
/// The tracer's records stream straight into a pre-sized [`GraphIngest`]
/// (the per-rank record counts are known before replay), so no
/// intermediate [`llamp_trace::Trace`] is ever materialised — a
/// million-record workload costs the graph arenas and nothing else.
pub fn graph_of_programs(set: &ProgramSet, cfg: &GraphConfig) -> Result<ExecGraph, BuildError> {
    let ingest = {
        let g = llamp_obs::span("trace.ingest");
        let ingest = std::cell::RefCell::new(GraphIngest::with_capacity(
            set.nranks,
            cfg,
            set.num_records(),
        ));
        set.replay(
            &TracerConfig::default(),
            |rank| {
                ingest.borrow_mut().begin_rank(rank);
                Ok(())
            },
            |kind, start, end| ingest.borrow_mut().record(kind, start, end),
        )?;
        if llamp_obs::is_enabled() {
            g.field_u64("ranks", u64::from(set.nranks));
            g.field_u64("records", set.num_records() as u64);
        }
        ingest.into_inner()
    };
    let g = llamp_obs::span("schedgen.build");
    let graph = ingest.finish()?;
    if llamp_obs::is_enabled() {
        g.field_u64("vertices", graph.num_vertices() as u64);
        g.field_u64("edges", graph.num_edges() as u64);
    }
    Ok(graph)
}

/// Error from compiling a textual trace: either the text failed to parse
/// or the parsed records don't form a valid program.
#[derive(Debug)]
pub enum IngestError {
    /// Trace text is malformed.
    Parse(llamp_trace::text::ParseError),
    /// Records parsed but the graph build rejected them.
    Build(BuildError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Parse(e) => write!(f, "{e}"),
            IngestError::Build(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<llamp_trace::text::ParseError> for IngestError {
    fn from(e: llamp_trace::text::ParseError) -> Self {
        IngestError::Parse(e)
    }
}

impl From<BuildError> for IngestError {
    fn from(e: BuildError) -> Self {
        IngestError::Build(e)
    }
}

/// Compile a textual trace (the `llamp-trace` dump format) into an
/// execution graph without materialising an intermediate [`Trace`].
///
/// Records stream from the parser straight into a [`GraphIngest`] whose
/// arenas are pre-sized from the line count. Falls back to the two-pass
/// parse-then-build path only if the `# llamp-trace nranks=N` header is
/// missing (the world size must be known before the first vertex).
///
/// [`Trace`]: llamp_trace::Trace
pub fn graph_of_trace_text(input: &str, cfg: &GraphConfig) -> Result<ExecGraph, IngestError> {
    use llamp_trace::text;

    let Some(nranks) = text::declared_nranks(input) else {
        let trace = text::parse_trace(input)?;
        return Ok(build_graph(&trace, cfg)?);
    };

    struct Sink {
        ingest: GraphIngest,
    }
    impl text::TraceSink for Sink {
        type Error = BuildError;
        fn rank(&mut self, rank: u32) -> Result<(), BuildError> {
            self.ingest.begin_rank(rank);
            Ok(())
        }
        fn record(&mut self, rec: llamp_trace::TraceRecord) -> Result<(), BuildError> {
            self.ingest.record(&rec.kind, rec.start, rec.end)
        }
    }

    // Record count ≈ line count: only headers and comments are non-records,
    // and over-estimating an arena hint is harmless.
    let records_hint = input.lines().count();
    let mut sink = Sink {
        ingest: GraphIngest::with_capacity(nranks, cfg, records_hint),
    };
    text::parse_trace_into(input, &mut sink).map_err(|e| match e {
        text::StreamError::Parse(p) => IngestError::Parse(p),
        text::StreamError::Sink(b) => IngestError::Build(b),
    })?;
    Ok(sink.ingest.finish()?)
}

//! # llamp-schedgen — trace → execution graph compilation
//!
//! A reimplementation of the LogGOPSim toolchain's *Schedgen* (paper §II-A):
//! it parses MPI traces, infers computation from timestamp gaps, matches
//! point-to-point messages, substitutes collectives with point-to-point
//! algorithms, and emits execution graphs in a GOAL-style format.
//!
//! * [`graph`] — the CSR execution-graph representation with *symbolic*
//!   LogGPS costs ([`graph::CostExpr`]), chain contraction (the graph-level
//!   presolve), and topological ordering.
//! * [`lower`] — eager and rendezvous lowering gadgets (paper Figs. 3, 14,
//!   15).
//! * [`collectives`] — recursive doubling, ring, binomial-tree, linear and
//!   dissemination algorithm expansions (§IV-1).
//! * [`build`] — the trace compiler ([`build::build_graph`]).
//! * [`goal`] — GOAL-dialect writer/parser.

pub mod build;
pub mod collectives;
pub mod goal;
pub mod graph;
pub mod lower;

pub use build::{build_graph, BuildError, GraphConfig};
pub use collectives::{
    AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, BarrierAlgo, BcastAlgo, CollectiveConfig,
    ReduceAlgo,
};
pub use graph::{CostExpr, EdgeKind, EdgeRef, ExecGraph, GraphBuilder, Vertex, VertexKind};

use llamp_trace::{ProgramSet, TracerConfig};

/// Convenience: trace a program set with the default tracer and compile it.
pub fn graph_of_programs(set: &ProgramSet, cfg: &GraphConfig) -> Result<ExecGraph, BuildError> {
    build_graph(&set.trace(&TracerConfig::default()), cfg)
}

//! Execution graphs.
//!
//! An MPI execution graph is a DAG whose vertices are `calc`, `send` and
//! `recv` events (plus a few zero-cost structural vertices for joins and
//! the rendezvous handshake) and whose edges encode happens-before
//! relations (paper §II-A). Costs are *symbolic*: every vertex and edge
//! carries a [`CostExpr`] — a linear combination of the LogGPS parameters —
//! so one graph can be evaluated under any network configuration, turned
//! into an LP with `L` (or per-pair `L_{i,j}`, or per-wire `l_wire`) as
//! decision variables, or replayed by the simulator.
//!
//! Storage is flat CSR (u32 ids, no per-vertex allocation): graphs with
//! millions of events are the common case (paper Table I).

use llamp_util::FxHashMap;

/// Symbolic cost `const + o_count·o + l_count·L + gbytes·G` (ns).
///
/// `l_count` counts network-latency traversals — the quantity whose sum
/// along the critical path is the latency sensitivity `λ_L`. `gbytes` is
/// the coefficient of `G` (for a message of `s` bytes: `s − 1`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostExpr {
    /// Constant nanoseconds (compute time).
    pub const_ns: f64,
    /// Multiples of the per-message overhead `o`.
    pub o_count: f64,
    /// Multiples of the network latency `L`.
    pub l_count: f64,
    /// Multiples of the per-byte gap `G`.
    pub gbytes: f64,
}

impl CostExpr {
    /// The zero cost.
    pub const ZERO: CostExpr = CostExpr {
        const_ns: 0.0,
        o_count: 0.0,
        l_count: 0.0,
        gbytes: 0.0,
    };

    /// A pure-compute cost.
    pub fn constant(ns: f64) -> Self {
        CostExpr {
            const_ns: ns,
            ..Self::ZERO
        }
    }

    /// `n` per-message overheads.
    pub fn o(n: f64) -> Self {
        CostExpr {
            o_count: n,
            ..Self::ZERO
        }
    }

    /// The eager wire cost of an `s`-byte message: `L + (s−1)·G`.
    pub fn wire(bytes: u64) -> Self {
        CostExpr {
            l_count: 1.0,
            gbytes: bytes.saturating_sub(1) as f64,
            ..Self::ZERO
        }
    }

    /// Evaluate under concrete parameters.
    #[inline]
    pub fn eval(&self, o: f64, l: f64, big_g: f64) -> f64 {
        self.const_ns + self.o_count * o + self.l_count * l + self.gbytes * big_g
    }

    /// Component-wise sum.
    pub fn add(&self, other: &CostExpr) -> CostExpr {
        CostExpr {
            const_ns: self.const_ns + other.const_ns,
            o_count: self.o_count + other.o_count,
            l_count: self.l_count + other.l_count,
            gbytes: self.gbytes + other.gbytes,
        }
    }

    /// Whether this is exactly the zero cost.
    pub fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }
}

/// Vertex semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VertexKind {
    /// Computation (or a zero-cost structural join).
    Calc,
    /// Message injection point of a send (`o` is its usual cost).
    Send { peer: u32, bytes: u64, tag: u32 },
    /// Message consumption point of a receive.
    Recv { peer: u32, bytes: u64, tag: u32 },
    /// Rendezvous handshake joint: ready-to-send meets request-to-receive
    /// (paper Fig. 14/15).
    Handshake,
}

impl VertexKind {
    /// True for `Send`.
    pub fn is_send(&self) -> bool {
        matches!(self, VertexKind::Send { .. })
    }

    /// True for `Recv`.
    pub fn is_recv(&self) -> bool {
        matches!(self, VertexKind::Recv { .. })
    }
}

/// One vertex: owning rank, semantics, and symbolic cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vertex {
    /// Rank whose timeline this event belongs to.
    pub rank: u32,
    /// Semantics.
    pub kind: VertexKind,
    /// Symbolic execution cost of the vertex itself.
    pub cost: CostExpr,
}

/// Edge semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Happens-before on the same rank (program order).
    Local,
    /// Message transmission from a send vertex to the matching recv vertex.
    Comm,
    /// Rendezvous control edges (REQ arrival, completion notifications).
    Rendezvous,
}

/// A directed edge as seen from one endpoint's adjacency list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// The other endpoint (predecessor in `preds`, successor in `succs`).
    pub other: u32,
    /// Edge semantics.
    pub kind: EdgeKind,
    /// Symbolic traversal cost.
    pub cost: CostExpr,
}

/// Immutable execution graph in CSR form with a precomputed topological
/// order. Build with [`GraphBuilder`].
#[derive(Debug, Clone)]
pub struct ExecGraph {
    nranks: u32,
    verts: Vec<Vertex>,
    pred_start: Vec<u32>,
    preds: Vec<EdgeRef>,
    succ_start: Vec<u32>,
    succs: Vec<EdgeRef>,
    topo: Vec<u32>,
}

impl ExecGraph {
    /// World size of the traced job.
    pub fn nranks(&self) -> u32 {
        self.nranks
    }

    /// Number of vertices ("events" in the paper's tables).
    pub fn num_vertices(&self) -> usize {
        self.verts.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.preds.len()
    }

    /// Vertex accessor.
    #[inline]
    pub fn vertex(&self, v: u32) -> &Vertex {
        &self.verts[v as usize]
    }

    /// All vertices.
    pub fn vertices(&self) -> &[Vertex] {
        &self.verts
    }

    /// Predecessor edges of `v`.
    #[inline]
    pub fn preds(&self, v: u32) -> &[EdgeRef] {
        let s = self.pred_start[v as usize] as usize;
        let e = self.pred_start[v as usize + 1] as usize;
        &self.preds[s..e]
    }

    /// Successor edges of `v`.
    #[inline]
    pub fn succs(&self, v: u32) -> &[EdgeRef] {
        let s = self.succ_start[v as usize] as usize;
        let e = self.succ_start[v as usize + 1] as usize;
        &self.succs[s..e]
    }

    /// Vertices in a topological order.
    pub fn topo_order(&self) -> &[u32] {
        &self.topo
    }

    /// Count vertices by kind: `(calc, send, recv, handshake)`.
    pub fn kind_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for v in &self.verts {
            match v.kind {
                VertexKind::Calc => c.0 += 1,
                VertexKind::Send { .. } => c.1 += 1,
                VertexKind::Recv { .. } => c.2 += 1,
                VertexKind::Handshake => c.3 += 1,
            }
        }
        c
    }

    /// Number of communication edges (messages).
    pub fn num_messages(&self) -> usize {
        self.preds
            .iter()
            .filter(|e| e.kind == EdgeKind::Comm)
            .count()
    }

    /// Chain contraction — the graph-level analogue of LP presolve
    /// (paper §II-D3). A vertex with exactly one predecessor, whose
    /// predecessor has exactly one successor, connected by a `Local` edge,
    /// is merged into that predecessor (costs summed). The result predicts
    /// identical runtimes/sensitivities with far fewer vertices.
    ///
    /// This is the chains-only configuration of the full reduction
    /// pipeline (see [`crate::reduce`](mod@crate::reduce)); use [`ExecGraph::reduced`] for
    /// the row-shrinking fold/redundancy passes plus provenance.
    ///
    /// The contracted graph is meant for *analysis*; `Send`/`Recv`
    /// semantics survive only for unmerged vertices, so don't feed it to
    /// the simulator.
    pub fn contracted(&self) -> ExecGraph {
        crate::reduce::reduce(self, &crate::reduce::ReduceConfig::chains_only()).into_graph()
    }
}

/// Errors surfaced while finalising a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The edge set contains a cycle (invalid trace or matching bug).
    Cycle,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Cycle => write!(f, "execution graph contains a cycle"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Mutable accumulation of vertices and edges, finalised into CSR form.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    nranks: u32,
    verts: Vec<Vertex>,
    edges: Vec<(u32, u32, EdgeKind, CostExpr)>,
    /// Deduplication of identical parallel edges.
    seen: FxHashMap<(u32, u32), ()>,
}

impl GraphBuilder {
    /// Start a graph for `nranks` ranks.
    pub fn new(nranks: u32) -> Self {
        Self::with_capacity(nranks, 0, 0)
    }

    /// Start a graph with pre-sized arenas. Million-vertex builds spend
    /// measurable time in doubling reallocations otherwise; hints may be
    /// approximate (the arenas still grow past them).
    pub fn with_capacity(nranks: u32, verts: usize, edges: usize) -> Self {
        Self {
            nranks,
            verts: Vec::with_capacity(verts),
            edges: Vec::with_capacity(edges),
            // Only zero-cost Local edges enter the dedup map — roughly
            // half the edge set in practice.
            seen: FxHashMap::with_capacity_and_hasher(edges / 2, Default::default()),
        }
    }

    /// Add a vertex; returns its id.
    pub fn add_vertex(&mut self, rank: u32, kind: VertexKind, cost: CostExpr) -> u32 {
        debug_assert!(rank < self.nranks);
        let id = self.verts.len() as u32;
        self.verts.push(Vertex { rank, kind, cost });
        id
    }

    /// Add a directed edge `from → to`. Parallel duplicate zero-cost local
    /// edges are dropped.
    pub fn add_edge(&mut self, from: u32, to: u32, kind: EdgeKind, cost: CostExpr) {
        debug_assert!((from as usize) < self.verts.len());
        debug_assert!((to as usize) < self.verts.len());
        debug_assert_ne!(from, to, "self edge");
        if kind == EdgeKind::Local && cost.is_zero() && self.seen.insert((from, to), ()).is_some() {
            return;
        }
        self.edges.push((from, to, kind, cost));
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.verts.len()
    }

    /// Finalise into CSR + topological order.
    pub fn finish(self) -> Result<ExecGraph, GraphError> {
        let n = self.verts.len();
        let mut pred_count = vec![0u32; n + 1];
        let mut succ_count = vec![0u32; n + 1];
        for &(f, t, _, _) in &self.edges {
            pred_count[t as usize + 1] += 1;
            succ_count[f as usize + 1] += 1;
        }
        for i in 0..n {
            pred_count[i + 1] += pred_count[i];
            succ_count[i + 1] += succ_count[i];
        }
        let pred_start = pred_count;
        let succ_start = succ_count;
        let mut preds = vec![
            EdgeRef {
                other: 0,
                kind: EdgeKind::Local,
                cost: CostExpr::ZERO
            };
            self.edges.len()
        ];
        let mut succs = preds.clone();
        let mut pfill: Vec<u32> = pred_start.clone();
        let mut sfill: Vec<u32> = succ_start.clone();
        for &(f, t, kind, cost) in &self.edges {
            let p = pfill[t as usize];
            preds[p as usize] = EdgeRef {
                other: f,
                kind,
                cost,
            };
            pfill[t as usize] += 1;
            let s = sfill[f as usize];
            succs[s as usize] = EdgeRef {
                other: t,
                kind,
                cost,
            };
            sfill[f as usize] += 1;
        }

        // Kahn's algorithm for the topological order.
        let mut indeg: Vec<u32> = (0..n).map(|v| pred_start[v + 1] - pred_start[v]).collect();
        let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            topo.push(v);
            let s = succ_start[v as usize] as usize;
            let e = succ_start[v as usize + 1] as usize;
            for er in &succs[s..e] {
                let d = &mut indeg[er.other as usize];
                *d -= 1;
                if *d == 0 {
                    queue.push(er.other);
                }
            }
        }
        if topo.len() != n {
            return Err(GraphError::Cycle);
        }

        Ok(ExecGraph {
            nranks: self.nranks,
            verts: self.verts,
            pred_start,
            preds,
            succ_start,
            succs,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_expr_eval() {
        let c = CostExpr {
            const_ns: 100.0,
            o_count: 2.0,
            l_count: 1.0,
            gbytes: 3.0,
        };
        assert_eq!(c.eval(10.0, 1000.0, 5.0), 100.0 + 20.0 + 1000.0 + 15.0);
    }

    #[test]
    fn wire_cost_of_small_message() {
        let w = CostExpr::wire(4);
        assert_eq!(w.l_count, 1.0);
        assert_eq!(w.gbytes, 3.0);
        let w0 = CostExpr::wire(0);
        assert_eq!(w0.gbytes, 0.0);
    }

    #[test]
    fn builder_csr_roundtrip() {
        let mut b = GraphBuilder::new(2);
        let a = b.add_vertex(0, VertexKind::Calc, CostExpr::constant(5.0));
        let s = b.add_vertex(
            0,
            VertexKind::Send {
                peer: 1,
                bytes: 8,
                tag: 0,
            },
            CostExpr::o(1.0),
        );
        let r = b.add_vertex(
            1,
            VertexKind::Recv {
                peer: 0,
                bytes: 8,
                tag: 0,
            },
            CostExpr::o(1.0),
        );
        b.add_edge(a, s, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(s, r, EdgeKind::Comm, CostExpr::wire(8));
        let g = b.finish().unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.preds(r).len(), 1);
        assert_eq!(g.preds(r)[0].other, s);
        assert_eq!(g.succs(a)[0].other, s);
        assert_eq!(g.num_messages(), 1);
        assert_eq!(g.topo_order(), &[a, s, r]);
    }

    #[test]
    fn cycle_detection() {
        let mut b = GraphBuilder::new(1);
        let a = b.add_vertex(0, VertexKind::Calc, CostExpr::ZERO);
        let c = b.add_vertex(0, VertexKind::Calc, CostExpr::ZERO);
        b.add_edge(a, c, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(c, a, EdgeKind::Local, CostExpr::ZERO);
        assert_eq!(b.finish().unwrap_err(), GraphError::Cycle);
    }

    #[test]
    fn duplicate_zero_local_edges_dropped() {
        let mut b = GraphBuilder::new(1);
        let a = b.add_vertex(0, VertexKind::Calc, CostExpr::ZERO);
        let c = b.add_vertex(0, VertexKind::Calc, CostExpr::ZERO);
        b.add_edge(a, c, EdgeKind::Local, CostExpr::ZERO);
        b.add_edge(a, c, EdgeKind::Local, CostExpr::ZERO);
        let g = b.finish().unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn contraction_merges_linear_chains() {
        // a -> b -> c (all calc) contracts to a single vertex with summed
        // cost; a -> b -> c with b also feeding d keeps b separate.
        let mut builder = GraphBuilder::new(1);
        let a = builder.add_vertex(0, VertexKind::Calc, CostExpr::constant(1.0));
        let b = builder.add_vertex(0, VertexKind::Calc, CostExpr::constant(2.0));
        let c = builder.add_vertex(0, VertexKind::Calc, CostExpr::constant(3.0));
        builder.add_edge(a, b, EdgeKind::Local, CostExpr::ZERO);
        builder.add_edge(b, c, EdgeKind::Local, CostExpr::ZERO);
        let g = builder.finish().unwrap();
        let cg = g.contracted();
        assert_eq!(cg.num_vertices(), 1);
        assert_eq!(cg.vertex(0).cost.const_ns, 6.0);
    }

    #[test]
    fn contraction_keeps_joins() {
        // Diamond: a -> b, a -> c, b -> d, c -> d. Nothing merges except
        // nothing (b and c each have one pred but a has two succs).
        let mut builder = GraphBuilder::new(1);
        let a = builder.add_vertex(0, VertexKind::Calc, CostExpr::constant(1.0));
        let b = builder.add_vertex(0, VertexKind::Calc, CostExpr::constant(2.0));
        let c = builder.add_vertex(0, VertexKind::Calc, CostExpr::constant(3.0));
        let d = builder.add_vertex(0, VertexKind::Calc, CostExpr::constant(4.0));
        builder.add_edge(a, b, EdgeKind::Local, CostExpr::ZERO);
        builder.add_edge(a, c, EdgeKind::Local, CostExpr::ZERO);
        builder.add_edge(b, d, EdgeKind::Local, CostExpr::ZERO);
        builder.add_edge(c, d, EdgeKind::Local, CostExpr::ZERO);
        let g = builder.finish().unwrap();
        let cg = g.contracted();
        assert_eq!(cg.num_vertices(), 4);
        assert_eq!(cg.num_edges(), 4);
    }
}

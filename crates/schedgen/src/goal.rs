//! GOAL-style serialisation of execution graphs.
//!
//! GOAL (Group Operation Assembly Language, Hoefler et al. 2009) is the
//! format Schedgen emits and LogGOPSim consumes. This module writes a
//! GOAL-inspired dialect extended with explicit symbolic costs so graphs
//! round-trip exactly (the classic format encodes only `send`/`recv`/`calc`
//! with concrete costs):
//!
//! ```text
//! num_ranks 2
//! rank 0 {
//! v0: calc 1000
//! v1: send 8b to 1 tag 0 cost o=1
//! }
//! rank 1 {
//! v2: recv 8b from 0 tag 0 cost o=1
//! }
//! v0 -> v1 local
//! v1 -> v2 comm l=1 gb=7
//! ```

use crate::graph::{CostExpr, EdgeKind, ExecGraph, GraphBuilder, VertexKind};
use std::fmt::Write as _;

/// Serialise a graph to the GOAL dialect.
pub fn write_goal(g: &ExecGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "num_ranks {}", g.nranks());
    for rank in 0..g.nranks() {
        let _ = writeln!(out, "rank {rank} {{");
        for v in 0..g.num_vertices() as u32 {
            let vert = g.vertex(v);
            if vert.rank != rank {
                continue;
            }
            match vert.kind {
                VertexKind::Calc => {
                    let _ = write!(out, "v{v}: calc");
                }
                VertexKind::Send { peer, bytes, tag } => {
                    let _ = write!(out, "v{v}: send {bytes}b to {peer} tag {tag}");
                }
                VertexKind::Recv { peer, bytes, tag } => {
                    let _ = write!(out, "v{v}: recv {bytes}b from {peer} tag {tag}");
                }
                VertexKind::Handshake => {
                    let _ = write!(out, "v{v}: handshake");
                }
            }
            write_cost(&mut out, &vert.cost);
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "}}");
    }
    for v in 0..g.num_vertices() as u32 {
        for e in g.preds(v) {
            let kind = match e.kind {
                EdgeKind::Local => "local",
                EdgeKind::Comm => "comm",
                EdgeKind::Rendezvous => "rndv",
            };
            let _ = write!(out, "v{} -> v{} {}", e.other, v, kind);
            write_cost(&mut out, &e.cost);
            let _ = writeln!(out);
        }
    }
    out
}

fn write_cost(out: &mut String, c: &CostExpr) {
    if c.is_zero() {
        return;
    }
    let _ = write!(out, " cost");
    if c.const_ns != 0.0 {
        let _ = write!(out, " c={}", c.const_ns);
    }
    if c.o_count != 0.0 {
        let _ = write!(out, " o={}", c.o_count);
    }
    if c.l_count != 0.0 {
        let _ = write!(out, " l={}", c.l_count);
    }
    if c.gbytes != 0.0 {
        let _ = write!(out, " gb={}", c.gbytes);
    }
}

/// Parse failure with a 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct GoalParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for GoalParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GOAL parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for GoalParseError {}

/// Parse the GOAL dialect back into an execution graph.
pub fn parse_goal(input: &str) -> Result<ExecGraph, GoalParseError> {
    let mut nranks: Option<u32> = None;
    let mut current_rank: Option<u32> = None;
    // Vertex declarations may arrive in any order; collect then build.
    let mut verts: Vec<(u32, u32, VertexKind, CostExpr)> = Vec::new(); // (id, rank, ...)
    let mut edges: Vec<(u32, u32, EdgeKind, CostExpr)> = Vec::new();

    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        let err = |message: String| GoalParseError {
            line: lineno,
            message,
        };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("num_ranks") {
            nranks = Some(
                rest.trim()
                    .parse()
                    .map_err(|e| err(format!("bad num_ranks: {e}")))?,
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix("rank") {
            let rest = rest.trim().trim_end_matches('{').trim();
            current_rank = Some(
                rest.parse()
                    .map_err(|e| err(format!("bad rank header: {e}")))?,
            );
            continue;
        }
        if line == "}" {
            current_rank = None;
            continue;
        }
        if line.contains("->") {
            // Edge line: v<a> -> v<b> <kind> [cost ...]
            let mut it = line.split_whitespace();
            let a = parse_vid(it.next().unwrap_or(""), lineno)?;
            if it.next() != Some("->") {
                return Err(err("expected '->'".into()));
            }
            let b = parse_vid(it.next().unwrap_or(""), lineno)?;
            let kind = match it.next() {
                Some("local") => EdgeKind::Local,
                Some("comm") => EdgeKind::Comm,
                Some("rndv") => EdgeKind::Rendezvous,
                other => return Err(err(format!("bad edge kind {other:?}"))),
            };
            let cost = parse_cost(&mut it, lineno)?;
            edges.push((a, b, kind, cost));
            continue;
        }
        // Vertex line: v<id>: <kind> ... [cost ...]
        let rank = current_rank.ok_or_else(|| err("vertex outside rank block".into()))?;
        let (head, rest) = line
            .split_once(':')
            .ok_or_else(|| err("expected 'v<id>:'".into()))?;
        let id = parse_vid(head, lineno)?;
        let mut it = rest.split_whitespace();
        let kind = match it.next() {
            Some("calc") => VertexKind::Calc,
            Some("handshake") => VertexKind::Handshake,
            Some(k @ ("send" | "recv")) => {
                let bytes: u64 = it
                    .next()
                    .and_then(|s| s.strip_suffix('b'))
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad byte count".into()))?;
                let dir = it.next(); // "to" | "from"
                if dir != Some("to") && dir != Some("from") {
                    return Err(err("expected to/from".into()));
                }
                let peer: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad peer".into()))?;
                if it.next() != Some("tag") {
                    return Err(err("expected tag".into()));
                }
                let tag: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad tag".into()))?;
                if k == "send" {
                    VertexKind::Send { peer, bytes, tag }
                } else {
                    VertexKind::Recv { peer, bytes, tag }
                }
            }
            other => return Err(err(format!("bad vertex kind {other:?}"))),
        };
        let cost = parse_cost(&mut it, lineno)?;
        verts.push((id, rank, kind, cost));
    }

    let nranks = nranks.ok_or(GoalParseError {
        line: 0,
        message: "missing num_ranks".into(),
    })?;
    verts.sort_by_key(|v| v.0);
    let mut builder = GraphBuilder::new(nranks);
    for (i, &(id, rank, kind, cost)) in verts.iter().enumerate() {
        if id as usize != i {
            return Err(GoalParseError {
                line: 0,
                message: format!("vertex ids must be dense, missing v{i}"),
            });
        }
        builder.add_vertex(rank, kind, cost);
    }
    for (a, b, kind, cost) in edges {
        if a as usize >= verts.len() || b as usize >= verts.len() {
            return Err(GoalParseError {
                line: 0,
                message: format!("edge references undeclared vertex v{a} or v{b}"),
            });
        }
        builder.add_edge(a, b, kind, cost);
    }
    builder.finish().map_err(|e| GoalParseError {
        line: 0,
        message: e.to_string(),
    })
}

fn parse_vid(tok: &str, line: usize) -> Result<u32, GoalParseError> {
    tok.trim()
        .strip_prefix('v')
        .and_then(|s| s.trim_end_matches(':').parse().ok())
        .ok_or_else(|| GoalParseError {
            line,
            message: format!("bad vertex id {tok:?}"),
        })
}

fn parse_cost<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    line: usize,
) -> Result<CostExpr, GoalParseError> {
    let mut cost = CostExpr::ZERO;
    let mut saw_cost_kw = false;
    for tok in it {
        if tok == "cost" {
            saw_cost_kw = true;
            continue;
        }
        if !saw_cost_kw {
            return Err(GoalParseError {
                line,
                message: format!("unexpected token {tok:?}"),
            });
        }
        let (k, v) = tok.split_once('=').ok_or_else(|| GoalParseError {
            line,
            message: format!("bad cost term {tok:?}"),
        })?;
        let v: f64 = v.parse().map_err(|e| GoalParseError {
            line,
            message: format!("bad cost value {tok:?}: {e}"),
        })?;
        match k {
            "c" => cost.const_ns = v,
            "o" => cost.o_count = v,
            "l" => cost.l_count = v,
            "gb" => cost.gbytes = v,
            other => {
                return Err(GoalParseError {
                    line,
                    message: format!("unknown cost key {other:?}"),
                })
            }
        }
    }
    Ok(cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_graph, GraphConfig};
    use llamp_trace::{ProgramSet, TracerConfig};

    fn sample_graph() -> ExecGraph {
        let tr = ProgramSet::spmd(3, |rank, b| {
            b.comp(1_000.0);
            if rank == 0 {
                b.send(1, 4096, 0);
            } else if rank == 1 {
                b.recv(0, 4096, 0);
            }
            b.allreduce(64);
            b.comp(250.5);
        })
        .trace(&TracerConfig::default());
        build_graph(&tr, &GraphConfig::eager()).unwrap()
    }

    #[test]
    fn goal_round_trip_preserves_structure() {
        let g = sample_graph();
        let text = write_goal(&g);
        let back = parse_goal(&text).unwrap();
        assert_eq!(back.nranks(), g.nranks());
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(back.num_messages(), g.num_messages());
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(back.vertex(v).kind, g.vertex(v).kind, "v{v}");
            assert_eq!(back.vertex(v).cost, g.vertex(v).cost, "v{v}");
            assert_eq!(back.vertex(v).rank, g.vertex(v).rank, "v{v}");
        }
    }

    #[test]
    fn rendezvous_graph_round_trips() {
        let tr = ProgramSet::spmd(2, |rank, b| {
            if rank == 0 {
                b.send(1, 1 << 20, 0);
            } else {
                b.recv(0, 1 << 20, 0);
            }
        })
        .trace(&TracerConfig::default());
        let g = build_graph(&tr, &GraphConfig::paper()).unwrap();
        let back = parse_goal(&write_goal(&g)).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        let (_, _, _, hs) = back.kind_counts();
        assert_eq!(hs, 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_goal("v0: calc\n").is_err()); // missing num_ranks+rank
        assert!(parse_goal("num_ranks 1\nrank 0 {\nv0: frobnicate\n}\n").is_err());
        assert!(parse_goal("num_ranks 1\nrank 0 {\nv0: calc\n}\nv0 -> v5 local\n").is_err());
    }
}

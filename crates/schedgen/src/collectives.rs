//! Collective substitution: expanding collectives into point-to-point
//! algorithms.
//!
//! Schedgen "is able to substitute collective operations with p2p
//! algorithms based on user specifications" (paper §II-A); the ICON case
//! study flips `MPI_Allreduce` between *recursive doubling* and the *ring*
//! algorithm and shows a ~4× difference in latency tolerance at 256 nodes
//! (§IV-1, Fig. 10). The implemented algorithm menu follows the classic
//! MPICH/Open MPI repertoire:
//!
//! | Collective | Algorithms |
//! |---|---|
//! | Allreduce | recursive doubling (non-power-of-two handled MPICH-style), ring (reduce-scatter + allgather), reduce+bcast |
//! | Bcast | binomial tree, linear (root sends to each rank) |
//! | Reduce | binomial tree, linear |
//! | Barrier | dissemination |
//! | Allgather | ring, recursive doubling (power-of-two; ring otherwise) |
//! | Alltoall | linear (all pairwise messages concurrently) |
//!
//! Every expansion threads each rank's operations onto its chain between
//! the collective's entry and exit anchors, so latency hiding (or the lack
//! of it — ring's dependent sends) emerges naturally in the graph.

use crate::graph::{CostExpr, EdgeKind, VertexKind};
use crate::lower::Lowering;

/// Allreduce substitution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllreduceAlgo {
    /// `lg P` rounds of pairwise exchange (MPICH default for small data).
    #[default]
    RecursiveDoubling,
    /// Reduce-scatter + allgather over a ring: `2(P−1)` dependent steps of
    /// `bytes/P` chunks (bandwidth-optimal, latency-hungry).
    Ring,
    /// Binomial-tree reduce to rank 0 followed by binomial-tree broadcast.
    ReduceBcast,
}

/// Broadcast substitution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BcastAlgo {
    /// Binomial tree (`lg P` depth).
    #[default]
    BinomialTree,
    /// Root sends to every rank in sequence.
    Linear,
}

/// Reduce substitution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReduceAlgo {
    /// Binomial tree.
    #[default]
    BinomialTree,
    /// Every rank sends to the root, which receives in sequence.
    Linear,
}

/// Barrier substitution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierAlgo {
    /// Dissemination barrier: `⌈lg P⌉` rounds of staggered exchanges.
    #[default]
    Dissemination,
}

/// Allgather substitution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllgatherAlgo {
    /// `P−1` dependent ring steps.
    #[default]
    Ring,
    /// Recursive doubling with doubling block sizes (power-of-two ranks;
    /// falls back to ring otherwise).
    RecursiveDoubling,
}

/// Alltoall substitution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlltoallAlgo {
    /// All `P−1` pairwise messages posted concurrently.
    #[default]
    Linear,
}

/// Algorithm selection for every collective (what the paper's Schedgen
/// takes as "user specifications").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollectiveConfig {
    /// Allreduce algorithm.
    pub allreduce: AllreduceAlgo,
    /// Bcast algorithm.
    pub bcast: BcastAlgo,
    /// Reduce algorithm.
    pub reduce: ReduceAlgo,
    /// Barrier algorithm.
    pub barrier: BarrierAlgo,
    /// Allgather algorithm.
    pub allgather: AllgatherAlgo,
    /// Alltoall algorithm.
    pub alltoall: AlltoallAlgo,
}

/// Expansion context: per-rank chain tails between the collective's entry
/// and exit anchors.
pub(crate) struct Expansion<'a, 'b> {
    low: &'a mut Lowering<'b>,
    tails: Vec<u32>,
    tag: u32,
}

/// Per-round operation: `sender → receiver` carrying `bytes`.
#[derive(Debug, Clone, Copy)]
struct Xfer {
    from: u32,
    to: u32,
    bytes: u64,
}

impl<'a, 'b> Expansion<'a, 'b> {
    fn nranks(&self) -> u32 {
        self.tails.len() as u32
    }

    /// Execute one round: all transfers start from the ranks' current
    /// tails; afterwards each involved rank's tail joins its round
    /// operations.
    fn round(&mut self, xfers: &[Xfer]) {
        let snapshot = self.tails.clone();
        // Per-rank completions gathered this round.
        let mut done: Vec<Vec<u32>> = vec![Vec::new(); self.tails.len()];
        for x in xfers {
            let m = self.low.message(
                x.from,
                snapshot[x.from as usize],
                x.to,
                snapshot[x.to as usize],
                x.bytes,
                self.tag,
            );
            done[x.from as usize].push(m.send_done);
            done[x.to as usize].push(m.recv_done);
        }
        for (r, list) in done.iter().enumerate() {
            match list.len() {
                0 => {}
                1 => self.tails[r] = list[0],
                _ => {
                    let j = self
                        .low
                        .builder
                        .add_vertex(r as u32, VertexKind::Calc, CostExpr::ZERO);
                    for &v in list {
                        self.low
                            .builder
                            .add_edge(v, j, EdgeKind::Local, CostExpr::ZERO);
                    }
                    self.tails[r] = j;
                }
            }
        }
    }

    /// A single blocking transfer sequenced on both endpoints.
    fn transfer(&mut self, from: u32, to: u32, bytes: u64) {
        self.round(&[Xfer { from, to, bytes }]);
    }
}

/// Expand one collective instance between per-rank `entries` and `exits`
/// anchor vertices. `tag` namespaces the generated messages.
pub(crate) fn expand(
    low: &mut Lowering<'_>,
    cfg: &CollectiveConfig,
    kind: &llamp_trace::CallKind,
    entries: &[u32],
    exits: &[u32],
    tag: u32,
) {
    use llamp_trace::CallKind as K;
    let mut ex = Expansion {
        low,
        tails: entries.to_vec(),
        tag,
    };
    match kind {
        K::Barrier => match cfg.barrier {
            BarrierAlgo::Dissemination => dissemination(&mut ex, 1),
        },
        K::Allreduce { bytes } => match cfg.allreduce {
            AllreduceAlgo::RecursiveDoubling => recursive_doubling_allreduce(&mut ex, *bytes),
            AllreduceAlgo::Ring => ring_allreduce(&mut ex, *bytes),
            AllreduceAlgo::ReduceBcast => {
                binomial_reduce(&mut ex, *bytes, 0);
                binomial_bcast(&mut ex, *bytes, 0);
            }
        },
        K::Bcast { bytes, root } => match cfg.bcast {
            BcastAlgo::BinomialTree => binomial_bcast(&mut ex, *bytes, *root),
            BcastAlgo::Linear => linear_bcast(&mut ex, *bytes, *root),
        },
        K::Reduce { bytes, root } => match cfg.reduce {
            ReduceAlgo::BinomialTree => binomial_reduce(&mut ex, *bytes, *root),
            ReduceAlgo::Linear => linear_reduce(&mut ex, *bytes, *root),
        },
        K::Allgather { bytes } => match cfg.allgather {
            AllgatherAlgo::Ring => ring_allgather(&mut ex, *bytes),
            AllgatherAlgo::RecursiveDoubling => {
                if ex.nranks().is_power_of_two() {
                    recdub_allgather(&mut ex, *bytes)
                } else {
                    ring_allgather(&mut ex, *bytes)
                }
            }
        },
        K::Alltoall { bytes } => match cfg.alltoall {
            AlltoallAlgo::Linear => linear_alltoall(&mut ex, *bytes),
        },
        other => unreachable!("expand() called on non-collective {other:?}"),
    }
    // Close each rank's chain into its exit anchor.
    for (r, &exit) in exits.iter().enumerate() {
        let tail = ex.tails[r];
        ex.low
            .builder
            .add_edge(tail, exit, EdgeKind::Local, CostExpr::ZERO);
    }
}

/// Dissemination barrier: round `k` sends to `(r + 2^k) mod P`.
fn dissemination(ex: &mut Expansion, bytes: u64) {
    let p = ex.nranks();
    if p < 2 {
        return;
    }
    let mut dist = 1u32;
    while dist < p {
        let xfers: Vec<Xfer> = (0..p)
            .map(|r| Xfer {
                from: r,
                to: (r + dist) % p,
                bytes,
            })
            .collect();
        ex.round(&xfers);
        dist <<= 1;
    }
}

/// MPICH-style recursive-doubling allreduce with the standard
/// non-power-of-two pre/post phases.
fn recursive_doubling_allreduce(ex: &mut Expansion, bytes: u64) {
    let p = ex.nranks();
    if p < 2 {
        return;
    }
    let p2 = 1u32 << (31 - p.leading_zeros()); // largest power of two <= p
    let rem = p - p2;

    // Pre-phase: odd ranks below 2·rem fold their data into the even
    // neighbour and sit out.
    if rem > 0 {
        let xfers: Vec<Xfer> = (0..rem)
            .map(|i| Xfer {
                from: 2 * i + 1,
                to: 2 * i,
                bytes,
            })
            .collect();
        ex.round(&xfers);
    }

    // Participants and their contiguous "new ranks".
    let real_of_new = |new: u32| -> u32 {
        if new < rem {
            2 * new
        } else {
            new + rem
        }
    };

    let mut mask = 1u32;
    while mask < p2 {
        let mut xfers = Vec::with_capacity(p2 as usize);
        for new in 0..p2 {
            let partner = new ^ mask;
            // Each unordered pair exchanges both ways; emit each direction
            // once.
            xfers.push(Xfer {
                from: real_of_new(new),
                to: real_of_new(partner),
                bytes,
            });
        }
        ex.round(&xfers);
        mask <<= 1;
    }

    // Post-phase: results travel back to the odd ranks.
    if rem > 0 {
        let xfers: Vec<Xfer> = (0..rem)
            .map(|i| Xfer {
                from: 2 * i,
                to: 2 * i + 1,
                bytes,
            })
            .collect();
        ex.round(&xfers);
    }
}

/// Ring allreduce: reduce-scatter then allgather, `2(P−1)` dependent steps
/// of `⌈bytes/P⌉` chunks.
fn ring_allreduce(ex: &mut Expansion, bytes: u64) {
    let p = ex.nranks();
    if p < 2 {
        return;
    }
    let chunk = bytes.div_ceil(p as u64).max(1);
    for _step in 0..2 * (p - 1) {
        let xfers: Vec<Xfer> = (0..p)
            .map(|r| Xfer {
                from: r,
                to: (r + 1) % p,
                bytes: chunk,
            })
            .collect();
        ex.round(&xfers);
    }
}

/// Binomial-tree broadcast from `root`.
fn binomial_bcast(ex: &mut Expansion, bytes: u64, root: u32) {
    let p = ex.nranks();
    if p < 2 {
        return;
    }
    let real = |v: u32| (v + root) % p;
    let mut mask = 1u32;
    while mask < p {
        let mut xfers = Vec::new();
        // `v` iterates over virtual ranks (rotated so the root is 0).
        for v in 0..p {
            if v < mask && v + mask < p {
                xfers.push(Xfer {
                    from: real(v),
                    to: real(v + mask),
                    bytes,
                });
            }
        }
        ex.round(&xfers);
        mask <<= 1;
    }
}

/// Binomial-tree reduce to `root` (mirror of the broadcast).
fn binomial_reduce(ex: &mut Expansion, bytes: u64, root: u32) {
    let p = ex.nranks();
    if p < 2 {
        return;
    }
    let real = |v: u32| (v + root) % p;
    // Highest power of two below p, walking masks downward: at each round
    // vranks in [mask, 2·mask) send to vrank − mask.
    let mut top = 1u32;
    while top < p {
        top <<= 1;
    }
    let mut mask = top >> 1;
    while mask >= 1 {
        let mut xfers = Vec::new();
        for v in mask..(2 * mask).min(p) {
            xfers.push(Xfer {
                from: real(v),
                to: real(v - mask),
                bytes,
            });
        }
        ex.round(&xfers);
        if mask == 1 {
            break;
        }
        mask >>= 1;
    }
}

/// Linear broadcast: root sends to each rank in turn (root's sends are
/// naturally serialised on its chain).
fn linear_bcast(ex: &mut Expansion, bytes: u64, root: u32) {
    let p = ex.nranks();
    for r in 0..p {
        if r != root {
            ex.transfer(root, r, bytes);
        }
    }
}

/// Linear reduce: every rank sends to the root.
fn linear_reduce(ex: &mut Expansion, bytes: u64, root: u32) {
    let p = ex.nranks();
    for r in 0..p {
        if r != root {
            ex.transfer(r, root, bytes);
        }
    }
}

/// Ring allgather: `P−1` dependent steps of the per-rank block.
fn ring_allgather(ex: &mut Expansion, bytes: u64) {
    let p = ex.nranks();
    if p < 2 {
        return;
    }
    for _ in 0..p - 1 {
        let xfers: Vec<Xfer> = (0..p)
            .map(|r| Xfer {
                from: r,
                to: (r + 1) % p,
                bytes,
            })
            .collect();
        ex.round(&xfers);
    }
}

/// Recursive-doubling allgather (power-of-two ranks): block sizes double
/// every round.
fn recdub_allgather(ex: &mut Expansion, bytes: u64) {
    let p = ex.nranks();
    let mut mask = 1u32;
    let mut block = bytes;
    while mask < p {
        let xfers: Vec<Xfer> = (0..p)
            .map(|r| Xfer {
                from: r,
                to: r ^ mask,
                bytes: block,
            })
            .collect();
        ex.round(&xfers);
        mask <<= 1;
        block *= 2;
    }
}

/// Linear alltoall: every pairwise message posted concurrently off the
/// entry anchor; the exit joins all completions.
fn linear_alltoall(ex: &mut Expansion, bytes: u64) {
    let p = ex.nranks();
    if p < 2 {
        return;
    }
    let mut xfers = Vec::with_capacity((p * (p - 1)) as usize);
    for step in 1..p {
        for r in 0..p {
            xfers.push(Xfer {
                from: r,
                to: (r + step) % p,
                bytes,
            });
        }
    }
    // One big concurrent round: maximal overlap, like the basic linear
    // algorithm posting all isend/irecv then waitall.
    ex.round(&xfers);
}

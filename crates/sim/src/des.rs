//! Discrete-event replay of execution graphs under LogGOPS.
//!
//! The simulator is this workspace's LogGOPSim: it walks the execution
//! graph with an event queue, maintaining per-rank CPU (`o`, `calc`) and
//! NIC (`g`, `(s−1)·G`) resources, applying the configured latency-injector
//! design to every eager message and evaluating rendezvous control edges
//! under the injected latency. With noise disabled and `g = 0` its makespan
//! matches the LP prediction exactly (the LP *is* the critical path of this
//! schedule); with `g`, injector distortions, or noise enabled it produces
//! the independent "measured" runtimes of the validation experiments.

use crate::injector::InjectorDesign;
use crate::noise::{Noise, NoiseConfig};
use llamp_model::LogGPSParams;
use llamp_schedgen::{EdgeKind, ExecGraph, VertexKind};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Network model parameters.
    pub params: LogGPSParams,
    /// Injected extra latency `∆L` (ns).
    pub delta_l: f64,
    /// Latency-injector implementation (paper Fig. 8).
    pub injector: InjectorDesign,
    /// Optional noise model; `None` reproduces the analytical schedule.
    pub noise: Option<NoiseConfig>,
    /// Record per-vertex finish times (costs memory on big graphs).
    pub record_vertex_times: bool,
    /// Serialise CPU-occupying events per rank (LogGOPSim behaviour: two
    /// concurrent `o` charges on one rank queue behind each other). The
    /// LP/critical-path model treats them as parallel branches, so this is
    /// one of the genuine model/measurement gaps of the validation
    /// experiments. Disable for an exact dataflow replay of the graph.
    pub cpu_serialization: bool,
}

impl SimConfig {
    /// Noise-free, injection-free replay under `params`.
    pub fn ideal(params: LogGPSParams) -> Self {
        Self {
            params,
            delta_l: 0.0,
            injector: InjectorDesign::DelayThread,
            noise: None,
            record_vertex_times: false,
            cpu_serialization: true,
        }
    }

    /// Pure dataflow replay: no CPU serialisation, matching the
    /// critical-path model exactly when noise and `g` are off.
    pub fn dataflow(params: LogGPSParams) -> Self {
        Self {
            cpu_serialization: false,
            ..Self::ideal(params)
        }
    }

    /// Set the injected latency.
    pub fn with_delta_l(mut self, delta_l: f64) -> Self {
        self.delta_l = delta_l;
        self
    }

    /// Set the injector design.
    pub fn with_injector(mut self, injector: InjectorDesign) -> Self {
        self.injector = injector;
        self
    }

    /// Enable noise.
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = Some(noise);
        self
    }
}

/// Simulation outcome.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Completion time of the whole job (ns).
    pub makespan: f64,
    /// Completion time per rank (ns).
    pub rank_finish: Vec<f64>,
    /// Number of vertex events processed.
    pub events: u64,
    /// Per-vertex finish times when requested.
    pub vertex_finish: Option<Vec<f64>>,
}

/// Total-ordered f64 key for the event heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key(f64);

impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The simulator.
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g ExecGraph,
    cfg: SimConfig,
}

impl<'g> Simulator<'g> {
    /// Bind a simulator to a graph.
    pub fn new(graph: &'g ExecGraph, cfg: SimConfig) -> Self {
        Self { graph, cfg }
    }

    /// Run to completion.
    pub fn run(&self) -> SimResult {
        let g = self.graph;
        let p = &self.cfg.params;
        let delta = self.cfg.delta_l;
        let design = self.cfg.injector;
        let nranks = g.nranks() as usize;
        let n = g.num_vertices();

        let mut noise = self.cfg.noise.map(Noise::new);
        let mut indeg: Vec<u32> = (0..n as u32).map(|v| g.preds(v).len() as u32).collect();
        let mut ready: Vec<f64> = vec![0.0; n];
        let mut finish: Vec<f64> = vec![0.0; n];
        let mut cpu_free: Vec<f64> = vec![0.0; nranks];
        let mut nic_free: Vec<f64> = vec![0.0; nranks];
        // Design C (progress thread): last delay-release per receiving rank.
        let mut last_release: Vec<f64> = vec![f64::NEG_INFINITY; nranks];

        let mut heap: BinaryHeap<Reverse<(Key, u32)>> = BinaryHeap::new();
        for v in 0..n as u32 {
            if indeg[v as usize] == 0 {
                heap.push(Reverse((Key(0.0), v)));
            }
        }

        // Latency applied to rendezvous control edges (per-message flows
        // are delayed by the injector at flow level, REQ/FIN included).
        let l_eff = p.l + delta;
        let mut events = 0u64;
        let mut rank_finish = vec![0.0f64; nranks];

        while let Some(Reverse((Key(_t), v))) = heap.pop() {
            events += 1;
            let vert = g.vertex(v);
            let rank = vert.rank as usize;

            // Vertex execution: CPU-occupying when it has nonzero cost.
            let mut cost = vert.cost.eval(p.o, p.l, p.big_g);
            if vert.kind == VertexKind::Calc && vert.cost.const_ns > 0.0 {
                if let Some(ns) = noise.as_mut() {
                    cost = vert.cost.const_ns * ns.comp_factor() + (cost - vert.cost.const_ns);
                }
            }
            // Design B: eager sends busy-wait the injected delay before the
            // message leaves (Underwood et al., Fig. 8B).
            let is_eager_send =
                vert.kind.is_send() && g.succs(v).iter().any(|e| e.kind == EdgeKind::Comm);
            if design == InjectorDesign::SenderDelay && is_eager_send {
                cost += delta;
            }

            let f = if cost > 0.0 {
                if self.cfg.cpu_serialization {
                    let start = ready[v as usize].max(cpu_free[rank]);
                    let f = start + cost;
                    cpu_free[rank] = f;
                    f
                } else {
                    ready[v as usize] + cost
                }
            } else {
                // Zero-cost structural vertex: no CPU occupancy.
                ready[v as usize]
            };
            finish[v as usize] = f;
            rank_finish[rank] = rank_finish[rank].max(f);

            // Message departure shared by all outgoing comm edges of a
            // send. NIC pacing (the LogGP gap: a new message every
            // max(g, (s−1)G)) is part of the resource model, off in pure
            // dataflow replay.
            let mut departure = f;
            if is_eager_send && self.cfg.cpu_serialization {
                if let VertexKind::Send { bytes, .. } = vert.kind {
                    departure = f.max(nic_free[rank]);
                    nic_free[rank] = departure + p.g.max(p.transmission(bytes));
                }
            }

            for e in g.succs(v) {
                let contribution = match e.kind {
                    EdgeKind::Local => f + e.cost.eval(p.o, p.l, p.big_g),
                    EdgeKind::Rendezvous => {
                        let mut c = f + e.cost.eval(p.o, l_eff, p.big_g);
                        if e.cost.l_count > 0.0 {
                            if let Some(ns) = noise.as_mut() {
                                c += ns.msg_jitter();
                            }
                        }
                        c
                    }
                    EdgeKind::Comm => {
                        let bytes = match vert.kind {
                            VertexKind::Send { bytes, .. } => bytes,
                            _ => 0,
                        };
                        let mut raw = departure + p.l + p.transmission(bytes);
                        if let Some(ns) = noise.as_mut() {
                            raw += ns.msg_jitter();
                        }
                        let dst = g.vertex(e.other).rank as usize;
                        match design {
                            InjectorDesign::None | InjectorDesign::SenderDelay => raw,
                            InjectorDesign::DelayThread => raw + delta,
                            InjectorDesign::ProgressThread => {
                                let rel = raw.max(last_release[dst]) + delta;
                                last_release[dst] = rel;
                                rel
                            }
                        }
                    }
                };
                let w = e.other as usize;
                ready[w] = ready[w].max(contribution);
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    heap.push(Reverse((Key(ready[w]), e.other)));
                }
            }
        }

        let makespan = rank_finish.iter().copied().fold(0.0, f64::max);
        SimResult {
            makespan,
            rank_finish,
            events,
            vertex_finish: self.cfg.record_vertex_times.then_some(finish),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_schedgen::{build_graph, GraphConfig};
    use llamp_trace::{ProgramSet, TracerConfig};
    use llamp_util::time::us;

    fn graph(set: &ProgramSet, cfg: &GraphConfig) -> ExecGraph {
        build_graph(&set.trace(&TracerConfig::default()), cfg).unwrap()
    }

    fn didactic_params() -> LogGPSParams {
        // The paper's running example: o = 0, G = 5 ns/B (Fig. 4b).
        LogGPSParams::didactic()
    }

    /// The Fig. 4b scenario: c0 = c1 = 1 µs, c2 = 0.5 µs, c3 = 1 µs,
    /// s = 4 B. With a late sender the runtime is L + 2.015 µs.
    fn running_example() -> ExecGraph {
        graph(
            &ProgramSet::spmd(2, |rank, b| {
                if rank == 0 {
                    b.comp(us(1.0));
                    b.send(1, 4, 0);
                    b.comp(us(1.0));
                } else {
                    b.comp(us(0.5));
                    b.recv(0, 4, 0);
                    b.comp(us(1.0));
                }
            }),
            &GraphConfig::eager(),
        )
    }

    #[test]
    fn running_example_late_sender() {
        // T = L + 2.015 µs at L = 3 µs (paper Fig. 4b: dT/dL = 1).
        let g = running_example();
        let params = didactic_params().with_l(us(3.0));
        let r = Simulator::new(&g, SimConfig::ideal(params)).run();
        assert!(
            (r.makespan - (us(3.0) + 2_015.0)).abs() < 1e-6,
            "{}",
            r.makespan
        );
    }

    #[test]
    fn running_example_overlap_region() {
        // With c0 = 0.1 µs: T = max(L + 1.115, 1.5) µs (Fig. 4c).
        let g = graph(
            &ProgramSet::spmd(2, |rank, b| {
                if rank == 0 {
                    b.comp(100.0);
                    b.send(1, 4, 0);
                    b.comp(us(1.0));
                } else {
                    b.comp(us(0.5));
                    b.recv(0, 4, 0);
                    b.comp(us(1.0));
                }
            }),
            &GraphConfig::eager(),
        );
        // Below the critical latency 0.385 µs the runtime pins at 1.5 µs.
        let r = Simulator::new(&g, SimConfig::ideal(didactic_params().with_l(200.0))).run();
        assert!((r.makespan - us(1.5)).abs() < 1e-6, "{}", r.makespan);
        // Above it the runtime is L + 1.115 µs.
        let r = Simulator::new(&g, SimConfig::ideal(didactic_params().with_l(us(0.5)))).run();
        assert!((r.makespan - us(1.615)).abs() < 1e-6, "{}", r.makespan);
    }

    #[test]
    fn delta_l_injection_shifts_runtime() {
        let g = running_example();
        let params = didactic_params().with_l(us(3.0));
        let base = Simulator::new(&g, SimConfig::ideal(params)).run().makespan;
        let inj = Simulator::new(&g, SimConfig::ideal(params).with_delta_l(us(10.0)))
            .run()
            .makespan;
        assert!((inj - base - us(10.0)).abs() < 1e-6);
    }

    #[test]
    fn noise_only_slows_down_and_is_deterministic() {
        let g = running_example();
        let params = didactic_params().with_l(us(3.0));
        let base = Simulator::new(&g, SimConfig::ideal(params)).run().makespan;
        let cfg = SimConfig::ideal(params).with_noise(NoiseConfig::noisy(11));
        let a = Simulator::new(&g, cfg).run().makespan;
        let b = Simulator::new(&g, cfg).run().makespan;
        assert!(a >= base);
        assert_eq!(a, b);
    }

    #[test]
    fn rendezvous_protocol_cost() {
        // One rendezvous message, no other work. Fig. 15: completion at
        // max(t_s, t_r + L) + 3o + 3L + B on the sender, +2o+3L+B on the
        // receiver.
        let bytes = 512 * 1024u64;
        let g = graph(
            &ProgramSet::spmd(2, |rank, b| {
                if rank == 0 {
                    b.send(1, bytes, 0);
                } else {
                    b.recv(0, bytes, 0);
                }
            }),
            &GraphConfig::paper(),
        );
        let params = LogGPSParams {
            l: 1_000.0,
            o: 100.0,
            g: 0.0,
            big_g: 0.01,
            big_o: 0.0,
            s: 256 * 1024,
            p: 2,
        };
        let r = Simulator::new(&g, SimConfig::ideal(params)).run();
        let b = (bytes - 1) as f64 * params.big_g;
        // Handshake at t_r + L = L (both ready at 0); sender completes at
        // L + 3o + 3L + B.
        let expect = params.l + 3.0 * params.o + 3.0 * params.l + b;
        assert!(
            (r.makespan - expect).abs() < 1e-6,
            "{} vs {expect}",
            r.makespan
        );
    }

    #[test]
    fn nic_gap_paces_message_bursts() {
        // 4 back-to-back sends with o = 0: without g they all leave at
        // once; with g they serialise.
        let set = ProgramSet::spmd(2, |rank, b| {
            if rank == 0 {
                for i in 0..4 {
                    b.send(1, 4, i);
                }
            } else {
                for i in 0..4 {
                    b.recv(0, 4, i);
                }
            }
        });
        let g = graph(&set, &GraphConfig::eager());
        let mut params = didactic_params().with_l(us(1.0));
        let t0 = Simulator::new(&g, SimConfig::ideal(params)).run().makespan;
        params.g = us(5.0);
        let t1 = Simulator::new(&g, SimConfig::ideal(params)).run().makespan;
        // Three inter-send gaps grow from max(g, B) = B = 15 ns to g = 5 µs.
        let expect = 3.0 * (us(5.0) - 15.0);
        assert!((t1 - t0 - expect).abs() < 1e-6, "t0={t0} t1={t1}");
    }

    #[test]
    fn collective_runtime_scales_with_log_p() {
        // Recursive-doubling allreduce over pure latency: T ~ lg(P)·(L+2o).
        let params = LogGPSParams {
            l: us(1.0),
            o: 0.0,
            g: 0.0,
            big_g: 0.0,
            big_o: 0.0,
            s: u64::MAX,
            p: 16,
        };
        let mk = |p: u32| {
            let g = graph(
                &ProgramSet::spmd(p, |_, b| {
                    b.allreduce(8);
                }),
                &GraphConfig::eager(),
            );
            Simulator::new(&g, SimConfig::ideal(params)).run().makespan
        };
        assert!((mk(16) - 4.0 * us(1.0)).abs() < 1e-6);
        assert!((mk(4) - 2.0 * us(1.0)).abs() < 1e-6);
    }

    #[test]
    fn vertex_times_are_monotone_along_edges() {
        let g = running_example();
        let params = didactic_params().with_l(us(3.0));
        let mut cfg = SimConfig::ideal(params);
        cfg.record_vertex_times = true;
        let r = Simulator::new(&g, cfg).run();
        let ft = r.vertex_finish.unwrap();
        for v in 0..g.num_vertices() as u32 {
            for e in g.preds(v) {
                assert!(
                    ft[e.other as usize] <= ft[v as usize] + 1e-9,
                    "edge {} -> {v} not monotone",
                    e.other
                );
            }
        }
    }
}

//! Netgauge PRTT experiments executed in the simulator.
//!
//! The paper measures its clusters' LogGPS parameters with Netgauge before
//! analysing anything (§III-B). Here the "cluster" is the simulator, so the
//! measurement loop runs PRTT ping-pong programs through the DES and the
//! fitting code in [`llamp_model::netgauge`] recovers the parameters the
//! simulator was configured with — the round trip that validates both the
//! fitter and the simulator's LogGP mechanics.

use crate::des::{SimConfig, Simulator};
use llamp_model::netgauge::Network;
use llamp_model::LogGPSParams;
use llamp_schedgen::{build_graph, GraphConfig};
use llamp_trace::{ProgramSet, TracerConfig};

/// A simulated network: PRTT experiments are compiled to programs and
/// replayed through the DES.
#[derive(Debug, Clone)]
pub struct SimNetwork {
    /// Ground-truth parameters of the simulated cluster.
    pub params: LogGPSParams,
}

impl SimNetwork {
    /// Wrap parameters into a measurable network.
    pub fn new(params: LogGPSParams) -> Self {
        Self { params }
    }
}

impl Network for SimNetwork {
    fn prtt(&mut self, n: usize, delay_ns: f64, size: u64) -> f64 {
        // Rank 0 fires n messages spaced by `delay`; rank 1 echoes the last
        // one back. PRTT is the completion time of the echo.
        let set = ProgramSet::spmd(2, |rank, b| {
            if rank == 0 {
                for i in 0..n {
                    b.send(1, size, i as u32);
                    if i + 1 < n {
                        b.comp(delay_ns);
                    }
                }
                b.recv(1, size, u32::MAX);
            } else {
                for i in 0..n {
                    b.recv(0, size, i as u32);
                }
                b.send(0, size, u32::MAX);
            }
        });
        let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager())
            .expect("prtt program builds");
        Simulator::new(&g, SimConfig::ideal(self.params))
            .run()
            .makespan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_model::netgauge::{measure, MeasureConfig};

    #[test]
    fn prtt_single_message_matches_loggp() {
        let params = LogGPSParams {
            l: 3_000.0,
            o: 500.0,
            g: 0.0,
            big_g: 0.02,
            big_o: 0.0,
            s: u64::MAX,
            p: 2,
        };
        let mut net = SimNetwork::new(params);
        let s = 1024u64;
        let b = (s - 1) as f64 * params.big_g;
        // Round trip: 2 (2o + L + B). The receiver's send issues after its
        // recv o; the sender's recv costs another o.
        let expect = 2.0 * (2.0 * params.o + params.l + b);
        let got = net.prtt(1, 0.0, s);
        assert!((got - expect).abs() < 1e-6, "{got} vs {expect}");
    }

    #[test]
    fn measurement_recovers_simulated_parameters() {
        // The paper's CSCS test-bed values: L = 3 µs, G = 0.018 ns/B.
        let truth = LogGPSParams {
            l: 3_000.0,
            o: 5_000.0,
            g: 0.0,
            big_g: 0.018,
            big_o: 0.0,
            s: u64::MAX,
            p: 2,
        };
        let mut net = SimNetwork::new(truth);
        let fit = measure(&mut net, &MeasureConfig::default());
        assert!(
            (fit.l - truth.l).abs() / truth.l < 0.05,
            "L: {} vs {}",
            fit.l,
            truth.l
        );
        assert!(
            (fit.o - truth.o).abs() / truth.o < 0.05,
            "o: {} vs {}",
            fit.o,
            truth.o
        );
        assert!(
            (fit.big_g - truth.big_g).abs() / truth.big_g < 0.05,
            "G: {} vs {}",
            fit.big_g,
            truth.big_g
        );
    }
}

//! Deterministic noise injection.
//!
//! The paper's measured runtimes scatter around the prediction because of
//! OS and network noise (§III-C notes HPCG being "inherently more
//! susceptible to system and network noise"; see also Hoefler et al. 2010).
//! The simulator models that with *one-sided* jitter — noise only ever
//! slows execution down:
//!
//! * every `calc` vertex is stretched by `1 + σ_comp·|z|` (half-normal),
//! * every message pays an extra `σ_msg·|z|` nanoseconds in flight.
//!
//! Sampling is seeded and drawn in deterministic event order, so a given
//! `(graph, config, seed)` triple always reproduces the same "measurement".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Noise magnitudes.
#[derive(Debug, Clone, Copy)]
pub struct NoiseConfig {
    /// Relative half-normal scale on compute durations (e.g. `0.01` for
    /// ~1% mean slowdown).
    pub comp_rel_sigma: f64,
    /// Half-normal scale on per-message wire time (ns).
    pub msg_sigma_ns: f64,
    /// RNG seed.
    pub seed: u64,
}

impl NoiseConfig {
    /// A quiet cluster: 0.2% compute jitter, 100 ns message jitter.
    pub fn quiet(seed: u64) -> Self {
        Self {
            comp_rel_sigma: 0.002,
            msg_sigma_ns: 100.0,
            seed,
        }
    }

    /// A noisy cluster: 2% compute jitter, 2 µs message jitter (HPCG-like
    /// scatter).
    pub fn noisy(seed: u64) -> Self {
        Self {
            comp_rel_sigma: 0.02,
            msg_sigma_ns: 2_000.0,
            seed,
        }
    }
}

/// Stateful sampler.
#[derive(Debug)]
pub struct Noise {
    cfg: NoiseConfig,
    rng: StdRng,
}

impl Noise {
    /// Create a sampler from a config.
    pub fn new(cfg: NoiseConfig) -> Self {
        Self {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
        }
    }

    /// Standard normal via Box–Muller (no external distribution crate).
    fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.random_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Multiplicative factor (≥ 1) for a compute duration.
    pub fn comp_factor(&mut self) -> f64 {
        1.0 + self.cfg.comp_rel_sigma * self.standard_normal().abs()
    }

    /// Additive wire-time jitter (≥ 0) for one message.
    pub fn msg_jitter(&mut self) -> f64 {
        self.cfg.msg_sigma_ns * self.standard_normal().abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_one_sided() {
        let mut n = Noise::new(NoiseConfig::noisy(7));
        for _ in 0..1000 {
            assert!(n.comp_factor() >= 1.0);
            assert!(n.msg_jitter() >= 0.0);
        }
    }

    #[test]
    fn noise_is_deterministic() {
        let mut a = Noise::new(NoiseConfig::quiet(42));
        let mut b = Noise::new(NoiseConfig::quiet(42));
        for _ in 0..100 {
            assert_eq!(a.comp_factor(), b.comp_factor());
            assert_eq!(a.msg_jitter(), b.msg_jitter());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Noise::new(NoiseConfig::quiet(1));
        let mut b = Noise::new(NoiseConfig::quiet(2));
        let va: Vec<f64> = (0..10).map(|_| a.msg_jitter()).collect();
        let vb: Vec<f64> = (0..10).map(|_| b.msg_jitter()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn mean_scale_is_plausible() {
        // Half-normal mean is sigma * sqrt(2/pi) ~ 0.798 sigma.
        let mut n = Noise::new(NoiseConfig {
            comp_rel_sigma: 0.0,
            msg_sigma_ns: 1_000.0,
            seed: 3,
        });
        let m: f64 = (0..20_000).map(|_| n.msg_jitter()).sum::<f64>() / 20_000.0;
        assert!((m - 798.0).abs() < 40.0, "mean {m}");
    }
}

//! # llamp-sim — LogGOPSim-equivalent discrete-event simulation
//!
//! LLAMP's validation needs two independent executions of the same
//! execution graph: the *analytical* one (the LP) and a *measured* one. The
//! paper measures on a 188-node cluster under a software latency injector
//! (§III); this workspace substitutes a discrete-event simulator faithful
//! to the LogGOPS model — the same role LogGOPSim plays as the speed
//! baseline in the paper's Fig. 7/Table I:
//!
//! * [`des::Simulator`] — event-queue replay of an execution graph with
//!   per-rank CPU and NIC resources, honouring `o`, `g`, `G`, `L` and the
//!   rendezvous gadgets. Unlike the LP it models the NIC gap `g` and can
//!   inject noise, so "measured" runtimes genuinely differ from the
//!   prediction.
//! * [`injector`] — the four latency-injection designs of Fig. 8: the
//!   intended behaviour (A), sender-side delays (B, Underwood et al.),
//!   a receiver progress thread serialising delays (C), and the paper's
//!   delay-thread design (D), which this crate implements exactly.
//! * [`noise`] — deterministic, seeded compute/message jitter standing in
//!   for OS and network noise.
//! * [`netgauge_impl`] — the [`llamp_model::netgauge::Network`] trait
//!   implemented by actually simulating PRTT exchanges, closing the
//!   measure-then-analyse loop of §III-B.

pub mod des;
pub mod injector;
pub mod netgauge_impl;
pub mod noise;

pub use des::{SimConfig, SimResult, Simulator};
pub use injector::InjectorDesign;
pub use noise::NoiseConfig;

//! Latency-injector designs (paper Fig. 8 and §III-A).
//!
//! Emulating network latency in software is subtle. For a sender issuing
//! two back-to-back eager sends to a receiver that posted both receives in
//! advance, the *intended* effect of adding `∆L` (panel A) is
//!
//! ```text
//! t_R0 = 2o                    t_R1 = 3o + L₀ + B + ∆L
//! ```
//!
//! The three implementations the paper analyses distort or achieve this:
//!
//! * **B — sender-side delay** (Underwood et al.): the send call busy-waits
//!   `∆L`, delaying the sender itself and every subsequent message:
//!   `t_R0 = 2o + 2∆L`, `t_R1 = 3o + L₀ + B + 2∆L`.
//! * **C — receiver progress thread**: one thread serialises the delays;
//!   when `∆L > o` the second message queues behind the first:
//!   `t_R0 = 2o`, `t_R1 = 2o + L₀ + B + 2∆L`.
//! * **D — delay thread** (the paper's contribution, implemented in MPICH +
//!   UCX, Fig. 17): messages are timestamped on arrival and released at
//!   `t_m + ∆L` by a dedicated thread, achieving the intended effect:
//!   `t_R0 = 2o`, `t_R1 = 3o + L₀ + B + ∆L`.
//!
//! [`fig8_scenario`] reproduces the exact two-message experiment and the
//! tests pin each design to its formula.

use crate::des::{SimConfig, Simulator};
use llamp_model::LogGPSParams;
use llamp_schedgen::{build_graph, GraphConfig};
use llamp_trace::{ProgramSet, TracerConfig};

/// Which latency-injector implementation the simulator emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InjectorDesign {
    /// No injection at all (`∆L` ignored for eager messages).
    None,
    /// Fig. 8B: delay added inside the send call.
    SenderDelay,
    /// Fig. 8C: receiver-side progress thread serialising delays.
    ProgressThread,
    /// Fig. 8D: receiver-side delay thread; the paper's design and the
    /// faithful "flow-level" injection.
    #[default]
    DelayThread,
}

/// Per-rank completion times of the Fig. 8 experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Outcome {
    /// Sender completion `t_R0` (ns).
    pub t_r0: f64,
    /// Receiver completion `t_R1` (ns).
    pub t_r1: f64,
}

/// Run the Fig. 8 scenario: rank 0 issues two eager sends of `bytes`
/// bytes; rank 1 posted two receives beforehand. Returns both ranks'
/// completion times under the given design and `∆L`.
pub fn fig8_scenario(
    params: LogGPSParams,
    bytes: u64,
    delta_l: f64,
    design: InjectorDesign,
) -> Fig8Outcome {
    let set = ProgramSet::spmd(2, |rank, b| {
        if rank == 0 {
            b.send(1, bytes, 0);
            b.send(1, bytes, 0);
        } else {
            b.recv(0, bytes, 0);
            b.recv(0, bytes, 0);
        }
    });
    let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager())
        .expect("fig8 scenario builds");
    let cfg = SimConfig::ideal(params)
        .with_delta_l(delta_l)
        .with_injector(design);
    let r = Simulator::new(&g, cfg).run();
    Fig8Outcome {
        t_r0: r.rank_finish[0],
        t_r1: r.rank_finish[1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parameters chosen so B < o (the regime Fig. 8 draws) and ∆L > o
    /// (the regime where design C breaks, §III-A).
    fn setup() -> (LogGPSParams, u64, f64, f64, f64, f64) {
        let params = LogGPSParams {
            l: 1_000.0,
            o: 300.0,
            g: 0.0,
            big_g: 1.0,
            big_o: 0.0,
            s: u64::MAX,
            p: 2,
        };
        let bytes = 101u64;
        let b = (bytes - 1) as f64 * params.big_g; // 100 ns
        let delta = 5_000.0; // ∆L > o
        (params, bytes, b, delta, params.o, params.l)
    }

    #[test]
    fn design_d_achieves_intended_effect() {
        let (params, bytes, b, delta, o, l0) = setup();
        let out = fig8_scenario(params, bytes, delta, InjectorDesign::DelayThread);
        assert!((out.t_r0 - 2.0 * o).abs() < 1e-6, "t_r0 = {}", out.t_r0);
        let expect = 3.0 * o + l0 + b + delta;
        assert!((out.t_r1 - expect).abs() < 1e-6, "{} vs {expect}", out.t_r1);
    }

    #[test]
    fn design_b_delays_the_sender() {
        let (params, bytes, b, delta, o, l0) = setup();
        let out = fig8_scenario(params, bytes, delta, InjectorDesign::SenderDelay);
        assert!(
            (out.t_r0 - (2.0 * o + 2.0 * delta)).abs() < 1e-6,
            "t_r0 = {}",
            out.t_r0
        );
        let expect = 3.0 * o + l0 + b + 2.0 * delta;
        assert!((out.t_r1 - expect).abs() < 1e-6, "{} vs {expect}", out.t_r1);
    }

    #[test]
    fn design_c_serialises_delays() {
        let (params, bytes, b, delta, o, l0) = setup();
        let out = fig8_scenario(params, bytes, delta, InjectorDesign::ProgressThread);
        assert!((out.t_r0 - 2.0 * o).abs() < 1e-6);
        let expect = 2.0 * o + l0 + b + 2.0 * delta;
        assert!((out.t_r1 - expect).abs() < 1e-6, "{} vs {expect}", out.t_r1);
    }

    #[test]
    fn design_none_ignores_delta() {
        let (params, bytes, b, delta, o, l0) = setup();
        let out = fig8_scenario(params, bytes, delta, InjectorDesign::None);
        let expect = 3.0 * o + l0 + b;
        assert!((out.t_r1 - expect).abs() < 1e-6, "{} vs {expect}", out.t_r1);
    }

    #[test]
    fn designs_agree_at_zero_delta() {
        let (params, bytes, _, _, _, _) = setup();
        let designs = [
            InjectorDesign::None,
            InjectorDesign::SenderDelay,
            InjectorDesign::ProgressThread,
            InjectorDesign::DelayThread,
        ];
        let base = fig8_scenario(params, bytes, 0.0, InjectorDesign::None);
        for d in designs {
            let out = fig8_scenario(params, bytes, 0.0, d);
            assert!((out.t_r1 - base.t_r1).abs() < 1e-6, "{d:?}");
            assert!((out.t_r0 - base.t_r0).abs() < 1e-6, "{d:?}");
        }
    }

    #[test]
    fn design_c_matches_d_when_delta_small() {
        // When ∆L < o the progress thread keeps up and C behaves like D.
        let (params, bytes, _, _, _, _) = setup();
        let small = 100.0; // < o = 300
        let c = fig8_scenario(params, bytes, small, InjectorDesign::ProgressThread);
        let d = fig8_scenario(params, bytes, small, InjectorDesign::DelayThread);
        assert!((c.t_r1 - d.t_r1).abs() < 1e-6, "{} vs {}", c.t_r1, d.t_r1);
    }
}

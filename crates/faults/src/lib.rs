#![deny(missing_docs)]
//! # llamp-faults — deterministic fault injection
//!
//! A process-global registry of *fault sites*: named points in the
//! pipeline (`cache.load.corrupt`, `solve.stall`, `exec.job.panic`,
//! `trace.parse.corrupt`, …) that ask [`should_inject`] whether to fail
//! on purpose. The answer is a **pure function of (seed, site, hit
//! index)** — no wall clock, no OS entropy — so a faulted run is exactly
//! reproducible, which is what lets the chaos suite assert that a
//! *recovered* run is byte-identical to the fault-free run.
//!
//! ## Spec syntax
//!
//! A spec is a comma-separated list of `site:arm` pairs:
//!
//! ```text
//! LLAMP_FAULTS="solve.stall:3,cache.load.corrupt:0.1" llamp run …
//! ```
//!
//! * `site:N` (integer) — fire exactly on the `N`-th hit of that site
//!   (1-based) and never again. Count-based arms produce *one* fault per
//!   site, so CI can demand full recovery and byte-identity.
//! * `site:P` (float containing `.`, in `[0,1)`) — fire each hit
//!   independently with probability `P`, decided by a counter-based
//!   seeded hash. Probability arms are for chaos sweeps where repeated
//!   faults may exhaust the recovery ladder; unrecovered runs must then
//!   fail with typed errors, never panics.
//!
//! The optional `LLAMP_FAULTS_SEED` (u64, default 0) perturbs the
//! probability hash; count arms ignore it.
//!
//! ## Zero overhead when off
//!
//! Like `llamp-obs`, every entry point first loads one relaxed atomic:
//! with no spec configured, [`should_inject`] is a branch on a cached
//! `false` — no lock, no allocation, no hashing. Production binaries
//! that never call [`configure`]/[`init_from_env`] pay nothing.
//!
//! Fault-site naming follows the observability scheme
//! (`subsystem.thing[.failure]`); the canonical site list lives in
//! `docs/ROBUSTNESS.md`. Every fired injection bumps the obs counters
//! `fault.injected` and `fault.injected.{site}`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

/// How one configured site decides whether a given hit fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Arm {
    /// Fire exactly on the n-th hit (1-based), once.
    Nth(u64),
    /// Fire each hit independently with this probability.
    Prob(f64),
}

#[derive(Debug)]
struct Site {
    name: String,
    arm: Arm,
    /// Hits observed so far (1-based after `fetch_add`).
    hits: AtomicU64,
    /// Faults actually fired at this site.
    fired: AtomicU64,
}

#[derive(Debug, Default)]
struct Registry {
    sites: Vec<Site>,
    seed: u64,
    spec: String,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: RwLock<Option<Registry>> = RwLock::new(None);

/// A malformed fault spec (unknown arm syntax, probability out of range).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(pub String);

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

fn parse_spec(spec: &str) -> Result<Vec<(String, Arm)>, FaultSpecError> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let Some((site, arm)) = part.rsplit_once(':') else {
            return Err(FaultSpecError(format!(
                "'{part}' — expected site:count or site:probability"
            )));
        };
        let site = site.trim();
        let arm = arm.trim();
        if site.is_empty() {
            return Err(FaultSpecError(format!("'{part}' — empty site name")));
        }
        let arm = if arm.contains('.') {
            let p: f64 = arm
                .parse()
                .map_err(|_| FaultSpecError(format!("'{part}' — bad probability '{arm}'")))?;
            if !(0.0..1.0).contains(&p) {
                return Err(FaultSpecError(format!(
                    "'{part}' — probability {p} outside [0, 1)"
                )));
            }
            Arm::Prob(p)
        } else {
            let n: u64 = arm
                .parse()
                .map_err(|_| FaultSpecError(format!("'{part}' — bad count '{arm}'")))?;
            if n == 0 {
                return Err(FaultSpecError(format!(
                    "'{part}' — counts are 1-based; ':1' fires on the first hit"
                )));
            }
            Arm::Nth(n)
        };
        out.push((site.to_string(), arm));
    }
    Ok(out)
}

/// Configure the registry from a spec string (see the module docs for
/// the syntax). An empty spec disables injection, like [`clear`].
/// Replaces any previous configuration and resets all hit counters.
pub fn configure(spec: &str, seed: u64) -> Result<(), FaultSpecError> {
    let parsed = parse_spec(spec)?;
    let mut reg = REGISTRY.write().unwrap();
    if parsed.is_empty() {
        *reg = None;
        ENABLED.store(false, Ordering::Release);
        return Ok(());
    }
    *reg = Some(Registry {
        sites: parsed
            .into_iter()
            .map(|(name, arm)| Site {
                name,
                arm,
                hits: AtomicU64::new(0),
                fired: AtomicU64::new(0),
            })
            .collect(),
        seed,
        spec: spec.to_string(),
    });
    ENABLED.store(true, Ordering::Release);
    Ok(())
}

/// Configure from the `LLAMP_FAULTS` / `LLAMP_FAULTS_SEED` environment
/// variables. Absent or empty `LLAMP_FAULTS` leaves injection disabled.
pub fn init_from_env() -> Result<(), FaultSpecError> {
    let spec = std::env::var("LLAMP_FAULTS").unwrap_or_default();
    let seed = std::env::var("LLAMP_FAULTS_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0);
    configure(&spec, seed)
}

/// Drop all configured sites; [`should_inject`] returns to its one-load
/// fast path.
pub fn clear() {
    let mut reg = REGISTRY.write().unwrap();
    *reg = None;
    ENABLED.store(false, Ordering::Release);
}

/// Whether any fault site is configured (one relaxed atomic load).
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The spec string currently in force, if any.
pub fn active_spec() -> Option<String> {
    if !is_enabled() {
        return None;
    }
    REGISTRY.read().unwrap().as_ref().map(|r| r.spec.clone())
}

/// Total faults fired across all sites since configuration.
pub fn fired_total() -> u64 {
    if !is_enabled() {
        return 0;
    }
    REGISTRY
        .read()
        .unwrap()
        .as_ref()
        .map(|r| {
            r.sites
                .iter()
                .map(|s| s.fired.load(Ordering::Relaxed))
                .sum()
        })
        .unwrap_or(0)
}

/// splitmix64: the counter-based generator behind probability arms.
/// Small, stable, and good enough to decorrelate (seed, site, hit).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Should the pipeline fail on purpose at `site`, right now?
///
/// Counts the hit, decides deterministically from (seed, site, hit
/// index), and — when firing — bumps the `fault.injected` counters.
/// Callers own the *failure semantics*: a `true` answer means "behave
/// as if the fault the site names had just happened".
#[inline]
pub fn should_inject(site: &str) -> bool {
    if !is_enabled() {
        return false;
    }
    should_inject_slow(site)
}

#[cold]
fn should_inject_slow(site: &str) -> bool {
    let reg = REGISTRY.read().unwrap();
    let Some(reg) = reg.as_ref() else {
        return false;
    };
    let Some(s) = reg.sites.iter().find(|s| s.name == site) else {
        return false;
    };
    let hit = s.hits.fetch_add(1, Ordering::Relaxed) + 1;
    let fire = match s.arm {
        Arm::Nth(n) => hit == n,
        Arm::Prob(p) => {
            let h = splitmix64(
                reg.seed ^ fnv1a(site.as_bytes()) ^ hit.wrapping_mul(0x2545_F491_4F6C_DD1D),
            );
            // Map the top 53 bits to a unit float, same construction as
            // rand's `Open01`.
            let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            unit < p
        }
    };
    if fire {
        s.fired.fetch_add(1, Ordering::Relaxed);
        llamp_obs::counter("fault.injected", 1);
        if llamp_obs::is_enabled() {
            llamp_obs::counter(&format!("fault.injected.{site}"), 1);
        }
    }
    fire
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The registry is process-global; unit tests serialize on this lock
    // so `cargo test` parallelism cannot interleave configurations.
    static LOCK: Mutex<()> = Mutex::new(());

    fn session() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_is_the_default_and_never_fires() {
        let _g = session();
        clear();
        assert!(!is_enabled());
        assert!(!should_inject("solve.stall"));
        assert_eq!(active_spec(), None);
    }

    #[test]
    fn count_arm_fires_exactly_on_the_nth_hit() {
        let _g = session();
        configure("solve.stall:3", 0).unwrap();
        assert!(!should_inject("solve.stall"));
        assert!(!should_inject("solve.stall"));
        assert!(should_inject("solve.stall"));
        assert!(!should_inject("solve.stall"));
        assert!(!should_inject("solve.stall"));
        assert_eq!(fired_total(), 1);
        // Unconfigured sites never fire even while enabled.
        assert!(!should_inject("cache.load.corrupt"));
        clear();
    }

    #[test]
    fn probability_arm_is_deterministic_in_seed_and_hit_index() {
        let _g = session();
        configure("exec.job.panic:0.5", 42).unwrap();
        let a: Vec<bool> = (0..64).map(|_| should_inject("exec.job.panic")).collect();
        configure("exec.job.panic:0.5", 42).unwrap();
        let b: Vec<bool> = (0..64).map(|_| should_inject("exec.job.panic")).collect();
        assert_eq!(a, b, "same seed + hit index must decide identically");
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
        // A different seed gives a different firing pattern.
        configure("exec.job.panic:0.5", 43).unwrap();
        let c: Vec<bool> = (0..64).map(|_| should_inject("exec.job.panic")).collect();
        assert_ne!(a, c);
        clear();
    }

    #[test]
    fn multi_site_specs_parse_and_route() {
        let _g = session();
        configure("a.b:1, c.d.e:0.0", 7).unwrap();
        assert_eq!(active_spec().as_deref(), Some("a.b:1, c.d.e:0.0"));
        assert!(should_inject("a.b"));
        assert!(!should_inject("c.d.e")); // p = 0.0 never fires
        clear();
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _g = session();
        for bad in ["solve.stall", "x:", "x:abc", "x:1.5", "x:-0.1", "x:0", ":3"] {
            assert!(configure(bad, 0).is_err(), "{bad} should be rejected");
        }
        // A failed configure leaves the previous configuration in force,
        // never a half-applied one.
        assert!(configure("ok.site:1", 0).is_ok());
        assert!(configure("broken", 0).is_err());
        assert_eq!(active_spec().as_deref(), Some("ok.site:1"));
        clear();
    }

    #[test]
    fn empty_spec_disables() {
        let _g = session();
        configure("a:1", 0).unwrap();
        assert!(is_enabled());
        configure("", 0).unwrap();
        assert!(!is_enabled());
    }
}

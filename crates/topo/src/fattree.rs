//! Three-tier Fat Tree (k-ary folded Clos, Al-Fares et al. 2008).
//!
//! With switch radix `k`: `k` pods, each with `k/2` edge and `k/2`
//! aggregation switches; each edge switch hosts `k/2` nodes; `(k/2)²` core
//! switches. Capacity: `k³/4` hosts. The paper's case study uses `k = 16`
//! (1024 hosts) with ICON on 256 nodes.
//!
//! Minimal routes and their profiles:
//!
//! | relation | wires (terminal, intra, inter) | switches |
//! |---|---|---|
//! | same edge switch | (2, 0, 0) | 1 |
//! | same pod | (2, 2, 0) | 3 |
//! | different pods | (2, 2, 2) | 5 |

use crate::{PathProfile, Topology};

/// A `k`-ary three-tier fat tree.
#[derive(Debug, Clone, Copy)]
pub struct FatTree {
    k: u32,
}

impl FatTree {
    /// Build a fat tree with switch radix `k` (must be even and ≥ 2).
    pub fn new(k: u32) -> Self {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat tree radix must be even, got {k}"
        );
        Self { k }
    }

    /// Switch radix.
    pub fn radix(&self) -> u32 {
        self.k
    }

    /// Hosts per edge switch (`k/2`).
    pub fn hosts_per_edge(&self) -> u32 {
        self.k / 2
    }

    /// Hosts per pod (`k²/4`).
    pub fn hosts_per_pod(&self) -> u32 {
        self.k * self.k / 4
    }

    /// Edge switch index of a node.
    pub fn edge_of(&self, node: u32) -> u32 {
        node / self.hosts_per_edge()
    }

    /// Pod index of a node.
    pub fn pod_of(&self, node: u32) -> u32 {
        node / self.hosts_per_pod()
    }
}

impl Topology for FatTree {
    fn num_nodes(&self) -> u32 {
        self.k * self.k * self.k / 4
    }

    fn profile(&self, a: u32, b: u32) -> PathProfile {
        assert!(a < self.num_nodes() && b < self.num_nodes());
        if a == b {
            return PathProfile::default();
        }
        if self.edge_of(a) == self.edge_of(b) {
            PathProfile {
                wires: [2, 0, 0],
                switches: 1,
            }
        } else if self.pod_of(a) == self.pod_of(b) {
            PathProfile {
                wires: [2, 2, 0],
                switches: 3,
            }
        } else {
            PathProfile {
                wires: [2, 2, 2],
                switches: 5,
            }
        }
    }

    fn max_switches(&self) -> u32 {
        if self.num_nodes() <= self.hosts_per_edge() {
            1
        } else if self.num_nodes() <= self.hosts_per_pod() {
            3
        } else {
            5
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_k16() {
        let ft = FatTree::new(16);
        assert_eq!(ft.num_nodes(), 1024);
        assert_eq!(ft.hosts_per_edge(), 8);
        assert_eq!(ft.hosts_per_pod(), 64);
        // "nodes 0 to 7 are clustered within the same pod" — same edge
        // switch under dense packing.
        assert_eq!(ft.profile(0, 7).switches, 1);
        assert_eq!(ft.profile(0, 8).switches, 3);
        assert_eq!(ft.profile(0, 64).switches, 5);
        assert_eq!(ft.profile(0, 64).total_wires(), 6);
    }

    #[test]
    fn profile_is_symmetric() {
        let ft = FatTree::new(8);
        for (a, b) in [(0u32, 1), (0, 5), (0, 30), (17, 90)] {
            assert_eq!(ft.profile(a, b), ft.profile(b, a));
        }
    }

    #[test]
    fn self_profile_is_empty() {
        let ft = FatTree::new(4);
        assert_eq!(ft.profile(2, 2), PathProfile::default());
    }

    #[test]
    fn uniform_latency_matches_formula() {
        // Zambre et al. numbers from the paper: l_wire = 274ns, d_switch =
        // 108ns. Cross-pod: 6 wires + 5 switches.
        let ft = FatTree::new(16);
        let lat = ft.latency(0, 512, 274.0, 108.0);
        assert_eq!(lat, 6.0 * 274.0 + 5.0 * 108.0);
    }

    #[test]
    #[should_panic(expected = "radix must be even")]
    fn odd_radix_rejected() {
        FatTree::new(5);
    }
}

//! # llamp-topo — network topologies
//!
//! The paper's topology case study (§IV-2, Appendix H) replaces the
//! end-to-end latency `L` of a communication edge with a per-wire
//! decomposition: a message over `h` switches costs
//! `(h+1)·l_wire + h·d_switch`. For the Dragonfly analysis each wire class
//! (terminal, intra-group, inter-group) can carry its own decision variable
//! (Fig. 19).
//!
//! This crate provides the two topologies the paper evaluates — a
//! three-tier Fat Tree (Al-Fares et al.) and a Dragonfly (Kim et al.) —
//! under a common [`Topology`] trait exposing, per node pair, the number of
//! wires of each class and the number of switches traversed on a minimal
//! route. Nodes are "densely packed" (paper §IV-2): consecutive node ids
//! fill switches/routers in order.

pub mod dragonfly;
pub mod fattree;

pub use dragonfly::Dragonfly;
pub use fattree::FatTree;

/// Wire classes distinguished by the per-class tolerance analysis
/// (Fig. 19: `l_tc`, `l_intra`, `l_inter`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireClass {
    /// Host ↔ first-level switch (terminal channel).
    Terminal,
    /// Switch ↔ switch inside a pod/group (edge–aggregation in a fat tree,
    /// intra-group in a dragonfly).
    Intra,
    /// Pod/group ↔ pod/group (aggregation–core, inter-group global links).
    Inter,
}

/// Per-pair route profile on a minimal path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PathProfile {
    /// Wires of each class: `[terminal, intra, inter]`.
    pub wires: [u32; 3],
    /// Switches traversed (the `h` of the paper's cost formula).
    pub switches: u32,
}

impl PathProfile {
    /// Total wire count (`h + 1` in the paper's uniform-wire formula).
    pub fn total_wires(&self) -> u32 {
        self.wires.iter().sum()
    }

    /// Evaluate the uniform-wire latency `(h+1)·l_wire + h·d_switch`.
    pub fn latency_uniform(&self, l_wire: f64, d_switch: f64) -> f64 {
        self.total_wires() as f64 * l_wire + self.switches as f64 * d_switch
    }

    /// Evaluate with per-class wire latencies `[terminal, intra, inter]`.
    pub fn latency_by_class(&self, l: [f64; 3], d_switch: f64) -> f64 {
        self.wires[0] as f64 * l[0]
            + self.wires[1] as f64 * l[1]
            + self.wires[2] as f64 * l[2]
            + self.switches as f64 * d_switch
    }
}

/// A network topology: node count plus minimal-route profiles.
pub trait Topology {
    /// Number of host nodes.
    fn num_nodes(&self) -> u32;

    /// Minimal-route profile between two nodes. `profile(a, a)` is empty
    /// (intra-node communication does not touch the network).
    fn profile(&self, a: u32, b: u32) -> PathProfile;

    /// Convenience: uniform-wire latency between two nodes.
    fn latency(&self, a: u32, b: u32, l_wire: f64, d_switch: f64) -> f64 {
        self.profile(a, b).latency_uniform(l_wire, d_switch)
    }

    /// Largest switch count over all pairs (network diameter in switches).
    fn max_switches(&self) -> u32 {
        let n = self.num_nodes();
        let mut best = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                best = best.max(self.profile(a, b).switches);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_latency_math() {
        let p = PathProfile {
            wires: [2, 2, 2],
            switches: 5,
        };
        // (h+1) l_wire + h d_switch with h = 5: 6 wires.
        assert_eq!(p.total_wires(), 6);
        assert_eq!(p.latency_uniform(274.0, 108.0), 6.0 * 274.0 + 5.0 * 108.0);
        assert_eq!(
            p.latency_by_class([100.0, 10.0, 1.0], 0.0),
            2.0 * 100.0 + 2.0 * 10.0 + 2.0
        );
    }
}

//! Dragonfly topology (Kim et al. 2008).
//!
//! Parameters follow the original paper's notation, as does the LLAMP case
//! study (`g = 8, a = 4, p = 8`, §IV-2): `g` groups of `a` routers, each
//! router hosting `p` nodes. Global (inter-group) links are distributed
//! round-robin over a group's routers: router `r` of a group owns the
//! global channels with indices `r·h .. r·h + h` where `h = ⌈(g−1)/a⌉`;
//! channel index `c` of group `G` connects to group `c` (skipping `G`
//! itself).
//!
//! Minimal routes:
//!
//! | relation | wires (terminal, intra, inter) | switches |
//! |---|---|---|
//! | same router | (2, 0, 0) | 1 |
//! | same group | (2, 1, 0) | 2 |
//! | different groups | (2, 0–2 intra, 1) | 2–4 |
//!
//! The inter-group case pays an intra-group hop on each side only when the
//! endpoint's router does not own the required global channel.

use crate::{PathProfile, Topology};

/// A canonical dragonfly.
#[derive(Debug, Clone, Copy)]
pub struct Dragonfly {
    g: u32,
    a: u32,
    p: u32,
    /// Global channels per router: `⌈(g−1)/a⌉`.
    h: u32,
}

impl Dragonfly {
    /// Build a dragonfly with `g` groups, `a` routers per group and `p`
    /// hosts per router.
    pub fn new(g: u32, a: u32, p: u32) -> Self {
        assert!(g >= 1 && a >= 1 && p >= 1);
        let h = if g > 1 { (g - 1).div_ceil(a) } else { 0 };
        Self { g, a, p, h }
    }

    /// The paper's case-study configuration: `g = 8, a = 4, p = 8`
    /// (256 nodes).
    pub fn paper() -> Self {
        Self::new(8, 4, 8)
    }

    /// Groups.
    pub fn groups(&self) -> u32 {
        self.g
    }

    /// Routers per group.
    pub fn routers_per_group(&self) -> u32 {
        self.a
    }

    /// Hosts per router.
    pub fn hosts_per_router(&self) -> u32 {
        self.p
    }

    /// Router index (within its group) of a node.
    pub fn router_of(&self, node: u32) -> u32 {
        (node / self.p) % self.a
    }

    /// Group index of a node.
    pub fn group_of(&self, node: u32) -> u32 {
        node / (self.a * self.p)
    }

    /// Which router of `group` owns the global channel toward
    /// `target_group`.
    pub fn gateway_router(&self, group: u32, target_group: u32) -> u32 {
        debug_assert_ne!(group, target_group);
        // Channel index: target groups in increasing order, skipping self.
        let c = if target_group < group {
            target_group
        } else {
            target_group - 1
        };
        (c / self.h).min(self.a - 1)
    }
}

impl Topology for Dragonfly {
    fn num_nodes(&self) -> u32 {
        self.g * self.a * self.p
    }

    fn profile(&self, nodes_a: u32, nodes_b: u32) -> PathProfile {
        assert!(nodes_a < self.num_nodes() && nodes_b < self.num_nodes());
        if nodes_a == nodes_b {
            return PathProfile::default();
        }
        let (ga, gb) = (self.group_of(nodes_a), self.group_of(nodes_b));
        let (ra, rb) = (self.router_of(nodes_a), self.router_of(nodes_b));
        if ga == gb {
            if ra == rb {
                PathProfile {
                    wires: [2, 0, 0],
                    switches: 1,
                }
            } else {
                PathProfile {
                    wires: [2, 1, 0],
                    switches: 2,
                }
            }
        } else {
            // Source side: hop to the gateway router unless we are on it.
            let gw_a = self.gateway_router(ga, gb);
            let gw_b = self.gateway_router(gb, ga);
            let intra_a = u32::from(ra != gw_a);
            let intra_b = u32::from(rb != gw_b);
            PathProfile {
                wires: [2, intra_a + intra_b, 1],
                switches: 2 + intra_a + intra_b,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_size() {
        let df = Dragonfly::paper();
        assert_eq!(df.num_nodes(), 256);
        assert_eq!(df.h, 2); // (8-1)/4 rounded up
    }

    #[test]
    fn same_router_and_group_profiles() {
        let df = Dragonfly::paper();
        // Nodes 0..7 share a router ("under a single switch", §IV-2).
        assert_eq!(df.profile(0, 7).switches, 1);
        assert_eq!(df.profile(0, 7).wires, [2, 0, 0]);
        // Nodes 0 and 8: same group, different routers.
        assert_eq!(df.profile(0, 8).switches, 2);
        assert_eq!(df.profile(0, 8).wires, [2, 1, 0]);
    }

    #[test]
    fn inter_group_profile_bounds() {
        let df = Dragonfly::paper();
        let n = df.num_nodes();
        for a in (0..n).step_by(17) {
            for b in (0..n).step_by(13) {
                if df.group_of(a) != df.group_of(b) {
                    let p = df.profile(a, b);
                    assert_eq!(p.wires[0], 2);
                    assert_eq!(p.wires[2], 1);
                    assert!(p.switches >= 2 && p.switches <= 4);
                    assert!(p.wires[1] <= 2);
                }
            }
        }
    }

    #[test]
    fn profile_is_symmetric() {
        let df = Dragonfly::paper();
        for (a, b) in [(0u32, 40), (3, 250), (64, 128), (10, 11)] {
            assert_eq!(df.profile(a, b), df.profile(b, a));
        }
    }

    #[test]
    fn gateway_router_covers_all_groups() {
        let df = Dragonfly::paper();
        for g in 0..df.groups() {
            for tg in 0..df.groups() {
                if g != tg {
                    let r = df.gateway_router(g, tg);
                    assert!(r < df.routers_per_group());
                }
            }
        }
    }

    #[test]
    fn dragonfly_average_hops_below_fat_tree() {
        // The paper attributes Dragonfly's slightly higher tolerance to a
        // lower average switch count (§IV-2). Check on the first 256 nodes.
        use crate::fattree::FatTree;
        let df = Dragonfly::paper();
        let ft = FatTree::new(16);
        let mut sum_df = 0u64;
        let mut sum_ft = 0u64;
        let mut cnt = 0u64;
        for a in 0..256u32 {
            for b in (a + 1)..256u32 {
                sum_df += df.profile(a, b).switches as u64;
                sum_ft += ft.profile(a, b).switches as u64;
                cnt += 1;
            }
        }
        assert!(
            (sum_df as f64) / (cnt as f64) < (sum_ft as f64) / (cnt as f64),
            "dragonfly {} vs fat tree {}",
            sum_df,
            sum_ft
        );
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this tiny crate
//! provides the exact API subset the workspace uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`] and
//! [`seq::SliceRandom::shuffle`] — on top of a xoshiro256++ generator.
//! Streams are deterministic per seed (which is all the callers rely on)
//! but are *not* bit-compatible with the real `rand` crate.

/// Core sampling interface (the subset of `rand::Rng` the workspace uses).
pub trait Rng {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open or inclusive range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Seeding interface (the subset of `rand::SeedableRng` the workspace uses).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::random_range`] accepts.
pub trait SampleRange {
    /// Element type produced by the range.
    type Output;
    /// Draw one uniform sample.
    fn sample<G: Rng>(self, rng: &mut G) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<G: Rng>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = self.start + unit * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            x
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

/// Map a uniform `u64` onto `[0, bound)` via 128-bit multiply-shift
/// (Lemire's method without the rejection step; bias is ≪ 2⁻⁶⁴·bound).
#[inline]
fn reduce(x: u64, bound: u64) -> u64 {
    ((x as u128 * bound as u128) >> 64) as u64
}

/// Generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through
    /// SplitMix64 (Blackman & Vigna).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// The subset of `rand::seq::SliceRandom` the workspace uses.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::reduce(rng.next_u64(), (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.random_range(f64::MIN_POSITIVE..1.0);
            assert!(x > 0.0 && x < 1.0);
            let y = r.random_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.random_range(0u32..8) as usize] = true;
            let v = r.random_range(5u64..=9);
            assert!((5..=9).contains(&v));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and builder surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! `criterion_group!` / `criterion_main!` — with real wall-clock
//! measurement: a warm-up phase sizes the per-sample iteration count, then
//! `sample_size` samples are timed and min / mean / max per-iteration times
//! are reported. No statistical regression analysis or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Elements- or bytes-per-iteration annotation for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("stage", param)`.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// `BenchmarkId::from_parameter(param)`.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Iterations per sample (sized during warm-up).
    iters_per_sample: u64,
    /// Collected per-sample durations.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time the closure. Runs `iters_per_sample` calls and records one
    /// sample; the driver calls this repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples.push(start.elapsed());
    }
}

/// Top-level benchmark driver and configuration.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self, name, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(self.criterion, &name, self.throughput, f);
        self
    }

    /// Run a benchmark parameterised by an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(self.criterion, &name, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {
        println!();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, name: &str, tp: Option<Throughput>, mut f: F) {
    // Warm-up: run single-iteration samples until the warm-up budget is
    // spent, deriving the per-sample iteration count for measurement.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut probe = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
    };
    while warm_start.elapsed() < c.warm_up_time {
        f(&mut probe);
        warm_iters += 1;
        if probe.samples.is_empty() {
            // The closure never called `iter`; nothing to measure.
            println!("{name:<50} (no timing loop)");
            return;
        }
    }
    let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
    let budget = c.measurement_time.as_nanos() as f64 / c.sample_size as f64;
    let iters = ((budget / per_iter.max(1.0)).round() as u64).clamp(1, 1 << 24);

    let mut b = Bencher {
        iters_per_sample: iters,
        samples: Vec::with_capacity(c.sample_size),
    };
    for _ in 0..c.sample_size {
        f(&mut b);
    }
    let per: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / iters as f64)
        .collect();
    let mean = per.iter().sum::<f64>() / per.len() as f64;
    let min = per.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let tp_str = match tp {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / mean)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 * 1e9 / mean)
        }
        None => String::new(),
    };
    println!(
        "{name:<50} time: [{} {} {}]{tp_str}",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Define a benchmark group function, optionally with a custom
/// configuration (`name = ...; config = ...; targets = ...`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the given groups. Ignores harness CLI arguments
/// (`--bench`, filters) that Cargo passes through.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// `sample` draws one value; combinators mirror proptest's names. No
/// shrinking machinery — the workspace's tests only rely on generation.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values the closure maps to `Some`, resampling otherwise.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// Strategy behind a uniform type (the `prop_oneof!` building block).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Weighted choice among boxed strategies (what `prop_oneof!` produces).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// `prop_filter_map` adapter.
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..1_000 {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map({:?}) rejected 1000 draws in a row",
            self.whence
        )
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.below((self.end - self.start) as u64) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        if x >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            x
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // A spread of magnitudes and signs (no NaN/inf: the workspace's
        // numeric code treats them as precondition violations).
        let exp = rng.below(41) as i32 - 20;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * rng.unit_f64() * 10f64.powi(exp)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for any value of `T` (see [`Arbitrary`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Weighted / unweighted choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

//! Test loop, RNG and assertion plumbing behind the `proptest!` macro.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// `ProptestConfig::with_cases(n)`.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property (what `prop_assert!` returns through `?`-less early
/// return).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build from a rendered message.
    pub fn fail(msg: String) -> Self {
        Self(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator: xoshiro256++ seeded from the test's full path,
/// so each property test has a stable, independent stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from a test name (FNV-1a of the path, SplitMix64-expanded).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)` via 128-bit multiply-shift.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The property-test harness macro. Mirrors proptest's surface syntax:
/// an optional `#![proptest_config(...)]` line, then `#[test]` functions
/// whose arguments are drawn from strategies via `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each test function inside `proptest!`.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!`: early-return a [`TestCaseError`] when the condition
/// fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
}

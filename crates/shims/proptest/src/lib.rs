//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros the workspace's property
//! tests use — ranges, tuples, [`strategy::Just`], `prop_map` / `prop_flat_map` /
//! `prop_filter_map`, [`collection::vec`], `prop_oneof!`, `proptest!`,
//! `prop_assert!` / `prop_assert_eq!` — with genuine randomised generation
//! from a per-test deterministic seed. Unlike real proptest there is no
//! shrinking: a failing case reports its index and the seed is fixed per
//! test name, so failures reproduce exactly on re-run.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything usable as a size specification for [`vec()`].
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Mirror of proptest's `prop` module path (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface the tests use.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

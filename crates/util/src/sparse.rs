//! Sparse vector workspace for hypersparse linear algebra.
//!
//! [`IndexedVec`] is the HiGHS/CPLEX-style "indexed vector": a dense value
//! array paired with an explicit list of (possibly) nonzero indices. It
//! makes the three operations the simplex hot loop lives on cheap:
//!
//! * *scatter/accumulate* — `add` marks an index on first touch, so after
//!   a sequence of updates the nonzero support is known without a scan;
//! * *sparse iteration* — consumers walk `indices()` instead of the full
//!   dimension, making ratio tests and eta updates `O(nnz)`;
//! * *O(nnz) reset* — `clear` zeroes only the touched entries, so one
//!   workspace serves millions of FTRAN/BTRAN calls without reallocating.
//!
//! Indices are `u32` (the workspace-wide row-index width) and the value
//! array never shrinks: callers own one `IndexedVec` per role (FTRAN
//! result, BTRAN result, pivot row) for the lifetime of a solve.
//!
//! An index may be listed while its value is exactly `0.0` (numerical
//! cancellation): the support is an *upper bound* on the true nonzeros.
//! Readers that care filter on the value, which they load anyway.

/// A dense `f64` array plus the list of indices that may hold nonzeros.
#[derive(Debug, Clone, Default)]
pub struct IndexedVec {
    vals: Vec<f64>,
    idx: Vec<u32>,
    listed: Vec<bool>,
}

impl IndexedVec {
    /// An all-zero vector of dimension `n`.
    pub fn new(n: usize) -> Self {
        Self {
            vals: vec![0.0; n],
            idx: Vec::new(),
            listed: vec![false; n],
        }
    }

    /// Dimension of the dense value array.
    #[inline]
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether the dense dimension is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Number of listed (touched) indices — an upper bound on the nonzero
    /// count.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Grow (or keep) the dimension and reset to all-zero.
    pub fn reset(&mut self, n: usize) {
        self.clear();
        if self.vals.len() < n {
            self.vals.resize(n, 0.0);
            self.listed.resize(n, false);
        }
    }

    /// Zero all touched entries and forget the support. `O(nnz)`.
    pub fn clear(&mut self) {
        for &i in &self.idx {
            self.vals[i as usize] = 0.0;
            self.listed[i as usize] = false;
        }
        self.idx.clear();
    }

    /// Value at `i` (zero when untouched).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.vals[i]
    }

    /// Accumulate `v` into entry `i`, listing the index on first touch.
    #[inline]
    pub fn add(&mut self, i: usize, v: f64) {
        if !self.listed[i] {
            self.listed[i] = true;
            self.idx.push(i as u32);
        }
        self.vals[i] += v;
    }

    /// Overwrite entry `i`, listing the index on first touch.
    #[inline]
    pub fn set(&mut self, i: usize, v: f64) {
        if !self.listed[i] {
            self.listed[i] = true;
            self.idx.push(i as u32);
        }
        self.vals[i] = v;
    }

    /// The touched indices, in touch order.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.idx
    }

    /// The dense value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Sort the support ascending — consumers whose tie-breaking depends
    /// on scan order (the ratio test) call this once per fill.
    pub fn sort_indices(&mut self) {
        self.idx.sort_unstable();
    }

    /// Iterate `(index, value)` over the listed support.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.idx
            .iter()
            .map(|&i| (i as usize, self.vals[i as usize]))
    }

    /// Rebuild from a dense slice, listing every entry with `|v| > 0`.
    pub fn assign_dense(&mut self, dense: &[f64]) {
        self.reset(dense.len());
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                self.set(i, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_lists_each_index_once() {
        let mut v = IndexedVec::new(8);
        v.add(3, 1.0);
        v.add(3, 2.0);
        v.add(5, -1.0);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(3), 3.0);
        assert_eq!(v.get(5), -1.0);
        assert_eq!(v.get(0), 0.0);
    }

    #[test]
    fn clear_is_complete() {
        let mut v = IndexedVec::new(4);
        v.set(0, 2.0);
        v.set(3, 4.0);
        v.clear();
        assert_eq!(v.nnz(), 0);
        for i in 0..4 {
            assert_eq!(v.get(i), 0.0);
        }
        // Re-touch after clear lists again.
        v.add(3, 1.0);
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.get(3), 1.0);
    }

    #[test]
    fn cancellation_keeps_index_listed() {
        let mut v = IndexedVec::new(4);
        v.add(1, 1.0);
        v.add(1, -1.0);
        assert_eq!(v.get(1), 0.0);
        assert_eq!(v.nnz(), 1, "support is an upper bound");
    }

    #[test]
    fn sort_and_iterate() {
        let mut v = IndexedVec::new(10);
        v.set(7, 7.0);
        v.set(2, 2.0);
        v.set(9, 9.0);
        v.sort_indices();
        let pairs: Vec<(usize, f64)> = v.iter().collect();
        assert_eq!(pairs, vec![(2, 2.0), (7, 7.0), (9, 9.0)]);
    }

    #[test]
    fn assign_dense_skips_zeros() {
        let mut v = IndexedVec::new(2);
        v.assign_dense(&[0.0, 1.5, 0.0, -2.0]);
        assert_eq!(v.len(), 4);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(1), 1.5);
        assert_eq!(v.get(3), -2.0);
    }

    #[test]
    fn reset_grows_and_clears() {
        let mut v = IndexedVec::new(2);
        v.set(1, 1.0);
        v.reset(6);
        assert_eq!(v.len(), 6);
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.get(1), 0.0);
    }
}

//! Process-wide allocator tuning for graph-scale workloads.
//!
//! Million-vertex traces put glibc malloc in its worst regime: the
//! reduction arenas allocate and free hundreds of megabytes of short
//! vectors, and with default thresholds glibc serves the large blocks
//! with `mmap` and returns freed memory to the kernel eagerly. Every
//! round trip is a page-table teardown plus a fresh set of first-touch
//! faults — on a 10⁶-vertex LULESH trace the kernel time exceeds the
//! user time (observed 12.7 s sys vs 4.5 s user for the same run that
//! completes with ~1 s sys once tuned).
//!
//! [`tune_for_large_traces`] raises the mmap and trim thresholds so the
//! heap holds on to its pages for the life of the process. Call it once
//! at the top of a *binary* (the CLI and benches do); it is deliberately
//! not called from library code, where the host application owns the
//! allocator policy. On non-glibc targets it is a no-op.

/// Keep freed heap pages for reuse instead of returning them to the
/// kernel (see module docs). Idempotent; no-op off glibc.
pub fn tune_for_large_traces() {
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    {
        // glibc's malloc.h constants; stable ABI since forever.
        const M_TRIM_THRESHOLD: i32 = -1;
        const M_MMAP_THRESHOLD: i32 = -3;
        extern "C" {
            fn mallopt(param: i32, value: i32) -> i32;
        }
        // SAFETY: mallopt only adjusts allocator parameters; both values
        // are in the documented domain.
        unsafe {
            mallopt(M_MMAP_THRESHOLD, 1 << 30);
            mallopt(M_TRIM_THRESHOLD, i32::MAX);
        }
    }
}

//! Summary statistics and error metrics.
//!
//! The paper quantifies prediction accuracy with RMSE and the *relative*
//! root-mean-square error (RRMSE, normalised by the mean of the measured
//! values), reporting RRMSE consistently below 2% in its validation
//! experiments (Fig. 9, Table II).

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator). Returns 0 for slices with
/// fewer than two entries.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Root-mean-square error between predictions and measurements.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn rmse(predicted: &[f64], measured: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        measured.len(),
        "rmse: length mismatch ({} vs {})",
        predicted.len(),
        measured.len()
    );
    if predicted.is_empty() {
        return 0.0;
    }
    let sum_sq: f64 = predicted
        .iter()
        .zip(measured)
        .map(|(p, m)| (p - m) * (p - m))
        .sum();
    (sum_sq / predicted.len() as f64).sqrt()
}

/// Relative RMSE: RMSE normalised by the mean measured value, as used in the
/// paper's validation plots ("RRMSE: 0.54%"). Expressed as a fraction
/// (multiply by 100 for percent). Returns 0 when the measured mean is 0.
pub fn rrmse(predicted: &[f64], measured: &[f64]) -> f64 {
    let m = mean(measured);
    if m == 0.0 {
        return 0.0;
    }
    rmse(predicted, measured) / m
}

/// Minimum and maximum of a slice; `None` when empty.
pub fn min_max(xs: &[f64]) -> Option<(f64, f64)> {
    let mut it = xs.iter().copied();
    let first = it.next()?;
    let mut lo = first;
    let mut hi = first;
    for x in it {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Some((lo, hi))
}

/// Online mean/std accumulator (Welford). Useful when a sweep produces one
/// value at a time and storing all samples would be wasteful.
#[derive(Debug, Clone, Copy, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Accumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (0 with fewer than two observations).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std of this classic dataset is sqrt(32/7).
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rmse_zero_for_exact_predictions() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&xs, &xs), 0.0);
        assert_eq!(rrmse(&xs, &xs), 0.0);
    }

    #[test]
    fn rrmse_matches_hand_computation() {
        let measured = [10.0, 10.0];
        let predicted = [11.0, 9.0];
        // RMSE = 1, mean = 10 => RRMSE = 0.1.
        assert!((rrmse(&predicted, &measured) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [1.0, 2.5, 3.5, 4.0, 8.0, 9.5];
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.push(x);
        }
        assert!((acc.mean() - mean(&xs)).abs() < 1e-12);
        assert!((acc.std_dev() - std_dev(&xs)).abs() < 1e-12);
        assert_eq!(acc.count(), xs.len() as u64);
    }

    #[test]
    fn min_max_basic() {
        assert_eq!(min_max(&[]), None);
        assert_eq!(min_max(&[3.0, -1.0, 2.0]), Some((-1.0, 3.0)));
    }
}

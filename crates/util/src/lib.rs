//! Shared utilities for the LLAMP workspace.
//!
//! Contains the small building blocks every other crate relies on:
//!
//! * [`fx`] — a fast, deterministic hasher (FxHash algorithm) plus the
//!   [`FxHashMap`]/[`FxHashSet`] aliases used throughout the workspace.
//!   Profiling-oriented Rust guidance recommends replacing SipHash for
//!   integer-keyed tables on hot paths; execution graphs are exactly that.
//! * [`sparse`] — the [`IndexedVec`] sparse-vector workspace (dense value
//!   array + explicit nonzero index list) behind the hypersparse
//!   FTRAN/BTRAN/pricing path of `llamp-lp`.
//! * [`stats`] — summary statistics (mean/std) and the error metrics the
//!   paper reports (RMSE, RRMSE).
//! * [`time`] — nanosecond-based time helpers and pretty-printing.
//! * [`alloc`] — allocator tuning for binaries that process
//!   million-vertex traces.

pub mod alloc;
pub mod fx;
pub mod sparse;
pub mod stats;
pub mod time;

pub use alloc::tune_for_large_traces;
pub use fx::{FxHashMap, FxHashSet};
pub use sparse::IndexedVec;

/// Workspace-wide absolute tolerance for floating-point comparisons of times
/// expressed in nanoseconds. One picosecond: far below any modelled effect.
pub const TIME_EPS: f64 = 1e-3;

/// Returns `true` when `a` and `b` are equal within `abs_tol` or a relative
/// tolerance of `rel_tol`, whichever is looser.
#[inline]
pub fn approx_eq(a: f64, b: f64, abs_tol: f64, rel_tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= abs_tol || diff <= rel_tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9, 0.0));
        assert!(!approx_eq(1.0, 1.1, 1e-9, 0.0));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 0.0, 1e-9));
        assert!(!approx_eq(1e12, 1.1e12, 0.0, 1e-9));
    }
}

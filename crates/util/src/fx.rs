//! FxHash: the fast, non-cryptographic hash used by rustc.
//!
//! Execution graphs key hash maps almost exclusively by small integers
//! (vertex ids, rank ids, `(rank, tag)` pairs). SipHash's HashDoS protection
//! buys nothing there and costs real time on graphs with millions of
//! vertices, so we ship the well-known Fx algorithm (multiply-xor with a
//! golden-ratio-derived constant) behind the standard `Hasher` trait.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Streaming FxHash state. Implements [`Hasher`] so it can back the standard
/// collections via [`BuildHasherDefault`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        for i in 0..1000 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |x: u64| {
            let mut s = FxHasher::default();
            s.write_u64(x);
            s.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_stream_matches_chunked_words() {
        // Same logical bytes hashed in one call must equal two calls.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }
}

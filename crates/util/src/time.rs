//! Time units.
//!
//! Every duration, latency and timestamp in the workspace is an `f64` count
//! of **nanoseconds**. The constants and formatter here keep the unit
//! conversions in one place so magic factors of 1 000 never leak into
//! application code.

/// One microsecond in nanoseconds.
pub const US: f64 = 1_000.0;
/// One millisecond in nanoseconds.
pub const MS: f64 = 1_000_000.0;
/// One second in nanoseconds.
pub const SEC: f64 = 1_000_000_000.0;

/// Convert microseconds to nanoseconds.
#[inline]
pub fn us(v: f64) -> f64 {
    v * US
}

/// Convert milliseconds to nanoseconds.
#[inline]
pub fn ms(v: f64) -> f64 {
    v * MS
}

/// Convert seconds to nanoseconds.
#[inline]
pub fn secs(v: f64) -> f64 {
    v * SEC
}

/// Render a nanosecond duration with a human-friendly unit
/// (`"3.00 µs"`, `"5.50 s"`, ...). Meant for harness/report output.
pub fn format_ns(ns: f64) -> String {
    let abs = ns.abs();
    if abs >= SEC {
        format!("{:.3} s", ns / SEC)
    } else if abs >= MS {
        format!("{:.3} ms", ns / MS)
    } else if abs >= US {
        format!("{:.3} µs", ns / US)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(us(3.0), 3_000.0);
        assert_eq!(ms(2.0), 2_000_000.0);
        assert_eq!(secs(1.5), 1_500_000_000.0);
    }

    #[test]
    fn formatting_picks_unit() {
        assert_eq!(format_ns(500.0), "500.0 ns");
        assert_eq!(format_ns(3_000.0), "3.000 µs");
        assert_eq!(format_ns(2_500_000.0), "2.500 ms");
        assert_eq!(format_ns(1_500_000_000.0), "1.500 s");
    }
}

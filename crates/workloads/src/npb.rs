//! NAS Parallel Benchmarks communication skeletons (Bailey).
//!
//! Table I of the paper benchmarks LLAMP's solver against LogGOPSim on the
//! class-C MPI NPB kernels at 256 ranks. The skeletons reproduce each
//! kernel's characteristic communication structure; compute blocks are
//! sized so graph shapes (chains vs. fan-outs) dominate the analysis the
//! way they do in the originals:
//!
//! * **BT / SP** — ADI solvers on a square process grid: three dependent
//!   sweep phases per iteration, each a pipelined nearest-neighbour chain.
//! * **CG** — conjugate gradient on a row/column decomposition: transpose
//!   exchanges plus two dot-product allreduces per iteration.
//! * **EP** — embarrassingly parallel: one large compute block and a final
//!   reduction (the tiny-graph outlier of Table I).
//! * **FT** — 3D FFT: compute + global transpose (`MPI_Alltoall`) per
//!   iteration.
//! * **LU** — SSOR with 2D wavefront pipelining: many tiny dependent
//!   messages (the largest event count in Table I).
//! * **MG** — multigrid V-cycles: halo exchanges at every level plus a
//!   norm reduction.

use crate::decomp::{dims2, imbalance, Grid3};
use llamp_trace::{ProgramBuilder, ProgramSet};

/// Which NPB kernel to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Block-tridiagonal ADI solver.
    Bt,
    /// Conjugate gradient.
    Cg,
    /// Embarrassingly parallel.
    Ep,
    /// 3D FFT.
    Ft,
    /// Lower-upper SSOR.
    Lu,
    /// Multigrid.
    Mg,
    /// Scalar-pentadiagonal ADI solver.
    Sp,
}

impl Kernel {
    /// All kernels in Table I order.
    pub const ALL: [Kernel; 7] = [
        Kernel::Bt,
        Kernel::Cg,
        Kernel::Ep,
        Kernel::Ft,
        Kernel::Lu,
        Kernel::Mg,
        Kernel::Sp,
    ];

    /// Benchmark name as the paper prints it.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Bt => "NPB BT",
            Kernel::Cg => "NPB CG",
            Kernel::Ep => "NPB EP",
            Kernel::Ft => "NPB FT",
            Kernel::Lu => "NPB LU",
            Kernel::Mg => "NPB MG",
            Kernel::Sp => "NPB SP",
        }
    }
}

/// NPB skeleton configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Kernel selection.
    pub kernel: Kernel,
    /// Rank count.
    pub ranks: u32,
    /// Outer iterations.
    pub iters: usize,
    /// Base message payload (class knob).
    pub bytes: u64,
    /// Base compute block (ns).
    pub comp_ns: f64,
}

impl Config {
    /// A class-C-shaped configuration (relative sizes follow the kernels'
    /// class-C communication ratios; absolute values scaled down).
    pub fn class_c(kernel: Kernel, ranks: u32, iters: usize) -> Self {
        let (bytes, comp_ns) = match kernel {
            Kernel::Bt => (40 * 1024, 12.0e6),
            Kernel::Cg => (16 * 1024, 4.0e6),
            Kernel::Ep => (8, 400.0e6),
            Kernel::Ft => (64 * 1024, 60.0e6),
            Kernel::Lu => (2 * 1024, 1.0e6),
            Kernel::Mg => (8 * 1024, 6.0e6),
            Kernel::Sp => (32 * 1024, 8.0e6),
        };
        Self {
            kernel,
            ranks,
            iters,
            bytes,
            comp_ns,
        }
    }
}

/// Generate the per-rank programs.
pub fn programs(cfg: &Config) -> ProgramSet {
    match cfg.kernel {
        Kernel::Bt | Kernel::Sp => adi_sweeps(cfg),
        Kernel::Cg => cg(cfg),
        Kernel::Ep => ep(cfg),
        Kernel::Ft => ft(cfg),
        Kernel::Lu => lu(cfg),
        Kernel::Mg => mg(cfg),
    }
}

/// BT/SP: square grid, three pipelined sweep phases per iteration. In each
/// phase a rank receives from its predecessor along the sweep direction,
/// computes, and forwards — a dependency chain across the grid diagonal.
fn adi_sweeps(cfg: &Config) -> ProgramSet {
    let [nx, ny] = dims2(cfg.ranks);
    ProgramSet::spmd(cfg.ranks, |rank, b: &mut ProgramBuilder| {
        let (x, y) = (rank % nx, rank / nx);
        for iter in 0..cfg.iters {
            // Phase along x, then y, then "z" (modelled as a second x
            // sweep in reverse).
            for (phase, (coord, n)) in [(x, nx), (y, ny), (nx - 1 - x, nx)].into_iter().enumerate()
            {
                let tag = (iter * 3 + phase) as u32;
                let (prev, next): (Option<u32>, Option<u32>) = match phase {
                    0 => (
                        (coord > 0).then(|| rank - 1),
                        (coord + 1 < n).then(|| rank + 1),
                    ),
                    1 => (
                        (coord > 0).then(|| rank - nx),
                        (coord + 1 < n).then(|| rank + nx),
                    ),
                    _ => (
                        (coord > 0).then(|| rank + 1),
                        (coord + 1 < n).then(|| rank - 1),
                    ),
                };
                if let Some(p) = prev {
                    b.recv(p, cfg.bytes, tag);
                }
                b.comp(cfg.comp_ns / 3.0 * imbalance(rank, iter, 0.02));
                if let Some(nx_) = next {
                    b.send(nx_, cfg.bytes, tag);
                }
            }
        }
    })
}

/// CG: transpose-partner exchange plus two reductions per iteration.
fn cg(cfg: &Config) -> ProgramSet {
    ProgramSet::spmd(cfg.ranks, |rank, b: &mut ProgramBuilder| {
        // Partner across the square grid transpose; falls back to an XOR
        // partner on non-square counts.
        let [nx, ny] = dims2(cfg.ranks);
        let partner = if nx == ny {
            let (x, y) = (rank % nx, rank / nx);
            y + x * nx
        } else {
            rank ^ 1
        };
        for iter in 0..cfg.iters {
            b.comp(cfg.comp_ns * imbalance(rank, iter, 0.03));
            if partner != rank && partner < cfg.ranks {
                b.sendrecv(
                    partner,
                    cfg.bytes,
                    iter as u32,
                    partner,
                    cfg.bytes,
                    iter as u32,
                );
            }
            b.allreduce(8);
            b.comp(0.2 * cfg.comp_ns);
            b.allreduce(8);
        }
    })
}

/// EP: one big compute block, one final reduction.
fn ep(cfg: &Config) -> ProgramSet {
    ProgramSet::spmd(cfg.ranks, |rank, b: &mut ProgramBuilder| {
        b.comp(cfg.comp_ns * cfg.iters as f64 * imbalance(rank, 0, 0.01));
        b.allreduce(cfg.bytes.max(8));
    })
}

/// FT: compute + global transpose per iteration.
fn ft(cfg: &Config) -> ProgramSet {
    ProgramSet::spmd(cfg.ranks, |rank, b: &mut ProgramBuilder| {
        for iter in 0..cfg.iters {
            b.comp(cfg.comp_ns * imbalance(rank, iter, 0.02));
            b.alltoall(cfg.bytes / cfg.ranks as u64);
        }
    })
}

/// LU: 2D wavefront: each rank waits for north+west, computes a small
/// block, forwards south+east; two sweeps (lower and upper) per iteration.
fn lu(cfg: &Config) -> ProgramSet {
    let [nx, ny] = dims2(cfg.ranks);
    ProgramSet::spmd(cfg.ranks, |rank, b: &mut ProgramBuilder| {
        let (x, y) = (rank % nx, rank / nx);
        for iter in 0..cfg.iters {
            let tag = iter as u32;
            // Lower sweep: top-left to bottom-right.
            if x > 0 {
                b.recv(rank - 1, cfg.bytes, tag);
            }
            if y > 0 {
                b.recv(rank - nx, cfg.bytes, tag);
            }
            b.comp(cfg.comp_ns / 2.0 * imbalance(rank, iter, 0.02));
            if x + 1 < nx {
                b.send(rank + 1, cfg.bytes, tag);
            }
            if y + 1 < ny {
                b.send(rank + nx, cfg.bytes, tag);
            }
            // Upper sweep: bottom-right to top-left.
            let tag = tag + 0x1000;
            if x + 1 < nx {
                b.recv(rank + 1, cfg.bytes, tag);
            }
            if y + 1 < ny {
                b.recv(rank + nx, cfg.bytes, tag);
            }
            b.comp(cfg.comp_ns / 2.0 * imbalance(rank, iter, 0.02));
            if x > 0 {
                b.send(rank - 1, cfg.bytes, tag);
            }
            if y > 0 {
                b.send(rank - nx, cfg.bytes, tag);
            }
        }
    })
}

/// MG: V-cycle of halo exchanges with shrinking payloads + a norm check.
fn mg(cfg: &Config) -> ProgramSet {
    let grid = Grid3::new(cfg.ranks);
    ProgramSet::spmd(cfg.ranks, |rank, b: &mut ProgramBuilder| {
        for iter in 0..cfg.iters {
            let mut bytes = cfg.bytes;
            for level in 0..4u32 {
                let mut reqs = Vec::new();
                for (axis, tag) in [0usize, 1, 2].iter().zip(0u32..) {
                    let mut d = [0i64; 3];
                    d[*axis] = 1;
                    let plus = grid.neighbor(rank, d);
                    d[*axis] = -1;
                    let minus = grid.neighbor(rank, d);
                    if plus == rank {
                        continue;
                    }
                    let t = level * 8 + tag;
                    reqs.push(b.irecv(minus, bytes, t));
                    reqs.push(b.isend(plus, bytes, t));
                }
                b.waitall(reqs);
                b.comp(cfg.comp_ns / 4.0 * imbalance(rank, iter, 0.02));
                bytes = (bytes / 4).max(64);
            }
            b.allreduce(8);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_schedgen::{graph_of_programs, GraphConfig};

    #[test]
    fn all_kernels_build_at_16_ranks() {
        for k in Kernel::ALL {
            let cfg = Config::class_c(k, 16, 2);
            let g = graph_of_programs(&programs(&cfg), &GraphConfig::paper())
                .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            assert!(g.num_messages() > 0, "{}", k.name());
        }
    }

    #[test]
    fn ep_has_smallest_graph() {
        let mut sizes = Vec::new();
        for k in Kernel::ALL {
            let cfg = Config::class_c(k, 16, 4);
            let g = graph_of_programs(&programs(&cfg), &GraphConfig::eager()).unwrap();
            sizes.push((k, g.num_vertices()));
        }
        let ep = sizes.iter().find(|(k, _)| *k == Kernel::Ep).unwrap().1;
        for (k, s) in &sizes {
            if *k != Kernel::Ep {
                assert!(ep < *s, "{}: EP {} vs {}", k.name(), ep, s);
            }
        }
    }

    #[test]
    fn lu_has_most_messages_per_unit_compute() {
        // LU's event count dominates Table I: many tiny messages.
        let lu = Config::class_c(Kernel::Lu, 16, 4);
        let ep = Config::class_c(Kernel::Ep, 16, 4);
        let glu = graph_of_programs(&programs(&lu), &GraphConfig::eager()).unwrap();
        let gep = graph_of_programs(&programs(&ep), &GraphConfig::eager()).unwrap();
        // LU sends per iteration (two wavefront sweeps) dwarf EP's single
        // final reduction.
        assert!(glu.num_messages() > 2 * gep.num_messages());
        assert!(glu.num_vertices() > gep.num_vertices());
    }

    #[test]
    fn wavefront_is_latency_sensitive() {
        // LU's dependent chains make λ_L grow with the grid diagonal.
        use llamp_core::Analyzer;
        use llamp_model::LogGPSParams;
        let cfg = Config::class_c(Kernel::Lu, 16, 2);
        let g = graph_of_programs(&programs(&cfg), &GraphConfig::eager()).unwrap();
        let params = LogGPSParams::cscs_testbed(16).with_o(5_000.0);
        let a = Analyzer::new(&g, &params);
        let e = a.evaluate(params.l);
        // Diagonal of a 4x4 grid crossed twice per iteration, 2 iters:
        // well above a single allreduce chain.
        assert!(e.lambda >= 8.0, "λ = {}", e.lambda);
    }
}

//! ICON proxy (Zängl et al.): the icosahedral nonhydrostatic dynamical
//! core.
//!
//! ICON partitions an icosahedral grid (R02B04, 160 km in the paper's
//! runs) across ranks; per dynamics timestep each rank exchanges halo
//! cells with a small, irregular set of neighbours and the dycore relies
//! on `MPI_Allreduce` "for data exchange in its dynamical core" (§IV-1) —
//! the reduction the case study re-routes through ring vs. recursive
//! doubling. Compute per step is heavy (this is the *most*
//! latency-tolerant application of Fig. 1: >650 µs at 8 nodes), and the
//! model is run under strong scaling, so tolerance falls with rank count
//! (Fig. 9 bottom row: 663 → 223 µs from 8 to 64 nodes).
//!
//! The neighbour structure is generated deterministically: rank `r` talks
//! to `r ± 1` and `r ± pentagon-stride` on the ring of subdomains, giving
//! 4-6 neighbours as on the real icosahedral decomposition.

use crate::decomp::imbalance;
use llamp_trace::{ProgramBuilder, ProgramSet};

/// ICON proxy configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Rank count.
    pub ranks: u32,
    /// Dynamics timesteps.
    pub iters: usize,
    /// Halo bytes per neighbour per step.
    pub halo_bytes: u64,
    /// Per-rank compute per step at 8 ranks (ns).
    pub comp_at_8_ns: f64,
    /// Strong-scaling exponent: compute ∝ `(8/P)^exp`.
    pub scaling_exp: f64,
    /// Dynamics substeps between allreduces.
    pub substeps: u32,
}

impl Config {
    /// The case-study shape (R02B04, 6-hour forecast scaled down).
    pub fn paper(ranks: u32, iters: usize) -> Self {
        Self {
            ranks,
            iters,
            halo_bytes: 48 * 1024,
            comp_at_8_ns: 265.0e6,
            scaling_exp: 0.4,
            substeps: 2,
        }
    }

    /// Per-rank compute per step after strong scaling.
    pub fn comp_per_step(&self) -> f64 {
        self.comp_at_8_ns * (8.0 / self.ranks as f64).powf(self.scaling_exp)
    }
}

/// Neighbour set of a rank on the icosahedral subdomain ring.
fn neighbors(rank: u32, p: u32) -> Vec<u32> {
    if p < 2 {
        return vec![];
    }
    let stride = ((p as f64).sqrt() as u32).max(2);
    let mut out = vec![
        (rank + 1) % p,
        (rank + p - 1) % p,
        (rank + stride) % p,
        (rank + p - stride) % p,
    ];
    out.sort_unstable();
    out.dedup();
    out.retain(|&n| n != rank);
    out
}

/// Generate the per-rank programs.
pub fn programs(cfg: &Config) -> ProgramSet {
    let comp = cfg.comp_per_step();
    let ops = cfg.iters * (cfg.substeps as usize * 14 + 1);
    ProgramSet::spmd_with_capacity(cfg.ranks, ops, |rank, b: &mut ProgramBuilder| {
        let nbrs = neighbors(rank, cfg.ranks);
        for iter in 0..cfg.iters {
            for sub in 0..cfg.substeps {
                // Halo exchange with the irregular neighbour set. One
                // message per pair per substep, so the substep id is a
                // sufficient (and symmetric) tag.
                let mut reqs = Vec::with_capacity(nbrs.len() * 2);
                for &n in &nbrs {
                    reqs.push(b.irecv(n, cfg.halo_bytes, sub));
                }
                for &n in &nbrs {
                    reqs.push(b.isend(n, cfg.halo_bytes, sub));
                }
                b.waitall(reqs);
                // Dycore solve for this substep.
                b.comp(comp / cfg.substeps as f64 * imbalance(rank, iter, 0.04));
            }
            // Global diagnostics / stability check.
            b.allreduce(8);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_schedgen::{graph_of_programs, GraphConfig};

    #[test]
    fn neighbor_sets_are_small_and_symmetric() {
        let p = 32;
        for r in 0..p {
            let ns = neighbors(r, p);
            assert!(ns.len() >= 2 && ns.len() <= 6, "rank {r}: {ns:?}");
            for &n in &ns {
                assert!(neighbors(n, p).contains(&r), "asymmetric: {r} -> {n}");
            }
        }
    }

    #[test]
    fn builds_at_case_study_scales() {
        for p in [8u32, 32, 64] {
            let cfg = Config::paper(p, 2);
            let g = graph_of_programs(&programs(&cfg), &GraphConfig::paper())
                .unwrap_or_else(|e| panic!("P={p}: {e}"));
            assert!(g.num_messages() > 0);
        }
    }

    #[test]
    fn compute_dominates_single_step() {
        // ICON is compute-heavy: one step's compute dwarfs one halo's
        // wire time at the paper's bandwidth.
        let cfg = Config::paper(8, 1);
        let wire_ns = cfg.halo_bytes as f64 * 0.018;
        assert!(cfg.comp_per_step() > 100.0 * wire_ns);
    }
}

//! LAMMPS EAM proxy (Thompson et al.).
//!
//! The embedded-atom-method metallic solid benchmark (`in.eam`,
//! `Cu_u3.eam`), weak-scaled at 256 000 atoms per rank as in the paper's
//! Appendix G. Per MD timestep:
//!
//! 1. **forward communication**: ghost-atom positions move to the 6 face
//!    neighbours of the 3D spatial decomposition (LAMMPS exchanges per
//!    dimension in sequence: x, then y, then z — each dimension's exchange
//!    depends on the previous one's data),
//! 2. pair-force computation (the EAM double loop; the big block),
//! 3. **reverse communication**: ghost forces return the same way,
//! 4. every `reneigh_every` steps: neighbour-list rebuild with an
//!    `MPI_Allreduce` consensus and a larger border exchange.

use crate::decomp::{imbalance, Grid3};
use llamp_trace::{ProgramBuilder, ProgramSet};

/// LAMMPS proxy configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Rank count.
    pub ranks: u32,
    /// MD timesteps.
    pub iters: usize,
    /// Atoms per rank (weak scaling).
    pub atoms_per_rank: u64,
    /// Steps between neighbour-list rebuilds.
    pub reneigh_every: usize,
    /// Compute per step per rank (ns).
    pub comp_per_step_ns: f64,
}

impl Config {
    /// The validation shape (256 000 atoms/rank; the paper pins rebuild
    /// cadence with `neigh_modify once yes`, we keep a mild cadence).
    pub fn paper(ranks: u32, iters: usize) -> Self {
        Self {
            ranks,
            iters,
            atoms_per_rank: 256_000,
            reneigh_every: 10,
            comp_per_step_ns: 90.0e6,
        }
    }

    /// Ghost-layer bytes per face: surface atoms × 3 doubles.
    pub fn face_bytes(&self) -> u64 {
        let side = (self.atoms_per_rank as f64).powf(1.0 / 3.0);
        ((side * side) as u64) * 3 * 8
    }
}

/// One dimension-by-dimension exchange (forward or reverse).
fn dim_exchange(b: &mut ProgramBuilder, grid: &Grid3, rank: u32, bytes: u64, tag_base: u32) {
    for (axis, _) in [0usize, 1, 2].iter().zip(0..) {
        let mut offset = [0i64; 3];
        offset[*axis] = 1;
        let plus = grid.neighbor(rank, offset);
        offset[*axis] = -1;
        let minus = grid.neighbor(rank, offset);
        if plus == rank {
            continue;
        }
        let tag = tag_base + *axis as u32;
        // Each dimension: swap with both neighbours, dependent on the
        // previous dimension (sendrecv pairs in program order).
        b.sendrecv(plus, bytes, tag, minus, bytes, tag);
        if minus != plus {
            b.sendrecv(minus, bytes, tag + 8, plus, bytes, tag + 8);
        }
    }
}

/// Generate the per-rank programs.
pub fn programs(cfg: &Config) -> ProgramSet {
    let grid = Grid3::new(cfg.ranks);
    let bytes = cfg.face_bytes();
    let ops = cfg.iters * 22;
    ProgramSet::spmd_with_capacity(cfg.ranks, ops, |rank, b: &mut ProgramBuilder| {
        for step in 0..cfg.iters {
            // Forward comm: positions out to ghosts.
            dim_exchange(b, &grid, rank, bytes, 0);
            // EAM force computation.
            b.comp(cfg.comp_per_step_ns * imbalance(rank, step, 0.05));
            // Reverse comm: ghost forces back.
            dim_exchange(b, &grid, rank, bytes, 16);
            if cfg.reneigh_every > 0 && (step + 1) % cfg.reneigh_every == 0 {
                // Rebuild consensus + border exchange (larger: includes
                // velocities and tags).
                b.allreduce(8);
                dim_exchange(b, &grid, rank, bytes * 2, 32);
                b.comp(0.2 * cfg.comp_per_step_ns);
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_schedgen::{graph_of_programs, GraphConfig};

    #[test]
    fn builds_at_paper_scales() {
        for p in [8u32, 27, 64] {
            let cfg = Config::paper(p, 3);
            let g = graph_of_programs(&programs(&cfg), &GraphConfig::paper())
                .unwrap_or_else(|e| panic!("P={p}: {e}"));
            assert!(g.num_messages() > 0);
        }
    }

    #[test]
    fn face_bytes_scale_with_atoms() {
        let a = Config {
            atoms_per_rank: 1_000,
            ..Config::paper(8, 1)
        };
        let b = Config::paper(8, 1);
        assert!(a.face_bytes() < b.face_bytes());
        // 256K atoms: 100x100 surface x 24 B = 96 KiB-ish, still eager.
        assert!(b.face_bytes() < 256 * 1024);
    }

    #[test]
    fn reneigh_adds_messages() {
        let with = Config {
            reneigh_every: 1,
            ..Config::paper(8, 4)
        };
        let without = Config {
            reneigh_every: 0,
            ..Config::paper(8, 4)
        };
        let gw = graph_of_programs(&programs(&with), &GraphConfig::eager()).unwrap();
        let go = graph_of_programs(&programs(&without), &GraphConfig::eager()).unwrap();
        assert!(gw.num_messages() > go.num_messages());
    }
}

//! LULESH 2.0 proxy (Karlin et al., LLNL-TR-641973).
//!
//! The Livermore shock-hydrodynamics proxy runs on a cubic process grid
//! (the paper uses 8/27/64 ranks, one per node, `-s 16 -i 1000`). Per
//! Lagrange leapfrog iteration the skeleton performs:
//!
//! 1. a 26-neighbour nonblocking halo exchange (6 faces, 12 edges, 8
//!    corners; `Irecv`s posted first, then `Isend`s, then `Waitall` — the
//!    overlap structure that gives LULESH its flat `λ_L` at small `L`),
//! 2. the element/nodal compute phase (weak scaling: constant per rank,
//!    with a mild deterministic imbalance),
//! 3. the `dt` reduction: `MPI_Allreduce` of one double.
//!
//! Compute is calibrated so the 1% latency tolerance at 8 ranks lands in
//! the paper's ~70 µs band (Fig. 9 top-left: 68.5 µs) and stays roughly
//! flat under weak scaling.

use crate::decomp::{imbalance, Grid3};
use llamp_trace::{ProgramBuilder, ProgramSet};

/// LULESH proxy configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Rank count (ideally a cube).
    pub ranks: u32,
    /// Lagrange iterations.
    pub iters: usize,
    /// Per-rank element-side length (`-s`).
    pub side: u32,
    /// Compute per iteration per rank (ns), weak-scaled (constant).
    pub comp_per_iter_ns: f64,
}

impl Config {
    /// The validation-experiment shape (`-s 16`), compute calibrated to the
    /// paper's tolerance band.
    pub fn paper(ranks: u32, iters: usize) -> Self {
        Self {
            ranks,
            iters,
            side: 16,
            comp_per_iter_ns: 28.0e6,
        }
    }
}

/// Bytes exchanged with a neighbour of the given stencil order
/// (1 = face, 2 = edge, 3 = corner) for `side`-sized domains: three nodal
/// fields of 8-byte doubles across the shared boundary.
fn halo_bytes(side: u32, order: u32) -> u64 {
    let s = side as u64;
    let fields = 3u64;
    match order {
        1 => s * s * 8 * fields,
        2 => s * 8 * fields,
        _ => 8 * fields,
    }
}

/// Generate the per-rank programs.
pub fn programs(cfg: &Config) -> ProgramSet {
    let grid = Grid3::new(cfg.ranks);
    let stencil = Grid3::stencil26();
    let ops = cfg.iters * (stencil.len() * 2 + 3);
    ProgramSet::spmd_with_capacity(cfg.ranks, ops, |rank, b: &mut ProgramBuilder| {
        for iter in 0..cfg.iters {
            // Post all receives, then all sends (LULESH's CommRecv /
            // CommSend split), then wait for everything.
            let mut reqs = Vec::with_capacity(stencil.len() * 2);
            for (tag, (offset, order)) in stencil.iter().enumerate() {
                let peer = grid.neighbor(rank, *offset);
                if peer == rank {
                    continue; // degenerate grid dimension
                }
                reqs.push(b.irecv(peer, halo_bytes(cfg.side, *order), tag as u32));
            }
            for (tag, (offset, order)) in stencil.iter().enumerate() {
                let peer = grid.neighbor(rank, [-offset[0], -offset[1], -offset[2]]);
                if peer == rank {
                    continue;
                }
                reqs.push(b.isend(peer, halo_bytes(cfg.side, *order), tag as u32));
            }
            b.waitall(reqs);
            // Element + nodal kernels.
            b.comp(cfg.comp_per_iter_ns * imbalance(rank, iter, 0.03));
            // CalcTimeConstraints: global dt.
            b.allreduce(8);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_schedgen::{graph_of_programs, GraphConfig};

    #[test]
    fn message_counts_match_structure() {
        let cfg = Config::paper(8, 3);
        let g = graph_of_programs(&programs(&cfg), &GraphConfig::eager()).unwrap();
        // 2x2x2 grid with periodic wrap: all 26 neighbours exist but many
        // alias; still every (rank, offset) pair emits one message, plus
        // the allreduce (recursive doubling: 8·lg8 = 24 per instance).
        let halo = 8 * 26 * 3;
        let allreduce = 24 * 3;
        assert_eq!(g.num_messages(), halo + allreduce);
    }

    #[test]
    fn face_messages_dominate_bytes() {
        assert!(halo_bytes(16, 1) > halo_bytes(16, 2));
        assert!(halo_bytes(16, 2) > halo_bytes(16, 3));
        // -s 16: face = 16*16*8*3 = 6144 B (eager on the paper's cluster).
        assert_eq!(halo_bytes(16, 1), 6144);
    }

    #[test]
    fn weak_scaling_keeps_compute_constant() {
        let a = Config::paper(8, 1);
        let b = Config::paper(64, 1);
        assert_eq!(a.comp_per_iter_ns, b.comp_per_iter_ns);
    }
}

//! Cartesian domain-decomposition helpers shared by the skeletons.

/// Factor `p` into a near-cubic 3D grid `[nx, ny, nz]` with
/// `nx ≥ ny ≥ nz` and `nx·ny·nz = p`.
pub fn dims3(p: u32) -> [u32; 3] {
    let mut best = [p, 1, 1];
    let mut best_score = u32::MAX;
    for nz in 1..=p {
        if !p.is_multiple_of(nz) {
            continue;
        }
        let rest = p / nz;
        for ny in 1..=rest {
            if !rest.is_multiple_of(ny) {
                continue;
            }
            let nx = rest / ny;
            if nx < ny || ny < nz {
                continue;
            }
            let score = nx - nz; // flatter is better
            if score < best_score {
                best_score = score;
                best = [nx, ny, nz];
            }
        }
    }
    best
}

/// Factor `p` into a near-square 2D grid `[nx, ny]`, `nx ≥ ny`.
pub fn dims2(p: u32) -> [u32; 2] {
    let mut ny = (p as f64).sqrt() as u32;
    while ny > 1 && !p.is_multiple_of(ny) {
        ny -= 1;
    }
    [p / ny.max(1), ny.max(1)]
}

/// Factor `p` into a near-hypercubic 4D grid (MILC-style lattice layout).
pub fn dims4(p: u32) -> [u32; 4] {
    let [a, b, c] = dims3(p);
    // Split the largest dimension once more if possible.
    let mut best = [a, b, c, 1];
    for d in 2..=a {
        if a % d == 0 && a / d >= d.min(b) / d.max(1) {
            let candidate = [a / d, b, c, d];
            let spread = |v: [u32; 4]| v.iter().max().unwrap() - v.iter().min().unwrap();
            if spread(candidate) < spread(best) {
                best = candidate;
            }
        }
    }
    best.sort_unstable_by(|x, y| y.cmp(x));
    best
}

/// A rank's coordinates in a periodic Cartesian grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid3 {
    /// Grid dimensions.
    pub dims: [u32; 3],
}

impl Grid3 {
    /// Build the balanced grid for `p` ranks.
    pub fn new(p: u32) -> Self {
        Self { dims: dims3(p) }
    }

    /// Coordinates of a rank.
    pub fn coords(&self, rank: u32) -> [u32; 3] {
        let [nx, ny, _] = self.dims;
        [rank % nx, (rank / nx) % ny, rank / (nx * ny)]
    }

    /// Rank at (periodic) coordinates.
    pub fn rank_at(&self, c: [i64; 3]) -> u32 {
        let [nx, ny, nz] = self.dims;
        let w = |v: i64, n: u32| (v.rem_euclid(n as i64)) as u32;
        let (x, y, z) = (w(c[0], nx), w(c[1], ny), w(c[2], nz));
        x + y * nx + z * nx * ny
    }

    /// Neighbour rank offset by `(dx, dy, dz)` with periodic wrap.
    pub fn neighbor(&self, rank: u32, d: [i64; 3]) -> u32 {
        let c = self.coords(rank);
        self.rank_at([c[0] as i64 + d[0], c[1] as i64 + d[1], c[2] as i64 + d[2]])
    }

    /// The 6 face, 12 edge and 8 corner neighbour offsets of a 3D stencil,
    /// classified by how many axes they move along (1 = face, 2 = edge,
    /// 3 = corner).
    pub fn stencil26() -> Vec<([i64; 3], u32)> {
        let mut out = Vec::with_capacity(26);
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    let order = (dx != 0) as u32 + (dy != 0) as u32 + (dz != 0) as u32;
                    if order > 0 {
                        out.push(([dx, dy, dz], order));
                    }
                }
            }
        }
        out
    }
}

/// Deterministic per-rank compute imbalance: a small smooth modulation so
/// inferred calc durations differ across ranks without randomness.
/// Returns a factor in `[1 − amp, 1 + amp]`.
pub fn imbalance(rank: u32, iter: usize, amp: f64) -> f64 {
    let phase = rank as f64 * 0.7 + iter as f64 * 0.13;
    1.0 + amp * phase.sin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims3_balanced_cubes() {
        assert_eq!(dims3(8), [2, 2, 2]);
        assert_eq!(dims3(27), [3, 3, 3]);
        assert_eq!(dims3(64), [4, 4, 4]);
        assert_eq!(dims3(12), [3, 2, 2]);
        assert_eq!(dims3(1), [1, 1, 1]);
    }

    #[test]
    fn dims3_products_hold() {
        for p in 1..=128 {
            let [a, b, c] = dims3(p);
            assert_eq!(a * b * c, p, "p={p}");
            assert!(a >= b && b >= c);
        }
    }

    #[test]
    fn dims2_products_hold() {
        for p in 1..=128 {
            let [a, b] = dims2(p);
            assert_eq!(a * b, p);
            assert!(a >= b);
        }
    }

    #[test]
    fn dims4_products_hold() {
        for p in [1u32, 2, 4, 8, 16, 32, 64, 128, 256] {
            let d = dims4(p);
            assert_eq!(d.iter().product::<u32>(), p, "p={p} -> {d:?}");
        }
    }

    #[test]
    fn grid_neighbors_wrap() {
        let g = Grid3::new(8); // 2x2x2
        assert_eq!(g.coords(0), [0, 0, 0]);
        assert_eq!(g.coords(7), [1, 1, 1]);
        // +x from rank 1 (x=1) wraps to x=0.
        assert_eq!(g.neighbor(1, [1, 0, 0]), 0);
        assert_eq!(g.neighbor(0, [-1, 0, 0]), 1);
    }

    #[test]
    fn stencil_has_26_offsets() {
        let s = Grid3::stencil26();
        assert_eq!(s.len(), 26);
        assert_eq!(s.iter().filter(|(_, o)| *o == 1).count(), 6);
        assert_eq!(s.iter().filter(|(_, o)| *o == 2).count(), 12);
        assert_eq!(s.iter().filter(|(_, o)| *o == 3).count(), 8);
    }

    #[test]
    fn imbalance_is_bounded() {
        for r in 0..100 {
            for i in 0..10 {
                let f = imbalance(r, i, 0.05);
                assert!((0.95..=1.05).contains(&f));
            }
        }
    }
}

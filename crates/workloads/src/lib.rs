//! # llamp-workloads — application communication skeletons
//!
//! LLAMP consumes *traces*, so what matters about an application is its
//! communication structure: message sizes, dependency chains, collective
//! choice, and how much computation can hide latency. This crate provides
//! deterministic skeleton generators for every application in the paper's
//! evaluation (§III, Table II, Appendix G), emitting per-rank
//! [`llamp_trace::ProgramSet`]s:
//!
//! | module | application | scaling | character |
//! |---|---|---|---|
//! | [`lulesh`] | LULESH 2.0 | weak | 3D 26-neighbour nonblocking halo + dt-allreduce |
//! | [`hpcg`] | HPCG | weak | 27-pt halo, two dot-product allreduces, MG V-cycle |
//! | [`milc`] | MILC su3_rmd | strong | 4D lattice, dependent CG halo chains + global sums |
//! | [`icon`] | ICON dycore | strong | icosahedral neighbour exchange, compute-heavy, allreduce |
//! | [`lammps`] | LAMMPS EAM | weak | forward/reverse 6-dir comm, neighbour rebuilds |
//! | [`npb`] | NAS BT/CG/EP/FT/LU/MG/SP | — | classic kernels (Table I) |
//! | [`openmx`] | OpenMX DIA64 | weak | bcast/reduce-heavy DFT steps |
//! | [`cloverleaf`] | CloverLeaf | weak | 2D 4-neighbour halo + field reductions |
//! | [`namd`] | NAMD/charm++ | — | over-decomposed, latency-adaptive scheduling (Fig. 12) |
//!
//! Compute intervals are calibrated so the *relative* latency-tolerance
//! ordering of the paper's Fig. 1/Fig. 9 holds (MILC ≪ LULESH < HPCG ≪
//! ICON); absolute times are scaled down so analyses run in seconds.
//! Generators are pure functions of their configuration (plus an explicit
//! seed where mild rank imbalance is modelled), so every figure is
//! reproducible bit-for-bit.

pub mod cloverleaf;
pub mod decomp;
pub mod hpcg;
pub mod icon;
pub mod lammps;
pub mod lulesh;
pub mod milc;
pub mod namd;
pub mod npb;
pub mod openmx;

use llamp_trace::ProgramSet;

/// A named workload standard configuration, as used by the benchmark
/// harnesses to sweep "all applications".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// LULESH 2.0 proxy.
    Lulesh,
    /// HPCG proxy.
    Hpcg,
    /// MILC su3_rmd proxy.
    Milc,
    /// ICON dynamical-core proxy.
    Icon,
    /// LAMMPS EAM proxy.
    Lammps,
    /// OpenMX proxy.
    Openmx,
    /// CloverLeaf proxy.
    Cloverleaf,
}

impl App {
    /// All validation-experiment applications (Fig. 9 / Table II).
    pub const ALL: [App; 7] = [
        App::Lulesh,
        App::Hpcg,
        App::Milc,
        App::Icon,
        App::Lammps,
        App::Openmx,
        App::Cloverleaf,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            App::Lulesh => "LULESH",
            App::Hpcg => "HPCG",
            App::Milc => "MILC",
            App::Icon => "ICON",
            App::Lammps => "LAMMPS",
            App::Openmx => "OpenMX",
            App::Cloverleaf => "CloverLeaf",
        }
    }

    /// Generate the standard configuration at the given rank count with
    /// `iters` outer iterations.
    pub fn programs(&self, ranks: u32, iters: usize) -> ProgramSet {
        match self {
            App::Lulesh => lulesh::programs(&lulesh::Config::paper(ranks, iters)),
            App::Hpcg => hpcg::programs(&hpcg::Config::paper(ranks, iters)),
            App::Milc => milc::programs(&milc::Config::paper(ranks, iters)),
            App::Icon => icon::programs(&icon::Config::paper(ranks, iters)),
            App::Lammps => lammps::programs(&lammps::Config::paper(ranks, iters)),
            App::Openmx => openmx::programs(&openmx::Config::paper(ranks, iters)),
            App::Cloverleaf => cloverleaf::programs(&cloverleaf::Config::paper(ranks, iters)),
        }
    }

    /// Parse a workload name (case-insensitive, paper spelling or
    /// lowercase).
    pub fn parse(name: &str) -> Option<App> {
        App::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
    }

    /// The per-message overhead `o` the paper matched for this application
    /// (Table II, 8-node column), in nanoseconds.
    pub fn paper_o(&self) -> f64 {
        match self {
            App::Lulesh => 5_000.0,
            App::Hpcg => 5_600.0,
            App::Milc => 6_000.0,
            App::Icon => 20_000.0,
            App::Lammps => 32_400.0,
            App::Openmx => 15_600.0,
            App::Cloverleaf => 6_100.0,
        }
    }
}

/// Inflate a workload's bench-standard shape (8 ranks, 1 outer iteration)
/// to stress-test scale: `rank_mult` multiplies the rank count, `iter_mult`
/// the outer iteration count. Both clamp to ≥ 1. The generators are pure,
/// so the result is deterministic — `scaled(app, 1, 1)` is exactly the
/// benchmark configuration, and `rank_mult`/`iter_mult` in the tens push
/// the execution graph into the 10⁵–10⁷-vertex range (`llamp gen` exposes
/// this from the CLI).
pub fn scaled(base: App, rank_mult: u32, iter_mult: u32) -> ProgramSet {
    base.programs(8 * rank_mult.max(1), iter_mult.max(1) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_schedgen::{graph_of_programs, GraphConfig};

    #[test]
    fn all_apps_build_graphs_at_small_scale() {
        for app in App::ALL {
            let set = app.programs(8, 2);
            let g = graph_of_programs(&set, &GraphConfig::paper())
                .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
            assert!(g.num_messages() > 0, "{} produced no messages", app.name());
            assert_eq!(g.nranks(), 8, "{}", app.name());
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for app in App::ALL {
            let a = app.programs(8, 2);
            let b = app.programs(8, 2);
            assert_eq!(a, b, "{} not deterministic", app.name());
        }
    }
}

//! CloverLeaf proxy (Mallinson et al.).
//!
//! A 2D structured compressible-hydro mini-app: per timestep two halo
//! exchanges over the 4-neighbour stencil (pre- and post-advection) and
//! two field reductions (timestep control and energy diagnostics). The
//! paper runs it at 128 procs / 8 nodes with `tiles_per_chunk 50`,
//! `end_step 150` (Appendix G-G).

use crate::decomp::{dims2, imbalance};
use llamp_trace::{ProgramBuilder, ProgramSet};

/// CloverLeaf proxy configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Rank count.
    pub ranks: u32,
    /// Hydro timesteps.
    pub iters: usize,
    /// Cells per rank edge.
    pub edge_cells: u32,
    /// Compute per step (ns), weak-scaled.
    pub comp_per_step_ns: f64,
}

impl Config {
    /// The validation shape.
    pub fn paper(ranks: u32, iters: usize) -> Self {
        Self {
            ranks,
            iters,
            edge_cells: 480,
            comp_per_step_ns: 25.0e6,
        }
    }

    /// Halo bytes per neighbour: edge cells × 2 layers × 8-byte doubles ×
    /// a handful of fields.
    pub fn halo_bytes(&self) -> u64 {
        self.edge_cells as u64 * 2 * 8 * 4
    }
}

/// Generate the per-rank programs.
pub fn programs(cfg: &Config) -> ProgramSet {
    let [nx, ny] = dims2(cfg.ranks);
    let bytes = cfg.halo_bytes();
    let ops = cfg.iters * 22;
    ProgramSet::spmd_with_capacity(cfg.ranks, ops, |rank, b: &mut ProgramBuilder| {
        let (x, y) = (rank % nx, rank / nx);
        let neighbors: Vec<u32> = [
            (x.wrapping_sub(1).min(nx - 1), y),
            ((x + 1) % nx, y),
            (x, y.wrapping_sub(1).min(ny - 1)),
            (x, (y + 1) % ny),
        ]
        .iter()
        .map(|&(a, c)| a + c * nx)
        .filter(|&n| n != rank)
        .collect();

        for step in 0..cfg.iters {
            for phase in 0..2u32 {
                let mut reqs = Vec::with_capacity(neighbors.len() * 2);
                for &n in &neighbors {
                    reqs.push(b.irecv(n, bytes, phase));
                }
                for &n in &neighbors {
                    reqs.push(b.isend(n, bytes, phase));
                }
                b.waitall(reqs);
                b.comp(0.5 * cfg.comp_per_step_ns * imbalance(rank, step, 0.04));
            }
            // dt control and diagnostics.
            b.allreduce(8);
            b.allreduce(8);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_schedgen::{graph_of_programs, GraphConfig};

    #[test]
    fn builds_on_various_grids() {
        for p in [2u32, 4, 6, 8, 16] {
            let cfg = Config::paper(p, 2);
            let g = graph_of_programs(&programs(&cfg), &GraphConfig::eager())
                .unwrap_or_else(|e| panic!("P={p}: {e}"));
            assert!(g.num_messages() > 0, "P={p}");
        }
    }

    #[test]
    fn neighbor_sets_are_symmetric() {
        // If the graph builds, send/recv matching already proved symmetry;
        // spot-check halo byte maths.
        let cfg = Config::paper(8, 1);
        assert_eq!(cfg.halo_bytes(), 480 * 2 * 8 * 4);
    }
}

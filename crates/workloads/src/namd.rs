//! NAMD / charm++ proxy (Fig. 12 of the paper).
//!
//! charm++ over-decomposes the molecular system into many more *chares*
//! (patch/compute objects) than ranks and schedules them message-driven:
//! when latency rises, work whose inputs already arrived runs first, so
//! the *traces themselves* change with the network. The paper records
//! NAMD traces at several injected latencies and shows each trace's
//! prediction is only valid near the latency it was recorded at — the
//! runtime "proactively adjusts its communication schedule" (§VI).
//!
//! The proxy models this with an explicit overlap parameter derived from
//! the latency the trace is recorded at: each rank holds `chares` objects;
//! per step every object exchanges boundary data with a partner object on
//! a neighbouring rank. With `recorded_delta_l = 0` the schedule is eager
//! but serial (send → wait → compute per object). At higher recorded
//! latency, the scheduler pipelines: all sends are posted up front and
//! every object's compute fills the wait time of the *next* object's
//! messages, hiding up to one message round per object.

use crate::decomp::imbalance;
use llamp_trace::{ProgramBuilder, ProgramSet};

/// NAMD proxy configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Rank count.
    pub ranks: u32,
    /// MD steps.
    pub iters: usize,
    /// Chares (patches) per rank.
    pub chares: u32,
    /// Boundary bytes per chare pair per step.
    pub bytes: u64,
    /// Per-chare compute per step (ns).
    pub comp_per_chare_ns: f64,
    /// The injected latency (ns) the trace is recorded under; controls how
    /// aggressively the message-driven scheduler overlaps.
    pub recorded_delta_l: f64,
    /// Adaptation knee (ns): the latency scale at which the scheduler has
    /// reordered half of the objects' communication.
    pub knee_ns: f64,
}

impl Config {
    /// Paper-like shape: 8 chares per rank.
    pub fn paper(ranks: u32, iters: usize, recorded_delta_l: f64) -> Self {
        Self {
            ranks,
            iters,
            chares: 8,
            bytes: 12 * 1024,
            comp_per_chare_ns: 3.0e6,
            recorded_delta_l,
            knee_ns: 20_000.0,
        }
    }

    /// Fraction of objects whose communication the scheduler pipelines,
    /// growing with the latency the trace was recorded at (saturating: the
    /// runtime can hide at most all-but-one round).
    pub fn overlap_fraction(&self) -> f64 {
        (self.recorded_delta_l / (self.recorded_delta_l + self.knee_ns)).min(0.95)
    }
}

/// Generate the per-rank programs.
pub fn programs(cfg: &Config) -> ProgramSet {
    // Partner rank per chare: alternate neighbours on a ring so traffic
    // spreads like a patch grid.
    let overlap = cfg.overlap_fraction();
    let pipelined = (cfg.chares as f64 * overlap).round() as u32;
    ProgramSet::spmd(cfg.ranks, |rank, b: &mut ProgramBuilder| {
        if cfg.ranks < 2 {
            b.comp(cfg.comp_per_chare_ns * cfg.chares as f64 * cfg.iters as f64);
            return;
        }
        for step in 0..cfg.iters {
            // Phase 1: the scheduler posts the pipelined objects' traffic
            // up front (message-driven execution).
            let mut pending = Vec::new();
            for c in 0..pipelined {
                let dir = if (c + rank) % 2 == 0 {
                    1
                } else {
                    cfg.ranks - 1
                };
                let peer = (rank + dir) % cfg.ranks;
                let tag = c;
                pending.push(b.irecv(peer, cfg.bytes, tag));
                pending.push(b.isend(peer, cfg.bytes, tag));
            }
            // Their compute fills the transfer time back-to-back.
            for c in 0..pipelined {
                b.comp(cfg.comp_per_chare_ns * imbalance(rank, step + c as usize, 0.03));
            }
            b.waitall(pending);
            // Phase 2: the rest run serially (send, wait, compute) — the
            // un-adapted remainder.
            for c in pipelined..cfg.chares {
                let dir = if (c + rank) % 2 == 0 {
                    1
                } else {
                    cfg.ranks - 1
                };
                let peer = (rank + dir) % cfg.ranks;
                let tag = c;
                let rq_r = b.irecv(peer, cfg.bytes, tag);
                let rq_s = b.isend(peer, cfg.bytes, tag);
                b.waitall(vec![rq_r, rq_s]);
                b.comp(cfg.comp_per_chare_ns * imbalance(rank, step + c as usize, 0.03));
            }
            // Integration barrier per step.
            b.allreduce(8);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_schedgen::{graph_of_programs, GraphConfig};

    #[test]
    fn overlap_grows_with_recorded_latency() {
        let a = Config::paper(8, 1, 0.0).overlap_fraction();
        let b = Config::paper(8, 1, 50_000.0).overlap_fraction();
        let c = Config::paper(8, 1, 200_000.0).overlap_fraction();
        assert!(a < b && b < c);
        assert!(c <= 0.95);
        assert_eq!(a, 0.0);
    }

    #[test]
    fn builds_at_all_overlap_levels() {
        for delta in [0.0, 20_000.0, 100_000.0] {
            let cfg = Config::paper(8, 2, delta);
            let g = graph_of_programs(&programs(&cfg), &GraphConfig::eager())
                .unwrap_or_else(|e| panic!("delta={delta}: {e}"));
            assert!(g.num_messages() > 0);
        }
    }

    #[test]
    fn adapted_traces_are_more_latency_tolerant() {
        use llamp_core::Analyzer;
        use llamp_model::LogGPSParams;
        let params = LogGPSParams::cscs_testbed(8).with_o(2_000.0);
        let tol = |delta: f64| {
            let cfg = Config::paper(8, 4, delta);
            let g = graph_of_programs(&programs(&cfg), &GraphConfig::eager()).unwrap();
            Analyzer::new(&g, &params).tolerance_pct(5.0, 10_000_000.0)
        };
        let cold = tol(0.0);
        let hot = tol(100_000.0);
        assert!(
            hot > cold,
            "trace recorded under latency should tolerate more: {hot} vs {cold}"
        );
    }
}

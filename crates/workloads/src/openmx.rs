//! OpenMX proxy (Boker et al. reference in the paper is the DFT package
//! OpenMX 3.7, bulk diamond DIA64_DC example).
//!
//! Density-functional theory SCF iterations are collective-heavy: the
//! eigenvalue problem distributes work with broadcasts from the
//! diagonalisation roots, partial results return through reductions, and
//! charge-density mixing needs global sums. Compute per SCF step is large
//! and per-rank imbalance is mild.

use crate::decomp::imbalance;
use llamp_trace::{ProgramBuilder, ProgramSet};

/// OpenMX proxy configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Rank count.
    pub ranks: u32,
    /// SCF iterations.
    pub iters: usize,
    /// Hamiltonian block bytes broadcast per step.
    pub bcast_bytes: u64,
    /// Partial-result bytes reduced per step.
    pub reduce_bytes: u64,
    /// Compute per SCF step (ns), weak-scaled.
    pub comp_per_step_ns: f64,
}

impl Config {
    /// The validation shape (DIA64_DC).
    pub fn paper(ranks: u32, iters: usize) -> Self {
        Self {
            ranks,
            iters,
            bcast_bytes: 64 * 1024,
            reduce_bytes: 32 * 1024,
            comp_per_step_ns: 180.0e6,
        }
    }
}

/// Generate the per-rank programs.
pub fn programs(cfg: &Config) -> ProgramSet {
    ProgramSet::spmd_with_capacity(cfg.ranks, cfg.iters * 5, |rank, b: &mut ProgramBuilder| {
        for step in 0..cfg.iters {
            // Distribute the updated Hamiltonian blocks.
            b.bcast(cfg.bcast_bytes, (step as u32) % cfg.ranks);
            // Local diagonalisation work (the dominant block).
            b.comp(0.8 * cfg.comp_per_step_ns * imbalance(rank, step, 0.06));
            // Collect partial eigen-solutions.
            b.reduce(cfg.reduce_bytes, (step as u32) % cfg.ranks);
            // Charge mixing + convergence checks.
            b.comp(0.2 * cfg.comp_per_step_ns);
            b.allreduce(8);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_schedgen::{graph_of_programs, GraphConfig};

    #[test]
    fn builds_and_has_collectives() {
        let cfg = Config::paper(8, 2);
        let g = graph_of_programs(&programs(&cfg), &GraphConfig::eager()).unwrap();
        // Bcast (7 msgs) + reduce (7) + allreduce (24) per step on 8 ranks.
        assert_eq!(g.num_messages(), 2 * (7 + 7 + 24));
    }

    #[test]
    fn rotating_roots_stay_in_range() {
        let cfg = Config::paper(5, 7);
        let g = graph_of_programs(&programs(&cfg), &GraphConfig::eager());
        assert!(g.is_ok());
    }
}

//! MILC su3_rmd proxy (Bernard et al.).
//!
//! Lattice QCD with the R-algorithm: a 4D space-time lattice (the paper
//! runs the 16⁴ NERSC lattice) distributed over a 4D process grid. The
//! dominant cost is the conjugate-gradient solver for the fermion force:
//! per CG iteration the *dslash* operator gathers neighbour spinors along
//! all 8 directions (±x, ±y, ±z, ±t) and two global sums keep the
//! residual. MILC's gathers are tightly dependent — the next CG iteration
//! cannot start before the previous one's sums — which is why the paper
//! measures the *lowest* latency tolerance of all applications (Fig. 1:
//! degradation from ~20 µs; Fig. 9 third row).
//!
//! Strong scaling: the global lattice is fixed, so per-rank compute
//! shrinks as `P` grows (modelled with a surface-term exponent, matching
//! the paper's observation that tolerance roughly halves from 8 to 64
//! nodes rather than dropping 8×).

use crate::decomp::{dims4, imbalance};
use llamp_trace::{ProgramBuilder, ProgramSet};

/// MILC proxy configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Rank count.
    pub ranks: u32,
    /// CG iterations (the outer R-algorithm steps are folded in).
    pub iters: usize,
    /// Global lattice side (16 for the NERSC `16x16x16x16.chlat`).
    pub lattice: u32,
    /// Per-rank compute per CG iteration at 8 ranks (ns).
    pub comp_at_8_ns: f64,
    /// Strong-scaling exponent: compute ∝ `(8/P)^exp`.
    pub scaling_exp: f64,
}

impl Config {
    /// The validation shape (16⁴ lattice).
    pub fn paper(ranks: u32, iters: usize) -> Self {
        Self {
            ranks,
            iters,
            lattice: 16,
            comp_at_8_ns: 12.0e6,
            scaling_exp: 0.55,
        }
    }

    /// Per-rank compute per iteration after strong scaling.
    pub fn comp_per_iter(&self) -> f64 {
        self.comp_at_8_ns * (8.0 / self.ranks as f64).powf(self.scaling_exp)
    }
}

/// 4D periodic grid navigation.
struct Grid4 {
    dims: [u32; 4],
}

impl Grid4 {
    fn new(p: u32) -> Self {
        Self { dims: dims4(p) }
    }

    fn coords(&self, rank: u32) -> [u32; 4] {
        let [a, b, c, _] = self.dims;
        [
            rank % a,
            (rank / a) % b,
            (rank / (a * b)) % c,
            rank / (a * b * c),
        ]
    }

    fn neighbor(&self, rank: u32, axis: usize, dir: i64) -> u32 {
        let mut c = self.coords(rank).map(|v| v as i64);
        c[axis] += dir;
        let d = self.dims;
        let w = |v: i64, n: u32| v.rem_euclid(n as i64) as u32;
        w(c[0], d[0])
            + w(c[1], d[1]) * d[0]
            + w(c[2], d[2]) * d[0] * d[1]
            + w(c[3], d[3]) * d[0] * d[1] * d[2]
    }
}

/// Spinor surface bytes along one direction: a 3D boundary of the local 4D
/// block, 24 reals (3×4 complex) per site at 4 bytes (single precision).
fn surface_bytes(cfg: &Config) -> u64 {
    let local_side = (cfg.lattice as f64 / (cfg.ranks as f64).powf(0.25)).max(2.0) as u64;
    (local_side.pow(3) * 24 * 4).max(64)
}

/// Generate the per-rank programs.
pub fn programs(cfg: &Config) -> ProgramSet {
    let grid = Grid4::new(cfg.ranks);
    let bytes = surface_bytes(cfg);
    let comp = cfg.comp_per_iter();
    let ops = cfg.iters * 22;
    ProgramSet::spmd_with_capacity(cfg.ranks, ops, |rank, b: &mut ProgramBuilder| {
        for iter in 0..cfg.iters {
            // Dslash: gathers along 8 directions in two dependent waves
            // (MILC starts the ±even directions, computes the interior,
            // then the ±odd directions — partial overlap only).
            for wave in 0..2u32 {
                let mut reqs = Vec::with_capacity(8);
                for axis in 0..4usize {
                    let dir = if wave == 0 { 1i64 } else { -1 };
                    let to = grid.neighbor(rank, axis, dir);
                    let from = grid.neighbor(rank, axis, -dir);
                    if to == rank || from == rank {
                        continue;
                    }
                    let tag = (wave * 4 + axis as u32) + iter as u32 * 8;
                    reqs.push(b.irecv(from, bytes, tag));
                    reqs.push(b.isend(to, bytes, tag));
                }
                b.waitall(reqs);
                // Interior/exterior su3 multiplies for this wave.
                b.comp(0.5 * comp * imbalance(rank, iter, 0.02));
            }
            // CG residual + Rayleigh quotient: two global sums.
            b.allreduce(16);
            b.allreduce(16);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_schedgen::{graph_of_programs, GraphConfig};

    #[test]
    fn builds_on_various_rank_counts() {
        for p in [2u32, 4, 8, 16, 32] {
            let cfg = Config::paper(p, 2);
            let g = graph_of_programs(&programs(&cfg), &GraphConfig::eager())
                .unwrap_or_else(|e| panic!("P={p}: {e}"));
            assert!(g.num_messages() > 0);
        }
    }

    #[test]
    fn strong_scaling_shrinks_compute() {
        let a = Config::paper(8, 1).comp_per_iter();
        let b = Config::paper(64, 1).comp_per_iter();
        assert!(b < a / 2.0, "64-rank compute should shrink: {b} vs {a}");
        assert!(b > a / 8.0, "surface term keeps it above linear scaling");
    }

    #[test]
    fn surface_bytes_stay_eager_on_paper_cluster() {
        let cfg = Config::paper(8, 1);
        assert!(surface_bytes(&cfg) < 256 * 1024);
        assert!(surface_bytes(&cfg) >= 64);
    }
}

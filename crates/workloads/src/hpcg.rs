//! HPCG proxy (Heroux & Dongarra).
//!
//! The High Performance Conjugate Gradient benchmark: per CG iteration a
//! 27-point halo exchange for the sparse matrix-vector product, two
//! dot-product reductions (`MPI_Allreduce` of one double each), and the
//! symmetric Gauss–Seidel preconditioner — here folded into the compute
//! phase together with a small multigrid V-cycle whose coarser levels
//! exchange shrinking halos.
//!
//! Weak scaling (`nx = ny = nz = 48` per rank in the paper's runs). The
//! dot products make the critical path carry `2·lg P` latency hops per
//! iteration — more than LULESH — but the large compute phase keeps the
//! tolerance band near 100 µs (Fig. 9 second row).

use crate::decomp::{imbalance, Grid3};
use llamp_trace::{ProgramBuilder, ProgramSet};

/// HPCG proxy configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Rank count.
    pub ranks: u32,
    /// CG iterations.
    pub iters: usize,
    /// Local subdomain side (`nx`).
    pub nx: u32,
    /// Multigrid levels (each halves the halo).
    pub mg_levels: u32,
    /// Compute per CG iteration (ns), weak-scaled.
    pub comp_per_iter_ns: f64,
}

impl Config {
    /// The validation shape: `xhpcg 48 48 48`, 4 MG levels.
    pub fn paper(ranks: u32, iters: usize) -> Self {
        Self {
            ranks,
            iters,
            nx: 48,
            mg_levels: 4,
            comp_per_iter_ns: 60.0e6,
        }
    }
}

fn face_bytes(nx: u32) -> u64 {
    (nx as u64) * (nx as u64) * 8
}

/// One 27-point halo exchange at the given level's resolution.
fn halo(b: &mut ProgramBuilder, grid: &Grid3, rank: u32, nx: u32, tag_base: u32) {
    let stencil = Grid3::stencil26();
    let mut reqs = Vec::with_capacity(stencil.len() * 2);
    for (i, (offset, order)) in stencil.iter().enumerate() {
        let peer = grid.neighbor(rank, *offset);
        if peer == rank {
            continue;
        }
        let bytes = match order {
            1 => face_bytes(nx),
            2 => (nx as u64) * 8,
            _ => 8,
        };
        reqs.push(b.irecv(peer, bytes, tag_base + i as u32));
    }
    for (i, (offset, order)) in stencil.iter().enumerate() {
        let peer = grid.neighbor(rank, [-offset[0], -offset[1], -offset[2]]);
        if peer == rank {
            continue;
        }
        let bytes = match order {
            1 => face_bytes(nx),
            2 => (nx as u64) * 8,
            _ => 8,
        };
        reqs.push(b.isend(peer, bytes, tag_base + i as u32));
    }
    b.waitall(reqs);
}

/// Generate the per-rank programs.
pub fn programs(cfg: &Config) -> ProgramSet {
    let grid = Grid3::new(cfg.ranks);
    let ops = cfg.iters * (cfg.mg_levels as usize * 54 + 3);
    ProgramSet::spmd_with_capacity(cfg.ranks, ops, |rank, b: &mut ProgramBuilder| {
        for iter in 0..cfg.iters {
            // SpMV halo at full resolution.
            halo(b, &grid, rank, cfg.nx, 0);
            // SpMV + SYMGS compute: ~70% of the iteration.
            b.comp(0.7 * cfg.comp_per_iter_ns * imbalance(rank, iter, 0.05));
            // First dot product (r·z).
            b.allreduce(8);
            // MG V-cycle: coarser halos with the remaining compute.
            let mut nx = cfg.nx;
            let per_level = 0.3 * cfg.comp_per_iter_ns / cfg.mg_levels as f64;
            for level in 1..cfg.mg_levels {
                nx = (nx / 2).max(2);
                halo(b, &grid, rank, nx, level * 32);
                b.comp(per_level * imbalance(rank, iter, 0.05));
            }
            // Second dot product (p·Ap) and convergence check.
            b.allreduce(8);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamp_schedgen::{graph_of_programs, GraphConfig};

    #[test]
    fn builds_and_counts() {
        let cfg = Config::paper(8, 2);
        let g = graph_of_programs(&programs(&cfg), &GraphConfig::eager()).unwrap();
        // Per iteration: mg_levels halos of 26 exchanges x 8 ranks, plus
        // 2 allreduces (8·lg8 = 24 messages each).
        let per_iter = 8 * 26 * 4 + 2 * 24;
        assert_eq!(g.num_messages(), per_iter * 2);
    }

    #[test]
    fn coarse_levels_shrink_messages() {
        assert_eq!(face_bytes(48), 48 * 48 * 8);
        assert!(face_bytes(24) < face_bytes(48));
    }
}

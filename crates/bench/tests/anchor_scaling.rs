//! Release-mode cold-anchor *scaling* smoke, run explicitly in CI
//! (`cargo test --release -p llamp-bench --test anchor_scaling -- --ignored`):
//! the cold sparse anchor on a 32k-row LULESH proxy must stay near-linear
//! in the row count. The longest-path crash basis is optimal up to
//! degeneracy at the query point, so the solve is an LU factorisation
//! plus one optimality pricing pass — no pivots at all (observed: 1
//! iteration). The pre-crash behaviour was ~0.6 pivots *per row* (18k
//! iterations at this shape, ~21 s), so the iteration ceiling trips on
//! any regression back towards super-linear pivoting long before the
//! wall budget does.

use llamp_bench::graph_of;
use llamp_core::{Binding, GraphLp, ReduceConfig};
use llamp_model::LogGPSParams;
use llamp_util::time::us;
use llamp_workloads::App;
use std::time::Instant;

/// Iteration ceiling for the 32k-row cold anchor. Observed: 1 (the
/// crash basis is already optimal). The topological-heuristic crash
/// needed ~18k iterations here.
const ITERATION_CEILING: u64 = 2_000;
/// Wall budget in seconds (observed: well under 1 s in release; CI
/// machines vary). Pre-crash behaviour was ~21 s.
const WALL_BUDGET_S: f64 = 10.0;

#[test]
#[ignore = "timing assertion; CI runs it explicitly in release mode"]
fn cold_anchor_scales_near_linearly() {
    let set = llamp_workloads::scaled(App::Lulesh, 2, 100);
    let raw = graph_of(&set);
    let reduced = raw.reduced(&ReduceConfig::default());
    let graph = reduced.graph();
    let params = LogGPSParams::cscs_testbed(raw.nranks()).with_o(us(6.0));
    let binding = Binding::uniform(&params);

    let rows = reduced.stats().rows_after;
    assert!(rows > 30_000, "shape shrank: {rows} rows");

    let mut lp = GraphLp::build_named(graph, &binding, "sparse").unwrap();
    let start = Instant::now();
    let anchor = lp.predict(params.l).expect("anchor solves");
    let elapsed = start.elapsed().as_secs_f64();
    eprintln!(
        "cold anchor  {rows} rows  {:.3} s  {} iterations",
        elapsed, anchor.iterations
    );

    assert!(
        anchor.iterations <= ITERATION_CEILING,
        "cold anchor at {rows} rows took {} iterations (ceiling \
         {ITERATION_CEILING}): the longest-path crash has regressed \
         towards super-linear pivoting",
        anchor.iterations
    );
    assert!(
        elapsed <= WALL_BUDGET_S,
        "cold anchor at {rows} rows took {elapsed:.3}s (budget {WALL_BUDGET_S}s)"
    );
    // The answer is a real optimum, cross-checked against the direct
    // graph evaluation.
    let eval = llamp_core::evaluate(graph, &binding, params.l);
    assert!(
        (anchor.runtime - eval.runtime).abs() <= 1e-6 * (1.0 + eval.runtime),
        "lp {} vs eval {}",
        anchor.runtime,
        eval.runtime
    );
}

/// The anchor ladder, printed for the perf trajectory (docs/SCALING.md):
/// cold anchors at the 8k/16k/32k-row LULESH shapes, longest-path crash
/// vs the historic topological heuristic. No timing assertions beyond a
/// sanity cross-check — the scaling guard above is the tripwire.
#[test]
#[ignore = "prints measurements; CI runs it explicitly in release mode"]
fn anchor_ladder() {
    use llamp_core::CrashKind;
    for iter_mult in [25, 50, 100] {
        let set = llamp_workloads::scaled(App::Lulesh, 2, iter_mult);
        let raw = graph_of(&set);
        let reduced = raw.reduced(&ReduceConfig::default());
        let graph = reduced.graph();
        let params = LogGPSParams::cscs_testbed(raw.nranks()).with_o(us(6.0));
        let binding = Binding::uniform(&params);
        let rows = reduced.stats().rows_after;

        let mut lp = GraphLp::build_named(graph, &binding, "sparse").unwrap();
        let t0 = Instant::now();
        let anchor = lp.predict(params.l).expect("anchor solves");
        let crash_s = t0.elapsed().as_secs_f64();

        let mut topo = GraphLp::build_named(graph, &binding, "sparse").unwrap();
        topo.set_crash_kind(CrashKind::Topological);
        let t1 = Instant::now();
        let heur = topo.predict(params.l).expect("anchor solves");
        let topo_s = t1.elapsed().as_secs_f64();

        assert!(
            (anchor.runtime - heur.runtime).abs() <= 1e-9 * (1.0 + anchor.runtime),
            "crash kinds disagree at {rows} rows"
        );
        eprintln!(
            "ladder  {rows:>6} rows  longest-path {:.3} s / {} iters   \
             topological {:.3} s / {} iters",
            crash_s, anchor.iterations, topo_s, heur.iterations
        );
    }
}

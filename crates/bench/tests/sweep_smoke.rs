//! Release-mode *sweep* smoke, run explicitly in CI (`cargo test
//! --release -p llamp-bench --test sweep_smoke -- --ignored`): a
//! 64-point crash-start sweep on the 32k-row scaled LULESH shape must
//! stay within a pivots-per-point ceiling and a generous wall budget.
//! This is the regression tripwire for the sweep-economics work: above
//! the auto-policy threshold every point starts from its own longest-path
//! crash basis (optimal up to degeneracy, so approximately zero pivots),
//! and inside a stability region consecutive points share one LU
//! factorisation (`lp.lu_reuse`). A regression in either — crash basis
//! quality or LU adoption — shows up as pivots-per-point or missing
//! reuse long before the wall budget trips. `anchor_scaling.rs` is the
//! matching tripwire for the one-off cold anchor.

use llamp_bench::{graph_of, linspace};
use llamp_core::{Binding, GraphLp, ReduceConfig};
use llamp_model::LogGPSParams;
use llamp_util::time::us;
use llamp_workloads::App;
use std::time::Instant;

/// Pivot ceiling *per sweep point*. Observed: < 1 (the crash basis is
/// optimal at the point for almost every delta); anchor-warm re-solves
/// at this scale paid hundreds of pivots per far point.
const PIVOTS_PER_POINT_CEILING: f64 = 50.0;
/// Wall budget in seconds for the whole 64-point sweep (observed: well
/// under 2 s in release single-threaded; CI machines vary). The
/// pre-crash anchor-warm sweep took minutes at this shape.
const WALL_BUDGET_S: f64 = 30.0;

#[test]
#[ignore = "timing assertion; CI runs it explicitly in release mode"]
fn crash_start_sweep_stays_cheap_at_32k_rows() {
    let set = llamp_workloads::scaled(App::Lulesh, 2, 100);
    let raw = graph_of(&set);
    let reduced = raw.reduced(&ReduceConfig::default());
    let graph = reduced.graph();
    let params = LogGPSParams::cscs_testbed(raw.nranks()).with_o(us(6.0));
    let binding = Binding::uniform(&params);

    let rows = reduced.stats().rows_after;
    assert!(rows > 30_000, "shape shrank: {rows} rows");
    let deltas = linspace(0.0, us(60.0), 64);

    llamp_obs::enable();
    let mut lp = GraphLp::build_named(graph, &binding, "sparse").unwrap();
    let start = Instant::now();
    let mut acc = 0.0;
    for &d in &deltas {
        lp.reset_backend();
        acc += lp
            .predict(params.l + d)
            .expect("sweep point solves")
            .runtime;
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert!(acc.is_finite());
    let stats = lp.solver_stats();
    let snapshot = llamp_obs::take();
    llamp_obs::disable();
    let lu_reuse = snapshot
        .summary()
        .counters
        .iter()
        .find(|(k, _)| k == "lp.lu_reuse")
        .map(|&(_, v)| v)
        .unwrap_or(0);

    let pivots_per_point = stats.pivots as f64 / deltas.len() as f64;
    eprintln!(
        "sweep smoke  {rows} rows  64 points  {elapsed:.3} s  \
         {:.2} pivots/point  {} refactorisations  {lu_reuse} lu reuses",
        pivots_per_point, stats.refactorizations
    );

    assert!(
        pivots_per_point <= PIVOTS_PER_POINT_CEILING,
        "crash-start sweep at {rows} rows averaged {pivots_per_point:.1} \
         pivots/point (ceiling {PIVOTS_PER_POINT_CEILING}): the per-point \
         crash basis has regressed"
    );
    assert!(
        elapsed <= WALL_BUDGET_S,
        "64-point sweep at {rows} rows took {elapsed:.3}s (budget {WALL_BUDGET_S}s)"
    );
    // The shared-LU path must actually engage: within stability regions
    // consecutive crash bases coincide, so a sweep this dense reuses
    // many factorisations. Zero reuse means the adoption gate broke.
    assert!(
        lu_reuse > 0,
        "64-point crash-start sweep skipped no LU factorisations: \
         the shared-LU reuse path has regressed"
    );
}

//! Release-mode cold-anchor smoke, run explicitly in CI (`cargo test
//! --release -p llamp-bench --test cold_smoke -- --ignored`): the cold
//! sparse anchor solve on the LULESH proxy must stay within an iteration
//! ceiling and a generous wall budget. The ceiling is the regression
//! tripwire for the solver-start work: the longest-path crash basis
//! (ISSUE 9) lands the anchor in a single iteration — zero pivots, just
//! the optimality pricing pass (the ISSUE 3 topological heuristic needed
//! ~35, the PR 2 all-logical start 535) — so a pricing or crash
//! regression shows up as an order-of-magnitude jump long before the
//! wall budget trips. `anchor_scaling.rs` is the same tripwire at the
//! 32k-row scaled shape.

use llamp_bench::graph_of;
use llamp_core::{Binding, GraphLp};
use llamp_model::LogGPSParams;
use llamp_util::time::us;
use llamp_workloads::App;
use std::time::Instant;

/// Iteration ceiling for the LULESH cold anchor (944 rows). Observed: 1
/// with the longest-path crash (~35 with the topological heuristic).
const ITERATION_CEILING: u64 = 200;
/// Wall budget in seconds (observed: ~1 ms in release; CI machines vary).
const WALL_BUDGET_S: f64 = 2.0;

#[test]
#[ignore = "timing assertion; CI runs it explicitly in release mode"]
fn lulesh_cold_anchor_stays_cheap() {
    let params = LogGPSParams::cscs_testbed(8).with_o(us(6.0));
    let binding = Binding::uniform(&params);
    let graph = graph_of(&App::Lulesh.programs(8, 1)).contracted();

    // Throwaway pass to warm caches/allocator before timing.
    let mut lp = GraphLp::build_named(&graph, &binding, "sparse").unwrap();
    lp.predict(params.l).expect("anchor solves");

    let mut lp = GraphLp::build_named(&graph, &binding, "sparse").unwrap();
    let start = Instant::now();
    let anchor = lp.predict(params.l).expect("anchor solves");
    let elapsed = start.elapsed().as_secs_f64();

    assert!(
        anchor.iterations <= ITERATION_CEILING,
        "cold anchor took {} iterations (ceiling {ITERATION_CEILING}): \
         pricing or crash-basis regression",
        anchor.iterations
    );
    assert!(
        elapsed <= WALL_BUDGET_S,
        "cold anchor took {elapsed:.3}s (budget {WALL_BUDGET_S}s)"
    );
    // The anchor is a real solve with real work behind it.
    let stats = lp.solver_stats();
    assert!(stats.ftran_calls > 0 && stats.iterations == anchor.iterations);
}

//! Criterion: the front half of the toolchain — workload generation,
//! virtual-clock tracing, text round-trip and Schedgen compilation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llamp_schedgen::{build_graph, GraphConfig};
use llamp_trace::text::{parse_trace, write_trace};
use llamp_trace::TracerConfig;
use llamp_workloads::App;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    for ranks in [8u32, 27] {
        let set = App::Lulesh.programs(ranks, 4);

        group.bench_with_input(BenchmarkId::new("generate", ranks), &ranks, |b, &r| {
            b.iter(|| black_box(App::Lulesh.programs(r, 4)))
        });

        group.bench_with_input(BenchmarkId::new("trace", ranks), &set, |b, s| {
            b.iter(|| black_box(s.trace(&TracerConfig::default())))
        });

        let trace = set.trace(&TracerConfig::default());
        group.bench_with_input(BenchmarkId::new("schedgen", ranks), &trace, |b, t| {
            b.iter(|| black_box(build_graph(t, &GraphConfig::paper()).unwrap()))
        });

        let text = write_trace(&trace);
        group.bench_with_input(
            BenchmarkId::new("text_roundtrip", ranks),
            &text,
            |b, txt| b.iter(|| black_box(parse_trace(txt).unwrap())),
        );

        let graph = build_graph(&trace, &GraphConfig::paper()).unwrap();
        group.bench_with_input(BenchmarkId::new("contract", ranks), &graph, |b, g| {
            b.iter(|| black_box(g.contracted()))
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_pipeline
}
criterion_main!(benches);

//! Criterion: LP backend costs on graph-shaped models.
//!
//! Measures (a) Algorithm 1 model construction, (b) per-backend solve
//! time on contracted graphs of growing size, (c) the parametric envelope
//! pass, (d) the bound-tightening resolve that Algorithm 2 performs per
//! iteration, and (e) the headline comparison of this crate's solver
//! stack: **cold dense vs. cold sparse vs. warm-started sparse /
//! parametric** on a 64-point latency sweep. The sweep group reports the
//! sparse-vs-dense and warm-vs-cold speedups the `SolverBackend` layer
//! exists to deliver: the dense reference re-solves every point from the
//! all-logical basis, while the warm backends thread each point's optimal
//! basis into the next (usually a pivot-free re-extraction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llamp_bench::{graph_of, linspace};
use llamp_core::{Binding, GraphLp, ParametricProfile};
use llamp_model::LogGPSParams;
use llamp_schedgen::ExecGraph;
use llamp_util::time::us;
use llamp_workloads::App;
use std::hint::black_box;

/// Rows above which the dense-inverse path is too slow to bench.
const DENSE_ROW_CAP: usize = 2_500;

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_solver");
    for iters in [1usize, 2, 4] {
        let graph = graph_of(&App::Cloverleaf.programs(8, iters)).contracted();
        let params = LogGPSParams::cscs_testbed(8).with_o(us(6.1));
        let binding = Binding::uniform(&params);

        group.bench_with_input(
            BenchmarkId::new("build_algorithm1", graph.num_vertices()),
            &graph,
            |b, g| b.iter(|| black_box(GraphLp::build(g, &binding))),
        );

        // Repeated predicts at one latency: after the first solve the
        // warm backends answer from the retained basis.
        for backend in ["dense", "sparse", "parametric"] {
            if backend == "dense"
                && GraphLp::build(&graph, &binding).model().num_constraints() > DENSE_ROW_CAP
            {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(format!("predict_{backend}"), graph.num_vertices()),
                &graph,
                |b, g| {
                    let mut lp = GraphLp::build_named(g, &binding, backend).unwrap();
                    b.iter(|| black_box(lp.predict(params.l).unwrap().runtime))
                },
            );
        }

        group.bench_with_input(
            BenchmarkId::new("parametric_envelope", graph.num_vertices()),
            &graph,
            |b, g| b.iter(|| black_box(ParametricProfile::compute(g, &binding, (0.0, us(1000.0))))),
        );
    }
    group.finish();
}

fn bench_tolerance(c: &mut Criterion) {
    let graph = graph_of(&App::Milc.programs(8, 2)).contracted();
    let params = LogGPSParams::cscs_testbed(8).with_o(us(6.0));
    let binding = Binding::uniform(&params);
    let mut lp = GraphLp::build(&graph, &binding);
    let t0 = lp.predict(params.l).unwrap().runtime;

    c.bench_function("lp_tolerance_flip", |b| {
        b.iter(|| black_box(lp.tolerance(0.0, t0 * 1.05).unwrap()))
    });
}

/// One full latency sweep through a named backend. `cold` resets the
/// backend before every point, so each solve starts from the all-logical
/// basis; warm sweeps thread the previous basis through.
fn sweep(graph: &ExecGraph, binding: &Binding, backend: &str, deltas: &[f64], cold: bool) -> f64 {
    let mut lp = GraphLp::build_named(graph, binding, backend).unwrap();
    let mut acc = 0.0;
    for &d in deltas {
        if cold {
            lp.reset_backend();
        }
        acc += lp.predict(d).unwrap().runtime;
    }
    acc
}

/// The headline benchmark: a 64-point latency sweep, cold dense vs. cold
/// sparse vs. warm sparse vs. warm parametric.
///
/// Two subjects, chosen by LP row count at 8 ranks: the largest bundled
/// workload outright (HPCG; the dense reference cannot sweep it in bench
/// time, which is the point of the sparse path), and the largest the
/// dense inverse can still handle (for the full 4-way comparison).
fn bench_sweep64(c: &mut Criterion) {
    let params = LogGPSParams::cscs_testbed(8).with_o(us(6.0));
    let binding = Binding::uniform(&params);
    let deltas = linspace(0.0, us(60.0), 64);

    // Rank the bundled workloads by LP size.
    let mut sized: Vec<(App, ExecGraph, usize)> = App::ALL
        .iter()
        .map(|&app| {
            let g = graph_of(&app.programs(8, 1)).contracted();
            let rows = GraphLp::build(&g, &binding).model().num_constraints();
            (app, g, rows)
        })
        .collect();
    sized.sort_by_key(|&(_, _, rows)| rows);
    let (largest_app, largest_graph, largest_rows) = sized.last().unwrap();
    let (dense_app, dense_graph, dense_rows) = sized
        .iter()
        .rev()
        .find(|&&(_, _, rows)| rows <= DENSE_ROW_CAP)
        .expect("some workload fits the dense cap");

    let mut group = c.benchmark_group("sweep64");
    group.sample_size(2);

    // Full 4-way comparison on the largest dense-eligible workload.
    let label = format!("{}_{}rows", dense_app.name(), dense_rows);
    for (mode, backend, cold) in [
        ("cold_dense", "dense", true),
        ("cold_sparse", "sparse", true),
        ("warm_sparse", "sparse", false),
        ("warm_parametric", "parametric", false),
    ] {
        group.bench_with_input(BenchmarkId::new(mode, &label), dense_graph, |b, g| {
            b.iter(|| black_box(sweep(g, &binding, backend, &deltas, cold)))
        });
    }

    // The true largest workload: sparse-only (cold vs. warm).
    let label = format!("{}_{}rows", largest_app.name(), largest_rows);
    for (mode, backend, cold) in [
        ("cold_sparse", "sparse", true),
        ("warm_sparse", "sparse", false),
        ("warm_parametric", "parametric", false),
    ] {
        group.bench_with_input(BenchmarkId::new(mode, &label), largest_graph, |b, g| {
            b.iter(|| black_box(sweep(g, &binding, backend, &deltas, cold)))
        });
    }
    group.finish();
}

/// The cold anchor solve in isolation: one fresh backend, one solve at
/// the base latency — the price every campaign scenario pays before its
/// warm sweep can start, and the subject of the ISSUE-3 hypersparse
/// hot-path work (PR 2 baseline on HPCG: ~728 ms; now ~60 ms).
fn bench_cold_anchor(c: &mut Criterion) {
    let params = LogGPSParams::cscs_testbed(8).with_o(us(6.0));
    let binding = Binding::uniform(&params);
    let mut group = c.benchmark_group("cold_anchor");
    group.sample_size(5);
    for app in [App::Lulesh, App::Hpcg] {
        let graph = graph_of(&app.programs(8, 1)).contracted();
        let rows = GraphLp::build(&graph, &binding).model().num_constraints();
        let label = format!("{}_{}rows", app.name(), rows);
        group.bench_with_input(BenchmarkId::new("sparse", &label), &graph, |b, g| {
            b.iter(|| {
                let mut lp = GraphLp::build_named(g, &binding, "sparse").unwrap();
                black_box(lp.predict(params.l).unwrap().runtime)
            })
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_lp, bench_tolerance, bench_cold_anchor, bench_sweep64
}
criterion_main!(benches);

//! Criterion: LP backend costs on graph-shaped models.
//!
//! Measures (a) Algorithm 1 model construction, (b) simplex solve time on
//! contracted graphs of growing size, (c) the parametric envelope pass,
//! and (d) the bound-tightening resolve that Algorithm 2 performs per
//! iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llamp_bench::graph_of;
use llamp_core::{Binding, GraphLp, ParametricProfile};
use llamp_model::LogGPSParams;
use llamp_util::time::us;
use llamp_workloads::App;
use std::hint::black_box;

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_solver");
    for iters in [1usize, 2, 4] {
        let graph = graph_of(&App::Cloverleaf.programs(8, iters)).contracted();
        let params = LogGPSParams::cscs_testbed(8).with_o(us(6.1));
        let binding = Binding::uniform(&params);

        group.bench_with_input(
            BenchmarkId::new("build_algorithm1", graph.num_vertices()),
            &graph,
            |b, g| b.iter(|| black_box(GraphLp::build(g, &binding))),
        );

        // Dense simplex is O(rows²) per pivot; bench it only on models it
        // is meant for (the envelope covers the rest).
        if GraphLp::build(&graph, &binding).model().num_constraints() <= 1_200 {
            group.bench_with_input(
                BenchmarkId::new("simplex_predict", graph.num_vertices()),
                &graph,
                |b, g| {
                    let mut lp = GraphLp::build(g, &binding);
                    b.iter(|| black_box(lp.predict(params.l).unwrap().runtime))
                },
            );
        }

        group.bench_with_input(
            BenchmarkId::new("parametric_envelope", graph.num_vertices()),
            &graph,
            |b, g| b.iter(|| black_box(ParametricProfile::compute(g, &binding, (0.0, us(1000.0))))),
        );
    }
    group.finish();
}

fn bench_tolerance(c: &mut Criterion) {
    let graph = graph_of(&App::Milc.programs(8, 2)).contracted();
    let params = LogGPSParams::cscs_testbed(8).with_o(us(6.0));
    let binding = Binding::uniform(&params);
    let mut lp = GraphLp::build(&graph, &binding);
    let t0 = lp.predict(params.l).unwrap().runtime;

    c.bench_function("lp_tolerance_flip", |b| {
        b.iter(|| black_box(lp.tolerance(0.0, t0 * 1.05).unwrap()))
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_lp, bench_tolerance
}
criterion_main!(benches);

//! Criterion: discrete-event simulator throughput (the LogGOPSim role) and
//! the cost of the injector designs and noise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llamp_bench::graph_of;
use llamp_model::LogGPSParams;
use llamp_sim::{InjectorDesign, NoiseConfig, SimConfig, Simulator};
use llamp_util::time::us;
use llamp_workloads::App;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    for iters in [2usize, 6] {
        let graph = graph_of(&App::Hpcg.programs(8, iters));
        let params = LogGPSParams::cscs_testbed(8).with_o(us(5.6));

        group.bench_with_input(
            BenchmarkId::new("ideal", graph.num_vertices()),
            &graph,
            |b, g| {
                let cfg = SimConfig::ideal(params);
                b.iter(|| black_box(Simulator::new(g, cfg).run().makespan))
            },
        );

        group.bench_with_input(
            BenchmarkId::new("noisy_injected", graph.num_vertices()),
            &graph,
            |b, g| {
                let cfg = SimConfig::ideal(params)
                    .with_delta_l(us(20.0))
                    .with_injector(InjectorDesign::DelayThread)
                    .with_noise(NoiseConfig::quiet(3));
                b.iter(|| black_box(Simulator::new(g, cfg).run().makespan))
            },
        );
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_simulator
}
criterion_main!(benches);

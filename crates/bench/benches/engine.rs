//! Criterion: campaign throughput of the `llamp-engine` executor + cache.
//!
//! Measures jobs/second for a fixed campaign (7 workloads × eval backend
//! over a 5-point grid) at 1, 2 and N worker threads, cold-cache vs.
//! warm-cache. The warm rows quantify the full-cache-hit fast path (no
//! graph builds at all); the thread rows quantify executor scaling. A
//! second group runs the same campaign through each LP solver variant
//! (`lp-dense` / `lp-sparse` / `lp-parametric`), reporting the
//! sparse-vs-dense and warm-vs-cold speedups at campaign granularity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use llamp_bench::{app_campaign_spec, campaign_grid};
use llamp_engine::{run_campaign, Backend, CampaignSpec, ExecutorConfig, LpSolver, ResultCache};
use llamp_util::time::us;
use llamp_workloads::App;
use std::hint::black_box;

fn bench_spec() -> CampaignSpec {
    let apps: Vec<(App, u32, usize)> = App::ALL.iter().map(|&a| (a, 8, 1)).collect();
    app_campaign_spec(
        &apps,
        &[Backend::Eval],
        campaign_grid(0.0, us(60.0), 5, us(1_000.0)),
    )
}

fn thread_counts() -> Vec<usize> {
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1];
    if n >= 2 {
        counts.push(2);
    }
    if n > 2 {
        counts.push(n);
    }
    counts
}

fn bench_engine(c: &mut Criterion) {
    let spec = bench_spec();
    let jobs = spec.workloads.len() as u64;
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(jobs));

    for threads in thread_counts() {
        let config = ExecutorConfig {
            threads,
            job_timeout: None,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("cold_cache", threads),
            &config,
            |b, config| {
                // A fresh cache each iteration: every scenario computes.
                b.iter(|| {
                    let cache = ResultCache::new();
                    black_box(run_campaign(&spec, config, &cache))
                })
            },
        );

        let warm = ResultCache::new();
        run_campaign(&spec, &config, &warm);
        group.bench_with_input(
            BenchmarkId::new("warm_cache", threads),
            &config,
            |b, config| {
                // Warm cache: every scenario is a full hit, no graph builds.
                b.iter(|| black_box(run_campaign(&spec, config, &warm)))
            },
        );
    }
    group.finish();
}

/// The same campaign answered by each LP solver variant (all re-solve
/// per grid point through their warm-start path; they differ in the
/// factorisation — dense inverse vs. sparse LU — and in the parametric
/// variant's pivot-free basis-stability shortcut).
fn bench_lp_backends(c: &mut Criterion) {
    // Two medium workloads over a 9-point grid keeps the dense row under
    // bench-friendly cost while still showing the per-point re-solve gap.
    let apps: Vec<(App, u32, usize)> = vec![(App::Milc, 8, 1), (App::Cloverleaf, 8, 1)];
    let grid = || campaign_grid(0.0, us(60.0), 9, us(1_000.0));
    let mut group = c.benchmark_group("engine_lp_backends");
    group.sample_size(2);
    for solver in [LpSolver::Dense, LpSolver::Sparse, LpSolver::Parametric] {
        let backend = Backend::Lp(solver);
        let spec = app_campaign_spec(&apps, &[backend], grid());
        group.bench_function(BenchmarkId::from_parameter(backend.name()), |b| {
            b.iter(|| {
                let cache = ResultCache::new();
                black_box(run_campaign(&spec, &ExecutorConfig::default(), &cache))
            })
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_engine, bench_lp_backends
}
criterion_main!(benches);

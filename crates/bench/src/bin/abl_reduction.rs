//! Ablation: the graph reduction pipeline on vs. off, per workload.
//!
//! For every bundled application proxy (8 ranks, 1 iteration — the
//! `bench_json` shape) this runs the full reduction pipeline and checks
//! the contract the engine relies on: the reduced graph predicts the
//! **same makespan and the same λ_L** (to 1e-9) at every probe latency,
//! while the Algorithm-1 LP shrinks by the reported row factor and the
//! cold anchor solve gets correspondingly cheaper. The agreement columns
//! are *asserted*, not just printed, so the CI smoke run of this binary
//! is a real end-to-end check.
//!
//! ```text
//! cargo run --release -p llamp-bench --bin abl_reduction
//! ```

use llamp_bench::{graph_of, Table};
use llamp_core::{evaluate, Binding, GraphLp, ReduceConfig};
use llamp_model::LogGPSParams;
use llamp_util::time::us;
use llamp_workloads::App;
use std::time::Instant;

fn main() {
    let ranks = 8u32;
    let iters = 1usize;
    println!("# Ablation — graph reduction pipeline on/off (ranks = {ranks}, iters = {iters})\n");
    let mut t = Table::new(&[
        "app",
        "verts raw",
        "verts red",
        "rows raw",
        "rows red",
        "rows x",
        "|dT|/T",
        "|dλ|",
        "anchor raw [ms]",
        "anchor red [ms]",
    ]);

    let probes = [0.0, 1_717.0, us(30.0), us(250.0), us(2_000.0)];
    for app in App::ALL {
        let raw = graph_of(&app.programs(ranks, iters));
        let reduced = raw.reduced(&ReduceConfig::default());
        let stats = *reduced.stats();
        let params = LogGPSParams::cscs_testbed(ranks).with_o(app.paper_o());
        let binding = Binding::uniform(&params);

        // Makespan + λ agreement at every probe latency (asserted).
        let mut max_dt = 0.0f64;
        let mut max_dl = 0.0f64;
        for &l in &probes {
            let a = evaluate(&raw, &binding, l);
            let b = evaluate(reduced.graph(), &binding, l);
            let dt = (a.runtime - b.runtime).abs() / (1.0 + a.runtime);
            let dl = (a.lambda - b.lambda).abs();
            assert!(
                dt <= 1e-9,
                "{}: makespan diverged at L={l}: raw {} vs reduced {}",
                app.name(),
                a.runtime,
                b.runtime
            );
            assert!(
                dl <= 1e-9,
                "{}: λ_L diverged at L={l}: raw {} vs reduced {}",
                app.name(),
                a.lambda,
                b.lambda
            );
            max_dt = max_dt.max(dt);
            max_dl = max_dl.max(dl);
        }

        // Cold sparse anchors on both formulations (best of three).
        let anchor_ms = |graph: &llamp_schedgen::ExecGraph| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let mut lp = GraphLp::build_named(graph, &binding, "sparse").unwrap();
                let t0 = Instant::now();
                let p = lp.predict(params.l).expect("anchor solves");
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                assert!(p.runtime.is_finite());
            }
            best
        };
        let raw_ms = anchor_ms(&raw);
        let red_ms = anchor_ms(reduced.graph());

        t.row(vec![
            app.name().into(),
            stats.vertices_before.to_string(),
            stats.vertices_after.to_string(),
            stats.rows_before.to_string(),
            stats.rows_after.to_string(),
            format!("{:.2}", stats.rows_before as f64 / stats.rows_after as f64),
            format!("{max_dt:.1e}"),
            format!("{max_dl:.1e}"),
            format!("{raw_ms:.3}"),
            format!("{red_ms:.3}"),
        ]);
    }
    t.print();
    println!(
        "\nAll makespan/λ_L agreement columns are asserted <= 1e-9; the pipeline is\n\
         makespan-preserving by construction (chain contraction, cost-pushing folds,\n\
         and redundant-dependency elimination are exact max-plus identities)."
    );
}

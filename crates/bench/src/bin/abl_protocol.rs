//! Ablation: eager vs. rendezvous protocol around the `S` threshold.
//!
//! LogGPS's `S` parameter switches messages from eager buffering to the
//! REQ/data/FIN handshake. The handshake multiplies the per-message
//! latency exposure (4 traversals instead of 1 — paper Fig. 14/15), so
//! latency sensitivity jumps discontinuously at `S`. The harness sweeps a
//! ping-pong's message size across the paper's threshold (256 KiB) and
//! reports runtime and λ_L on both sides.

use llamp_bench::{graph_of_with, s3, Table};
use llamp_core::Analyzer;
use llamp_model::LogGPSParams;
use llamp_schedgen::GraphConfig;
use llamp_trace::ProgramSet;
use llamp_util::time::us;

fn main() {
    let params = LogGPSParams::cscs_testbed(2).with_o(us(5.0));
    println!(
        "# Ablation — protocol crossover at S = 256 KiB (L = {} µs)\n",
        params.l / 1000.0
    );
    let mut t = Table::new(&["bytes", "protocol", "T [s]", "lambda", "tol 5% [µs]"]);

    for shift in [-2i64, -1, 0, 1, 2] {
        let bytes = (256 * 1024 + shift * 64 * 1024) as u64;
        let set = ProgramSet::spmd(2, |rank, b| {
            for i in 0..10 {
                b.comp(us(500.0));
                if rank == 0 {
                    b.send(1, bytes, i);
                    b.recv(1, bytes, 100 + i);
                } else {
                    b.recv(0, bytes, i);
                    b.send(0, bytes, 100 + i);
                }
            }
        });
        let graph = graph_of_with(&set, &GraphConfig::paper());
        let a = Analyzer::new(&graph, &params);
        let e = a.evaluate(params.l);
        let tol = a.tolerance_pct(5.0, params.l + us(100_000.0));
        t.row(vec![
            bytes.to_string(),
            if bytes >= 256 * 1024 {
                "rendezvous"
            } else {
                "eager"
            }
            .into(),
            s3(e.runtime),
            format!("{:.0}", e.lambda),
            format!("{:.1}", tol / 1000.0),
        ]);
    }
    t.print();
    println!(
        "\nCrossing S quadruples the latency traversals per message \
         (1 -> 4: REQ + three in the completion edges), visible as the λ_L \
         jump and the tolerance drop."
    );
}

//! Fig. 11 — Fat Tree vs. Dragonfly wire-latency analysis for ICON.
//!
//! The communication edges' latency is decomposed into
//! `wires·l_wire + switches·d_switch` (Zambre et al. numbers: 274 ns per
//! wire, 108 ns per switch) and `l_wire` becomes the decision variable.
//! The paper sweeps 274→424 ns (the anticipated FEC-induced increase) and
//! finds both topologies essentially unaffected — the 1% tolerance sits
//! beyond 3000 ns of per-wire latency — with Dragonfly marginally ahead
//! thanks to its lower average switch count.

use llamp_bench::{graph_of_with, linspace, s3, Table};
use llamp_core::{Analyzer, Binding};
use llamp_model::LogGPSParams;
use llamp_schedgen::GraphConfig;
use llamp_topo::{Dragonfly, FatTree, Topology};
use llamp_util::time::us;
use llamp_workloads::icon;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let ranks: u32 = if full { 256 } else { 64 };
    let d_switch = 108.0;
    let base_wire = 274.0;

    let set = icon::programs(&icon::Config::paper(ranks, 8));
    let graph = graph_of_with(&set, &GraphConfig::paper());
    let params = LogGPSParams::piz_daint(ranks).with_o(us(6.03));
    let placement: Vec<u32> = (0..ranks).collect(); // densely packed

    let ft = FatTree::new(16);
    let df = Dragonfly::paper();
    println!(
        "# Fig. 11 — ICON at {ranks} ranks: per-wire latency sweep (d_switch = {d_switch} ns)\n"
    );
    println!(
        "avg switches (first {ranks} nodes): fat tree {:.2}, dragonfly {:.2}\n",
        avg_switches(&ft, ranks),
        avg_switches(&df, ranks)
    );

    let mut t = Table::new(&["l_wire [ns]", "fat tree T [s]", "dragonfly T [s]"]);
    let a_ft = Analyzer::with_binding(
        &graph,
        Binding::wire(&params, &ft, &placement, d_switch),
        base_wire,
    );
    let a_df = Analyzer::with_binding(
        &graph,
        Binding::wire(&params, &df, &placement, d_switch),
        base_wire,
    );
    let prof_ft = a_ft.profile(base_wire, 5_000.0);
    let prof_df = a_df.profile(base_wire, 5_000.0);
    for w in linspace(base_wire, 424.0, 7) {
        t.row(vec![
            format!("{w:.0}"),
            s3(prof_ft.runtime(w)),
            s3(prof_df.runtime(w)),
        ]);
    }
    t.print();

    for (name, a) in [("fat tree", &a_ft), ("dragonfly", &a_df)] {
        let tol = a.tolerance_pct(1.0, 2_000_000.0);
        println!(
            "{name}: 1% degradation at l_wire = base + {:.0} ns (absolute {:.0} ns)",
            tol,
            base_wire + tol
        );
    }
    println!(
        "\nBoth topologies absorb the anticipated FEC increase (274→424 ns) \
         without measurable impact, as in the paper (§IV-2)."
    );
}

fn avg_switches<T: Topology>(t: &T, n: u32) -> f64 {
    let mut sum = 0u64;
    let mut cnt = 0u64;
    for a in 0..n {
        for b in (a + 1)..n {
            sum += t.profile(a, b).switches as u64;
            cnt += 1;
        }
    }
    sum as f64 / cnt as f64
}

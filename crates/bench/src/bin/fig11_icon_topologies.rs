//! Fig. 11 — Fat Tree vs. Dragonfly wire-latency analysis for ICON,
//! expressed as one `llamp-engine` campaign.
//!
//! The communication edges' latency is decomposed into
//! `wires·l_wire + switches·d_switch` (Zambre et al. numbers: 274 ns per
//! wire, 108 ns per switch) and `l_wire` becomes the decision variable.
//! The paper sweeps 274→424 ns (the anticipated FEC-induced increase) and
//! finds both topologies essentially unaffected — the 1% tolerance sits
//! far beyond the FEC range — with Dragonfly marginally ahead thanks to
//! its lower average switch count. Here both topologies are cells of a
//! single campaign: the engine runs them in parallel and the figure is
//! read off the campaign result.

use llamp_bench::{s3, Table};
use llamp_engine::{
    run_campaign, Backend, CampaignSpec, ExecutorConfig, GridSpec, ParamsPreset, ParamsSpec,
    ResultCache, SweepStart, TopologySpec, WorkloadSpec,
};
use llamp_topo::{Dragonfly, FatTree, Topology};
use llamp_util::time::us;
use llamp_workloads::App;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let ranks: u32 = if full { 256 } else { 64 };
    let d_switch = 108.0;
    let base_wire = 274.0;

    let mut spec = CampaignSpec {
        name: "fig11-icon-topologies".into(),
        workloads: vec![WorkloadSpec {
            app: App::Icon,
            ranks,
            iters: 8,
            o_ns: Some(us(6.03)),
        }],
        topologies: vec![
            TopologySpec::FatTree {
                k: 16,
                l_wire_ns: base_wire,
                d_switch_ns: d_switch,
            },
            TopologySpec::Dragonfly {
                groups: 8,
                routers: 4,
                hosts: 8,
                l_wire_ns: base_wire,
                d_switch_ns: d_switch,
            },
        ],
        params: vec![ParamsSpec {
            preset: ParamsPreset::PizDaint,
            l_ns: None,
            o_ns: None,
            s_bytes: None,
        }],
        backends: vec![Backend::Parametric],
        grid: GridSpec {
            // 274 → 424 ns as added wire latency above the base.
            deltas_ns: (0..7).map(|i| 150.0 * i as f64 / 6.0).collect(),
            search_hi_ns: 2_000_000.0,
        },
        axes: vec![],
        reduce: true,
        sweep_start: SweepStart::Auto,
    };
    spec.canonicalize();

    println!(
        "# Fig. 11 — ICON at {ranks} ranks: per-wire latency sweep (d_switch = {d_switch} ns)\n"
    );
    println!(
        "avg switches (first {ranks} nodes): fat tree {:.2}, dragonfly {:.2}\n",
        avg_switches(&FatTree::new(16), ranks),
        avg_switches(&Dragonfly::paper(), ranks)
    );

    let (result, summary) = run_campaign(&spec, &ExecutorConfig::default(), &ResultCache::new());
    let by_topo = |pat: &str| {
        result
            .scenarios
            .iter()
            .find(|s| s.scenario.topology.canonical().starts_with(pat))
            .and_then(|s| s.outcome.as_ref().ok())
            .unwrap_or_else(|| panic!("{pat} scenario answered"))
    };
    let ft = by_topo("fattree");
    let df = by_topo("dragonfly");

    let mut t = Table::new(&["l_wire [ns]", "fat tree T [s]", "dragonfly T [s]"]);
    for (pf, pd) in ft.sweep.iter().zip(&df.sweep) {
        t.row(vec![
            format!("{:.0}", base_wire + pf.delta_l_ns),
            s3(pf.runtime_ns),
            s3(pd.runtime_ns),
        ]);
    }
    t.print();

    for (name, o) in [("fat tree", ft), ("dragonfly", df)] {
        if o.zones.pct1_ns.is_finite() {
            println!(
                "{name}: 1% degradation at l_wire = base + {:.0} ns (absolute {:.0} ns)",
                o.zones.pct1_ns,
                base_wire + o.zones.pct1_ns
            );
        } else {
            println!(
                "{name}: no 1% degradation within {:.0} ns of added wire latency",
                spec.grid.search_hi_ns
            );
        }
    }
    println!(
        "\nBoth topologies absorb the anticipated FEC increase (274→424 ns) \
         without measurable impact, as in the paper (§IV-2).\n\
         [engine: {}]",
        summary.render().replace('\n', "; ")
    );
}

fn avg_switches<T: Topology>(t: &T, n: u32) -> f64 {
    let mut sum = 0u64;
    let mut cnt = 0u64;
    for a in 0..n {
        for b in (a + 1)..n {
            sum += t.profile(a, b).switches as u64;
            cnt += 1;
        }
    }
    sum as f64 / cnt as f64
}

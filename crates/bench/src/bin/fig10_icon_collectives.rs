//! Fig. 10 — impact of the allreduce algorithm on ICON.
//!
//! ICON is traced once per scale; Schedgen substitutes `MPI_Allreduce`
//! with recursive doubling or the ring algorithm (§IV-1). The paper finds
//! ring allreduce dramatically *less* latency tolerant (at 256 nodes the
//! 5% tolerance shrinks ~4×) with a much larger λ_L, because the ring's
//! `2(P−1)` steps are fully dependent.

use llamp_bench::{graph_of_with, linspace, pct2, s3, us1, Table};
use llamp_core::Analyzer;
use llamp_model::LogGPSParams;
use llamp_schedgen::{AllreduceAlgo, GraphConfig};
use llamp_util::time::us;
use llamp_workloads::icon;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scales: Vec<u32> = if full {
        vec![32, 64, 256]
    } else {
        vec![16, 32, 64]
    };

    println!("# Fig. 10 — ICON: recursive doubling vs. ring allreduce\n");
    let mut summary = Table::new(&[
        "ranks",
        "algorithm",
        "T0 [s]",
        "5% tol [µs]",
        "lambda@100µs",
        "rho@100µs",
    ]);

    for &ranks in &scales {
        let set = icon::programs(&icon::Config::paper(ranks, 8));
        let params = LogGPSParams::piz_daint(ranks).with_o(us(8.5));
        for (label, algo) in [
            ("recursive-doubling", AllreduceAlgo::RecursiveDoubling),
            ("ring", AllreduceAlgo::Ring),
        ] {
            let mut cfg = GraphConfig::paper();
            cfg.collectives.allreduce = algo;
            let graph = graph_of_with(&set, &cfg);
            let a = Analyzer::new(&graph, &params);
            let zones = a.tolerance_zones(params.l + us(100_000.0));
            let at100 = a.evaluate(params.l + us(100.0));
            summary.row(vec![
                ranks.to_string(),
                label.into(),
                s3(zones.baseline_runtime),
                us1(zones.pct5),
                format!("{:.0}", at100.lambda),
                pct2(at100.rho(params.l + us(100.0))),
            ]);
        }
    }
    summary.print();

    // Detailed λ_L curves at the largest scale, like the bottom panels.
    let ranks = *scales.last().unwrap();
    let set = icon::programs(&icon::Config::paper(ranks, 8));
    let params = LogGPSParams::piz_daint(ranks).with_o(us(6.03));
    println!("\n## λ_L(∆L) at {ranks} ranks");
    let mut t = Table::new(&["dL [µs]", "lambda (recdub)", "lambda (ring)"]);
    let mut cfg_rd = GraphConfig::paper();
    cfg_rd.collectives.allreduce = AllreduceAlgo::RecursiveDoubling;
    let mut cfg_ring = GraphConfig::paper();
    cfg_ring.collectives.allreduce = AllreduceAlgo::Ring;
    let a_rd = Analyzer::new(&graph_of_with(&set, &cfg_rd), &params);
    let a_ring = Analyzer::new(&graph_of_with(&set, &cfg_ring), &params);
    let prof_rd = a_rd.profile(params.l, params.l + us(1000.0));
    let prof_ring = a_ring.profile(params.l, params.l + us(1000.0));
    for d in linspace(0.0, us(1000.0), 11) {
        t.row(vec![
            us1(d),
            format!("{:.0}", prof_rd.lambda(params.l + d)),
            format!("{:.0}", prof_ring.lambda(params.l + d)),
        ]);
    }
    t.print();

    let tol_rd = a_rd.tolerance_pct(5.0, params.l + us(1_000_000.0));
    let tol_ring = a_ring.tolerance_pct(5.0, params.l + us(1_000_000.0));
    println!(
        "\n5% tolerance at {ranks} ranks: recdub {} µs vs ring {} µs ({:.1}x) — paper: ~4x at 256 nodes",
        us1(tol_rd),
        us1(tol_ring),
        tol_rd / tol_ring.max(1.0),
    );
}

//! Fig. 9 + Table II — the validation experiment.
//!
//! For every application and node configuration: sweep `∆L`, compare
//! measured (simulated under the delay-thread injector with noise) against
//! LLAMP's prediction, report RRMSE, the λ_L and ρ_L curves, and the
//! 1/2/5% tolerance markers. Finishes with the Table II summary (events,
//! matched `o`, RMSE, RRMSE).
//!
//! Scales are reduced relative to the paper (8/16/32 ranks, 10 outer
//! iterations) so the whole harness runs in minutes; pass `--full` for
//! 8/32/64 ranks.

use llamp_bench::{graph_of, linspace, pct2, s3, us1, Experiment, Table};
use llamp_core::Analyzer;
use llamp_util::stats;
use llamp_util::time::us;
use llamp_workloads::App;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scales: Vec<u32> = if full {
        vec![8, 32, 64]
    } else {
        vec![8, 16, 32]
    };
    let iters = 10;

    let mut table2 = Table::new(&["app", "ranks", "o [µs]", "events", "RMSE [s]", "RRMSE"]);

    for app in App::ALL {
        // ICON tolerates ~10x more latency: sweep a wider window like the
        // paper's bottom row (0..1000 µs vs 0..100 µs).
        let sweep_hi = if app == App::Icon {
            us(1000.0)
        } else {
            us(100.0)
        };
        for &ranks in &scales {
            let exp = Experiment::from_app(app, ranks, iters);
            let a = exp.analyzer();
            let zones = a.tolerance_zones(exp.params.l + 100.0 * sweep_hi);

            let deltas = linspace(0.0, sweep_hi, 11);
            let mut measured = Vec::with_capacity(deltas.len());
            let mut predicted = Vec::with_capacity(deltas.len());
            let mut rows =
                Table::new(&["dL [µs]", "measured [s]", "predicted [s]", "lambda", "rho"]);
            for &d in &deltas {
                let m = exp.measure(d, 3);
                let e = a.evaluate(exp.params.l + d);
                measured.push(m);
                predicted.push(e.runtime);
                rows.row(vec![
                    us1(d),
                    s3(m),
                    s3(e.runtime),
                    format!("{:.0}", e.lambda),
                    pct2(e.rho(exp.params.l + d)),
                ]);
            }
            let rmse = stats::rmse(&predicted, &measured);
            let rrmse = stats::rrmse(&predicted, &measured);

            println!("## {} ({} iters)", exp.name, iters);
            rows.print();
            println!(
                "tolerances: 1% = {} µs, 2% = {} µs, 5% = {} µs   RRMSE = {}",
                us1(zones.pct1),
                us1(zones.pct2),
                us1(zones.pct5),
                pct2(rrmse),
            );
            println!();

            let events = graph_of(&app.programs(ranks, iters)).num_vertices();
            table2.row(vec![
                app.name().into(),
                ranks.to_string(),
                format!("{:.1}", exp.params.o / 1_000.0),
                events.to_string(),
                format!("{:.4}", rmse / 1e9),
                pct2(rrmse),
            ]);
        }
    }

    println!("# Table II — validation summary");
    table2.print();

    // Sanity verdicts mirroring the paper's headline claims.
    println!();
    let milc = Analyzer::new(
        &graph_of(&App::Milc.programs(8, iters)),
        &llamp_model::LogGPSParams::cscs_testbed(8).with_o(App::Milc.paper_o()),
    );
    let icon = Analyzer::new(
        &graph_of(&App::Icon.programs(8, iters)),
        &llamp_model::LogGPSParams::cscs_testbed(8).with_o(App::Icon.paper_o()),
    );
    let tm = milc.tolerance_zones(us(100_000.0)).pct1;
    let ti = icon.tolerance_zones(us(100_000.0)).pct1;
    println!(
        "headline check: MILC 1% tolerance ({} µs) << ICON ({} µs): {}",
        us1(tm),
        us1(ti),
        if ti > 5.0 * tm {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    );
}

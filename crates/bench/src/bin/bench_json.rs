//! Machine-readable LP solver benchmark: cold anchor solves and warm
//! sweeps per workload, written to `BENCH_lp.json` so the perf trajectory
//! is tracked across PRs (append-friendly: one self-contained JSON file
//! per run, overwritten in place).
//!
//! ```text
//! cargo run --release -p llamp-bench --bin bench_json [-- --out FILE]
//! ```
//!
//! For each bundled workload (8 ranks, 1 iteration — the `sweep64` bench
//! shape) it reports the Algorithm-1 LP rows of the **raw** graph vs the
//! **reduced** graph (the graph-reduction pipeline is the engine's
//! default since ISSUE 5), per-stage wall clocks for trace ingestion and
//! graph reduction, the *cold* sparse anchor solve on the reduced LP (the
//! price every campaign pays once per scenario), a warm 64-point sweep
//! through the parametric backend, and the solver's iteration count.

use llamp_bench::{graph_of, linspace};
use llamp_core::{Binding, CrashKind, GraphLp, ReduceConfig};
use llamp_model::LogGPSParams;
use llamp_util::time::us;
use llamp_workloads::App;
use std::time::Instant;

struct Row {
    workload: &'static str,
    rows_raw: u64,
    rows_reduced: u64,
    ingest_ms: f64,
    reduce_ms: f64,
    cold_anchor_ms: f64,
    cold_iterations: u64,
    crash_topo_iterations: u64,
    warm_sweep_ms: f64,
    warm_points: usize,
    lu_reuse: u64,
}

/// Drain the obs recorder and read the `lp.lu_reuse` counter (the number
/// of LU factorisations the shared-LU path skipped: basis adoptions at
/// install plus factor takeovers at extraction).
fn take_lu_reuse() -> u64 {
    let snapshot = llamp_obs::take();
    snapshot
        .summary()
        .counters
        .iter()
        .find(|(k, _)| k == "lp.lu_reuse")
        .map(|&(_, v)| v)
        .unwrap_or(0)
}

fn main() {
    llamp_util::tune_for_large_traces();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_lp.json".to_string();
    let mut skip_large = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a value").clone(),
            "--skip-large" => skip_large = true,
            other => panic!("unknown argument {other}"),
        }
    }

    let params = LogGPSParams::cscs_testbed(8).with_o(us(6.0));
    let binding = Binding::uniform(&params);
    let deltas = linspace(0.0, us(60.0), 64);

    let mut rows: Vec<Row> = Vec::new();
    for app in App::ALL {
        // Per-stage wall clocks: trace replay + graph compile (ingest),
        // then the makespan-preserving contraction passes (reduce).
        let t_ingest = Instant::now();
        let raw = graph_of(&app.programs(8, 1));
        let ingest_ms = t_ingest.elapsed().as_secs_f64() * 1e3;
        let t_reduce = Instant::now();
        let reduced = raw.reduced(&ReduceConfig::default());
        let reduce_ms = t_reduce.elapsed().as_secs_f64() * 1e3;
        let stats = *reduced.stats();
        let graph = reduced.graph();
        let num_rows = GraphLp::build(graph, &binding).model().num_constraints();
        assert_eq!(num_rows as u64, stats.rows_after, "row estimate is exact");

        // Cold anchor: a fresh sparse backend solving at the base latency
        // from the longest-path crash basis — the per-scenario campaign
        // cost. Best of three fresh solves, so one cold-cache outlier
        // cannot distort the tracked trajectory.
        let mut cold_anchor_ms = f64::INFINITY;
        let mut lp = GraphLp::build_named(graph, &binding, "sparse").unwrap();
        let mut anchor = lp.predict(params.l).expect("anchor solves");
        for _ in 0..3 {
            lp = GraphLp::build_named(graph, &binding, "sparse").unwrap();
            let t0 = Instant::now();
            anchor = lp.predict(params.l).expect("anchor solves");
            cold_anchor_ms = cold_anchor_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        }

        // Crash comparison: the same cold anchor from the historic
        // topological (largest-constant) heuristic, tracking what the
        // exact longest-path crash saves in iterations.
        let mut topo = GraphLp::build_named(graph, &binding, "sparse").unwrap();
        topo.set_crash_kind(CrashKind::Topological);
        let crash_topo_iterations = topo.predict(params.l).expect("anchor solves").iterations;

        // Warm sweep: every point seeded from the anchor basis — the
        // engine's access pattern under the `anchor` sweep-start policy
        // (what `auto` resolves to below the 10k-row threshold). The
        // recorder counts how many factorisations the shared-LU path
        // saves even here: stability-window points adopt the previous
        // point's LU at install.
        let anchor_basis = lp.warm_basis().expect("anchor leaves a basis");
        let mut warm = GraphLp::build_named(graph, &binding, "parametric").unwrap();
        warm.seed_backend(&anchor_basis);
        llamp_obs::enable();
        let t1 = Instant::now();
        let mut acc = 0.0;
        for &d in &deltas {
            warm.seed_backend(&anchor_basis);
            acc += warm
                .predict(params.l + d)
                .expect("sweep point solves")
                .runtime;
        }
        let warm_sweep_ms = t1.elapsed().as_secs_f64() * 1e3;
        let lu_reuse = take_lu_reuse();
        llamp_obs::disable();
        assert!(acc.is_finite());

        eprintln!(
            "{:<12} rows {:>5} -> {:>4} ({:.1}x)  ingest {:>6.2} ms  reduce {:>6.2} ms  \
             cold anchor {:>8.3} ms ({} iters; topo crash {})  warm 64-pt sweep {:>8.2} ms  \
             lu reuse {}",
            app.name().to_ascii_lowercase(),
            stats.rows_before,
            stats.rows_after,
            stats.rows_before as f64 / stats.rows_after as f64,
            ingest_ms,
            reduce_ms,
            cold_anchor_ms,
            anchor.iterations,
            crash_topo_iterations,
            warm_sweep_ms,
            lu_reuse
        );
        rows.push(Row {
            workload: app.name(),
            rows_raw: stats.rows_before,
            rows_reduced: stats.rows_after,
            ingest_ms,
            reduce_ms,
            cold_anchor_ms,
            cold_iterations: anchor.iterations,
            crash_topo_iterations,
            warm_sweep_ms,
            warm_points: deltas.len(),
            lu_reuse,
        });
    }

    // Large-trace tier, two entries (skipped with `--skip-large`):
    //
    // * `large_trace` — LULESH inflated to ~10⁶ vertices (16 ranks, 430
    //   outer iterations, the `llamp gen` stress shape). Tracks the
    //   streaming-ingest and partitioned-reduction wall clocks at one
    //   worker vs one-per-core, and asserts thread-count determinism.
    // * `large_lp` — the LP solved on the *same* ~10⁶-vertex shape
    //   (137k reduced rows). The longest-path crash basis makes the cold
    //   anchor a factorisation plus one pricing pass (no pivots), so the
    //   anchor lands well under a second where the topological heuristic
    //   took minutes. The 64-point sweep here starts every point from
    //   its own crash basis (the `crash` sweep-start policy, what `auto`
    //   resolves to above 10k rows): at this scale the crash is optimal
    //   at the point, so a "cold" start beats warm re-solves from the
    //   anchor basis, whose far points pay thousands of pivots (measured
    //   ~25 min for the same sweep). Two effects stack on top: inside a
    //   stability region consecutive crash bases coincide, so the
    //   shared-LU path (`lp.lu_reuse`) skips the refactorisation, and
    //   crash-started points are independent, so they shard across the
    //   work-stealing executor — `sweep_ms` reports the sharded wall
    //   clock, `sweep_ms_t1` the serial one, and the run asserts the two
    //   produce bit-identical runtimes (thread-count determinism).
    let mut large_json = String::new();
    if !skip_large {
        let set = llamp_workloads::scaled(App::Lulesh, 2, 430);
        let t_ingest = Instant::now();
        let raw = graph_of(&set);
        let ingest_ms = t_ingest.elapsed().as_secs_f64() * 1e3;
        let (vertices, edges) = (raw.num_vertices(), raw.num_edges());

        let t1 = Instant::now();
        let r1 = raw.reduced(&ReduceConfig {
            threads: 1,
            ..ReduceConfig::default()
        });
        let reduce_ms_t1 = t1.elapsed().as_secs_f64() * 1e3;
        let reduce_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let tn = Instant::now();
        let rn = raw.reduced(&ReduceConfig::default());
        let reduce_ms_tn = tn.elapsed().as_secs_f64() * 1e3;
        // Thread-count determinism is a hard invariant, so the bench
        // asserts it on every run rather than trusting the test suite.
        assert_eq!(
            format!("{:?}", r1.stats()),
            format!("{:?}", rn.stats()),
            "partitioned reduction diverged between 1 and {reduce_threads} workers"
        );
        eprintln!(
            "large-trace   lulesh x(2,430)  {vertices} verts / {edges} edges  \
             ingest {ingest_ms:.0} ms  reduce t1 {reduce_ms_t1:.0} ms / \
             t{reduce_threads} {reduce_ms_tn:.0} ms  rows -> {}",
            rn.stats().rows_after
        );

        let params_l = LogGPSParams::cscs_testbed(raw.nranks()).with_o(us(6.0));
        let binding_l = Binding::uniform(&params_l);
        let graph = rn.graph();
        let mut lp = GraphLp::build_named(graph, &binding_l, "sparse").unwrap();
        let t_cold = Instant::now();
        let anchor = lp.predict(params_l.l).expect("large anchor solves");
        let cold_anchor_ms = t_cold.elapsed().as_secs_f64() * 1e3;

        // Serial crash-start sweep, with the recorder counting how many
        // LU factorisations the shared-LU path skipped.
        llamp_obs::enable();
        let t_sweep = Instant::now();
        let mut runtimes_t1 = Vec::with_capacity(deltas.len());
        for &d in &deltas {
            lp.reset_backend();
            runtimes_t1.push(
                lp.predict(params_l.l + d)
                    .expect("large sweep point solves")
                    .runtime,
            );
        }
        let sweep_ms_t1 = t_sweep.elapsed().as_secs_f64() * 1e3;
        let lu_reuse = take_lu_reuse();
        llamp_obs::disable();

        // The same sweep sharded across the work-stealing executor with
        // per-worker solver clones — the engine's intra-scenario path.
        let sweep_threads = reduce_threads;
        let chunk_len = deltas.len().div_ceil(sweep_threads);
        let chunks: Vec<Vec<f64>> = deltas.chunks(chunk_len).map(<[f64]>::to_vec).collect();
        let cfg = llamp_engine::ExecutorConfig {
            threads: sweep_threads,
            job_timeout: None,
            max_retries: 0,
            ..Default::default()
        };
        let t_shard = Instant::now();
        let outs = llamp_engine::run_jobs(&cfg, chunks, |chunk: &Vec<f64>| {
            let mut lp = GraphLp::build_named(graph, &binding_l, "sparse").unwrap();
            let mut rts = Vec::with_capacity(chunk.len());
            for &d in chunk {
                lp.reset_backend();
                rts.push(
                    lp.predict(params_l.l + d)
                        .expect("large sweep point solves")
                        .runtime,
                );
            }
            rts
        });
        let sweep_ms = t_shard.elapsed().as_secs_f64() * 1e3;
        let runtimes_tn: Vec<f64> = outs
            .into_iter()
            .flat_map(|s| s.ok().expect("sweep shard completes"))
            .collect();
        assert_eq!(
            runtimes_t1.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            runtimes_tn.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            "sharded sweep diverged from serial between 1 and {sweep_threads} workers"
        );
        eprintln!(
            "large-lp      lulesh x(2,430)  {vertices} verts  rows {} -> {}  \
             cold anchor {cold_anchor_ms:.0} ms ({} iters)  \
             crash-start 64-pt sweep t1 {sweep_ms_t1:.0} ms / \
             t{sweep_threads} {sweep_ms:.0} ms  lu reuse {lu_reuse}",
            rn.stats().rows_before,
            rn.stats().rows_after,
            anchor.iterations
        );

        large_json = format!(
            "  \"large_trace\": {{\"workload\": \"lulesh\", \"rank_mult\": 2, \"iter_mult\": 430, \
             \"vertices\": {vertices}, \"edges\": {edges}, \"rows_reduced\": {}, \
             \"ingest_ms\": {ingest_ms:.3}, \"reduce_ms_t1\": {reduce_ms_t1:.3}, \
             \"reduce_ms_tn\": {reduce_ms_tn:.3}, \"reduce_threads\": {reduce_threads}}},\n  \
             \"large_lp\": {{\"workload\": \"lulesh\", \"rank_mult\": 2, \"iter_mult\": 430, \
             \"vertices\": {vertices}, \"rows_raw\": {}, \"rows_reduced\": {}, \
             \"cold_anchor_ms\": {cold_anchor_ms:.3}, \"cold_iterations\": {}, \
             \"sweep_ms\": {sweep_ms:.3}, \"sweep_ms_t1\": {sweep_ms_t1:.3}, \
             \"sweep_threads\": {sweep_threads}, \"sweep_points\": {}, \
             \"sweep_start\": \"crash\", \"lu_reuse\": {lu_reuse}}},\n",
            rn.stats().rows_after,
            rn.stats().rows_before,
            rn.stats().rows_after,
            anchor.iterations,
            deltas.len()
        );
    }

    let mut json = format!("{{\n  \"bench\": \"lp_solver\",\n{large_json}  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"rows_raw\": {}, \"rows_reduced\": {}, \
             \"ingest_ms\": {:.3}, \"reduce_ms\": {:.3}, \
             \"cold_anchor_ms\": {:.3}, \"cold_iterations\": {}, \
             \"crash\": {{\"longest_path_iters\": {}, \"topological_iters\": {}}}, \
             \"warm_sweep_ms\": {:.3}, \"warm_points\": {}, \
             \"sweep_start\": \"anchor\", \"lu_reuse\": {}}}{}\n",
            r.workload.to_ascii_lowercase(),
            r.rows_raw,
            r.rows_reduced,
            r.ingest_ms,
            r.reduce_ms,
            r.cold_anchor_ms,
            r.cold_iterations,
            r.cold_iterations,
            r.crash_topo_iterations,
            r.warm_sweep_ms,
            r.warm_points,
            r.lu_reuse,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write bench json");
    eprintln!("wrote {out_path}");
}

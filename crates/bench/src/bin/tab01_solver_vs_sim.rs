//! Fig. 7 / Table I — analysis runtime: LLAMP vs. LogGOPSim.
//!
//! The paper iterates both tools over `L ∈ [3, 13] µs` in 1 µs steps
//! (Appendix E) and reports LLAMP (Gurobi) consistently >6× faster than
//! LogGOPSim. Here: "LLAMP" = chain-contraction presolve + the parametric
//! envelope backend (one pass yields the whole interval); "LogGOPSim" =
//! the discrete-event simulator run once per `L`. Event counts are the
//! graph sizes, as in Table I's third column.

use llamp_bench::{graph_of_with, Table};
use llamp_core::{Analyzer, Binding};
use llamp_model::LogGPSParams;
use llamp_schedgen::GraphConfig;
use llamp_sim::{SimConfig, Simulator};
use llamp_util::time::us;
use llamp_workloads::npb::{Config as NpbConfig, Kernel};
use llamp_workloads::App;
use std::time::Instant;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (ranks, iters) = if full { (64u32, 30usize) } else { (16, 10) };

    println!("# Table I — analysis runtime, L swept over [3, 13] µs in 1 µs steps\n");
    let mut t = Table::new(&[
        "application",
        "ranks",
        "events",
        "LLAMP [ms]",
        "DES [ms]",
        "speedup",
    ]);

    let mut cases: Vec<(String, llamp_schedgen::ExecGraph)> = Vec::new();
    for k in Kernel::ALL {
        let cfg = NpbConfig::class_c(k, ranks, iters);
        cases.push((
            k.name().into(),
            graph_of_with(&llamp_workloads::npb::programs(&cfg), &GraphConfig::paper()),
        ));
    }
    for app in [App::Lulesh, App::Lammps] {
        cases.push((
            app.name().into(),
            graph_of_with(&app.programs(ranks, iters), &GraphConfig::paper()),
        ));
    }

    let ls: Vec<f64> = (3..=13).map(|i| us(i as f64)).collect();
    for (name, graph) in &cases {
        let params = LogGPSParams::cscs_testbed(ranks).with_o(us(5.0));

        // LLAMP: contract once, envelope once, then read 11 points.
        let t0 = Instant::now();
        let analyzer = Analyzer::with_binding(graph, Binding::uniform(&params), params.l);
        let prof = analyzer.profile(ls[0], *ls.last().unwrap());
        let mut sink = 0.0;
        for &l in &ls {
            sink += prof.runtime(l) + prof.lambda(l);
        }
        let llamp_ms = t0.elapsed().as_secs_f64() * 1e3;

        // LogGOPSim role: one full DES replay per L value.
        let t0 = Instant::now();
        for &l in &ls {
            let cfg = SimConfig::ideal(params.with_l(l));
            sink += Simulator::new(graph, cfg).run().makespan;
        }
        let des_ms = t0.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(sink);

        t.row(vec![
            name.clone(),
            ranks.to_string(),
            graph.num_vertices().to_string(),
            format!("{llamp_ms:.1}"),
            format!("{des_ms:.1}"),
            format!("{:.1}x", des_ms / llamp_ms),
        ]);
    }
    t.print();
    println!(
        "\nLLAMP additionally yields λ_L and every critical latency in the \
         interval from the same single pass; the DES would need a parameter \
         sweep per metric (the paper's core argument, §II-D3)."
    );
}

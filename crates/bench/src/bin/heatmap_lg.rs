//! L × G heatmap — the flagship multi-parameter (axes) campaign: one
//! workload swept over the cartesian product of added latency `∆L` and
//! added per-byte gap `∆G`, answered by the warm-started multi-parameter
//! LP. Each cell reports the slowdown relative to the base point; the
//! companion table shows how the sensitivity pair `(λ_L, λ_G)` moves as
//! either parameter starts dominating the critical path.
//!
//! ```text
//! cargo run --release -p llamp-bench --bin heatmap_lg
//! ```

use llamp_bench::{app_campaign_axes_spec, campaign_axis, Table};
use llamp_engine::{run_campaign, Backend, ExecutorConfig, LpSolver, ResultCache, SweepParam};
use llamp_util::time::us;
use llamp_workloads::App;

fn main() {
    let app = App::Milc;
    let (ranks, iters) = (8, 2);
    let l_axis = campaign_axis(SweepParam::L, 0.0, us(100.0), 6);
    let g_axis = campaign_axis(SweepParam::G, 0.0, 1.0, 5);
    let l_deltas = l_axis.deltas.clone();
    let g_deltas = g_axis.deltas.clone();
    let spec = app_campaign_axes_spec(
        &[(app, ranks, iters)],
        &[Backend::Lp(LpSolver::Parametric)],
        vec![l_axis, g_axis],
        us(2_000.0),
    );

    let (result, summary) = run_campaign(&spec, &ExecutorConfig::default(), &ResultCache::new());
    let outcome = result.scenarios[0]
        .outcome
        .as_ref()
        .expect("heatmap campaign solves");
    let base = outcome.points[0].value.runtime_ns;

    println!(
        "# {} {ranks} ranks — runtime slowdown vs (∆L, ∆G), base T0 = {:.3} ms\n",
        app.name(),
        base / 1e6
    );
    let header: Vec<String> = std::iter::once("∆L \\ ∆G [ns/B]".to_string())
        .chain(g_deltas.iter().map(|g| format!("{g:.3}")))
        .collect();
    let mut slow = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    let mut lams = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for (i, dl) in l_deltas.iter().enumerate() {
        let mut srow = vec![format!("{:.0} µs", dl / 1_000.0)];
        let mut lrow = srow.clone();
        for j in 0..g_deltas.len() {
            let v = &outcome.points[i * g_deltas.len() + j].value;
            srow.push(format!("{:+.1}%", 100.0 * (v.runtime_ns / base - 1.0)));
            lrow.push(format!("{:.0}/{:.2e}", v.lambda_l, v.lambda_g));
        }
        slow.row(srow);
        lams.row(lrow);
    }
    println!("{}", slow.render());
    println!("\n# sensitivities λ_L / λ_G per cell\n");
    println!("{}", lams.render());
    eprintln!("\n{}", summary.render());
    let solver = summary.render_solver_stats();
    if !solver.is_empty() {
        eprintln!("{solver}");
    }
}

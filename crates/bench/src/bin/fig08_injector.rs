//! Fig. 8 — latency injector designs.
//!
//! Reproduces the two-send/two-recv experiment for each injector design
//! and checks the closed-form completion times of the paper's panels:
//!
//! * intended (A) / delay thread (D): `t_R0 = 2o`, `t_R1 = 3o+L₀+B+∆L`
//! * sender delay (B):                `t_R0 = 2o+2∆L`, `t_R1 = 3o+L₀+B+2∆L`
//! * progress thread (C):             `t_R0 = 2o`, `t_R1 = 2o+L₀+B+2∆L`

use llamp_bench::Table;
use llamp_model::LogGPSParams;
use llamp_sim::injector::{fig8_scenario, InjectorDesign};

fn main() {
    let params = LogGPSParams {
        l: 1_000.0,
        o: 300.0,
        g: 0.0,
        big_g: 1.0,
        big_o: 0.0,
        s: u64::MAX,
        p: 2,
    };
    let bytes = 101u64;
    let b = (bytes - 1) as f64 * params.big_g;
    let (o, l0) = (params.o, params.l);

    println!("# Fig. 8 — injector design comparison (o=300ns, L0=1µs, B=100ns)\n");
    for delta in [0.0, 1_000.0, 5_000.0, 20_000.0] {
        let mut t = Table::new(&["design", "t_R0 [ns]", "t_R1 [ns]", "expected t_R1", "ok"]);
        let cases = [
            (
                "B sender-delay",
                InjectorDesign::SenderDelay,
                3.0 * o + l0 + b + 2.0 * delta,
            ),
            (
                "C progress-thread",
                InjectorDesign::ProgressThread,
                if delta > o {
                    2.0 * o + l0 + b + 2.0 * delta
                } else {
                    3.0 * o + l0 + b + delta
                },
            ),
            (
                "D delay-thread",
                InjectorDesign::DelayThread,
                3.0 * o + l0 + b + delta,
            ),
        ];
        for (name, design, expect) in cases {
            let out = fig8_scenario(params, bytes, delta, design);
            let ok = (out.t_r1 - expect).abs() < 1e-6;
            t.row(vec![
                name.into(),
                format!("{:.0}", out.t_r0),
                format!("{:.0}", out.t_r1),
                format!("{expect:.0}"),
                if ok { "yes".into() } else { "NO".into() },
            ]);
        }
        println!("## ∆L = {delta} ns");
        t.print();
        println!();
    }
    println!(
        "Design D (the paper's delay thread) matches the intended flow-level \
         delay; B penalises the sender twice, C doubles ∆L once it exceeds o."
    );
}

//! Fig. 20 / Algorithm 3 — rank placement on ICON.
//!
//! The paper compares its sensitivity-guided iterative placement against
//! the MPI default (block) and Scotch (volume-based static mapping) on
//! ICON at 32 ranks / 4 nodes and 64 ranks / 8 nodes, finding small
//! (<1%, "inconclusive") improvements on the heavily-optimised ICON. The
//! harness also runs an adversarial pairwise-heavy pattern where the
//! sensitivity information matters and the gap is decisive.

use llamp_bench::{graph_of, Table};
use llamp_core::placement::{
    block_mapping, evaluate_mapping, llamp_placement, volume_greedy_mapping, Machine,
};
use llamp_model::LogGPSParams;
use llamp_trace::ProgramSet;
use llamp_util::time::us;
use llamp_workloads::icon;

fn ms3(ns: f64) -> String {
    format!("{:.3}", ns / 1e6)
}

fn main() {
    println!("# Fig. 20 — rank placement: block vs. LLAMP vs. volume-greedy (Scotch-like)\n");
    let mut t = Table::new(&[
        "workload",
        "ranks/nodes",
        "block [ms]",
        "LLAMP [ms]",
        "volume [ms]",
        "LLAMP gain",
    ]);

    for (ranks, nodes) in [(32u32, 4u32), (64, 8)] {
        let machine = Machine {
            nodes,
            slots_per_node: ranks / nodes,
            intra_l: 200.0,
            inter_l: 1_400.0,
        };
        let params = LogGPSParams::piz_daint(ranks).with_o(us(8.5));
        let graph = graph_of(&icon::programs(&icon::Config::paper(ranks, 6)));

        let block = block_mapping(ranks);
        let t_block = evaluate_mapping(&graph, &machine, &params, &block);
        let out = llamp_placement(&graph, &machine, &params, block.clone());
        let vol = volume_greedy_mapping(&graph, &machine);
        let t_vol = evaluate_mapping(&graph, &machine, &params, &vol);

        t.row(vec![
            "ICON".into(),
            format!("{ranks}/{nodes}"),
            ms3(t_block),
            ms3(out.runtime),
            ms3(t_vol),
            format!("{:.2}%", 100.0 * (t_block - out.runtime) / t_block),
        ]);
    }

    // Adversarial pattern: chatty pairs split across nodes by the block
    // mapping.
    let ranks = 16u32;
    let machine = Machine {
        nodes: 4,
        slots_per_node: 4,
        intra_l: 200.0,
        inter_l: 3_000.0,
    };
    let params = LogGPSParams::cscs_testbed(ranks).with_o(500.0);
    // Distinct per-pair weights keep the makespan strictly improving as
    // pairs are colocated (a flat objective stops the greedy loop — the
    // same early stop the paper's Algorithm 3 has).
    let set = ProgramSet::spmd(ranks, |rank, b| {
        let peer = (rank + ranks / 2) % ranks;
        let weight = 1.0 + (rank % (ranks / 2)) as f64 * 0.4;
        for i in 0..30 {
            b.comp(50_000.0 * weight);
            if rank < peer {
                b.send(peer, 4_096, i);
                b.recv(peer, 4_096, 1000 + i);
            } else {
                b.recv(peer, 4_096, i);
                b.send(peer, 4_096, 1000 + i);
            }
        }
    });
    let graph = graph_of(&set);
    let block = block_mapping(ranks);
    let t_block = evaluate_mapping(&graph, &machine, &params, &block);
    let out = llamp_placement(&graph, &machine, &params, block.clone());
    let vol = volume_greedy_mapping(&graph, &machine);
    let t_vol = evaluate_mapping(&graph, &machine, &params, &vol);
    t.row(vec![
        "pairwise-heavy".into(),
        format!("{ranks}/4"),
        ms3(t_block),
        ms3(out.runtime),
        ms3(t_vol),
        format!("{:.2}%", 100.0 * (t_block - out.runtime) / t_block),
    ]);

    t.print();
    println!(
        "\nICON gains are small (the paper calls its own <1% result \
         'inconclusive'); the adversarial pattern shows the algorithm \
         working when placement actually matters."
    );
}

//! Ablation: presolve at the three levels it happens in this toolchain.
//!
//! The paper credits solver presolve for much of LLAMP's speed (§II-D3:
//! "the presolve phase of the linear solver efficiently eliminates all
//! redundant constraints"). Here the same reduction happens in layers:
//!
//! 1. **naive LP** — one variable per vertex, one `≥` constraint per edge
//!    (the textbook transcription of the graph, no reductions);
//! 2. **Algorithm 1** — the paper's construction: single-predecessor
//!    vertices extend affine expressions instead of spawning
//!    variables/rows (an inlined presolve);
//! 3. **chain contraction** — the graph itself shrinks, which benefits the
//!    envelope/evaluation backends (the LP is already minimal after 2);
//! 4. **general LP presolve** (`llamp-lp::presolve`) — removes whatever
//!    redundancy remains in a naive model.

use llamp_bench::{graph_of, Table};
use llamp_core::{Binding, GraphLp};
use llamp_lp::presolve::presolve;
use llamp_lp::{LpModel, Objective, Relation};
use llamp_model::LogGPSParams;
use llamp_schedgen::ExecGraph;
use llamp_workloads::App;
use std::time::Instant;

/// Textbook formulation: variable per vertex, row per edge, no folding.
fn naive_lp(graph: &ExecGraph, binding: &Binding) -> LpModel {
    let mut m = LpModel::new(Objective::Minimize);
    let l = m.add_var("l", 0.0, f64::INFINITY, 0.0);
    let t = m.add_var("t", f64::NEG_INFINITY, f64::INFINITY, 1.0);
    let vars: Vec<_> = (0..graph.num_vertices() as u32)
        .map(|v| m.add_var(format!("v{v}"), 0.0, f64::INFINITY, 0.0))
        .collect();
    for v in 0..graph.num_vertices() as u32 {
        let vert = graph.vertex(v);
        let (vc, vm) = binding.bind(&vert.cost, vert.rank, vert.rank);
        for e in graph.preds(v) {
            let urank = graph.vertex(e.other).rank;
            let (ec, em) = binding.bind(&e.cost, urank, vert.rank);
            // T_v >= T_u + edge + own cost.
            let mut terms = vec![(vars[v as usize], 1.0), (vars[e.other as usize], -1.0)];
            let mcoef = em + vm;
            if mcoef != 0.0 {
                terms.push((l, -mcoef));
            }
            m.add_constraint(format!("e{}_{v}", e.other), &terms, Relation::Ge, ec + vc);
        }
        if graph.preds(v).is_empty() {
            let mut terms = vec![(vars[v as usize], 1.0)];
            if vm != 0.0 {
                terms.push((l, -vm));
            }
            m.add_constraint(format!("root{v}"), &terms, Relation::Ge, vc);
        }
        if graph.succs(v).is_empty() {
            m.add_constraint(
                format!("sink{v}"),
                &[(t, 1.0), (vars[v as usize], -1.0)],
                Relation::Ge,
                0.0,
            );
        }
    }
    m
}

fn main() {
    let ranks = 8u32;
    let iters = 2usize;
    println!("# Ablation — presolve layers (naive LP vs Algorithm 1 vs contraction)\n");
    let mut t = Table::new(&[
        "app",
        "vertices",
        "contracted",
        "naive rows",
        "Alg.1 rows",
        "naive solve [ms]",
        "Alg.1 solve [ms]",
        "ΔT",
    ]);

    for app in [App::Milc, App::Icon, App::Lammps, App::Openmx] {
        let graph = graph_of(&app.programs(ranks, iters));
        let contracted = graph.contracted();
        let params = LogGPSParams::cscs_testbed(ranks).with_o(app.paper_o());
        let binding = Binding::uniform(&params);

        let naive = naive_lp(&contracted, &binding);
        let mut alg1 = GraphLp::build(&contracted, &binding);

        let t0 = Instant::now();
        let mut naive_model = naive.clone();
        naive_model.set_var_lb(llamp_lp::VarId(0), params.l);
        let naive_obj = naive_model.solve().map(|s| s.objective());
        let naive_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let p = alg1.predict(params.l).unwrap();
        let alg1_ms = t0.elapsed().as_secs_f64() * 1e3;

        let dt = naive_obj.map(|o| (o - p.runtime).abs()).unwrap_or(f64::NAN);
        t.row(vec![
            app.name().into(),
            graph.num_vertices().to_string(),
            contracted.num_vertices().to_string(),
            naive.num_constraints().to_string(),
            alg1.model().num_constraints().to_string(),
            format!("{naive_ms:.1}"),
            format!("{alg1_ms:.1}"),
            format!("{dt:.1e}"),
        ]);
    }
    t.print();

    // Layer 4: general LP presolve on a naive model.
    let graph = graph_of(&App::Openmx.programs(ranks, iters)).contracted();
    let params = LogGPSParams::cscs_testbed(ranks).with_o(App::Openmx.paper_o());
    let naive = naive_lp(&graph, &Binding::uniform(&params));
    let pre = presolve(&naive).expect("feasible");
    println!(
        "\nGeneral LP presolve on OpenMX's naive model: {} of {} rows removed, {} vars fixed.",
        pre.rows_removed,
        naive.num_constraints(),
        pre.vars_removed
    );
    println!(
        "Algorithm 1's affine accumulation is itself the decisive presolve: it \
         folds every single-predecessor vertex, which is why chain contraction \
         leaves the LP row count unchanged (it still shrinks the graph ~35% for \
         the envelope and evaluation backends)."
    );
}

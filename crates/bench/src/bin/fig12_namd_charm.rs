//! Fig. 12 — NAMD / charm++ dynamic scheduling.
//!
//! charm++ adapts its schedule to the network: a trace recorded under
//! injected latency `∆L*` already overlaps more communication, so a static
//! trace-based prediction is only faithful near `∆L*`. The harness records
//! proxy traces at several `∆L*`, predicts each trace's runtime across the
//! sweep, and "measures" by simulating the trace whose recording latency
//! matches the injected one — reproducing the fan of curves in Fig. 12.

use llamp_bench::{graph_of_with, linspace, s3, us1, Table};
use llamp_core::Analyzer;
use llamp_model::LogGPSParams;
use llamp_schedgen::GraphConfig;
use llamp_sim::{NoiseConfig, SimConfig, Simulator};
use llamp_util::time::us;
use llamp_workloads::namd;

fn main() {
    let ranks = 16u32;
    let steps = 8usize;
    let params = LogGPSParams::cscs_testbed(ranks).with_o(us(2.0));
    let recorded = [0.0, us(50.0), us(100.0)];

    println!("# Fig. 12 — charm++ adaptive scheduling (NAMD proxy, {ranks} ranks)\n");
    let mut t = Table::new(&[
        "dL [µs]",
        "measured [s]",
        "pred(trace@0) [s]",
        "pred(trace@50µs) [s]",
        "pred(trace@100µs) [s]",
    ]);

    let analyzers: Vec<Analyzer> = recorded
        .iter()
        .map(|&r| {
            let cfg = namd::Config::paper(ranks, steps, r);
            let g = graph_of_with(&namd::programs(&cfg), &GraphConfig::paper());
            Analyzer::new(&g, &params)
        })
        .collect();

    for d in linspace(0.0, us(150.0), 7) {
        // "Measured": the runtime re-schedules at each latency — simulate
        // the trace recorded closest to the injected latency.
        let closest = recorded
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - d).abs().partial_cmp(&(b.1 - d).abs()).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let cfg = namd::Config::paper(ranks, steps, recorded[closest]);
        let g = graph_of_with(&namd::programs(&cfg), &GraphConfig::paper());
        let sim = SimConfig::ideal(params)
            .with_delta_l(d)
            .with_noise(NoiseConfig::quiet(7));
        let measured = Simulator::new(&g, sim).run().makespan;

        let mut row = vec![us1(d), s3(measured)];
        for a in &analyzers {
            row.push(s3(a.evaluate(params.l + d).runtime));
        }
        t.row(row);
    }
    t.print();

    println!();
    for (i, a) in analyzers.iter().enumerate() {
        let tol = a.tolerance_pct(5.0, params.l + us(10_000.0));
        println!(
            "trace recorded at ∆L = {:>5} µs: 5% tolerance = {} µs",
            us1(recorded[i]),
            us1(tol)
        );
    }
    println!(
        "\nTraces recorded under higher latency predict flatter curves — the \
         runtime 'proactively adjusts its communication schedule' (paper §VI)."
    );
}

//! Ablation: the three analysis backends on identical questions.
//!
//! DESIGN.md commits this workspace to three cross-validated backends:
//! the simplex LP (the paper's formulation), the parametric envelope (the
//! scalable path), and direct graph evaluation. This harness checks the
//! three agree on runtime and λ_L across applications and reports their
//! costs side by side.

use llamp_bench::{graph_of, Table};
use llamp_core::{evaluate, Binding, GraphLp, ParametricProfile};
use llamp_model::LogGPSParams;
use llamp_util::time::us;
use llamp_workloads::App;
use std::time::Instant;

fn main() {
    let ranks = 8u32;
    let iters = 2usize; // dense simplex is O(rows^2) per pivot; keep rows modest
    println!("# Ablation — simplex vs. parametric vs. direct evaluation\n");
    let mut t = Table::new(&[
        "app", "LP rows", "simplex [ms]", "envelope [ms]", "eval [ms]", "max |ΔT|/T", "λ agree",
    ]);

    for app in App::ALL {
        let graph = graph_of(&app.programs(ranks, iters)).contracted();
        let params = LogGPSParams::cscs_testbed(ranks).with_o(app.paper_o());
        let binding = Binding::uniform(&params);
        let ls: Vec<f64> = (0..3).map(|i| params.l + us(30.0) * i as f64).collect();

        // The dense-inverse simplex is O(rows²) per pivot: beyond ~2500
        // rows the envelope backend is the designated path (DESIGN.md §5),
        // so the simplex leg is skipped there.
        let t0 = Instant::now();
        let mut lp = GraphLp::build(&graph, &binding);
        let run_simplex = lp.model().num_constraints() <= 2_500;
        let preds: Vec<_> = if run_simplex {
            ls.iter().map(|&l| lp.predict(l).unwrap()).collect()
        } else {
            Vec::new()
        };
        let simplex_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let prof = ParametricProfile::compute(&graph, &binding, (0.0, *ls.last().unwrap() + 1.0));
        let env_points: Vec<_> = ls.iter().map(|&l| (prof.runtime(l), prof.lambda(l))).collect();
        let envelope_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let evals: Vec<_> = ls.iter().map(|&l| evaluate(&graph, &binding, l)).collect();
        let eval_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut max_rel = 0.0f64;
        let mut lambda_ok = true;
        for i in 0..ls.len() {
            let (t_env, t_ev) = (env_points[i].0, evals[i].runtime);
            let base = t_ev.max(1.0);
            max_rel = max_rel.max((t_env - t_ev).abs() / base);
            if run_simplex {
                max_rel = max_rel.max((preds[i].runtime - t_ev).abs() / base);
            }
            // λ: compare envelope (right derivative) with evaluation; the
            // LP may legitimately return another subgradient at exact
            // breakpoints.
            if (env_points[i].1 - evals[i].lambda).abs() > 1e-6 {
                lambda_ok = false;
            }
        }

        t.row(vec![
            app.name().into(),
            lp.model().num_constraints().to_string(),
            if run_simplex { format!("{simplex_ms:.1}") } else { "- (>2500 rows)".into() },
            format!("{envelope_ms:.2}"),
            format!("{eval_ms:.2}"),
            format!("{max_rel:.2e}"),
            if lambda_ok { "yes".into() } else { "NO".into() },
        ]);
    }
    t.print();
    println!(
        "\nThe envelope backend answers the whole interval in one pass; the \
         simplex additionally provides duals/ranging; evaluation extracts \
         the critical path itself."
    );
}

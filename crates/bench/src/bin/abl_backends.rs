//! Ablation: the three analysis backends on identical questions — driven
//! as `llamp-engine` campaigns.
//!
//! One campaign per backend sweeps all applications in parallel over the
//! same latency grid; the campaign results are then cross-compared
//! point-for-point. Because scenario results are deterministic and
//! cache-addressed, the agreement check is exactly the engine's
//! cross-backend contract: all three must predict the same `T(L)`.
//!
//! The dense-inverse simplex is O(rows²) per pivot, so the LP campaign
//! only includes applications whose contracted model stays below the row
//! cap (DESIGN.md §5 designates the envelope as the at-scale path).

use llamp_bench::{app_campaign_spec, campaign_grid, graph_of, Table};
use llamp_core::{Binding, GraphLp};
use llamp_engine::{run_campaign, Backend, ExecutorConfig, LpSolver, ResultCache, ScenarioResult};
use llamp_model::LogGPSParams;
use llamp_util::time::us;
use llamp_workloads::App;
use std::time::Instant;

const ROW_CAP: usize = 2_500;

fn main() {
    let ranks = 8u32;
    let iters = 2usize;
    println!("# Ablation — simplex vs. parametric vs. direct evaluation (engine campaigns)\n");

    // Probe model sizes once to decide LP eligibility. The probe's graphs
    // are discarded and each campaign rebuilds its own per scenario — the
    // engine owns graph construction so results stay cache-addressable —
    // which keeps the wall-clock column comparable across backends (every
    // campaign pays the identical build cost) at the price of redundant
    // construction in this harness.
    let mut rows_of = Vec::new();
    for app in App::ALL {
        let graph = graph_of(&app.programs(ranks, iters)).contracted();
        let params = LogGPSParams::cscs_testbed(ranks).with_o(app.paper_o());
        let lp = GraphLp::build(&graph, &Binding::uniform(&params));
        rows_of.push((app, lp.model().num_constraints()));
    }

    let all: Vec<(App, u32, usize)> = App::ALL.iter().map(|&a| (a, ranks, iters)).collect();
    let lp_apps: Vec<(App, u32, usize)> = rows_of
        .iter()
        .filter(|(_, rows)| *rows <= ROW_CAP)
        .map(|&(a, _)| (a, ranks, iters))
        .collect();
    let grid = || campaign_grid(0.0, us(60.0), 3, us(2_000.0));

    // One campaign per backend, individually timed. Fresh caches keep the
    // timing honest (no cross-backend reuse — keys differ per backend
    // anyway).
    let mut campaigns = Vec::new();
    for (backend, apps) in [
        (Backend::Eval, &all),
        (Backend::Parametric, &all),
        // Sparse and warm-started LP cover every app; the dense inverse
        // stays behind the row cap.
        (Backend::Lp(LpSolver::Sparse), &all),
        (Backend::Lp(LpSolver::Parametric), &all),
        (Backend::Lp(LpSolver::Dense), &lp_apps),
    ] {
        let spec = app_campaign_spec(apps, &[backend], grid());
        let t0 = Instant::now();
        let (result, summary) =
            run_campaign(&spec, &ExecutorConfig::default(), &ResultCache::new());
        campaigns.push((backend, result, summary, t0.elapsed().as_secs_f64() * 1e3));
    }

    let find = |backend: Backend, app: App| -> Option<&ScenarioResult> {
        campaigns
            .iter()
            .find(|(b, ..)| *b == backend)
            .and_then(|(_, r, ..)| {
                r.scenarios
                    .iter()
                    .find(|s| s.scenario.workload.app == app && s.outcome.is_ok())
            })
    };

    let mut t = Table::new(&["app", "LP rows", "simplex", "max |ΔT|/T", "λ agree"]);
    for &(app, rows) in &rows_of {
        let eval = find(Backend::Eval, app).expect("eval campaign covers all apps");
        let envl = find(Backend::Parametric, app).expect("parametric campaign covers all apps");
        let lp = find(Backend::Lp(LpSolver::Sparse), app);
        let pe = &eval.outcome.as_ref().unwrap().sweep;
        let pp = &envl.outcome.as_ref().unwrap().sweep;
        let pl = lp.map(|s| &s.outcome.as_ref().unwrap().sweep);

        let mut max_rel = 0.0f64;
        let mut lambda_ok = true;
        for i in 0..pe.len() {
            let base = pe[i].runtime_ns.max(1.0);
            max_rel = max_rel.max((pp[i].runtime_ns - pe[i].runtime_ns).abs() / base);
            if let Some(pl) = pl {
                max_rel = max_rel.max((pl[i].runtime_ns - pe[i].runtime_ns).abs() / base);
            }
            // λ: envelope (right derivative) vs. evaluation; the LP may
            // legitimately return another subgradient at breakpoints.
            if (pp[i].lambda - pe[i].lambda).abs() > 1e-6 {
                lambda_ok = false;
            }
        }
        t.row(vec![
            app.name().into(),
            rows.to_string(),
            if pl.is_some() {
                "yes".into()
            } else {
                "-".into()
            },
            format!("{max_rel:.2e}"),
            if lambda_ok { "yes".into() } else { "NO".into() },
        ]);
    }
    t.print();

    println!("\n## Campaign costs (all applications batched per backend)");
    let mut ct = Table::new(&["backend", "scenarios", "points", "wall [ms]"]);
    for (backend, result, summary, ms) in &campaigns {
        let points: usize = result
            .scenarios
            .iter()
            .filter_map(|s| s.outcome.as_ref().ok())
            .map(|o| o.sweep.len())
            .sum();
        ct.row(vec![
            backend.name().into(),
            summary.jobs_unique.to_string(),
            points.to_string(),
            format!("{ms:.1}"),
        ]);
    }
    ct.print();
    println!(
        "\nThe envelope backend answers the whole interval in one pass; the \
         simplex additionally provides duals/ranging; evaluation extracts \
         the critical path itself."
    );
}

//! Fig. 16 / Algorithm 2 — critical-latency search on the running example.
//!
//! The paper's running example (Fig. 4c): `T(L) = max(1.5, L + 1.115) µs`
//! with the critical latency at 0.385 µs. Algorithm 2 walks the interval
//! `[0.2, 0.5] µs` from the top using the solver's `SALBLow` ranging; the
//! parametric envelope produces the same breakpoints in closed form.

use llamp_bench::Table;
use llamp_core::{Binding, GraphLp, ParametricProfile};
use llamp_model::LogGPSParams;
use llamp_schedgen::{build_graph, GraphConfig};
use llamp_trace::{ProgramSet, TracerConfig};
use llamp_util::time::us;

fn main() {
    // Fig. 4c: c0 = 0.1 µs, c1 = c3 = 1 µs, c2 = 0.5 µs, s = 4 B, G = 5
    // ns/B, o = 0.
    let set = ProgramSet::spmd(2, |rank, b| {
        if rank == 0 {
            b.comp(100.0);
            b.send(1, 4, 0);
            b.comp(us(1.0));
        } else {
            b.comp(us(0.5));
            b.recv(0, 4, 0);
            b.comp(us(1.0));
        }
    });
    let g = build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::eager())
        .unwrap()
        .contracted();
    let binding = Binding::uniform(&LogGPSParams::didactic());

    println!("# Fig. 16 — Algorithm 2 on the running example over [0.2, 0.5] µs\n");
    let mut lp = GraphLp::build(&g, &binding);

    let mut t = Table::new(&["L [µs]", "T [µs]", "lambda", "SALBLow [µs]"]);
    // Walk like Algorithm 2, printing each iterate.
    let mut l = 500.0f64;
    loop {
        let p = lp.predict(l).unwrap();
        t.row(vec![
            format!("{:.3}", l / 1000.0),
            format!("{:.3}", p.runtime / 1000.0),
            format!("{:.0}", p.lambda),
            format!("{:.3}", p.l_feasible.0 / 1000.0),
        ]);
        if p.l_feasible.0 < 200.0 || !p.l_feasible.0.is_finite() {
            break;
        }
        l = (l - 100.0).min(p.l_feasible.0 - 1.0);
        if l < 200.0 {
            break;
        }
    }
    t.print();

    let lcs = lp.critical_latencies(200.0, 500.0, 100.0, 0.01).unwrap();
    println!(
        "\nAlgorithm 2 critical latencies: {:?} ns (paper: 385 ns)",
        lcs
    );

    let prof = ParametricProfile::compute(&g, &binding, (0.0, 1_000.0));
    println!(
        "parametric envelope breakpoints: {:?} ns, pieces: {:?}",
        prof.critical_latencies(),
        prof.envelope()
            .lines()
            .iter()
            .map(|l| format!("{}L + {:.0}", l.slope, l.intercept))
            .collect::<Vec<_>>()
    );
}

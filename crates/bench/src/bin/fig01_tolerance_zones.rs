//! Fig. 1 — network latency tolerance zones of MILC, LULESH and ICON.
//!
//! The analysis side (predicted sweep + 1%/2%/5% zones) is expressed as an
//! `llamp-engine` campaign — three workloads × the parametric backend over
//! one latency grid, executed in parallel with result caching — while the
//! "measured" column still comes from the discrete-event simulator, which
//! stays outside the engine by design. The zones are computed from the
//! envelope, not from the sweep — the point the paper's caption makes.

use llamp_bench::{campaign_grid, run_app_campaign, s3, us1, Experiment, Table};
use llamp_engine::Backend;
use llamp_util::time::us;
use llamp_workloads::App;

fn main() {
    let apps = [
        (App::Milc, us(100.0)),
        (App::Lulesh, us(200.0)),
        (App::Icon, us(1200.0)),
    ];
    println!("# Fig. 1 — latency tolerance zones (8 ranks)\n");
    let mut zones_table = Table::new(&["app", "T0 [s]", "1% [µs]", "2% [µs]", "5% [µs]"]);

    for (app, sweep_hi) in apps {
        // One engine campaign per application: its grid is the figure's
        // x-axis, its zones answer the colour boundaries.
        let grid = campaign_grid(0.0, sweep_hi, 9, us(50_000.0));
        let (result, summary) = run_app_campaign(&[(app, 8, 10)], &[Backend::Parametric], grid);
        let outcome = result.scenarios[0]
            .outcome
            .as_ref()
            .expect("parametric backend answers");
        let z = &outcome.zones;
        zones_table.row(vec![
            app.name().into(),
            s3(z.baseline_runtime_ns),
            us1(z.pct1_ns),
            us1(z.pct2_ns),
            us1(z.pct5_ns),
        ]);

        let exp = Experiment::from_app(app, 8, 10);
        let mut t = Table::new(&["dL [µs]", "measured [s]", "predicted [s]", "err"]);
        for p in &outcome.sweep {
            let measured = exp.measure(p.delta_l_ns, 3);
            let err = (p.runtime_ns - measured).abs() / measured;
            t.row(vec![
                us1(p.delta_l_ns),
                s3(measured),
                s3(p.runtime_ns),
                format!("{:.2}%", err * 100.0),
            ]);
        }
        println!("## {} ({})", exp.name, summary.render().replace('\n', "; "));
        t.print();
        println!();
    }

    println!("## Tolerance zones (computed by the envelope, paper Fig. 1 green/orange/red)");
    zones_table.print();
}

//! Fig. 1 — network latency tolerance zones of MILC, LULESH and ICON.
//!
//! For each application at 8 ranks the harness prints measured (simulated)
//! vs. predicted runtime over a `∆L` sweep and the 1%/2%/5% tolerance
//! boundaries computed *directly from the LP/envelope*, not from the
//! sweep — the point the paper's caption makes.

use llamp_bench::{linspace, s3, us1, Experiment, Table};
use llamp_util::time::us;
use llamp_workloads::App;

fn main() {
    let apps = [
        (App::Milc, us(100.0)),
        (App::Lulesh, us(200.0)),
        (App::Icon, us(1200.0)),
    ];
    println!("# Fig. 1 — latency tolerance zones (8 ranks)\n");
    let mut zones_table = Table::new(&["app", "T0 [s]", "1% [µs]", "2% [µs]", "5% [µs]"]);

    for (app, sweep_hi) in apps {
        let exp = Experiment::from_app(app, 8, 10);
        let a = exp.analyzer();
        let z = a.tolerance_zones(exp.params.l + us(50_000.0));
        zones_table.row(vec![
            app.name().into(),
            s3(z.baseline_runtime),
            us1(z.pct1),
            us1(z.pct2),
            us1(z.pct5),
        ]);

        let mut t = Table::new(&["dL [µs]", "measured [s]", "predicted [s]", "err"]);
        for d in linspace(0.0, sweep_hi, 9) {
            let measured = exp.measure(d, 3);
            let predicted = a.evaluate(exp.params.l + d).runtime;
            let err = (predicted - measured).abs() / measured;
            t.row(vec![
                us1(d),
                s3(measured),
                s3(predicted),
                format!("{:.2}%", err * 100.0),
            ]);
        }
        println!("## {}", exp.name);
        t.print();
        println!();
    }

    println!("## Tolerance zones (computed by the LP, paper Fig. 1 green/orange/red)");
    zones_table.print();
}

//! # llamp-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (see `src/bin/`), sharing the
//! plumbing in this library: building graphs from the workload proxies,
//! producing "measured" runtimes from the simulator under the delay-thread
//! injector with noise, sweeping `∆L` in parallel, and rendering aligned
//! text tables plus optional JSON for downstream tooling.
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig01_tolerance_zones` | Fig. 1 — tolerance zones of MILC/LULESH/ICON |
//! | `tab01_solver_vs_sim` | Fig. 7 / Table I — LP vs. LogGOPSim runtime |
//! | `fig08_injector` | Fig. 8 — injector designs B/C/D vs. intended |
//! | `fig09_validation` | Fig. 9 + Table II — measured vs. predicted, λ_L, ρ_L, RMSE |
//! | `fig10_icon_collectives` | Fig. 10 — recursive doubling vs. ring allreduce |
//! | `fig11_icon_topologies` | Fig. 11 — Fat Tree vs. Dragonfly wire latency |
//! | `fig12_namd_charm` | Fig. 12 — charm++ adaptive traces |
//! | `fig16_critical_latencies` | Fig. 16 / Algorithm 2 walk-through |
//! | `fig20_rank_placement` | Fig. 20 — placement vs. block and Scotch-like |
//! | `abl_backends` | ablation: simplex vs. parametric vs. evaluation |
//! | `abl_presolve` | ablation: chain contraction on/off |
//! | `abl_protocol` | ablation: eager/rendezvous crossover at `S` |
//! | `abl_reduction` | ablation: graph reduction pipeline on/off (rows, makespan/λ agreement, anchor time) |
//! | `bench_json` | machine-readable cold-anchor / warm-sweep trajectory (`BENCH_lp.json`) |

use llamp_core::Analyzer;
use llamp_engine::{
    run_campaign, AxisSpec, Backend, CampaignResult, CampaignSpec, ExecutorConfig, GridSpec,
    ParamsPreset, ParamsSpec, ResultCache, RunSummary, SweepParam, SweepStart, TopologySpec,
    WorkloadSpec,
};
use llamp_model::LogGPSParams;
use llamp_schedgen::{build_graph, ExecGraph, GraphConfig};
use llamp_sim::{NoiseConfig, SimConfig, Simulator};
use llamp_trace::{ProgramSet, TracerConfig};
use llamp_util::stats;
use llamp_workloads::App;

/// Everything needed to analyse one application configuration.
pub struct Experiment {
    /// Application label.
    pub name: String,
    /// Execution graph (uncontracted; the analyzer contracts internally).
    pub graph: ExecGraph,
    /// Network parameters (with the app-matched `o`).
    pub params: LogGPSParams,
}

impl Experiment {
    /// Build an experiment from a workload app at `ranks` ranks.
    pub fn from_app(app: App, ranks: u32, iters: usize) -> Self {
        let set = app.programs(ranks, iters);
        let graph = graph_of(&set);
        let params = LogGPSParams::cscs_testbed(ranks).with_o(app.paper_o());
        Self {
            name: format!("{} {} ranks", app.name(), ranks),
            graph,
            params,
        }
    }

    /// The analyzer for this experiment.
    pub fn analyzer(&self) -> Analyzer {
        Analyzer::new(&self.graph, &self.params)
    }

    /// A "measured" runtime: the DES under the delay-thread injector with
    /// quiet noise, averaged over `runs` seeds (the paper averages 10 runs
    /// per `∆L`; the defaults here keep harnesses fast).
    pub fn measure(&self, delta_l: f64, runs: usize) -> f64 {
        let mut acc = stats::Accumulator::new();
        for seed in 0..runs {
            let cfg = SimConfig::ideal(self.params)
                .with_delta_l(delta_l)
                .with_noise(NoiseConfig::quiet(0xC0FFEE + seed as u64));
            acc.push(Simulator::new(&self.graph, cfg).run().makespan);
        }
        acc.mean()
    }
}

/// Trace + compile a program set with the paper's `S = 256 KiB`.
pub fn graph_of(set: &ProgramSet) -> ExecGraph {
    build_graph(&set.trace(&TracerConfig::default()), &GraphConfig::paper())
        .expect("workload builds")
}

/// Trace + compile with a custom configuration.
pub fn graph_of_with(set: &ProgramSet, cfg: &GraphConfig) -> ExecGraph {
    build_graph(&set.trace(&TracerConfig::default()), cfg).expect("workload builds")
}

/// An engine latency grid: `points` evenly spaced `∆L` samples over
/// `[lo, hi]` (ns) with a tolerance search window of `search_hi` ns.
pub fn campaign_grid(lo: f64, hi: f64, points: usize, search_hi: f64) -> GridSpec {
    GridSpec {
        deltas_ns: linspace(lo, hi, points),
        search_hi_ns: search_hi,
    }
}

/// Build and run an engine campaign over `(app, ranks, iters)` workloads
/// with the given backends on the uniform-latency topology under the CSCS
/// test-bed preset — the harnesses' standard sweep shape. Runs on all
/// cores with a fresh cache.
pub fn run_app_campaign(
    apps: &[(App, u32, usize)],
    backends: &[Backend],
    grid: GridSpec,
) -> (CampaignResult, RunSummary) {
    let spec = app_campaign_spec(apps, backends, grid);
    run_campaign(&spec, &ExecutorConfig::default(), &ResultCache::new())
}

/// The spec behind [`run_app_campaign`], for harnesses that need to
/// customise topologies or reuse a cache.
pub fn app_campaign_spec(
    apps: &[(App, u32, usize)],
    backends: &[Backend],
    grid: GridSpec,
) -> CampaignSpec {
    let mut spec = CampaignSpec {
        name: "bench".into(),
        workloads: apps
            .iter()
            .map(|&(app, ranks, iters)| WorkloadSpec {
                app,
                ranks,
                iters: iters as u32,
                o_ns: None,
            })
            .collect(),
        topologies: vec![TopologySpec::Uniform],
        params: vec![ParamsSpec {
            preset: ParamsPreset::Cscs,
            l_ns: None,
            o_ns: None,
            s_bytes: None,
        }],
        backends: backends.to_vec(),
        grid,
        axes: vec![],
        reduce: true,
        sweep_start: SweepStart::Auto,
    };
    spec.canonicalize();
    spec
}

/// An engine sweep axis: `points` evenly spaced deltas over `[lo, hi]`
/// for one LogGPS parameter (`L`/`o` in ns, `G` in ns/byte).
pub fn campaign_axis(param: SweepParam, lo: f64, hi: f64, points: usize) -> AxisSpec {
    AxisSpec {
        param,
        deltas: linspace(lo, hi, points),
    }
}

/// Build a multi-parameter (axes) campaign over `(app, ranks, iters)`
/// workloads — the harnesses' standard shape, but sweeping the cartesian
/// product of the given axes instead of a latency grid.
pub fn app_campaign_axes_spec(
    apps: &[(App, u32, usize)],
    backends: &[Backend],
    axes: Vec<AxisSpec>,
    search_hi: f64,
) -> CampaignSpec {
    let mut spec = app_campaign_spec(
        apps,
        backends,
        GridSpec {
            deltas_ns: vec![],
            search_hi_ns: search_hi,
        },
    );
    spec.axes = axes;
    spec.canonicalize();
    spec
}

/// Evenly spaced sweep points `lo..=hi`.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2);
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// Simple fixed-width text table writer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a nanosecond quantity in microseconds with 1 decimal.
pub fn us1(ns: f64) -> String {
    if ns.is_infinite() {
        "inf".into()
    } else {
        format!("{:.1}", ns / 1_000.0)
    }
}

/// Format a nanosecond quantity in seconds with 3 decimals.
pub fn s3(ns: f64) -> String {
    format!("{:.3}", ns / 1e9)
}

/// Format a ratio as a percentage with 2 decimals.
pub fn pct2(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints() {
        let v = linspace(0.0, 10.0, 6);
        assert_eq!(v.len(), 6);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[5], 10.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("a"));
        assert!(s.contains("---"));
    }

    #[test]
    fn experiment_builds_and_measures() {
        let e = Experiment::from_app(App::Cloverleaf, 4, 2);
        let a = e.analyzer();
        let pred = a.baseline_runtime();
        let meas = e.measure(0.0, 2);
        // Measured (noisy, CPU-serialised) is near but above prediction.
        assert!(meas >= pred * 0.99, "meas {meas} pred {pred}");
        assert!(meas <= pred * 1.5, "meas {meas} pred {pred}");
    }
}

//! Anti-degeneracy cost perturbation (`SimplexOptions::perturb`): the
//! perturbed problem is solved, then the true costs are restored and a
//! clean-up pass re-certifies optimality — so the *reported* solution
//! must be exact for the **unperturbed** model, on every factorisation.
//!
//! Certificates used here:
//!
//! * the perturbed-run objective equals the unperturbed optimum (1e-9);
//! * a warm re-solve with perturbation *off*, seeded from the perturbed
//!   run's final basis, performs **zero pivots** and reproduces the
//!   extraction bitwise — i.e. the basis the perturbed run hands back
//!   is genuinely optimal for the true costs, nothing of the shift
//!   survives;
//! * dense and sparse factorisations agree under perturbation.

use llamp_lp::simplex::{solve_dense, solve_sparse, SimplexOptions};
use llamp_lp::{LpModel, Objective, Relation, Solution, SolveError};
use proptest::prelude::*;

fn perturbed() -> SimplexOptions {
    SimplexOptions {
        perturb: 1e-7,
        ..SimplexOptions::default()
    }
}

/// Beale's cycling example: tie-heavy, optimum −1/20.
fn beale() -> LpModel {
    let mut m = LpModel::new(Objective::Minimize);
    let x1 = m.add_var("x1", 0.0, f64::INFINITY, -0.75);
    let x2 = m.add_var("x2", 0.0, f64::INFINITY, 150.0);
    let x3 = m.add_var("x3", 0.0, 1.0, -0.02);
    let x4 = m.add_var("x4", 0.0, f64::INFINITY, 6.0);
    m.add_constraint(
        "r1",
        &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
        Relation::Le,
        0.0,
    );
    m.add_constraint(
        "r2",
        &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
        Relation::Le,
        0.0,
    );
    m
}

/// A degenerate star: many coincident constraints through one vertex.
fn redundant_star(nvars: usize) -> LpModel {
    let mut m = LpModel::new(Objective::Minimize);
    let vars: Vec<_> = (0..nvars)
        .map(|j| m.add_var(format!("x{j}"), 0.0, 10.0, 1.0 + j as f64 * 0.1))
        .collect();
    for i in 0..4 * nvars {
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        m.add_constraint(format!("r{i}"), &terms, Relation::Ge, 5.0);
    }
    m
}

/// The exact-removal certificate for one model: solve perturbed, then
/// warm-re-solve clean from the returned basis and demand zero pivots
/// plus a bitwise-identical extraction.
fn assert_exact_removal(label: &str, m: &LpModel) {
    let clean = solve_sparse(m, &SimplexOptions::default(), None).expect("clean solve");
    type Solver =
        fn(&LpModel, &SimplexOptions, Option<&llamp_lp::Basis>) -> Result<Solution, SolveError>;
    for (factor, run) in [
        ("sparse", solve_sparse as Solver),
        ("dense", solve_dense as Solver),
    ] {
        let pert: Solution = run(m, &perturbed(), None).expect("perturbed solve");
        assert!(
            (pert.objective() - clean.objective()).abs() <= 1e-9 * (1.0 + clean.objective().abs()),
            "{label}/{factor}: perturbed objective {} vs clean {}",
            pert.objective(),
            clean.objective()
        );
        // Re-certify the returned basis against the true costs: an
        // exactly-removed perturbation leaves an optimal basis behind,
        // so the clean warm re-solve has nothing to do.
        let recheck = solve_sparse(m, &SimplexOptions::default(), Some(pert.basis()))
            .expect("warm recheck solves");
        assert_eq!(
            recheck.stats().pivots,
            0,
            "{label}/{factor}: basis from the perturbed run is not optimal \
             for the true costs — perturbation leaked into the result"
        );
        assert_eq!(
            recheck.basis(),
            pert.basis(),
            "{label}/{factor}: basis moved"
        );
        assert_eq!(
            recheck.objective().to_bits(),
            pert.objective().to_bits(),
            "{label}/{factor}: extraction differs from the clean re-extraction"
        );
    }
}

#[test]
fn perturbed_solves_report_the_exact_unperturbed_optimum() {
    assert_exact_removal("beale", &beale());
    assert_exact_removal("star4", &redundant_star(4));
    assert_exact_removal("star7", &redundant_star(7));
    // Beale's known optimum, for good measure.
    let sol = solve_sparse(&beale(), &perturbed(), None).unwrap();
    assert!(
        (sol.objective() - (-0.05)).abs() <= 1e-9,
        "beale optimum {} != -1/20",
        sol.objective()
    );
}

#[test]
fn perturbation_off_is_bitwise_the_default_path() {
    let m = beale();
    let a = solve_sparse(&m, &SimplexOptions::default(), None).unwrap();
    let b = solve_sparse(
        &m,
        &SimplexOptions {
            perturb: 0.0,
            ..SimplexOptions::default()
        },
        None,
    )
    .unwrap();
    assert_eq!(a.basis(), b.basis());
    assert_eq!(a.objective().to_bits(), b.objective().to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random degenerate LPs (integer grids force coincident
    /// hyperplanes): the exact-removal certificate holds everywhere.
    #[test]
    fn random_degenerate_lps_survive_perturbation(
        costs in prop::collection::vec(0u8..4, 3..=6),
        rhs in prop::collection::vec(1u8..5, 4..=10),
    ) {
        let mut m = LpModel::new(Objective::Minimize);
        let vars: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(j, &c)| m.add_var(format!("x{j}"), 0.0, 8.0, c as f64))
            .collect();
        for (i, &r) in rhs.iter().enumerate() {
            // Rotate which variables participate so rows coincide often
            // but not always.
            let terms: Vec<_> = vars
                .iter()
                .enumerate()
                .filter(|(j, _)| (i + j) % 3 != 0 || vars.len() < 3)
                .map(|(_, &v)| (v, 1.0))
                .collect();
            if terms.is_empty() {
                continue;
            }
            m.add_constraint(format!("r{i}"), &terms, Relation::Ge, r as f64);
        }
        assert_exact_removal("random", &m);
    }
}

//! Allocation accounting for the simplex hot path.
//!
//! ISSUE 3's contract: no per-iteration heap allocation in the
//! FTRAN/BTRAN/pricing path — all hot-loop linear algebra runs through
//! solver-owned `IndexedVec` workspaces. This test enforces it with a
//! counting global allocator: a solve that runs hundreds of iterations
//! must allocate strictly fewer times than it iterates (the PR 2 loop
//! allocated ~6 vectors per iteration; the rewritten loop allocates only
//! at build, refactorisation and extraction).

use llamp_lp::simplex::{solve_sparse, SimplexOptions};
use llamp_lp::{LpModel, Objective, Relation};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A diagonal LP: `x_i ≥ 1` as rows forces one pivot per row from the
/// all-logical start while keeping every FTRAN result a singleton, so the
/// eta file grows slowly and the long middle of the solve runs without a
/// single refactorisation — isolating the per-iteration path the test is
/// about. (Refactorisation and extraction legitimately allocate; they are
/// amortized, not per-iteration.)
fn diagonal(n: usize) -> LpModel {
    let mut m = LpModel::new(Objective::Minimize);
    for j in 0..n {
        let x = m.add_var(format!("x{j}"), 0.0, f64::INFINITY, 1.0 + (j % 7) as f64);
        m.add_constraint(format!("r{j}"), &[(x, 1.0)], Relation::Ge, 1.0);
    }
    m
}

#[test]
fn hot_loop_does_not_allocate_per_iteration() {
    let n = 400;
    let model = diagonal(n);
    let opts = SimplexOptions::default();

    // ISSUE 6's contract rides on top: the solve path is instrumented
    // with llamp-obs spans, and with recording *off* (the default) the
    // instrumentation must be a single relaxed atomic load — zero
    // allocations, zero clock reads. This assertion documents that the
    // run below certifies the tracing-off regime.
    assert!(
        !llamp_obs::is_enabled(),
        "obs recording must be off for the zero-allocation certification"
    );

    // Warm-up pass so lazily initialised runtime structures don't count.
    let warm = solve_sparse(&model, &opts, None).expect("diagonal solves");
    assert!(
        warm.iterations() >= n as u64 / 2,
        "diagonal model too easy: {} iterations",
        warm.iterations()
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let sol = solve_sparse(&model, &opts, None).expect("diagonal solves");
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;

    // Build + periodic refactorisations + canonical extraction allocate;
    // the iterations in between must not. The PR 2 loop allocated ~6
    // vectors per iteration, so `allocs < iterations` cleanly separates
    // the two regimes.
    assert!(
        allocs < sol.iterations(),
        "{allocs} allocations over {} iterations: the hot loop is allocating",
        sol.iterations()
    );

    // With recording ON the span machinery may allocate — but only at
    // solve granularity (one event, a path string, a fields vector),
    // never per iteration. Run in the same test function so the global
    // obs state cannot race the off-certification above under the
    // threaded test harness.
    llamp_obs::enable();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let sol = solve_sparse(&model, &opts, None).expect("diagonal solves");
    let allocs_on = ALLOCATIONS.load(Ordering::Relaxed) - before;
    let snap = llamp_obs::take();
    llamp_obs::disable();
    assert_eq!(snap.events.len(), 1, "one lp.solve span per solve");
    assert!(
        allocs_on < sol.iterations() + 64,
        "{allocs_on} allocations over {} iterations: tracing-on overhead \
         must stay amortized at solve granularity",
        sol.iterations()
    );
}

//! Solver conformance suite: one shared battery run over **every backend
//! × every start**.
//!
//! Backends come from the public registry (`by_name` over
//! `BACKEND_NAMES`: dense, sparse, parametric, dual). Starts are the
//! ways a solve can begin in this codebase: cold (all-logical), warm
//! from a reference optimal basis, and — for the DAG LPs that mirror
//! Algorithm 1 — the two crash bases `llamp-core` builds (the exact
//! longest-path crash and the historic largest-constant heuristic).
//!
//! Every combination must report the same optimum: objective, primal
//! values, duals, reduced costs and lower-bound ranging all within 1e-9
//! of the dense cold reference — and whenever two runs finish on the
//! *same final basis*, their canonical extractions must be **byte
//! identical** (`to_bits` equality), which is the contract the engine's
//! cross-backend campaign identity rests on.
//!
//! Inputs: random DAG longest-path LPs (proptest; integer cost grids so
//! degenerate ties are the norm) plus the Beale / degenerate fixed
//! corpus.

use llamp_lp::backend::{by_name, BACKEND_NAMES};
use llamp_lp::solution::VarStatus;
use llamp_lp::{Basis, ConId, LpModel, Objective, Relation, Solution, VarId};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// The battery
// ---------------------------------------------------------------------

/// How a backend run begins.
enum Start<'a> {
    Cold,
    Seeded(&'a str, &'a Basis),
}

impl Start<'_> {
    fn label(&self) -> String {
        match self {
            Start::Cold => "cold".into(),
            Start::Seeded(name, _) => (*name).into(),
        }
    }
}

fn run(backend_name: &str, start: &Start, model: &LpModel) -> Solution {
    let mut b = by_name(backend_name).expect("registry backend");
    match start {
        Start::Cold => b.solve(model),
        Start::Seeded(_, basis) => {
            b.seed(basis);
            b.resolve(model)
        }
    }
    .unwrap_or_else(|e| panic!("{backend_name}/{}: solve failed: {e}", start.label()))
}

/// Assert that `sol` and `reference` finished on the same basis and
/// that **every** reported quantity — objective, primal values, duals,
/// reduced costs, lower-bound ranging — is bit-for-bit identical.
/// Canonical extraction is a pure function of (model, basis), so on the
/// same basis anything short of `to_bits` equality is a conformance bug.
fn assert_bitwise(
    label: &str,
    reference: &Solution,
    sol: &Solution,
    vars: &[VarId],
    cons: &[ConId],
) {
    assert_eq!(
        reference.basis(),
        sol.basis(),
        "{label}: final basis diverged"
    );
    assert_eq!(
        reference.objective().to_bits(),
        sol.objective().to_bits(),
        "{label}: objective bits differ on identical bases"
    );
    for &v in vars {
        assert_eq!(
            reference.value(v).to_bits(),
            sol.value(v).to_bits(),
            "{label}: x[{v:?}] bits"
        );
        assert_eq!(
            reference.reduced_cost(v).to_bits(),
            sol.reduced_cost(v).to_bits(),
            "{label}: d[{v:?}] bits"
        );
        let (rl, rh) = reference.lb_range(v);
        let (sl, sh) = sol.lb_range(v);
        assert_eq!(rl.to_bits(), sl.to_bits(), "{label}: lb_range lo[{v:?}]");
        assert_eq!(rh.to_bits(), sh.to_bits(), "{label}: lb_range hi[{v:?}]");
    }
    for &c in cons {
        assert_eq!(
            reference.dual(c).to_bits(),
            sol.dual(c).to_bits(),
            "{label}: y[{c:?}] bits"
        );
    }
}

/// Run every backend × start.
///
/// The contract, exactly as the engine relies on it:
///
/// * **Per start, across backends**: all four backends land on the same
///   final basis and report byte-identical numbers. (Sole carve-out:
///   the dual backend seeded with a primal-*infeasible* basis — the
///   heuristic crash — may legitimately pivot to a different optimal
///   vertex of a degenerate optimum; there it must still match the
///   reference objective to 1e-9, and bitwise whenever the bases do
///   coincide.)
/// * **Across starts**: every run reports the same optimum objective to
///   1e-9 — alternative optimal bases may differ in non-binding primal
///   values and degenerate duals, which is why byte-identity is only a
///   same-basis contract.
fn battery(model: &LpModel, vars: &[VarId], cons: &[ConId], seeds: &[(&str, &Basis)]) {
    let close = |a: f64, b: f64| {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs()) || (a.is_infinite() && b.is_infinite() && a == b)
    };
    let cold_ref = run("dense", &Start::Cold, model);
    let mut starts: Vec<Start> = vec![Start::Cold, Start::Seeded("warm", cold_ref.basis())];
    for &(label, basis) in seeds {
        starts.push(Start::Seeded(label, basis));
    }
    for start in &starts {
        let reference = run("dense", start, model);
        assert!(
            close(cold_ref.objective(), reference.objective()),
            "dense/{}: objective {} vs cold {}",
            start.label(),
            reference.objective(),
            cold_ref.objective()
        );
        for name in BACKEND_NAMES {
            let sol = run(name, start, model);
            let label = format!("{name}/{}", start.label());
            assert!(
                close(cold_ref.objective(), sol.objective()),
                "{label}: objective {} vs cold {}",
                sol.objective(),
                cold_ref.objective()
            );
            if sol.basis() != reference.basis() {
                // Only the dual backend fed the primal-infeasible
                // heuristic crash may take a different (dual-simplex)
                // path to a different optimal vertex.
                assert!(
                    *name == "dual" && start.label() == "crash-topological",
                    "{label}: final basis diverged from the dense reference"
                );
                continue;
            }
            assert_bitwise(&label, &reference, &sol, vars, cons);
        }
    }
    // The warm start re-installs the cold optimum: zero pivots, and the
    // whole extraction — ranging included — reproduces bitwise.
    let warm = run("dense", &Start::Seeded("warm", cold_ref.basis()), model);
    assert_bitwise("dense/warm-vs-cold", &cold_ref, &warm, vars, cons);
}

// ---------------------------------------------------------------------
// Random DAG longest-path LPs (the Algorithm-1 shape)
// ---------------------------------------------------------------------

/// One in-edge of a DAG vertex: predecessor (None ⇒ source row), integer
/// constant cost and latency multiplier.
type Edge = (Option<usize>, u8, u8);

#[derive(Debug, Clone)]
struct RandomDag {
    /// In-edges per vertex, topologically indexed (vertex 0 is a source).
    in_edges: Vec<Vec<Edge>>,
    /// Query latency lower bound.
    l0: f64,
}

fn dag_strategy() -> impl Strategy<Value = RandomDag> {
    // A flat pool of (pred-seed, c, m) draws, folded into per-vertex
    // in-edge lists below: vertex 0 is the source (one defining row),
    // every later vertex j takes two in-edges with predecessors
    // `seed % j` — always topologically earlier.
    (
        3usize..=8,
        prop::collection::vec((0u16..4096, 0u8..5, 0u8..3), 17..=17),
        0.0f64..4.0,
    )
        .prop_map(|(k, pool, l0)| {
            let mut in_edges: Vec<Vec<Edge>> = Vec::with_capacity(k);
            let mut draws = pool.into_iter().cycle();
            for j in 0..k {
                let n = if j == 0 { 1 } else { 2 };
                let edges = (0..n)
                    .map(|_| {
                        let (seed, c, m) = draws.next().unwrap();
                        let pred = if j == 0 {
                            None
                        } else {
                            Some(seed as usize % j)
                        };
                        (pred, c, m)
                    })
                    .collect();
                in_edges.push(edges);
            }
            RandomDag {
                in_edges,
                // Integer-snapped latency: exact longest-path ties abound.
                l0: l0.round(),
            }
        })
}

struct DagLp {
    model: LpModel,
    vars: Vec<VarId>,
    cons: Vec<ConId>,
    /// (target col, base col or usize::MAX, c, m) per row, in row order.
    rows: Vec<(usize, usize, f64, f64)>,
    l: VarId,
    t: VarId,
}

/// Build the Algorithm-1-shaped LP: `min t`, `y_j ≥ y_p + c + m·l` per
/// in-edge, `t ≥ y_s` per sink, `l ≥ l0`.
fn build_dag_lp(dag: &RandomDag) -> DagLp {
    let k = dag.in_edges.len();
    let mut m = LpModel::new(Objective::Minimize);
    let l = m.add_var("l", dag.l0, f64::INFINITY, 0.0);
    let t = m.add_var("t", f64::NEG_INFINITY, f64::INFINITY, 1.0);
    let ys: Vec<VarId> = (0..k)
        .map(|j| m.add_var(format!("y{j}"), f64::NEG_INFINITY, f64::INFINITY, 0.0))
        .collect();
    let mut vars = vec![l, t];
    vars.extend(&ys);
    let mut cons = Vec::new();
    let mut rows = Vec::new();
    let mut has_succ = vec![false; k];
    for (j, edges) in dag.in_edges.iter().enumerate() {
        for &(p, c, mul) in edges {
            let (c, mul) = (c as f64, mul as f64);
            let mut terms = vec![(ys[j], 1.0)];
            if let Some(p) = p {
                terms.push((ys[p], -1.0));
                has_succ[p] = true;
            }
            if mul != 0.0 {
                terms.push((l, -mul));
            }
            cons.push(m.add_constraint(format!("in{j}"), &terms, Relation::Ge, c));
            rows.push((
                ys[j].0 as usize,
                p.map_or(usize::MAX, |p| ys[p].0 as usize),
                c,
                mul,
            ));
        }
    }
    for (j, _) in dag.in_edges.iter().enumerate() {
        if !has_succ[j] {
            cons.push(m.add_constraint(
                format!("sink{j}"),
                &[(t, 1.0), (ys[j], -1.0)],
                Relation::Ge,
                0.0,
            ));
            rows.push((t.0 as usize, ys[j].0 as usize, 0.0, 0.0));
        }
    }
    DagLp {
        model: m,
        vars,
        cons,
        rows,
        l,
        t,
    }
}

/// The two crash bases `llamp-core` would build for this LP: the exact
/// longest-path crash at `l0` and the largest-constant heuristic.
fn crash_bases(lp: &DagLp, l0: f64) -> (Basis, Basis) {
    let n_cols = lp.model.num_vars();
    let build = |longest_path: bool| {
        let mut pot = vec![0.0f64; n_cols];
        let mut winner = vec![usize::MAX; n_cols];
        let mut best = vec![f64::NEG_INFINITY; n_cols];
        for (i, &(tgt, base, c, mul)) in lp.rows.iter().enumerate() {
            let score = if longest_path {
                let from = if base == usize::MAX { 0.0 } else { pot[base] };
                from + c + mul * l0
            } else {
                c
            };
            if winner[tgt] == usize::MAX || score > best[tgt] {
                winner[tgt] = i;
                best[tgt] = score;
            }
            if longest_path && best[tgt] > pot[tgt] {
                pot[tgt] = best[tgt];
            }
        }
        let mut col_status = vec![VarStatus::Basic; n_cols];
        col_status[lp.l.0 as usize] = VarStatus::AtLower;
        let mut row_status = vec![VarStatus::Basic; lp.rows.len()];
        for &w in winner.iter().filter(|&&w| w != usize::MAX) {
            row_status[w] = VarStatus::AtLower;
        }
        Basis::from_statuses(col_status, row_status)
    };
    (build(true), build(false))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The full battery on random DAG LPs: 4 backends × (cold, warm,
    /// longest-path crash, heuristic crash).
    #[test]
    fn dag_lps_conform_across_backends_and_starts(dag in dag_strategy()) {
        let lp = build_dag_lp(&dag);
        let (crash_lp, crash_topo) = crash_bases(&lp, dag.l0);
        battery(
            &lp.model,
            &lp.vars,
            &lp.cons,
            &[("crash-longest-path", &crash_lp), ("crash-topological", &crash_topo)],
        );
    }

    /// The longest-path crash is optimal at its own point: seeding it
    /// into the sparse backend solves with zero pivots, and the objective
    /// equals the forward longest-path recursion run in plain arithmetic.
    #[test]
    fn longest_path_crash_needs_no_pivots(dag in dag_strategy()) {
        let lp = build_dag_lp(&dag);
        let (crash_lp, _) = crash_bases(&lp, dag.l0);
        let mut b = by_name("sparse").unwrap();
        b.seed(&crash_lp);
        let sol = b.resolve(&lp.model).expect("crash-seeded solve");
        let stats = b.stats();
        prop_assert!(stats.phase1_iterations == 0, "crash not primal feasible");
        prop_assert!(stats.pivots == 0, "crash not optimal: {} pivots", stats.pivots);
        // Forward recursion, same float op order as the crash scoring.
        let n_cols = lp.model.num_vars();
        let mut pot = vec![0.0f64; n_cols];
        let mut seen = vec![false; n_cols];
        for &(tgt, base, c, mul) in &lp.rows {
            let from = if base == usize::MAX { 0.0 } else { pot[base] };
            let score = from + c + mul * dag.l0;
            if !seen[tgt] || score > pot[tgt] {
                pot[tgt] = score;
                seen[tgt] = true;
            }
        }
        let want = pot[lp.t.0 as usize];
        prop_assert!(
            (sol.objective() - want).abs() <= 1e-9 * (1.0 + want),
            "objective {} vs longest path {}", sol.objective(), want
        );
    }
}

// ---------------------------------------------------------------------
// Beale / degenerate fixed corpus
// ---------------------------------------------------------------------

/// Beale's classic cycling example (optimum −1/20).
fn beale() -> (LpModel, Vec<VarId>, Vec<ConId>) {
    let mut m = LpModel::new(Objective::Minimize);
    let x1 = m.add_var("x1", 0.0, f64::INFINITY, -0.75);
    let x2 = m.add_var("x2", 0.0, f64::INFINITY, 150.0);
    let x3 = m.add_var("x3", 0.0, 1.0, -0.02);
    let x4 = m.add_var("x4", 0.0, f64::INFINITY, 6.0);
    let c1 = m.add_constraint(
        "r1",
        &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
        Relation::Le,
        0.0,
    );
    let c2 = m.add_constraint(
        "r2",
        &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
        Relation::Le,
        0.0,
    );
    (m, vec![x1, x2, x3, x4], vec![c1, c2])
}

/// A maximally degenerate star: many redundant constraints through one
/// vertex.
fn redundant_star(nvars: usize) -> (LpModel, Vec<VarId>, Vec<ConId>) {
    let mut m = LpModel::new(Objective::Minimize);
    let vars: Vec<_> = (0..nvars)
        .map(|j| m.add_var(format!("x{j}"), 0.0, 10.0, 1.0 + j as f64 * 0.1))
        .collect();
    let mut cons = Vec::new();
    for i in 0..4 * nvars {
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        cons.push(m.add_constraint(format!("r{i}"), &terms, Relation::Ge, 5.0));
    }
    (m, vars, cons)
}

/// A degenerate box: the optimum sits on a corner shared by every row.
fn tied_box() -> (LpModel, Vec<VarId>, Vec<ConId>) {
    let mut m = LpModel::new(Objective::Maximize);
    let x = m.add_var("x", 0.0, 4.0, 1.0);
    let y = m.add_var("y", 0.0, 4.0, 1.0);
    let c1 = m.add_constraint("r1", &[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
    let c2 = m.add_constraint("r2", &[(x, 1.0)], Relation::Le, 4.0);
    let c3 = m.add_constraint("r3", &[(y, 1.0)], Relation::Le, 4.0);
    let c4 = m.add_constraint("r4", &[(x, 2.0), (y, 2.0)], Relation::Le, 8.0);
    (m, vec![x, y], vec![c1, c2, c3, c4])
}

#[test]
fn beale_corpus_conforms_across_backends_and_starts() {
    for (m, vars, cons) in [beale(), redundant_star(4), redundant_star(6), tied_box()] {
        battery(&m, &vars, &cons, &[]);
    }
}

//! Property tests for the simplex solver.
//!
//! Strategy: generate random bounded LPs, solve, and check the *certificates*
//! rather than re-deriving the optimum: primal feasibility of the returned
//! point, consistency across solver configurations (refactorising every
//! pivot must agree with eta-update-only runs), duality relationships, and
//! agreement with brute-force vertex enumeration on tiny instances.

use llamp_lp::simplex::{solve, solve_dense, solve_sparse, SimplexOptions};
use llamp_lp::{ConId, LpModel, Objective, Relation, VarId};
use proptest::prelude::*;

/// A constraint row: sparse terms, relation code (0 ≤, 1 ≥, 2 =), rhs.
type RandomRow = (Vec<(usize, f64)>, u8, f64);

#[derive(Debug, Clone)]
struct RandomLp {
    nvars: usize,
    lbs: Vec<f64>,
    ubs: Vec<f64>,
    objs: Vec<f64>,
    rows: Vec<RandomRow>,
    maximize: bool,
}

fn lp_strategy(max_vars: usize, max_rows: usize) -> impl Strategy<Value = RandomLp> {
    (2..=max_vars).prop_flat_map(move |nvars| {
        let bounds = prop::collection::vec((0.0f64..5.0, 0.0f64..10.0), nvars);
        let objs = prop::collection::vec(-5.0f64..5.0, nvars);
        let row = (
            prop::collection::vec((0..nvars, -3.0f64..3.0), 1..=3),
            0u8..3,
            -10.0f64..20.0,
        );
        let rows = prop::collection::vec(row, 1..=max_rows);
        (bounds, objs, rows, any::<bool>()).prop_map(move |(bounds, objs, rows, maximize)| {
            let (lbs, spans): (Vec<f64>, Vec<f64>) = bounds.into_iter().unzip();
            let ubs: Vec<f64> = lbs.iter().zip(&spans).map(|(l, s)| l + s).collect();
            RandomLp {
                nvars,
                lbs,
                ubs,
                objs,
                rows,
                maximize,
            }
        })
    })
}

fn build(lp: &RandomLp) -> (LpModel, Vec<VarId>, Vec<ConId>) {
    let mut m = LpModel::new(if lp.maximize {
        Objective::Maximize
    } else {
        Objective::Minimize
    });
    let vars: Vec<VarId> = (0..lp.nvars)
        .map(|j| m.add_var(format!("x{j}"), lp.lbs[j], lp.ubs[j], lp.objs[j]))
        .collect();
    let mut cons = Vec::new();
    for (i, (terms, rel, rhs)) in lp.rows.iter().enumerate() {
        let t: Vec<(VarId, f64)> = terms.iter().map(|&(v, c)| (vars[v], c)).collect();
        let rel = match rel {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        cons.push(m.add_constraint(format!("r{i}"), &t, rel, *rhs));
    }
    (m, vars, cons)
}

/// Check that a point satisfies all rows and bounds within tolerance.
fn is_feasible(lp: &RandomLp, x: &[f64]) -> bool {
    const TOL: f64 = 1e-5;
    for (j, &xj) in x.iter().enumerate() {
        if xj < lp.lbs[j] - TOL || xj > lp.ubs[j] + TOL {
            return false;
        }
    }
    for (terms, rel, rhs) in &lp.rows {
        let a: f64 = terms.iter().map(|&(v, c)| c * x[v]).sum();
        let ok = match rel {
            0 => a <= rhs + TOL,
            1 => a >= rhs - TOL,
            _ => (a - rhs).abs() <= TOL,
        };
        if !ok {
            return false;
        }
    }
    true
}

/// Solve a dense square linear system by Gaussian elimination with
/// partial pivoting. `None` when (numerically) singular.
// Rows are eliminated in place against the pivot row; indexing keeps the
// two-row access pattern legible.
#[allow(clippy::needless_range_loop)]
fn solve_square(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let piv = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[piv][col].abs() < 1e-9 {
            return None;
        }
        a.swap(col, piv);
        b.swap(col, piv);
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = a[r][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[r][k] -= f * a[col][k];
            }
            b[r] -= f * b[col];
        }
    }
    Some((0..n).map(|i| b[i] / a[i][i]).collect())
}

/// Brute-force LP optimum: enumerate every candidate vertex (intersection
/// of `nvars` hyperplanes drawn from row-equalities and variable bounds),
/// keep the feasible ones, and return the best objective. `None` when no
/// candidate vertex is feasible.
fn brute_force_optimum(lp: &RandomLp) -> Option<f64> {
    let n = lp.nvars;
    // Hyperplanes: each row at equality, each bound.
    let mut planes: Vec<(Vec<f64>, f64)> = Vec::new();
    for (terms, _, rhs) in &lp.rows {
        let mut a = vec![0.0; n];
        for &(v, c) in terms {
            a[v] += c;
        }
        planes.push((a, *rhs));
    }
    for j in 0..n {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        planes.push((e.clone(), lp.lbs[j]));
        planes.push((e, lp.ubs[j]));
    }
    let mut best: Option<f64> = None;
    let k = planes.len();
    // All C(k, n) subsets via a mixed-radix combination walk.
    let mut idx: Vec<usize> = (0..n).collect();
    loop {
        let a: Vec<Vec<f64>> = idx.iter().map(|&i| planes[i].0.clone()).collect();
        let b: Vec<f64> = idx.iter().map(|&i| planes[i].1).collect();
        if let Some(x) = solve_square(a, b) {
            if is_feasible(lp, &x) {
                let obj: f64 = (0..n).map(|j| lp.objs[j] * x[j]).sum();
                best = Some(match best {
                    None => obj,
                    Some(cur) if lp.maximize => cur.max(obj),
                    Some(cur) => cur.min(obj),
                });
            }
        }
        // Next combination.
        let mut i = n;
        loop {
            if i == 0 {
                return best;
            }
            i -= 1;
            if idx[i] + (n - i) < k {
                idx[i] += 1;
                for j in i + 1..n {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The returned "optimal" point is actually feasible, and the reported
    /// objective matches the point.
    #[test]
    fn solutions_are_feasible(lp in lp_strategy(5, 6)) {
        let (m, vars, _) = build(&lp);
        if let Ok(sol) = m.solve() {
            let x: Vec<f64> = vars.iter().map(|&v| sol.value(v)).collect();
            prop_assert!(is_feasible(&lp, &x), "infeasible point returned: {x:?}");
            let obj: f64 = (0..lp.nvars).map(|j| lp.objs[j] * x[j]).sum();
            prop_assert!((obj - sol.objective()).abs() < 1e-5 * (1.0 + obj.abs()));
        }
    }

    /// Eta updates must agree with refactorising after every pivot — the
    /// configuration that exposed the phase-1 ratio-test bug during
    /// development.
    #[test]
    fn refactor_frequency_does_not_change_answers(lp in lp_strategy(5, 6)) {
        let (m, _, _) = build(&lp);
        let every = SimplexOptions { refactor_every: 1, ..Default::default() };
        let never = SimplexOptions { refactor_every: 1_000_000, ..Default::default() };
        let a = solve(&m, &every);
        let b = solve(&m, &never);
        match (a, b) {
            (Ok(sa), Ok(sb)) => {
                prop_assert!(
                    (sa.objective() - sb.objective()).abs() < 1e-5 * (1.0 + sa.objective().abs()),
                    "objectives differ: {} vs {}", sa.objective(), sb.objective()
                );
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            (x, y) => prop_assert!(false, "status mismatch: {x:?} vs {y:?}"),
        }
    }

    /// Bland-from-the-start agrees with Dantzig pricing.
    #[test]
    fn pricing_rule_does_not_change_answers(lp in lp_strategy(5, 6)) {
        let (m, _, _) = build(&lp);
        let dantzig = SimplexOptions::default();
        let bland = SimplexOptions { bland_after: 0, ..Default::default() };
        if let (Ok(a), Ok(b)) = (solve(&m, &dantzig), solve(&m, &bland)) {
            prop_assert!(
                (a.objective() - b.objective()).abs() < 1e-5 * (1.0 + a.objective().abs())
            );
        }
    }

    /// Tiny LPs vs. brute force: sample the box on a grid, keep feasible
    /// points; the solver's optimum must weakly dominate all of them.
    #[test]
    fn optimum_dominates_grid_samples(lp in lp_strategy(3, 4)) {
        let (m, _, _) = build(&lp);
        if let Ok(sol) = m.solve() {
            let steps = 7usize;
            let mut idx = vec![0usize; lp.nvars];
            loop {
                let x: Vec<f64> = (0..lp.nvars)
                    .map(|j| lp.lbs[j] + (lp.ubs[j] - lp.lbs[j]) * idx[j] as f64 / (steps - 1) as f64)
                    .collect();
                if is_feasible(&lp, &x) {
                    let obj: f64 = (0..lp.nvars).map(|j| lp.objs[j] * x[j]).sum();
                    if lp.maximize {
                        prop_assert!(sol.objective() >= obj - 1e-4 * (1.0 + obj.abs()),
                            "grid point beats optimum: {obj} > {}", sol.objective());
                    } else {
                        prop_assert!(sol.objective() <= obj + 1e-4 * (1.0 + obj.abs()),
                            "grid point beats optimum: {obj} < {}", sol.objective());
                    }
                }
                // advance the mixed-radix counter
                let mut k = 0;
                loop {
                    if k == lp.nvars { return Ok(()); }
                    idx[k] += 1;
                    if idx[k] < steps { break; }
                    idx[k] = 0;
                    k += 1;
                }
            }
        }
    }

    /// An infeasibility verdict must be genuine: no grid point may satisfy
    /// all constraints.
    #[test]
    fn infeasible_verdicts_have_no_witness(lp in lp_strategy(3, 4)) {
        let (m, _, _) = build(&lp);
        if let Err(llamp_lp::SolveError::Infeasible) = m.solve() {
            let steps = 9usize;
            let mut idx = vec![0usize; lp.nvars];
            loop {
                let x: Vec<f64> = (0..lp.nvars)
                    .map(|j| lp.lbs[j] + (lp.ubs[j] - lp.lbs[j]) * idx[j] as f64 / (steps - 1) as f64)
                    .collect();
                // Use a strict margin: grid feasibility within -1e-3 slack
                // would contradict the verdict.
                let strictly_ok = lp.rows.iter().all(|(terms, rel, rhs)| {
                    let a: f64 = terms.iter().map(|&(v, c)| c * x[v]).sum();
                    match rel {
                        0 => a <= rhs - 1e-3,
                        1 => a >= rhs + 1e-3,
                        _ => (a - rhs).abs() <= 0.0,
                    }
                });
                prop_assert!(!strictly_ok, "witness found for 'infeasible' LP: {x:?}");
                let mut k = 0;
                loop {
                    if k == lp.nvars { return Ok(()); }
                    idx[k] += 1;
                    if idx[k] < steps { break; }
                    idx[k] = 0;
                    k += 1;
                }
            }
        }
    }

    /// The dense and sparse factorisation paths must agree on the whole
    /// reported optimum: status, objective, primal values, duals, reduced
    /// costs and bound ranging, all within 1e-7 (in practice they are
    /// bit-identical thanks to deterministic tie-breaking and canonical
    /// extraction).
    #[test]
    fn dense_and_sparse_backends_agree(lp in lp_strategy(5, 6)) {
        let (m, vars, cons) = build(&lp);
        let opts = SimplexOptions::default();
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-7 * (1.0 + a.abs());
        match (solve_dense(&m, &opts, None), solve_sparse(&m, &opts, None)) {
            (Ok(d), Ok(s)) => {
                prop_assert!(close(d.objective(), s.objective()),
                    "objective: {} vs {}", d.objective(), s.objective());
                for &v in &vars {
                    prop_assert!(close(d.value(v), s.value(v)), "x[{v:?}]");
                    prop_assert!(close(d.reduced_cost(v), s.reduced_cost(v)), "d[{v:?}]");
                    let (dl, dh) = d.lb_range(v);
                    let (sl, sh) = s.lb_range(v);
                    prop_assert!(dl == sl || close(dl, sl), "lb_range lo[{v:?}]: {dl} vs {sl}");
                    prop_assert!(dh == sh || close(dh, sh), "lb_range hi[{v:?}]: {dh} vs {sh}");
                }
                for &c in &cons {
                    prop_assert!(close(d.dual(c), s.dual(c)), "y[{c:?}]: {} vs {}",
                        d.dual(c), s.dual(c));
                }
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            (x, y) => prop_assert!(false, "status mismatch: {x:?} vs {y:?}"),
        }
    }

    /// Both simplex paths must agree with brute-force vertex enumeration
    /// on tiny instances: the optimum of a bounded LP sits on a vertex,
    /// and every vertex is the intersection of n active hyperplanes.
    #[test]
    fn backends_agree_with_vertex_enumeration(lp in lp_strategy(3, 3)) {
        let (m, _, _) = build(&lp);
        let opts = SimplexOptions::default();
        for sol in [solve_dense(&m, &opts, None), solve_sparse(&m, &opts, None)]
            .into_iter()
            .flatten()
        {
            // The box is bounded, so an optimum must sit on a vertex.
            let best = brute_force_optimum(&lp);
            prop_assert!(best.is_some(), "solver found an optimum but enumeration none");
            let best = best.unwrap();
            prop_assert!(
                (sol.objective() - best).abs() <= 1e-6 * (1.0 + best.abs()),
                "objective {} vs brute force {}", sol.objective(), best
            );
        }
    }

    /// Warm-starting from a neighbouring model's basis must not change
    /// the reported optimum.
    #[test]
    fn warm_start_agrees_with_cold(lp in lp_strategy(5, 6), bump in 0.0f64..1.0) {
        let (m, _, _) = build(&lp);
        let opts = SimplexOptions::default();
        if let Ok(first) = solve_sparse(&m, &opts, None) {
            // Tighten var 0's lower bound part-way up its box.
            let mut lp2 = lp.clone();
            lp2.lbs[0] += (lp2.ubs[0] - lp2.lbs[0]) * bump * 0.5;
            let (m2, vars, cons) = build(&lp2);
            let warm = solve_sparse(&m2, &opts, Some(first.basis()));
            let cold = solve_sparse(&m2, &opts, None);
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-7 * (1.0 + a.abs());
            match (warm, cold) {
                (Ok(w), Ok(c)) => {
                    prop_assert!(close(w.objective(), c.objective()),
                        "objective: {} vs {}", w.objective(), c.objective());
                    for &v in &vars {
                        prop_assert!(close(w.value(v), c.value(v)), "x[{v:?}]");
                    }
                    for &con in &cons {
                        prop_assert!(close(w.dual(con), c.dual(con)), "y[{con:?}]");
                    }
                }
                (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                (x, y) => prop_assert!(false, "status mismatch: {x:?} vs {y:?}"),
            }
        }
    }

    /// LU reuse is invisible in the bits: a sweep-shaped sequence of
    /// re-solves (bound moves only, the constraint matrix untouched) must
    /// produce bitwise-identical solutions whether the backend reuses the
    /// previous factorisation or refactorises every install. This is the
    /// soundness property behind the shared-LU sweep path: adoption only
    /// fires when the incoming basis and matrix are bit-identical to what
    /// a fresh refactorisation would consume, so it can never change what
    /// the canonical extraction reports.
    #[test]
    fn lu_reuse_does_not_change_any_bit(lp in lp_strategy(5, 6), bumps in prop::collection::vec(0.0f64..1.0, 1..5)) {
        use llamp_lp::backend::{SolverBackend, SparseSimplex};
        let reuse_on = SimplexOptions { lu_reuse: true, ..Default::default() };
        let reuse_off = SimplexOptions { lu_reuse: false, ..Default::default() };
        let mut on = SparseSimplex::with_options(reuse_on);
        let mut off = SparseSimplex::with_options(reuse_off);
        let (m, vars, cons) = build(&lp);
        let bitwise = |a: Result<&llamp_lp::Solution, &llamp_lp::SolveError>,
                       b: Result<&llamp_lp::Solution, &llamp_lp::SolveError>|
         -> Result<(), String> {
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    if x.objective().to_bits() != y.objective().to_bits() {
                        return Err(format!("objective {} vs {}", x.objective(), y.objective()));
                    }
                    for &v in &vars {
                        if x.value(v).to_bits() != y.value(v).to_bits() {
                            return Err(format!("x[{v:?}]"));
                        }
                        if x.reduced_cost(v).to_bits() != y.reduced_cost(v).to_bits() {
                            return Err(format!("d[{v:?}]"));
                        }
                    }
                    for &c in &cons {
                        if x.dual(c).to_bits() != y.dual(c).to_bits() {
                            return Err(format!("y[{c:?}]"));
                        }
                    }
                    Ok(())
                }
                (Err(x), Err(y)) if x == y => Ok(()),
                (x, y) => Err(format!("status mismatch: {x:?} vs {y:?}")),
            }
        };
        let first_on = on.solve(&m);
        let first_off = off.solve(&m);
        prop_assert!(bitwise(first_on.as_ref(), first_off.as_ref()).is_ok(),
            "cold solve: {:?}", bitwise(first_on.as_ref(), first_off.as_ref()));
        if first_on.is_err() { return Ok(()); }
        let anchor = first_on.as_ref().unwrap().basis().clone();
        // A sweep: each step tightens var 0's lower bound (the model edit
        // a latency sweep performs), re-seeded from the anchor basis —
        // the exact shape that lets the reuse path adopt the previous LU.
        for (i, bump) in bumps.iter().enumerate() {
            let mut lp2 = lp.clone();
            let span = lp2.ubs[0] - lp2.lbs[0];
            lp2.lbs[0] += span * bump * 0.9;
            let (m2, _, _) = build(&lp2);
            if i % 2 == 0 {
                on.seed(&anchor);
                off.seed(&anchor);
            } else {
                // Odd steps re-solve from the previous point's basis — the
                // stability-window case where the adopted LU saves the
                // whole refactorisation.
            }
            let a = on.resolve(&m2);
            let b = off.resolve(&m2);
            let check = bitwise(a.as_ref(), b.as_ref());
            prop_assert!(check.is_ok(), "step {i}: {check:?}");
        }
    }

    /// Reduced-cost sign convention at optimum: for minimisation, nonbasic
    /// variables at lower bound have d >= 0 and at upper bound d <= 0.
    #[test]
    fn reduced_cost_signs(lp in lp_strategy(4, 5)) {
        use llamp_lp::solution::VarStatus;
        let (m, vars, _) = build(&lp);
        if let Ok(sol) = m.solve() {
            let sign = if lp.maximize { -1.0 } else { 1.0 };
            for &v in &vars {
                let d = sign * sol.reduced_cost(v);
                match sol.var_status(v) {
                    VarStatus::AtLower => prop_assert!(d >= -1e-5, "d={d} at lower"),
                    VarStatus::AtUpper => prop_assert!(d <= 1e-5, "d={d} at upper"),
                    _ => {}
                }
            }
        }
    }
}

//! Degenerate / cycling-prone LPs under the partial-pricing hot path.
//!
//! The ISSUE-3 rewrite replaced full-scan Dantzig with candidate-list
//! Devex pricing over *incrementally maintained* reduced costs. Two
//! properties keep that honest:
//!
//! 1. **Termination.** Degenerate problems — the inputs that make naive
//!    simplex cycle — must still terminate: the Bland fallback kicks in
//!    after a degenerate streak regardless of the pricing strategy, and
//!    a from-scratch reduced-cost resync runs when the streak begins, so
//!    Bland's argument is applied to trustworthy numbers.
//! 2. **Incremental accuracy.** At every periodic resynchronisation the
//!    incrementally updated reduced costs are compared against a
//!    from-scratch recompute; the worst relative gap is reported in
//!    [`SolveStats::max_resync_drift`] and must stay at rounding level
//!    (≤ 1e-9) — far below the 1e-7 optimality tolerance the pricing
//!    decisions are made at.

use llamp_lp::simplex::{solve, solve_dense, solve_sparse, SimplexOptions};
use llamp_lp::{LpModel, Objective, Relation};
use proptest::prelude::*;

/// Beale's classic cycling example: Dantzig pricing without anti-cycling
/// loops forever on it. The optimum is −1/20.
#[test]
fn beale_cycling_example_terminates_at_optimum() {
    let mut m = LpModel::new(Objective::Minimize);
    let x1 = m.add_var("x1", 0.0, f64::INFINITY, -0.75);
    let x2 = m.add_var("x2", 0.0, f64::INFINITY, 150.0);
    let x3 = m.add_var("x3", 0.0, 1.0, -0.02);
    let x4 = m.add_var("x4", 0.0, f64::INFINITY, 6.0);
    m.add_constraint(
        "r1",
        &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
        Relation::Le,
        0.0,
    );
    m.add_constraint(
        "r2",
        &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
        Relation::Le,
        0.0,
    );
    let sol = m.solve().expect("Beale's example is solvable");
    assert!(
        (sol.objective() - (-0.05)).abs() < 1e-9,
        "objective {} vs -0.05",
        sol.objective()
    );
}

/// A maximally degenerate star: every constraint passes through the same
/// vertex, with redundant copies. Bland must terminate it even when
/// forced from the first iteration.
#[test]
fn redundant_star_terminates_under_forced_bland() {
    for nvars in [2usize, 4, 6] {
        let mut m = LpModel::new(Objective::Minimize);
        let vars: Vec<_> = (0..nvars)
            .map(|j| m.add_var(format!("x{j}"), 0.0, 10.0, 1.0 + j as f64 * 0.1))
            .collect();
        for i in 0..4 * nvars {
            let terms: Vec<_> = vars
                .iter()
                .enumerate()
                .map(|(j, &v)| (v, 1.0 + ((i + j) % 3) as f64 * 0.0))
                .collect();
            m.add_constraint(format!("r{i}"), &terms, Relation::Ge, 5.0);
        }
        let opts = SimplexOptions {
            bland_after: 0, // least-index from the very first pivot
            ..Default::default()
        };
        let sol = solve(&m, &opts).expect("degenerate star is feasible");
        let dantzig = solve(&m, &SimplexOptions::default()).expect("and under devex pricing");
        assert!(
            (sol.objective() - dantzig.objective()).abs() < 1e-6 * (1.0 + sol.objective().abs()),
            "bland {} vs devex {}",
            sol.objective(),
            dantzig.objective()
        );
    }
}

/// A constraint row over `nvars` variables: sparse terms, relation code
/// (0 ≤, 1 ≥, 2 =), rhs snapped to a small grid so ties and degenerate
/// vertices are common.
type RandomRow = (Vec<(usize, f64)>, u8, f64);

#[derive(Debug, Clone)]
struct DegenerateLp {
    nvars: usize,
    ubs: Vec<f64>,
    objs: Vec<f64>,
    rows: Vec<RandomRow>,
}

fn degenerate_lp(max_vars: usize, max_rows: usize) -> impl Strategy<Value = DegenerateLp> {
    (2..=max_vars).prop_flat_map(move |nvars| {
        let ubs = prop::collection::vec(1.0f64..5.0, nvars);
        let objs = prop::collection::vec(-3.0f64..3.0, nvars);
        // Integer coefficients and rhs values drawn from a tiny set makes
        // coincident hyperplanes — degeneracy — the norm, not the
        // exception.
        let row = (
            prop::collection::vec((0..nvars, -2.0f64..2.0), 1..=3),
            0u8..3,
            0.0f64..3.0,
        );
        let rows = prop::collection::vec(row, 2..=max_rows);
        (ubs, objs, rows).prop_map(move |(ubs, objs, rows)| {
            let rows = rows
                .into_iter()
                .map(|(terms, rel, rhs)| {
                    let terms: Vec<(usize, f64)> = terms
                        .into_iter()
                        .map(|(v, c)| (v, c.round()))
                        .filter(|&(_, c)| c != 0.0)
                        .collect();
                    (terms, rel, rhs.round())
                })
                .filter(|(terms, _, _)| !terms.is_empty())
                .collect();
            DegenerateLp {
                nvars,
                ubs,
                objs,
                rows,
            }
        })
    })
}

fn build(lp: &DegenerateLp) -> LpModel {
    let mut m = LpModel::new(Objective::Minimize);
    let vars: Vec<_> = (0..lp.nvars)
        .map(|j| m.add_var(format!("x{j}"), 0.0, lp.ubs[j], lp.objs[j]))
        .collect();
    for (i, (terms, rel, rhs)) in lp.rows.iter().enumerate() {
        let t: Vec<_> = terms.iter().map(|&(v, c)| (vars[v], c)).collect();
        let rel = match rel {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        m.add_constraint(format!("r{i}"), &t, rel, *rhs);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Cycling-prone LPs terminate (no iteration-limit verdicts), with or
    /// without the Bland fallback forced on, and both pricing modes land
    /// on the same objective.
    #[test]
    fn degenerate_lps_terminate(lp in degenerate_lp(5, 8)) {
        use llamp_lp::SolveError;
        let m = build(&lp);
        let devex = solve(&m, &SimplexOptions::default());
        let bland = solve(&m, &SimplexOptions { bland_after: 0, ..Default::default() });
        prop_assert!(!matches!(devex, Err(SolveError::IterationLimit)), "devex hit the cap");
        prop_assert!(!matches!(bland, Err(SolveError::IterationLimit)), "bland hit the cap");
        if let (Ok(a), Ok(b)) = (&devex, &bland) {
            prop_assert!(
                (a.objective() - b.objective()).abs() < 1e-5 * (1.0 + a.objective().abs()),
                "objectives differ: {} vs {}", a.objective(), b.objective()
            );
        }
    }

    /// With refactorisation (and therefore resynchronisation) forced every
    /// few pivots, the incrementally maintained reduced costs must match
    /// the from-scratch recompute to 1e-9 at every resync — on both
    /// factorisation backends.
    #[test]
    fn incremental_reduced_costs_match_recompute(lp in degenerate_lp(5, 8)) {
        let m = build(&lp);
        let opts = SimplexOptions { refactor_every: 4, ..Default::default() };
        for sol in [solve_sparse(&m, &opts, None), solve_dense(&m, &opts, None)]
            .into_iter()
            .flatten()
        {
            prop_assert!(
                sol.stats().max_resync_drift <= 1e-9,
                "incremental reduced costs drifted: {:.3e}",
                sol.stats().max_resync_drift
            );
        }
    }
}

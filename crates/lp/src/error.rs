//! Typed solver failure: what a simplex solve reports when it cannot
//! return an optimum, split by *what the caller can do about it*.
//!
//! [`SolveError::Infeasible`] and [`SolveError::Unbounded`] are
//! properties of the model — re-solving cannot change them, and LLAMP's
//! analyses give them meaning (an infeasible tolerance cap, an unbounded
//! tolerance direction). Everything else is a property of the *solve*:
//! budgets ran out ([`SolveError::IterationLimit`],
//! [`SolveError::TimeLimit`], [`SolveError::Stalled`]), the numerics
//! degraded ([`SolveError::Distress`]), or a fault was injected on
//! purpose ([`SolveError::Injected`]). Those are **recoverable**: the
//! fallback ladder ([`crate::robust::resolve_robust`]) re-solves from
//! scratch — possibly on a different factorisation — and canonical
//! solution extraction guarantees any rung that succeeds returns the
//! byte-identical answer.

/// Which numerical-distress tripwire fired (see
/// [`crate::simplex::SimplexOptions`] for the thresholds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distress {
    /// Incremental pricing drifted further from freshly recomputed
    /// reduced costs than `drift_limit` allows.
    ResyncDrift,
    /// Bland's rule had to be engaged more than `bland_streak_limit`
    /// separate times within one solve.
    BlandStreak,
    /// More than `singular_limit` refactorisations came back singular,
    /// leaving the solver on an ever-longer eta file.
    SingularFactor,
}

impl std::fmt::Display for Distress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Distress::ResyncDrift => "resync drift over limit",
            Distress::BlandStreak => "repeated Bland streaks",
            Distress::SingularFactor => "repeated singular refactorisations",
        })
    }
}

/// Why a solve returned no optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The model has no feasible point (model property; not recoverable).
    Infeasible,
    /// The objective is unbounded in the optimising direction (model
    /// property; not recoverable — but meaningful: an unbounded tolerance
    /// objective reads as "infinite tolerance").
    Unbounded,
    /// The iteration budget ran out before optimality.
    IterationLimit,
    /// The wall-clock budget (`SimplexOptions::time_limit_ms`) ran out.
    TimeLimit,
    /// No objective progress for `stall_iters` consecutive degenerate
    /// iterations.
    Stalled,
    /// A numerical-distress tripwire fired; the answer so far cannot be
    /// trusted.
    Distress(Distress),
    /// A configured `llamp-faults` site (`solve.stall`) fired.
    Injected,
}

impl SolveError {
    /// Whether a from-scratch re-solve (possibly on another
    /// factorisation) could plausibly succeed. Model properties —
    /// infeasible, unbounded — are final; everything else is worth a trip
    /// down the fallback ladder.
    pub fn is_recoverable(&self) -> bool {
        !matches!(self, SolveError::Infeasible | SolveError::Unbounded)
    }

    /// Whether this is the unbounded-objective outcome (which tolerance
    /// queries interpret as "infinite tolerance", not an error).
    pub fn is_unbounded(&self) -> bool {
        matches!(self, SolveError::Unbounded)
    }
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Infeasible => f.write_str("infeasible"),
            SolveError::Unbounded => f.write_str("unbounded"),
            SolveError::IterationLimit => f.write_str("iteration limit"),
            SolveError::TimeLimit => f.write_str("time limit"),
            SolveError::Stalled => f.write_str("stalled"),
            SolveError::Distress(d) => write!(f, "numerical distress: {d}"),
            SolveError::Injected => f.write_str("injected fault"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recoverability_splits_model_from_solve_failures() {
        assert!(!SolveError::Infeasible.is_recoverable());
        assert!(!SolveError::Unbounded.is_recoverable());
        for e in [
            SolveError::IterationLimit,
            SolveError::TimeLimit,
            SolveError::Stalled,
            SolveError::Distress(Distress::ResyncDrift),
            SolveError::Distress(Distress::BlandStreak),
            SolveError::Distress(Distress::SingularFactor),
            SolveError::Injected,
        ] {
            assert!(e.is_recoverable(), "{e:?}");
        }
    }

    #[test]
    fn displays_are_stable_strings() {
        assert_eq!(SolveError::Infeasible.to_string(), "infeasible");
        assert_eq!(SolveError::TimeLimit.to_string(), "time limit");
        assert_eq!(
            SolveError::Distress(Distress::ResyncDrift).to_string(),
            "numerical distress: resync drift over limit"
        );
    }
}

//! The solver fallback ladder.
//!
//! [`resolve_robust`] answers an LP query through a [`SolverBackend`]
//! like `resolve` does, but when the solve fails *recoverably* (budget
//! exhaustion, numerical distress, an injected fault — see
//! [`SolveError::is_recoverable`]) it walks a ladder of progressively
//! more conservative re-solves instead of giving up:
//!
//! 1. **warm resolve** — the backend's normal path (parametric shortcut,
//!    warm basis, whatever it retains);
//! 2. **cold re-solve** — drop all warm state, optionally re-seed the
//!    caller's crash basis, and solve from scratch on the backend's own
//!    factorisation;
//! 3. **dense-inverse re-solve** — a fresh [`DenseSimplex`] with the
//!    same budgets disabled-by-default options; the slowest but most
//!    numerically conservative rung.
//!
//! **Why a recovered answer is byte-identical.** Solutions are extracted
//! canonically (recomputed from a fresh sparse LU of the final basis —
//! see the crate docs), and all rungs use the same deterministic pivot
//! rules, so any rung that reaches the optimal basis reports exactly the
//! bytes the no-fault solve would have. The engine's cross-backend
//! byte-identity tests cover the dense rung; `warm == cold` bitwise is
//! covered in `backend::tests`. After a rung-3 recovery the backend is
//! re-seeded with the answering basis, so subsequent warm queries
//! continue from the same state as an unfaulted run.
//!
//! Every rung taken past the first emits the obs counter
//! `solve.fallback` plus a per-rung counter (`solve.fallback.cold`,
//! `solve.fallback.dense`); unrecovered failures return the *first*
//! rung's error (the most informative one).

use crate::backend::{DenseSimplex, SolverBackend};
use crate::error::SolveError;
use crate::model::LpModel;
use crate::solution::{Basis, Solution};

/// Re-solve `model` through `backend` with fallback recovery. `crash`
/// optionally re-seeds the cold rung (the caller's structural crash
/// basis — what a freshly built backend would start from).
pub fn resolve_robust(
    backend: &mut dyn SolverBackend,
    model: &LpModel,
    crash: Option<&Basis>,
) -> Result<Solution, SolveError> {
    // Rung 1: the backend's normal warm path.
    let first = match backend.resolve(model) {
        Ok(sol) => return Ok(sol),
        Err(e) if !e.is_recoverable() => return Err(e),
        Err(e) => e,
    };

    // Rung 2: cold re-solve from scratch on the backend's own
    // factorisation, seeded like a freshly built instance.
    llamp_obs::counter("solve.fallback", 1);
    llamp_obs::counter("solve.fallback.cold", 1);
    backend.reset();
    if let Some(b) = crash {
        backend.seed(b);
        // `solve` ignores warm state by contract; `resolve` from a reset
        // backend with only the crash seed is the cold start.
        match backend.resolve(model) {
            Ok(sol) => return Ok(sol),
            Err(e) if !e.is_recoverable() => return Err(e),
            Err(_) => {}
        }
    } else {
        match backend.solve(model) {
            Ok(sol) => return Ok(sol),
            Err(e) if !e.is_recoverable() => return Err(e),
            Err(_) => {}
        }
    }

    // Rung 3: dense-inverse reference re-solve (skip if the backend
    // already *is* the dense one — rung 2 just ran exactly this).
    if backend.name() != "dense" {
        llamp_obs::counter("solve.fallback", 1);
        llamp_obs::counter("solve.fallback.dense", 1);
        let mut dense = DenseSimplex::default();
        match dense.solve(model) {
            Ok(sol) => {
                // Leave the caller's backend warm on the answering basis,
                // exactly as an unfaulted resolve would have.
                backend.seed(sol.basis());
                return Ok(sol);
            }
            Err(e) if !e.is_recoverable() => return Err(e),
            Err(_) => {}
        }
    }

    // Every rung failed recoverably: report the original failure.
    Err(first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{by_name, Parametric, SparseSimplex};
    use crate::model::{LpModel, Objective, Relation, VarId};
    use crate::simplex::SimplexOptions;

    fn running_example(l_lb: f64) -> (LpModel, VarId) {
        let mut m = LpModel::new(Objective::Minimize);
        let l = m.add_var("l", l_lb, f64::INFINITY, 0.0);
        let y1 = m.add_var("y1", f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let t = m.add_var("t", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_constraint("c1", &[(y1, 1.0), (l, -1.0)], Relation::Ge, 0.115);
        m.add_constraint("c2", &[(y1, 1.0)], Relation::Ge, 0.5);
        m.add_constraint("c3", &[(t, 1.0)], Relation::Ge, 1.1);
        m.add_constraint("c4", &[(t, 1.0), (y1, -1.0)], Relation::Ge, 1.0);
        (m, l)
    }

    #[test]
    fn clean_solves_pass_straight_through() {
        for name in crate::backend::BACKEND_NAMES {
            let mut b = by_name(name).unwrap();
            let (m, l) = running_example(0.5);
            let sol = resolve_robust(b.as_mut(), &m, None).unwrap();
            assert!((sol.objective() - 1.615).abs() < 1e-9, "{name}");
            assert!((sol.reduced_cost(l) - 1.0).abs() < 1e-9, "{name}");
        }
    }

    #[test]
    fn unrecoverable_errors_skip_the_ladder() {
        // An infeasible model must come back infeasible immediately, not
        // after burning two extra solves.
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint("c", &[(x, 1.0)], Relation::Ge, 2.0);
        let mut b = SparseSimplex::default();
        assert_eq!(
            resolve_robust(&mut b, &m, None).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn injected_stall_recovers_byte_identical() {
        // Fire `solve.stall` on the first hit: rung 1 aborts with the
        // typed injected error, rung 2 re-solves cold (the counter has
        // passed its mark, so no re-fire) and must reproduce the no-fault
        // answer bit-for-bit.
        let _g = faults_session();
        let (m, l) = running_example(0.5);
        let clean = SparseSimplex::default().solve(&m).unwrap();

        llamp_faults::configure("solve.stall:1", 0).unwrap();
        let mut b = SparseSimplex::default();
        let sol = resolve_robust(&mut b, &m, None).unwrap();
        llamp_faults::clear();

        assert_eq!(sol.objective().to_bits(), clean.objective().to_bits());
        assert_eq!(
            sol.reduced_cost(l).to_bits(),
            clean.reduced_cost(l).to_bits()
        );
        assert_eq!(sol.basis(), clean.basis());
    }

    #[test]
    fn parametric_recovers_through_dense_rung() {
        // A one-iteration budget fails rungs 1 and 2 (both run under the
        // backend's own options) so only the dense rung — which builds a
        // fresh default-options solver — can answer. Still byte-identical,
        // and the backend is left warm on the answering basis.
        let (m, l) = running_example(0.5);
        let clean = SparseSimplex::default().solve(&m).unwrap();

        let opts = SimplexOptions {
            max_iterations: 1,
            ..SimplexOptions::default()
        };
        let mut b = Parametric::with_options(opts);
        let sol = resolve_robust(&mut b, &m, None).unwrap();
        assert_eq!(sol.objective().to_bits(), clean.objective().to_bits());
        assert_eq!(
            sol.reduced_cost(l).to_bits(),
            clean.reduced_cost(l).to_bits()
        );
        // The backend was re-seeded on the answering basis: a follow-up
        // in-window query must still answer (through its own ladder).
        let (m2, l2) = running_example(0.45);
        let sol2 = resolve_robust(&mut b, &m2, None).unwrap();
        let clean2 = SparseSimplex::default().solve(&m2).unwrap();
        assert_eq!(sol2.objective().to_bits(), clean2.objective().to_bits());
        assert_eq!(
            sol2.reduced_cost(l2).to_bits(),
            clean2.reduced_cost(l2).to_bits()
        );
    }

    #[test]
    fn exhausted_ladder_reports_the_first_error() {
        // A stall probability of ~1 fails every rung; the caller sees the
        // rung-1 error, typed, never a panic.
        let _g = faults_session();
        llamp_faults::configure("solve.stall:0.99999", 7).unwrap();
        let (m, _) = running_example(0.5);
        let mut b = SparseSimplex::default();
        let err = resolve_robust(&mut b, &m, None).unwrap_err();
        llamp_faults::clear();
        assert_eq!(err, SolveError::Injected);
    }

    // The faults registry is process-global: serialize tests that touch it.
    static FAULTS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn faults_session() -> std::sync::MutexGuard<'static, ()> {
        FAULTS_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }
}

//! # llamp-lp — linear programming substrate
//!
//! LLAMP converts MPI execution graphs into linear programs and reads
//! predicted runtimes, latency sensitivities (reduced costs), basis-stability
//! ranges (for critical-latency search) and latency tolerances (a flipped
//! objective) off the solved model. The paper uses Gurobi; no comparable
//! solver exists as a mature Rust crate, so this crate implements the
//! required solver technology from scratch:
//!
//! * [`model::LpModel`] — a general LP model builder: variables with bounds,
//!   linear constraints (`≤`, `≥`, `=`, ranges), minimise/maximise.
//! * [`simplex`] — a bounded-variable primal simplex, generic over the
//!   basis factorisation (the internal `factor` module): the dense inverse (the original
//!   path, kept for cross-validation) or a sparse LU with a product-form
//!   eta file (the at-scale path). Artificial-free phase 1, Dantzig
//!   pricing with deterministic lowest-index tie-breaking and a Bland
//!   fallback (anti-cycling), a two-pass Harris ratio test, periodic
//!   refactorisation, and warm starts from a previous [`Basis`].
//! * [`dual`] — a bounded-variable **dual simplex** sharing the primal's
//!   core (factorisation, workspaces, canonical extraction): the re-solve
//!   engine for pure bound moves, which leave the previous basis dual
//!   feasible so only the handful of primal violations need pivoting out.
//! * [`backend`] — the [`SolverBackend`] trait the analysis layers program
//!   against, with four implementations selected by name:
//!   [`DenseSimplex`], [`SparseSimplex`], [`Parametric`] (sparse +
//!   the Algorithm-2 shortcut: a re-solve that moved one lower bound
//!   within the previous basis-stability window is answered by a
//!   pivot-free re-extraction) and [`DualSimplex`] (sparse + dual-simplex
//!   re-solves for bound moves).
//! * [`solution::Solution`] — primal values, objective, row duals, reduced
//!   costs, the exportable warm-start [`Basis`], and *bound ranging*: the
//!   equivalent of Gurobi's `SARHSLow` / `SALBLow` attributes that
//!   Algorithm 2 of the paper relies on.
//! * [`presolve`] — fixed-variable elimination, empty/singleton-row
//!   reduction and duplicate-row dropping, mirroring the presolve phase the
//!   paper credits for the LP approach outperforming simulation (§II-D3).
//! * [`piecewise`] — convex piecewise-linear functions represented as upper
//!   envelopes of lines. This powers the graph-level *parametric envelope*
//!   backend in `llamp-core`: the full value function `T(L)` over a
//!   latency window in a single pass.
//!
//! ## The warm-start protocol
//!
//! Every solved model exports its optimal [`Basis`]
//! ([`Solution::basis`]). Passing it back into the next solve of an
//! *edited* model (bounds moved, objective or sense changed — the edits a
//! latency sweep and the tolerance flip perform) starts the simplex from
//! that basis instead of the all-logical one. A sweep point that stays
//! within the previous basis-stability window re-solves with zero pivots;
//! one that crosses a breakpoint needs only the few pivots that walk to
//! the adjacent basis. The [`backend::SolverBackend::resolve`] method is
//! this protocol's front door; `solve` always starts cold.
//!
//! ## Cross-backend determinism
//!
//! Solutions are extracted *canonically*: whatever factorisation ran the
//! pivots, every reported number is recomputed from a fresh sparse LU of
//! the final basis (columns in ascending order, nonbasic values snapped
//! exactly onto their bounds). Pricing and ratio-test ties break by
//! lowest index within a relative epsilon. Together these make a
//! solution a pure function of `(model, final basis)` — dense, sparse,
//! warm and cold paths that land on the same basis return bit-identical
//! results, which is what lets `llamp-engine` demand byte-identical
//! campaign output across its `lp-dense` / `lp-sparse` / `lp-parametric`
//! backends.
//!
//! ## Picking a backend
//!
//! [`backend::by_name`] maps `"dense"`, `"sparse"`, `"parametric"` and
//! `"dual"` to boxed backends; campaign specs surface the same choice as
//! `backends = ["lp-dense" | "lp-sparse" | "lp-parametric" | "lp-dual"]`
//! (plain `"lp"` means `lp-sparse`). Use `dense` to cross-check numerics,
//! `sparse` for one-shot solves at scale, `parametric` or `dual` for
//! sweeps — anything that re-solves the same graph at many latencies.
//!
//! All solving styles are cross-validated against each other (and against
//! brute-force vertex enumeration) in the test suites of this crate and
//! `llamp-core`.

//!
//! ## Robustness
//!
//! Failed solves surface as the typed [`SolveError`]: model properties
//! (infeasible / unbounded) versus recoverable solve failures (budget
//! exhaustion, numerical distress, injected faults). For the latter,
//! [`robust::resolve_robust`] walks the fallback ladder — warm resolve →
//! cold sparse re-solve → dense-inverse re-solve — and canonical
//! extraction guarantees any rung that succeeds returns the
//! byte-identical answer the no-fault solve would have produced.

pub mod backend;
pub mod dual;
pub mod error;
pub(crate) mod factor;
pub mod model;
pub mod piecewise;
pub mod presolve;
pub mod robust;
pub mod simplex;
pub mod solution;

pub use backend::{by_name, DenseSimplex, DualSimplex, Parametric, SolverBackend, SparseSimplex};
pub use error::{Distress, SolveError};
pub use model::{ConId, LpModel, Objective, Relation, VarId};
pub use piecewise::{Envelope, Line};
pub use robust::resolve_robust;
pub use solution::{Basis, Solution, SolveStats};

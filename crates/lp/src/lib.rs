//! # llamp-lp — linear programming substrate
//!
//! LLAMP converts MPI execution graphs into linear programs and reads
//! predicted runtimes, latency sensitivities (reduced costs), basis-stability
//! ranges (for critical-latency search) and latency tolerances (a flipped
//! objective) off the solved model. The paper uses Gurobi; no comparable
//! solver exists as a mature Rust crate, so this crate implements the
//! required solver technology from scratch:
//!
//! * [`model::LpModel`] — a general LP model builder: variables with bounds,
//!   linear constraints (`≤`, `≥`, `=`, ranges), minimise/maximise.
//! * [`simplex`] — a bounded-variable primal simplex with a dense basis
//!   inverse, artificial-free phase 1, Dantzig pricing with Bland fallback
//!   (anti-cycling), and periodic refactorisation.
//! * [`solution::Solution`] — primal values, objective, row duals, reduced
//!   costs, and *bound ranging*: the equivalent of Gurobi's `SARHSLow` /
//!   `SALBLow` attributes that Algorithm 2 of the paper relies on.
//! * [`presolve`] — fixed-variable elimination, empty/singleton-row
//!   reduction and duplicate-row dropping, mirroring the presolve phase the
//!   paper credits for the LP approach outperforming simulation (§II-D3).
//! * [`piecewise`] — convex piecewise-linear functions represented as upper
//!   envelopes of lines. This powers the *parametric* backend: for the
//!   network-structured LPs LLAMP produces, the full value function `T(L)`
//!   can be computed exactly over a latency window, yielding every critical
//!   latency, the sensitivity step function `λ_L(L)` and exact tolerances in
//!   a single pass.
//!
//! Both solving styles are cross-validated against each other (and against
//! brute-force enumeration) in the test suites of this crate and
//! `llamp-core`.

pub mod model;
pub mod piecewise;
pub mod presolve;
pub mod simplex;
pub mod solution;

pub use model::{ConId, LpModel, Objective, Relation, VarId};
pub use piecewise::{Envelope, Line};
pub use solution::{Solution, SolveStatus};

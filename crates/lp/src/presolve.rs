//! LP presolve.
//!
//! The paper attributes much of the LP approach's speed advantage over
//! simulation to the solver's presolve phase "eliminat\[ing\] all redundant
//! constraints with advanced heuristics" (§II-D3). LLAMP's generated models
//! are full of such redundancy: single-predecessor vertices create chains of
//! singleton-like rows, and repeated communication patterns create duplicate
//! rows. This module implements the classic reductions:
//!
//! 1. **Fixed variables** (`lb == ub`): substituted into every row.
//! 2. **Empty rows**: dropped (or detected as infeasible).
//! 3. **Singleton rows** (one nonzero): converted into variable bounds.
//! 4. **Duplicate rows** (identical coefficient vectors): intersected.
//!
//! Reductions iterate to a fixpoint. The reduced model solves with the same
//! optimal objective; [`Presolved::recover`] maps a reduced solution back to
//! the original variable space.

use crate::error::SolveError;
use crate::model::{LpModel, VarId};
use crate::solution::Solution;
use llamp_util::FxHashMap;

/// How an original variable maps into the presolved model.
#[derive(Debug, Clone, Copy, PartialEq)]
enum VarMap {
    Kept(u32),
    Fixed(f64),
}

/// Outcome of presolving: a reduced model plus recovery metadata.
#[derive(Debug, Clone)]
pub struct Presolved {
    /// The reduced model (same optimisation sense, shifted objective).
    pub model: LpModel,
    /// Constant added to the reduced objective to recover the original one.
    pub objective_offset: f64,
    var_map: Vec<VarMap>,
    /// Statistics for reporting.
    pub vars_removed: usize,
    /// Statistics for reporting.
    pub rows_removed: usize,
}

impl Presolved {
    /// Solve the reduced model and report the objective in the original
    /// model's terms.
    pub fn solve(&self) -> Result<(f64, Vec<f64>), SolveError> {
        let sol = self.model.solve()?;
        Ok((sol.objective() + self.objective_offset, self.recover(&sol)))
    }

    /// Expand a reduced-model solution to the original variable vector.
    pub fn recover(&self, sol: &Solution) -> Vec<f64> {
        self.var_map
            .iter()
            .map(|vm| match *vm {
                VarMap::Kept(j) => sol.value(VarId(j)),
                VarMap::Fixed(v) => v,
            })
            .collect()
    }

    /// Handle of an original variable in the reduced model, if it survived.
    pub fn reduced_var(&self, original: VarId) -> Option<VarId> {
        match self.var_map[original.0 as usize] {
            VarMap::Kept(j) => Some(VarId(j)),
            VarMap::Fixed(_) => None,
        }
    }
}

/// Row state while reducing.
#[derive(Debug, Clone)]
struct WorkRow {
    lb: f64,
    ub: f64,
    terms: Vec<(u32, f64)>,
    alive: bool,
}

/// Apply presolve reductions to `model`.
///
/// Returns [`Err(SolveError::Infeasible)`](SolveError::Infeasible) if a
/// reduction proves the model infeasible outright.
pub fn presolve(model: &LpModel) -> Result<Presolved, SolveError> {
    let n = model.num_vars();
    let mut lb: Vec<f64> = (0..n).map(|j| model.var_lb(VarId(j as u32))).collect();
    let mut ub: Vec<f64> = (0..n).map(|j| model.var_ub(VarId(j as u32))).collect();
    let obj: Vec<f64> = (0..n).map(|j| model.var_obj(VarId(j as u32))).collect();
    let mut fixed: Vec<Option<f64>> = vec![None; n];

    let mut rows: Vec<WorkRow> = model
        .rows
        .iter()
        .map(|r| WorkRow {
            lb: r.lb,
            ub: r.ub,
            terms: r.terms.clone(),
            alive: true,
        })
        .collect();

    const TOL: f64 = 1e-9;
    let mut changed = true;
    while changed {
        changed = false;

        // 1. Fix variables whose box degenerated to a point.
        for j in 0..n {
            if fixed[j].is_none() && (ub[j] - lb[j]).abs() <= TOL {
                fixed[j] = Some(lb[j]);
                changed = true;
            }
        }

        for row in rows.iter_mut().filter(|r| r.alive) {
            // Substitute fixed variables into the row.
            let before = row.terms.len();
            row.terms.retain(|&(v, c)| {
                if let Some(val) = fixed[v as usize] {
                    if row.lb.is_finite() {
                        row.lb -= c * val;
                    }
                    if row.ub.is_finite() {
                        row.ub -= c * val;
                    }
                    false
                } else {
                    true
                }
            });
            if row.terms.len() != before {
                changed = true;
            }

            match row.terms.len() {
                0 => {
                    // 2. Empty row: 0 must lie in [lb, ub].
                    if row.lb > TOL || row.ub < -TOL {
                        return Err(SolveError::Infeasible);
                    }
                    row.alive = false;
                    changed = true;
                }
                1 => {
                    // 3. Singleton row: fold into variable bounds.
                    let (v, c) = row.terms[0];
                    let j = v as usize;
                    let (mut new_lb, mut new_ub) = if c > 0.0 {
                        (row.lb / c, row.ub / c)
                    } else {
                        (row.ub / c, row.lb / c)
                    };
                    if new_lb.is_nan() {
                        new_lb = f64::NEG_INFINITY;
                    }
                    if new_ub.is_nan() {
                        new_ub = f64::INFINITY;
                    }
                    if new_lb > lb[j] {
                        lb[j] = new_lb;
                    }
                    if new_ub < ub[j] {
                        ub[j] = new_ub;
                    }
                    if lb[j] > ub[j] + TOL {
                        return Err(SolveError::Infeasible);
                    }
                    row.alive = false;
                    changed = true;
                }
                _ => {}
            }
        }

        // 4. Duplicate rows: same term vector (bitwise coefficients) merge
        // by intersecting bounds.
        let mut seen: FxHashMap<Vec<(u32, u64)>, usize> = FxHashMap::default();
        for i in 0..rows.len() {
            if !rows[i].alive || rows[i].terms.is_empty() {
                continue;
            }
            let key: Vec<(u32, u64)> = rows[i]
                .terms
                .iter()
                .map(|&(v, c)| (v, c.to_bits()))
                .collect();
            match seen.get(&key) {
                None => {
                    seen.insert(key, i);
                }
                Some(&first) => {
                    let (rl, ru) = (rows[i].lb, rows[i].ub);
                    let keep = &mut rows[first];
                    keep.lb = keep.lb.max(rl);
                    keep.ub = keep.ub.min(ru);
                    if keep.lb > keep.ub + TOL {
                        return Err(SolveError::Infeasible);
                    }
                    rows[i].alive = false;
                    changed = true;
                }
            }
        }
    }

    // Assemble the reduced model.
    let mut reduced = LpModel::new(model.sense());
    let mut var_map = vec![VarMap::Fixed(0.0); n];
    let mut objective_offset = 0.0;
    let mut kept_vars = 0usize;
    for j in 0..n {
        match fixed[j] {
            Some(v) => {
                var_map[j] = VarMap::Fixed(v);
                objective_offset += obj[j] * v;
            }
            None => {
                let nv = reduced.add_var(
                    model.var_name(VarId(j as u32)).to_string(),
                    lb[j],
                    ub[j],
                    obj[j],
                );
                var_map[j] = VarMap::Kept(nv.0);
                kept_vars += 1;
            }
        }
    }
    let mut kept_rows = 0usize;
    for row in rows.iter().filter(|r| r.alive) {
        let terms: Vec<(VarId, f64)> = row
            .terms
            .iter()
            .map(|&(v, c)| match var_map[v as usize] {
                VarMap::Kept(nj) => (VarId(nj), c),
                VarMap::Fixed(_) => unreachable!("fixed var left in live row"),
            })
            .collect();
        reduced.add_range_constraint(format!("r{kept_rows}"), &terms, row.lb, row.ub);
        kept_rows += 1;
    }

    Ok(Presolved {
        model: reduced,
        objective_offset,
        var_map,
        vars_removed: n - kept_vars,
        rows_removed: model.num_constraints() - kept_rows,
    })
}

/// Convenience: presolve then solve, reporting the original objective value
/// and full primal vector.
pub fn presolve_and_solve(model: &LpModel) -> Result<(f64, Vec<f64>), SolveError> {
    presolve(model)?.solve()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LpModel, Objective, Relation};

    #[test]
    fn fixed_variable_is_substituted() {
        // min x + y, x = 3 (by bounds), x + y >= 10.
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 3.0, 3.0, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint("r", &[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        let p = presolve(&m).unwrap();
        assert_eq!(p.vars_removed, 1);
        let (obj, xs) = p.solve().unwrap();
        assert!((obj - 10.0).abs() < 1e-7);
        assert!((xs[0] - 3.0).abs() < 1e-12);
        assert!((xs[1] - 7.0).abs() < 1e-7);
    }

    #[test]
    fn singleton_row_becomes_bound() {
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        m.add_constraint("lo", &[(x, 2.0)], Relation::Ge, 8.0); // x >= 4
        let p = presolve(&m).unwrap();
        assert_eq!(p.rows_removed, 1);
        assert_eq!(p.model.num_constraints(), 0);
        let (obj, _) = p.solve().unwrap();
        assert!((obj - 4.0).abs() < 1e-7);
    }

    #[test]
    fn negative_singleton_flips_bounds() {
        let mut m = LpModel::new(Objective::Maximize);
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_constraint("hi", &[(x, -1.0)], Relation::Ge, -6.0); // x <= 6
        let p = presolve(&m).unwrap();
        let (obj, _) = p.solve().unwrap();
        assert!((obj - 6.0).abs() < 1e-7);
    }

    #[test]
    fn duplicate_rows_are_merged() {
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        for rhs in [4.0, 6.0, 5.0] {
            m.add_constraint("r", &[(x, 1.0), (y, 1.0)], Relation::Ge, rhs);
        }
        let p = presolve(&m).unwrap();
        assert_eq!(p.model.num_constraints(), 1);
        let (obj, _) = p.solve().unwrap();
        assert!((obj - 6.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected_by_bounds() {
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint("lo", &[(x, 1.0)], Relation::Ge, 5.0);
        assert_eq!(presolve(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn infeasible_empty_row() {
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 2.0, 2.0, 0.0);
        m.add_constraint("r", &[(x, 1.0)], Relation::Ge, 5.0);
        assert_eq!(presolve(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn infeasible_duplicate_rows() {
        // Two bitwise-identical rows whose bounds intersect to an empty
        // interval: x + y ≥ 5 merged with x + y ≤ 2.
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint("lo", &[(x, 1.0), (y, 1.0)], Relation::Ge, 5.0);
        m.add_constraint("hi", &[(x, 1.0), (y, 1.0)], Relation::Le, 2.0);
        assert_eq!(presolve(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn solve_passes_unbounded_through_typed() {
        // Presolve keeps the model; the reduced solve's typed error must
        // surface unchanged (no legacy-status flattening).
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, 0.0, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 0.0);
        m.add_constraint("r", &[(x, 1.0), (y, 1.0)], Relation::Le, 0.0);
        assert_eq!(
            presolve(&m).unwrap().solve().unwrap_err(),
            SolveError::Unbounded
        );
    }

    #[test]
    fn solve_passes_infeasible_through_typed() {
        // A conflict presolve's local reductions cannot see (two coupled
        // two-term rows) must come back from the solver as the same typed
        // error the presolve sites themselves return.
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint("lo", &[(x, 1.0), (y, 1.0)], Relation::Ge, 5.0);
        m.add_constraint("hi", &[(x, 1.0), (y, 2.0)], Relation::Le, 2.0);
        assert_eq!(presolve_and_solve(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn presolve_matches_direct_solve_on_running_example() {
        let mut m = LpModel::new(Objective::Minimize);
        let l = m.add_var("l", 0.5, f64::INFINITY, 0.0);
        let y1 = m.add_var("y1", f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let t = m.add_var("t", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_constraint("c1", &[(y1, 1.0), (l, -1.0)], Relation::Ge, 0.115);
        m.add_constraint("c2", &[(y1, 1.0)], Relation::Ge, 0.5);
        m.add_constraint("c3", &[(t, 1.0)], Relation::Ge, 1.1);
        m.add_constraint("c4", &[(t, 1.0), (y1, -1.0)], Relation::Ge, 1.0);
        let direct = m.solve().unwrap().objective();
        let (via_presolve, _) = presolve_and_solve(&m).unwrap();
        assert!((direct - via_presolve).abs() < 1e-7);
    }
}

//! LP model builder.
//!
//! The representation follows solver conventions rather than textbook
//! canonical form: every variable carries a `[lb, ub]` box (either side may
//! be infinite) and every constraint is a *range row* `lb ≤ aᵀx ≤ ub`.
//! Plain `≤` / `≥` / `=` rows are special cases. This makes the bounded
//! simplex natural and lets callers tighten a single variable bound (the
//! paper's `l ≥ L` step in Algorithm 2) without touching the constraint
//! matrix.

use std::fmt;

/// Handle to a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Handle to a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConId(pub u32);

/// Optimisation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Minimise the objective function (LLAMP runtime prediction).
    #[default]
    Minimize,
    /// Maximise the objective function (LLAMP latency tolerance).
    Maximize,
}

/// Constraint sense for the convenience [`LpModel::add_constraint`] API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `aᵀx ≤ rhs`
    Le,
    /// `aᵀx ≥ rhs`
    Ge,
    /// `aᵀx = rhs`
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct Column {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    pub obj: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    /// `(column, coefficient)` pairs; kept sorted by column, deduplicated.
    pub terms: Vec<(u32, f64)>,
}

/// A linear program under construction.
///
/// ```
/// use llamp_lp::{LpModel, Objective, Relation};
///
/// // The paper's running example (Fig. 5): min t
/// //   y1 >= l + 0.115, y1 >= 0.5, t >= 1.1, t >= y1 + 1, l >= 0.5
/// let mut m = LpModel::new(Objective::Minimize);
/// let l = m.add_var("l", 0.5, f64::INFINITY, 0.0);
/// let y1 = m.add_var("y1", f64::NEG_INFINITY, f64::INFINITY, 0.0);
/// let t = m.add_var("t", f64::NEG_INFINITY, f64::INFINITY, 1.0);
/// m.add_constraint("c1", &[(y1, 1.0), (l, -1.0)], Relation::Ge, 0.115);
/// m.add_constraint("c2", &[(y1, 1.0)], Relation::Ge, 0.5);
/// m.add_constraint("c3", &[(t, 1.0)], Relation::Ge, 1.1);
/// m.add_constraint("c4", &[(t, 1.0), (y1, -1.0)], Relation::Ge, 1.0);
/// let sol = m.solve().unwrap();
/// assert!((sol.objective() - 1.615).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LpModel {
    pub(crate) sense: Objective,
    pub(crate) cols: Vec<Column>,
    pub(crate) rows: Vec<Row>,
}

impl LpModel {
    /// Create an empty model with the given optimisation direction.
    pub fn new(sense: Objective) -> Self {
        Self {
            sense,
            cols: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Add a variable with box bounds and objective coefficient, returning
    /// its handle. Use `f64::NEG_INFINITY` / `f64::INFINITY` for free sides.
    pub fn add_var(&mut self, name: impl Into<String>, lb: f64, ub: f64, obj: f64) -> VarId {
        assert!(
            lb <= ub,
            "variable bounds crossed: lb={lb} > ub={ub} for {}",
            name.into()
        );
        let id = self.cols.len() as u32;
        self.cols.push(Column {
            name: name.into(),
            lb,
            ub,
            obj,
        });
        VarId(id)
    }

    /// Add a `≤` / `≥` / `=` constraint over the given `(variable,
    /// coefficient)` terms. Duplicate variables in `terms` are summed.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: &[(VarId, f64)],
        rel: Relation,
        rhs: f64,
    ) -> ConId {
        let (lb, ub) = match rel {
            Relation::Le => (f64::NEG_INFINITY, rhs),
            Relation::Ge => (rhs, f64::INFINITY),
            Relation::Eq => (rhs, rhs),
        };
        self.add_range_constraint(name, terms, lb, ub)
    }

    /// Add a range constraint `lb ≤ aᵀx ≤ ub`.
    pub fn add_range_constraint(
        &mut self,
        name: impl Into<String>,
        terms: &[(VarId, f64)],
        lb: f64,
        ub: f64,
    ) -> ConId {
        assert!(lb <= ub, "constraint bounds crossed: {lb} > {ub}");
        let mut t: Vec<(u32, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            assert!(
                (v.0 as usize) < self.cols.len(),
                "constraint references unknown variable {v:?}"
            );
            t.push((v.0, c));
        }
        t.sort_unstable_by_key(|&(v, _)| v);
        // Merge duplicates, drop exact zeros.
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(t.len());
        for (v, c) in t {
            match merged.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => merged.push((v, c)),
            }
        }
        merged.retain(|&(_, c)| c != 0.0);
        let id = self.rows.len() as u32;
        self.rows.push(Row {
            name: name.into(),
            lb,
            ub,
            terms: merged,
        });
        ConId(id)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.cols.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Total number of nonzero coefficients across all rows.
    pub fn num_nonzeros(&self) -> usize {
        self.rows.iter().map(|r| r.terms.len()).sum()
    }

    /// Optimisation direction.
    pub fn sense(&self) -> Objective {
        self.sense
    }

    /// Change the optimisation direction (the paper flips `min t` into
    /// `max l` when computing latency tolerance).
    pub fn set_sense(&mut self, sense: Objective) {
        self.sense = sense;
    }

    /// Replace the objective with the given terms (all other coefficients
    /// become zero).
    pub fn set_objective(&mut self, terms: &[(VarId, f64)]) {
        for c in &mut self.cols {
            c.obj = 0.0;
        }
        for &(v, c) in terms {
            self.cols[v.0 as usize].obj += c;
        }
    }

    /// Current lower bound of `v`.
    pub fn var_lb(&self, v: VarId) -> f64 {
        self.cols[v.0 as usize].lb
    }

    /// Current upper bound of `v`.
    pub fn var_ub(&self, v: VarId) -> f64 {
        self.cols[v.0 as usize].ub
    }

    /// Variable name (for reports and GOAL/LP dumps).
    pub fn var_name(&self, v: VarId) -> &str {
        &self.cols[v.0 as usize].name
    }

    /// Objective coefficient of `v`.
    pub fn var_obj(&self, v: VarId) -> f64 {
        self.cols[v.0 as usize].obj
    }

    /// Tighten/relax the lower bound of a variable. This is the hot
    /// operation of Algorithm 2 (`assign constraint l ≥ L`).
    pub fn set_var_lb(&mut self, v: VarId, lb: f64) {
        let c = &mut self.cols[v.0 as usize];
        assert!(lb <= c.ub, "lb {lb} exceeds ub {} for {}", c.ub, c.name);
        c.lb = lb;
    }

    /// Tighten/relax the upper bound of a variable (used by the tolerance
    /// formulation `t ≤ (1+x)·T₀`).
    pub fn set_var_ub(&mut self, v: VarId, ub: f64) {
        let c = &mut self.cols[v.0 as usize];
        assert!(ub >= c.lb, "ub {ub} below lb {} for {}", c.lb, c.name);
        c.ub = ub;
    }

    /// Row bounds `(lb, ub)` of a constraint.
    pub fn row_bounds(&self, c: ConId) -> (f64, f64) {
        let r = &self.rows[c.0 as usize];
        (r.lb, r.ub)
    }

    /// Solve with default options. See [`simplex::SimplexOptions`] for
    /// tuning and [`Solution`] for what can be read back.
    ///
    /// [`simplex::SimplexOptions`]: crate::simplex::SimplexOptions
    /// [`Solution`]: crate::solution::Solution
    pub fn solve(&self) -> Result<crate::solution::Solution, crate::error::SolveError> {
        crate::simplex::solve(self, &crate::simplex::SimplexOptions::default())
    }
}

impl fmt::Display for LpModel {
    /// Render in an LP-file-like text format (objective, constraints,
    /// bounds). Intended for debugging and golden tests, not interchange.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sense {
            Objective::Minimize => writeln!(f, "Minimize")?,
            Objective::Maximize => writeln!(f, "Maximize")?,
        }
        write!(f, "  obj:")?;
        for (j, c) in self.cols.iter().enumerate() {
            if c.obj != 0.0 {
                write!(f, " {:+} {}", c.obj, nm(&c.name, j))?;
            }
        }
        writeln!(f)?;
        writeln!(f, "Subject To")?;
        for (i, r) in self.rows.iter().enumerate() {
            write!(f, "  {}:", nm(&r.name, i))?;
            for &(v, coef) in &r.terms {
                write!(
                    f,
                    " {:+} {}",
                    coef,
                    nm(&self.cols[v as usize].name, v as usize)
                )?;
            }
            if r.lb == r.ub {
                writeln!(f, " = {}", r.ub)?;
            } else if r.lb.is_finite() && r.ub.is_finite() {
                writeln!(f, " in [{}, {}]", r.lb, r.ub)?;
            } else if r.lb.is_finite() {
                writeln!(f, " >= {}", r.lb)?;
            } else {
                writeln!(f, " <= {}", r.ub)?;
            }
        }
        writeln!(f, "Bounds")?;
        for (j, c) in self.cols.iter().enumerate() {
            writeln!(f, "  {} <= {} <= {}", c.lb, nm(&c.name, j), c.ub)?;
        }
        Ok(())
    }
}

fn nm(name: &str, idx: usize) -> String {
    if name.is_empty() {
        format!("x{idx}")
    } else {
        name.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_terms_are_merged() {
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let c = m.add_constraint("r", &[(x, 1.0), (x, 2.0)], Relation::Le, 6.0);
        assert_eq!(m.rows[c.0 as usize].terms, vec![(0, 3.0)]);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 0.0);
        let c = m.add_constraint("r", &[(x, 1.0), (y, 0.0)], Relation::Le, 6.0);
        assert_eq!(m.rows[c.0 as usize].terms, vec![(0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "bounds crossed")]
    fn crossed_bounds_panic() {
        let mut m = LpModel::new(Objective::Minimize);
        m.add_var("x", 1.0, 0.0, 0.0);
    }

    #[test]
    fn display_contains_sections() {
        let mut m = LpModel::new(Objective::Maximize);
        let x = m.add_var("x", 0.0, 1.0, 2.0);
        m.add_constraint("cap", &[(x, 1.0)], Relation::Le, 0.5);
        let s = m.to_string();
        assert!(s.contains("Maximize"));
        assert!(s.contains("Subject To"));
        assert!(s.contains("Bounds"));
        assert!(s.contains("cap"));
    }
}

//! Basis factorisations for the bounded-variable simplex.
//!
//! The simplex core is generic over a [`BasisFactor`]: the object that
//! represents (an implicit form of) `B⁻¹` and answers FTRAN / BTRAN
//! queries, absorbs rank-one basis exchanges, and refactorises from
//! scratch. Two implementations exist:
//!
//! * [`DenseInv`] — the original dense column-major basis inverse,
//!   rebuilt by Gauss–Jordan elimination and updated with dense eta
//!   transformations. `O(m²)` per FTRAN/BTRAN/update and `O(m³)` per
//!   refactorisation: fine for medium models, kept alive as the
//!   cross-validation reference for the sparse path.
//! * [`SparseLu`] — a sparse LU factorisation (left-looking, partial
//!   pivoting by magnitude) with a *product-form eta file* absorbing the
//!   pivots between refactorisations. For the near-triangular,
//!   ±1-coefficient LPs LLAMP generates, `L` and `U` stay close to the
//!   nonzero count of `B` itself, so FTRAN/BTRAN cost `O(nnz)` instead
//!   of `O(m²)` — this is what lets the simplex backend keep up with
//!   graph-scale models the way the paper leans on Gurobi's presolve +
//!   barrier (§II-D3).
//!
//! Index conventions (shared with `simplex.rs`): *row space* vectors are
//! indexed by original constraint row; *position space* vectors are
//! indexed by basis position `i` (pairing with `basis[i]`). FTRAN maps a
//! row-space right-hand side to position space (`w = B⁻¹ b`), BTRAN maps
//! position-space basic costs to row-space duals (`y = B⁻ᵀ c_B`).

/// Read-only view of the extended constraint matrix in compressed sparse
/// column form (structural columns first, then one logical column per
/// row).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ColsView<'a> {
    pub start: &'a [usize],
    pub rows: &'a [u32],
    pub vals: &'a [f64],
}

impl ColsView<'_> {
    /// Scatter column `j` into a dense row-space vector.
    fn scatter(&self, j: usize, x: &mut [f64]) {
        for idx in self.start[j]..self.start[j + 1] {
            x[self.rows[idx] as usize] = self.vals[idx];
        }
    }
}

/// The operations the simplex core needs from a basis representation.
pub(crate) trait BasisFactor {
    /// Fresh, unfactorised state for an `m`-row problem.
    fn new(m: usize) -> Self;

    /// Factorise the basis whose columns are `cols[basis[i]]`. Returns
    /// `false` (leaving the previous state untouched) when the matrix is
    /// numerically singular.
    fn refactor(&mut self, cols: ColsView<'_>, basis: &[usize]) -> bool;

    /// FTRAN of sparse column `j`: `w = B⁻¹ A_j` (position space).
    fn ftran_col(&self, cols: ColsView<'_>, j: usize) -> Vec<f64>;

    /// FTRAN of a dense row-space right-hand side.
    fn ftran_dense(&self, rhs: &[f64]) -> Vec<f64>;

    /// BTRAN: `y = B⁻ᵀ c_B` with `c_B` in position space, `y` in row
    /// space.
    fn btran_dense(&self, cb: &[f64]) -> Vec<f64>;

    /// Absorb a basis exchange at position `r`, where `w` is the FTRAN of
    /// the entering column.
    fn update(&mut self, w: &[f64], r: usize);
}

// ---------------------------------------------------------------------------
// Dense inverse
// ---------------------------------------------------------------------------

/// Dense column-major basis inverse (`binv[k·m + i]` maps row `k` to
/// position `i`).
#[derive(Debug, Clone)]
pub(crate) struct DenseInv {
    m: usize,
    binv: Vec<f64>,
}

impl BasisFactor for DenseInv {
    fn new(m: usize) -> Self {
        Self {
            m,
            binv: vec![0.0; m * m],
        }
    }

    /// Gauss–Jordan with partial pivoting on `[B | I]`.
    fn refactor(&mut self, cols: ColsView<'_>, basis: &[usize]) -> bool {
        let m = self.m;
        if m == 0 {
            return true;
        }
        let mut b = vec![0.0; m * m];
        for (pos, &j) in basis.iter().enumerate() {
            for idx in cols.start[j]..cols.start[j + 1] {
                b[pos * m + cols.rows[idx] as usize] = cols.vals[idx];
            }
        }
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            let mut piv = col;
            let mut best = b[col * m + col].abs();
            for r in col + 1..m {
                let v = b[col * m + r].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-12 {
                return false;
            }
            if piv != col {
                for k in 0..m {
                    b.swap(k * m + col, k * m + piv);
                    inv.swap(k * m + col, k * m + piv);
                }
            }
            let d = b[col * m + col];
            for k in 0..m {
                b[k * m + col] /= d;
                inv[k * m + col] /= d;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = b[col * m + r];
                if f == 0.0 {
                    continue;
                }
                for k in 0..m {
                    b[k * m + r] -= f * b[k * m + col];
                    inv[k * m + r] -= f * inv[k * m + col];
                }
            }
        }
        self.binv = inv;
        true
    }

    fn ftran_col(&self, cols: ColsView<'_>, j: usize) -> Vec<f64> {
        let m = self.m;
        let mut w = vec![0.0; m];
        for idx in cols.start[j]..cols.start[j + 1] {
            let k = cols.rows[idx] as usize;
            let a = cols.vals[idx];
            let col = &self.binv[k * m..(k + 1) * m];
            for (wi, &ci) in w.iter_mut().zip(col) {
                *wi += a * ci;
            }
        }
        w
    }

    fn ftran_dense(&self, rhs: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut w = vec![0.0; m];
        for (k, &rk) in rhs.iter().enumerate() {
            if rk == 0.0 {
                continue;
            }
            let col = &self.binv[k * m..(k + 1) * m];
            for (wi, &ci) in w.iter_mut().zip(col) {
                *wi += rk * ci;
            }
        }
        w
    }

    fn btran_dense(&self, cb: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut y = vec![0.0; m];
        for (k, yk) in y.iter_mut().enumerate() {
            let col = &self.binv[k * m..(k + 1) * m];
            let mut acc = 0.0;
            for (cbi, &ci) in cb.iter().zip(col) {
                acc += cbi * ci;
            }
            *yk = acc;
        }
        y
    }

    /// Dense eta transformation replacing basic position `r`.
    fn update(&mut self, w: &[f64], r: usize) {
        let m = self.m;
        let wr = w[r];
        for k in 0..m {
            let col = &mut self.binv[k * m..(k + 1) * m];
            let brk = col[r];
            if brk == 0.0 {
                continue;
            }
            let scaled = brk / wr;
            col[r] = scaled;
            for i in 0..m {
                if i != r && w[i] != 0.0 {
                    col[i] -= w[i] * scaled;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sparse LU + product-form eta file
// ---------------------------------------------------------------------------

/// Sparse LU factorisation `P B = L U` (pivot order = basis position
/// order, rows permuted by partial pivoting) plus a product-form eta file
/// for the basis exchanges since the last refactorisation.
#[derive(Debug, Clone, Default)]
pub(crate) struct SparseLu {
    m: usize,
    /// Original row chosen as pivot for position `k`.
    pivot_row: Vec<u32>,
    /// `L` columns (unit diagonal implicit): multipliers `(original row,
    /// value)` per pivot position.
    l_start: Vec<usize>,
    l_rows: Vec<u32>,
    l_vals: Vec<f64>,
    /// `U` columns: off-diagonal `(pivot position k < j, u_kj)` per
    /// column position `j`; diagonal stored separately.
    u_start: Vec<usize>,
    u_pos: Vec<u32>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    /// Product-form eta file: eta `e` replaces position `eta_r[e]`, with
    /// sparse entries `(position, value)`; the entry at `eta_r[e]` holds
    /// `1/w_r`, the others `−w_i/w_r`.
    eta_start: Vec<usize>,
    eta_pos: Vec<u32>,
    eta_vals: Vec<f64>,
    eta_r: Vec<u32>,
}

impl SparseLu {
    /// Nonzeros in `L + U` (diagnostic).
    #[allow(dead_code)]
    pub(crate) fn nnz(&self) -> usize {
        self.l_rows.len() + self.u_pos.len() + self.u_diag.len()
    }

    /// Apply the eta file (ascending) to a position-space vector: the
    /// FTRAN tail.
    fn apply_etas(&self, w: &mut [f64]) {
        for e in 0..self.eta_r.len() {
            let r = self.eta_r[e] as usize;
            let xr = w[r];
            if xr == 0.0 {
                continue;
            }
            w[r] = 0.0;
            for idx in self.eta_start[e]..self.eta_start[e + 1] {
                w[self.eta_pos[idx] as usize] += self.eta_vals[idx] * xr;
            }
        }
    }

    /// Apply the transposed eta file (descending) to a position-space
    /// vector: the BTRAN head.
    fn apply_etas_rev(&self, c: &mut [f64]) {
        for e in (0..self.eta_r.len()).rev() {
            let mut acc = 0.0;
            for idx in self.eta_start[e]..self.eta_start[e + 1] {
                acc += self.eta_vals[idx] * c[self.eta_pos[idx] as usize];
            }
            c[self.eta_r[e] as usize] = acc;
        }
    }

    /// Lower/upper triangular solves of the base factorisation: row-space
    /// input `x`, position-space output.
    fn lu_solve(&self, x: &mut [f64]) -> Vec<f64> {
        let m = self.m;
        // L solve in pivot order.
        for k in 0..m {
            let xk = x[self.pivot_row[k] as usize];
            if xk == 0.0 {
                continue;
            }
            for idx in self.l_start[k]..self.l_start[k + 1] {
                x[self.l_rows[idx] as usize] -= self.l_vals[idx] * xk;
            }
        }
        // U back-substitution.
        let mut w = vec![0.0; m];
        for j in (0..m).rev() {
            let v = x[self.pivot_row[j] as usize];
            if v == 0.0 {
                continue;
            }
            let wj = v / self.u_diag[j];
            w[j] = wj;
            for idx in self.u_start[j]..self.u_start[j + 1] {
                x[self.pivot_row[self.u_pos[idx] as usize] as usize] -= self.u_vals[idx] * wj;
            }
        }
        w
    }
}

impl BasisFactor for SparseLu {
    fn new(m: usize) -> Self {
        Self {
            m,
            // `eta_start` keeps a leading sentinel so eta `e` spans
            // `eta_start[e]..eta_start[e+1]`.
            eta_start: vec![0],
            ..Self::default()
        }
    }

    /// Left-looking sparse LU with partial pivoting by magnitude. Builds
    /// into fresh storage and swaps on success, so a singular matrix
    /// leaves the previous factorisation intact.
    fn refactor(&mut self, cols: ColsView<'_>, basis: &[usize]) -> bool {
        self.refactor_min_pivot(cols, basis, 1e-12)
    }

    fn ftran_col(&self, cols: ColsView<'_>, j: usize) -> Vec<f64> {
        let mut x = vec![0.0; self.m];
        cols.scatter(j, &mut x);
        let mut w = self.lu_solve(&mut x);
        self.apply_etas(&mut w);
        w
    }

    fn ftran_dense(&self, rhs: &[f64]) -> Vec<f64> {
        let mut x = rhs.to_vec();
        let mut w = self.lu_solve(&mut x);
        self.apply_etas(&mut w);
        w
    }

    fn btran_dense(&self, cb: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut c = cb.to_vec();
        self.apply_etas_rev(&mut c);
        // Uᵀ forward solve (in place, position space).
        for j in 0..m {
            let mut acc = c[j];
            for idx in self.u_start[j]..self.u_start[j + 1] {
                acc -= self.u_vals[idx] * c[self.u_pos[idx] as usize];
            }
            c[j] = acc / self.u_diag[j];
        }
        // Scatter to row space, then Lᵀ solve in reverse pivot order.
        let mut y = vec![0.0; m];
        for k in 0..m {
            y[self.pivot_row[k] as usize] = c[k];
        }
        for k in (0..m).rev() {
            let pr = self.pivot_row[k] as usize;
            let mut acc = y[pr];
            for idx in self.l_start[k]..self.l_start[k + 1] {
                acc -= self.l_vals[idx] * y[self.l_rows[idx] as usize];
            }
            y[pr] = acc;
        }
        y
    }

    /// Append a product-form eta for the exchange at position `r`.
    fn update(&mut self, w: &[f64], r: usize) {
        let wr = w[r];
        for (i, &wi) in w.iter().enumerate() {
            if i == r {
                self.eta_pos.push(r as u32);
                self.eta_vals.push(1.0 / wr);
            } else if wi != 0.0 {
                self.eta_pos.push(i as u32);
                self.eta_vals.push(-wi / wr);
            }
        }
        self.eta_start.push(self.eta_pos.len());
        self.eta_r.push(r as u32);
    }
}

impl SparseLu {
    /// The factorisation behind [`BasisFactor::refactor`], with an
    /// explicit minimum pivot magnitude. Canonical extraction retries a
    /// numerically borderline basis with `min_pivot = 0.0` (any nonzero
    /// pivot accepted) so a basis the solver itself maintained degrades
    /// to reduced accuracy instead of failing outright.
    pub(crate) fn refactor_min_pivot(
        &mut self,
        cols: ColsView<'_>,
        basis: &[usize],
        min_pivot: f64,
    ) -> bool {
        let m = self.m;
        let mut next = SparseLu::new(m);
        next.pivot_row = vec![u32::MAX; m];
        next.l_start = Vec::with_capacity(m + 1);
        next.l_start.push(0);
        next.u_start = Vec::with_capacity(m + 1);
        next.u_start.push(0);
        next.u_diag = Vec::with_capacity(m);

        // row → pivot position (u32::MAX while unpivoted).
        let mut row_pos = vec![u32::MAX; m];
        let mut x = vec![0.0; m];
        let mut touched: Vec<u32> = Vec::with_capacity(64);

        for (j, &col) in basis.iter().enumerate() {
            // Scatter B's column j.
            touched.clear();
            for idx in cols.start[col]..cols.start[col + 1] {
                let r = cols.rows[idx] as usize;
                x[r] = cols.vals[idx];
                touched.push(r as u32);
            }
            // Eliminate with the pivots found so far (ascending pivot
            // order; a plain scan keeps the code simple and is cheap next
            // to the dense alternative).
            for k in 0..j {
                let pr = next.pivot_row[k] as usize;
                let ukj = x[pr];
                if ukj == 0.0 {
                    continue;
                }
                next.u_pos.push(k as u32);
                next.u_vals.push(ukj);
                for idx in next.l_start[k]..next.l_start[k + 1] {
                    let r = next.l_rows[idx] as usize;
                    if x[r] == 0.0 {
                        touched.push(r as u32);
                    }
                    x[r] -= next.l_vals[idx] * ukj;
                }
            }
            next.u_start.push(next.u_pos.len());
            // Partial pivot: largest remaining magnitude.
            let mut piv = usize::MAX;
            let mut best = 0.0f64;
            for &t in &touched {
                let r = t as usize;
                if row_pos[r] == u32::MAX && x[r].abs() > best {
                    best = x[r].abs();
                    piv = r;
                }
            }
            if piv == usize::MAX || best <= 0.0 || best < min_pivot {
                return false;
            }
            let d = x[piv];
            next.pivot_row[j] = piv as u32;
            row_pos[piv] = j as u32;
            next.u_diag.push(d);
            for &t in &touched {
                let r = t as usize;
                let v = x[r];
                x[r] = 0.0;
                if r != piv && row_pos[r] == u32::MAX && v != 0.0 {
                    next.l_rows.push(r as u32);
                    next.l_vals.push(v / d);
                }
            }
            next.l_start.push(next.l_rows.len());
        }
        *self = next;
        true
    }

    /// Etas absorbed since the last refactorisation (diagnostic).
    #[allow(dead_code)]
    pub(crate) fn updates(&self) -> u64 {
        self.eta_r.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3×3 system with known inverse, expressed through the CSC view.
    fn cols_3x3() -> (Vec<usize>, Vec<u32>, Vec<f64>) {
        // Columns: [2,1,0], [0,3,1], [1,0,2]
        let start = vec![0, 2, 4, 6];
        let rows = vec![0, 1, 1, 2, 0, 2];
        let vals = vec![2.0, 1.0, 3.0, 1.0, 1.0, 2.0];
        (start, rows, vals)
    }

    fn check_ftran_btran<F: BasisFactor>(mut f: F) {
        let (start, rows, vals) = cols_3x3();
        let view = ColsView {
            start: &start,
            rows: &rows,
            vals: &vals,
        };
        assert!(f.refactor(view, &[0, 1, 2]));
        // B = [[2,0,1],[1,3,0],[0,1,2]]; solve B w = e0 + 2·e2.
        let w = f.ftran_dense(&[1.0, 0.0, 2.0]);
        // Verify B·w = rhs.
        let b = [[2.0, 0.0, 1.0], [1.0, 3.0, 0.0], [0.0, 1.0, 2.0]];
        let rhs = [1.0, 0.0, 2.0];
        for i in 0..3 {
            let acc: f64 = (0..3).map(|j| b[i][j] * w[j]).sum();
            assert!((acc - rhs[i]).abs() < 1e-12, "row {i}: {acc}");
        }
        // BTRAN: y solves Bᵀ y = c.
        let c = [1.0, -2.0, 0.5];
        let y = f.btran_dense(&c);
        for j in 0..3 {
            let acc: f64 = (0..3).map(|i| b[i][j] * y[i]).sum();
            assert!((acc - c[j]).abs() < 1e-12, "col {j}: {acc}");
        }
    }

    #[test]
    fn dense_solves_small_system() {
        check_ftran_btran(DenseInv::new(3));
    }

    #[test]
    fn sparse_solves_small_system() {
        check_ftran_btran(SparseLu::new(3));
    }

    #[test]
    fn eta_update_matches_refactorisation() {
        let (mut start, mut rows, mut vals) = cols_3x3();
        // Add a fourth column [1, 1, 1] to pivot in.
        start.push(9);
        rows.extend([0, 1, 2]);
        vals.extend([1.0, 1.0, 1.0]);
        let view = ColsView {
            start: &start,
            rows: &rows,
            vals: &vals,
        };
        for (mut inc, mut fresh) in [
            (SparseLu::new(3), SparseLu::new(3)),
            // Dense path exercised through the same scenario below.
        ] {
            assert!(inc.refactor(view, &[0, 1, 2]));
            let w = inc.ftran_col(view, 3);
            inc.update(&w, 1);
            assert_eq!(inc.updates(), 1);
            assert!(fresh.refactor(view, &[0, 3, 2]));
            let rhs = [0.3, -1.2, 2.5];
            let wi = inc.ftran_dense(&rhs);
            let wf = fresh.ftran_dense(&rhs);
            for (a, b) in wi.iter().zip(&wf) {
                assert!((a - b).abs() < 1e-10, "{a} vs {b}");
            }
            let cb = [1.0, 0.0, -3.0];
            let yi = inc.btran_dense(&cb);
            let yf = fresh.btran_dense(&cb);
            for (a, b) in yi.iter().zip(&yf) {
                assert!((a - b).abs() < 1e-10, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn dense_and_sparse_agree() {
        let (start, rows, vals) = cols_3x3();
        let view = ColsView {
            start: &start,
            rows: &rows,
            vals: &vals,
        };
        let mut d = DenseInv::new(3);
        let mut s = SparseLu::new(3);
        assert!(d.refactor(view, &[2, 0, 1]));
        assert!(s.refactor(view, &[2, 0, 1]));
        let rhs = [1.5, -0.5, 4.0];
        for (a, b) in d.ftran_dense(&rhs).iter().zip(&s.ftran_dense(&rhs)) {
            assert!((a - b).abs() < 1e-12);
        }
        let cb = [2.0, 1.0, -1.0];
        for (a, b) in d.btran_dense(&cb).iter().zip(&s.btran_dense(&cb)) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_basis_rejected_and_state_preserved() {
        // Two identical columns → singular.
        let start = vec![0, 1, 2, 3];
        let rows = vec![0, 0, 1];
        let vals = vec![1.0, 1.0, 1.0];
        let view = ColsView {
            start: &start,
            rows: &rows,
            vals: &vals,
        };
        let mut s = SparseLu::new(2);
        assert!(s.refactor(view, &[0, 2]));
        let before = s.ftran_dense(&[1.0, 1.0]);
        assert!(!s.refactor(view, &[0, 1]));
        let after = s.ftran_dense(&[1.0, 1.0]);
        assert_eq!(before, after);
        let mut d = DenseInv::new(2);
        assert!(d.refactor(view, &[0, 2]));
        assert!(!d.refactor(view, &[0, 1]));
    }
}

//! Basis factorisations for the bounded-variable simplex.
//!
//! The simplex core is generic over a [`BasisFactor`]: the object that
//! represents (an implicit form of) `B⁻¹` and answers FTRAN / BTRAN
//! queries, absorbs rank-one basis exchanges, and refactorises from
//! scratch. Two implementations exist:
//!
//! * [`DenseInv`] — the original dense column-major basis inverse,
//!   rebuilt by Gauss–Jordan elimination and updated with dense eta
//!   transformations. `O(m²)` per FTRAN/BTRAN/update and `O(m³)` per
//!   refactorisation: fine for medium models, kept alive as the
//!   cross-validation reference for the sparse path.
//! * [`SparseLu`] — a sparse LU factorisation (left-looking, partial
//!   pivoting by magnitude, Markowitz-style static column ordering to cut
//!   fill-in) with a *product-form eta file* absorbing the pivots between
//!   refactorisations. For the near-triangular, ±1-coefficient LPs LLAMP
//!   generates, `L` and `U` stay close to the nonzero count of `B`
//!   itself, so FTRAN/BTRAN cost `O(nnz)` instead of `O(m²)`.
//!
//! The hot-path operations (`ftran_col`, `btran_sparse`, `update`, and
//! `btran_dense_into`) take `&mut self` and write into caller-owned
//! [`IndexedVec`] workspaces: the simplex inner loop performs **no heap
//! allocation** in FTRAN/BTRAN/pricing. Allocating `&self` variants
//! (`ftran_dense`, `btran_dense`, `ftran_col_alloc`) remain for the cold
//! extraction and on-demand ranging paths.
//!
//! Index conventions (shared with `simplex.rs`): *row space* vectors are
//! indexed by original constraint row; *position space* vectors are
//! indexed by basis position `i` (pairing with `basis[i]`). FTRAN maps a
//! row-space right-hand side to position space (`w = B⁻¹ b`), BTRAN maps
//! position-space basic costs to row-space duals (`y = B⁻ᵀ c_B`).
//! `SparseLu` additionally keeps an internal *factor order* (the
//! Markowitz column order); the mapping is private and all public answers
//! are in position/row space.

use llamp_util::IndexedVec;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Read-only view of the extended constraint matrix in compressed sparse
/// column form (structural columns first, then one logical column per
/// row).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ColsView<'a> {
    pub start: &'a [usize],
    pub rows: &'a [u32],
    pub vals: &'a [f64],
}

impl ColsView<'_> {
    /// Scatter column `j` into a dense row-space vector.
    fn scatter(&self, j: usize, x: &mut [f64]) {
        for idx in self.start[j]..self.start[j + 1] {
            x[self.rows[idx] as usize] = self.vals[idx];
        }
    }
}

/// The operations the simplex core needs from a basis representation.
pub(crate) trait BasisFactor {
    /// Fresh, unfactorised state for an `m`-row problem.
    fn new(m: usize) -> Self;

    /// Factorise the basis whose columns are `cols[basis[i]]`. Returns
    /// `false` (leaving the previous state untouched) when the matrix is
    /// numerically singular.
    fn refactor(&mut self, cols: ColsView<'_>, basis: &[usize]) -> bool;

    /// Hot-path FTRAN of sparse column `j`: `w = B⁻¹ A_j` (position
    /// space), written into the caller-owned workspace (reset here).
    fn ftran_col(&mut self, cols: ColsView<'_>, j: usize, w: &mut IndexedVec);

    /// FTRAN of a dense row-space right-hand side (cold paths; allocates).
    fn ftran_dense(&self, rhs: &[f64]) -> Vec<f64>;

    /// BTRAN: `y = B⁻ᵀ c_B` with `c_B` in position space, `y` in row
    /// space (cold paths; allocates).
    fn btran_dense(&self, cb: &[f64]) -> Vec<f64>;

    /// Hot-path dense BTRAN into a caller-owned row-space buffer of
    /// length `m` (no allocation).
    fn btran_dense_into(&mut self, cb: &[f64], y: &mut [f64]);

    /// Hot-path BTRAN of a *sparse* position-space vector `v` (e.g. the
    /// unit vector of a pivot row, or a batch of phase-1 cost deltas):
    /// `y = B⁻ᵀ v`, written into the caller-owned row-space workspace
    /// (reset here).
    fn btran_sparse(&mut self, v: &IndexedVec, y: &mut IndexedVec);

    /// Absorb a basis exchange at position `r`, where `w` is the FTRAN of
    /// the entering column (support sorted ascending).
    fn update(&mut self, w: &IndexedVec, r: usize);

    /// Nonzeros of the fresh factorisation — the yardstick for the
    /// eta-growth early-refactorisation trigger. `0` means "not
    /// applicable" (the dense inverse), which disables the trigger.
    fn factor_nnz(&self) -> usize;

    /// Nonzeros absorbed into the update (eta) file since the last
    /// refactorisation.
    fn update_nnz(&self) -> usize;

    /// Adopt an existing factorisation of the *same* basis matrix instead
    /// of refactorising from scratch. Returns `false` (the default) when
    /// the representation cannot host a `SparseLu`, in which case the
    /// caller falls back to [`BasisFactor::refactor`].
    fn adopt(&mut self, _lu: &SparseLu) -> bool {
        false
    }

    /// Surrender the factorisation for reuse elsewhere, when it is a
    /// pristine (eta-free) `SparseLu`. `None` (the default) means the
    /// representation has nothing transferable.
    fn take_sparse_lu(&mut self) -> Option<SparseLu> {
        None
    }
}

// ---------------------------------------------------------------------------
// Dense inverse
// ---------------------------------------------------------------------------

/// Dense column-major basis inverse (`binv[k·m + i]` maps row `k` to
/// position `i`).
#[derive(Debug, Clone)]
pub(crate) struct DenseInv {
    m: usize,
    binv: Vec<f64>,
}

impl BasisFactor for DenseInv {
    fn new(m: usize) -> Self {
        Self {
            m,
            binv: vec![0.0; m * m],
        }
    }

    /// Gauss–Jordan with partial pivoting on `[B | I]`.
    fn refactor(&mut self, cols: ColsView<'_>, basis: &[usize]) -> bool {
        let m = self.m;
        if m == 0 {
            return true;
        }
        let mut b = vec![0.0; m * m];
        for (pos, &j) in basis.iter().enumerate() {
            for idx in cols.start[j]..cols.start[j + 1] {
                b[pos * m + cols.rows[idx] as usize] = cols.vals[idx];
            }
        }
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            let mut piv = col;
            let mut best = b[col * m + col].abs();
            for r in col + 1..m {
                let v = b[col * m + r].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-12 {
                return false;
            }
            if piv != col {
                for k in 0..m {
                    b.swap(k * m + col, k * m + piv);
                    inv.swap(k * m + col, k * m + piv);
                }
            }
            let d = b[col * m + col];
            for k in 0..m {
                b[k * m + col] /= d;
                inv[k * m + col] /= d;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = b[col * m + r];
                if f == 0.0 {
                    continue;
                }
                for k in 0..m {
                    b[k * m + r] -= f * b[k * m + col];
                    inv[k * m + r] -= f * inv[k * m + col];
                }
            }
        }
        self.binv = inv;
        true
    }

    fn ftran_col(&mut self, cols: ColsView<'_>, j: usize, w: &mut IndexedVec) {
        let m = self.m;
        w.reset(m);
        for idx in cols.start[j]..cols.start[j + 1] {
            let k = cols.rows[idx] as usize;
            let a = cols.vals[idx];
            let col = &self.binv[k * m..(k + 1) * m];
            for (i, &ci) in col.iter().enumerate() {
                if ci != 0.0 {
                    w.add(i, a * ci);
                }
            }
        }
    }

    fn ftran_dense(&self, rhs: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut w = vec![0.0; m];
        for (k, &rk) in rhs.iter().enumerate() {
            if rk == 0.0 {
                continue;
            }
            let col = &self.binv[k * m..(k + 1) * m];
            for (wi, &ci) in w.iter_mut().zip(col) {
                *wi += rk * ci;
            }
        }
        w
    }

    fn btran_dense(&self, cb: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        self.btran_core(cb, &mut y);
        y
    }

    fn btran_dense_into(&mut self, cb: &[f64], y: &mut [f64]) {
        self.btran_core(cb, y);
    }

    fn btran_sparse(&mut self, v: &IndexedVec, y: &mut IndexedVec) {
        let m = self.m;
        y.reset(m);
        for k in 0..m {
            let col = &self.binv[k * m..(k + 1) * m];
            let mut acc = 0.0;
            for &i in v.indices() {
                acc += v.get(i as usize) * col[i as usize];
            }
            if acc != 0.0 {
                y.set(k, acc);
            }
        }
    }

    /// Dense eta transformation replacing basic position `r`.
    fn update(&mut self, w: &IndexedVec, r: usize) {
        let m = self.m;
        let wr = w.get(r);
        for k in 0..m {
            let col = &mut self.binv[k * m..(k + 1) * m];
            let brk = col[r];
            if brk == 0.0 {
                continue;
            }
            let scaled = brk / wr;
            col[r] = scaled;
            for &iu in w.indices() {
                let i = iu as usize;
                let wi = w.get(i);
                if i != r && wi != 0.0 {
                    col[i] -= wi * scaled;
                }
            }
        }
    }

    fn factor_nnz(&self) -> usize {
        0
    }

    fn update_nnz(&self) -> usize {
        0
    }
}

impl DenseInv {
    fn btran_core(&self, cb: &[f64], y: &mut [f64]) {
        let m = self.m;
        for (k, yk) in y.iter_mut().enumerate().take(m) {
            let col = &self.binv[k * m..(k + 1) * m];
            let mut acc = 0.0;
            for (cbi, &ci) in cb.iter().zip(col) {
                acc += cbi * ci;
            }
            *yk = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// Sparse LU + product-form eta file
// ---------------------------------------------------------------------------

/// Sparse LU factorisation `P B Q = L U` (columns processed in a
/// Markowitz-style fill-reducing order `Q`, rows permuted by partial
/// pivoting `P`) plus a product-form eta file for the basis exchanges
/// since the last refactorisation.
#[derive(Debug, Clone, Default)]
pub(crate) struct SparseLu {
    m: usize,
    /// Factor order `k` → original row chosen as pivot.
    pivot_row: Vec<u32>,
    /// Factor order `k` → basis position (the column-order permutation).
    pos_of_factor: Vec<u32>,
    /// `L` columns (unit diagonal implicit), by factor order: multipliers
    /// `(original row, value)` per pivot.
    l_start: Vec<usize>,
    l_rows: Vec<u32>,
    l_vals: Vec<f64>,
    /// `U` columns, by factor order: off-diagonal `(factor position
    /// k < j, u_kj)` per column `j`; diagonal stored separately.
    u_start: Vec<usize>,
    u_pos: Vec<u32>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    /// Product-form eta file in *position space*: eta `e` replaces
    /// position `eta_r[e]`, with sparse entries `(position, value)`; the
    /// entry at `eta_r[e]` holds `1/w_r`, the others `−w_i/w_r`.
    eta_start: Vec<usize>,
    eta_pos: Vec<u32>,
    eta_vals: Vec<f64>,
    eta_r: Vec<u32>,
    /// Hot-path scratch (row / position / factor space). Fully owned so
    /// FTRAN/BTRAN never allocate.
    work_row: Vec<f64>,
    work_pos: Vec<f64>,
    work_fac: Vec<f64>,
    work_touch: Vec<u32>,
}

impl SparseLu {
    /// Nonzeros in `L + U` (diagnostic / refactor trigger).
    pub(crate) fn nnz(&self) -> usize {
        self.l_rows.len() + self.u_pos.len() + self.u_diag.len()
    }

    /// Apply the eta file (ascending) to a sparse position-space vector:
    /// the FTRAN tail.
    fn apply_etas_sparse(&self, w: &mut IndexedVec) {
        for e in 0..self.eta_r.len() {
            let r = self.eta_r[e] as usize;
            let xr = w.get(r);
            if xr == 0.0 {
                continue;
            }
            w.set(r, 0.0);
            for idx in self.eta_start[e]..self.eta_start[e + 1] {
                w.add(self.eta_pos[idx] as usize, self.eta_vals[idx] * xr);
            }
        }
    }

    /// Dense-slice variant of [`SparseLu::apply_etas_sparse`].
    fn apply_etas(&self, w: &mut [f64]) {
        for e in 0..self.eta_r.len() {
            let r = self.eta_r[e] as usize;
            let xr = w[r];
            if xr == 0.0 {
                continue;
            }
            w[r] = 0.0;
            for idx in self.eta_start[e]..self.eta_start[e + 1] {
                w[self.eta_pos[idx] as usize] += self.eta_vals[idx] * xr;
            }
        }
    }

    /// Apply the transposed eta file (descending) to a dense
    /// position-space vector: the BTRAN head.
    fn apply_etas_rev(&self, c: &mut [f64]) {
        for e in (0..self.eta_r.len()).rev() {
            let mut acc = 0.0;
            for idx in self.eta_start[e]..self.eta_start[e + 1] {
                acc += self.eta_vals[idx] * c[self.eta_pos[idx] as usize];
            }
            c[self.eta_r[e] as usize] = acc;
        }
    }

    /// Lower/upper triangular solves of the base factorisation on a dense
    /// row-space vector `x` (destroyed), producing a dense position-space
    /// result.
    fn lu_solve_dense(&self, x: &mut [f64]) -> Vec<f64> {
        let m = self.m;
        for k in 0..m {
            let xk = x[self.pivot_row[k] as usize];
            if xk == 0.0 {
                continue;
            }
            for idx in self.l_start[k]..self.l_start[k + 1] {
                x[self.l_rows[idx] as usize] -= self.l_vals[idx] * xk;
            }
        }
        let mut w = vec![0.0; m];
        for k in (0..m).rev() {
            let v = x[self.pivot_row[k] as usize];
            if v == 0.0 {
                continue;
            }
            let wk = v / self.u_diag[k];
            w[self.pos_of_factor[k] as usize] = wk;
            for idx in self.u_start[k]..self.u_start[k + 1] {
                x[self.pivot_row[self.u_pos[idx] as usize] as usize] -= self.u_vals[idx] * wk;
            }
        }
        w
    }

    /// Shared BTRAN spine: `c` is a dense position-space vector with the
    /// transposed etas already applied; the Uᵀ/Lᵀ solves write the
    /// row-space result into `y` (fully overwritten).
    fn btran_spine(&self, c: &[f64], fac: &mut [f64], y: &mut [f64]) {
        let m = self.m;
        // Gather into factor order.
        for k in 0..m {
            fac[k] = c[self.pos_of_factor[k] as usize];
        }
        // Uᵀ forward solve (factor space).
        for k in 0..m {
            let mut acc = fac[k];
            for idx in self.u_start[k]..self.u_start[k + 1] {
                acc -= self.u_vals[idx] * fac[self.u_pos[idx] as usize];
            }
            fac[k] = if acc == 0.0 {
                0.0
            } else {
                acc / self.u_diag[k]
            };
        }
        // Scatter to row space, then Lᵀ solve in reverse factor order.
        for k in 0..m {
            y[self.pivot_row[k] as usize] = fac[k];
        }
        for k in (0..m).rev() {
            let pr = self.pivot_row[k] as usize;
            let mut acc = y[pr];
            for idx in self.l_start[k]..self.l_start[k + 1] {
                acc -= self.l_vals[idx] * y[self.l_rows[idx] as usize];
            }
            y[pr] = acc;
        }
    }

    /// Allocating FTRAN of sparse column `j` (on-demand ranging path;
    /// `&self` so it can run off the shared canonical factorisation).
    pub(crate) fn ftran_col_alloc(&self, cols: ColsView<'_>, j: usize) -> Vec<f64> {
        let mut x = vec![0.0; self.m];
        cols.scatter(j, &mut x);
        let mut w = self.lu_solve_dense(&mut x);
        self.apply_etas(&mut w);
        w
    }

    /// Etas absorbed since the last refactorisation (diagnostic).
    #[cfg(test)]
    pub(crate) fn updates(&self) -> u64 {
        self.eta_r.len() as u64
    }
}

impl BasisFactor for SparseLu {
    fn new(m: usize) -> Self {
        Self {
            m,
            // `eta_start` keeps a leading sentinel so eta `e` spans
            // `eta_start[e]..eta_start[e+1]`.
            eta_start: vec![0],
            work_row: vec![0.0; m],
            work_pos: vec![0.0; m],
            work_fac: vec![0.0; m],
            ..Self::default()
        }
    }

    /// Left-looking sparse LU with partial pivoting by magnitude and a
    /// static fill-reducing column order. Builds into fresh storage and
    /// swaps on success, so a singular matrix leaves the previous
    /// factorisation intact.
    fn refactor(&mut self, cols: ColsView<'_>, basis: &[usize]) -> bool {
        self.refactor_min_pivot(cols, basis, 1e-12)
    }

    fn adopt(&mut self, lu: &SparseLu) -> bool {
        if lu.m != self.m {
            return false;
        }
        *self = lu.clone();
        true
    }

    fn take_sparse_lu(&mut self) -> Option<SparseLu> {
        if self.eta_r.is_empty() && self.m > 0 && !self.pivot_row.is_empty() {
            Some(std::mem::take(self))
        } else {
            None
        }
    }

    fn ftran_col(&mut self, cols: ColsView<'_>, j: usize, w: &mut IndexedVec) {
        let m = self.m;
        w.reset(m);
        // Split the borrows: the triangular data is read-only while the
        // scratch buffers are written.
        let (pivot_row, pos_of_factor) = (&self.pivot_row, &self.pos_of_factor);
        let (l_start, l_rows, l_vals) = (&self.l_start, &self.l_rows, &self.l_vals);
        let (u_start, u_pos, u_vals, u_diag) =
            (&self.u_start, &self.u_pos, &self.u_vals, &self.u_diag);
        let x = &mut self.work_row;
        let touch = &mut self.work_touch;
        touch.clear();
        for idx in cols.start[j]..cols.start[j + 1] {
            let r = cols.rows[idx] as usize;
            x[r] = cols.vals[idx];
            touch.push(r as u32);
        }
        // L solve in factor order; the O(m) scan is sequential u32 loads,
        // the arithmetic is O(nnz).
        for k in 0..m {
            let xk = x[pivot_row[k] as usize];
            if xk == 0.0 {
                continue;
            }
            for idx in l_start[k]..l_start[k + 1] {
                let r = l_rows[idx] as usize;
                x[r] -= l_vals[idx] * xk;
                touch.push(r as u32);
            }
        }
        // U back-substitution, emitting nonzeros straight into `w`.
        for k in (0..m).rev() {
            let v = x[pivot_row[k] as usize];
            if v == 0.0 {
                continue;
            }
            let wk = v / u_diag[k];
            w.set(pos_of_factor[k] as usize, wk);
            for idx in u_start[k]..u_start[k + 1] {
                let r = pivot_row[u_pos[idx] as usize] as usize;
                x[r] -= u_vals[idx] * wk;
                touch.push(r as u32);
            }
        }
        for &r in touch.iter() {
            x[r as usize] = 0.0;
        }
        self.apply_etas_sparse(w);
    }

    fn ftran_dense(&self, rhs: &[f64]) -> Vec<f64> {
        let mut x = rhs.to_vec();
        let mut w = self.lu_solve_dense(&mut x);
        self.apply_etas(&mut w);
        w
    }

    fn btran_dense(&self, cb: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut c = cb.to_vec();
        self.apply_etas_rev(&mut c);
        let mut fac = vec![0.0; m];
        let mut y = vec![0.0; m];
        self.btran_spine(&c, &mut fac, &mut y);
        y
    }

    fn btran_dense_into(&mut self, cb: &[f64], y: &mut [f64]) {
        let m = self.m;
        self.work_pos[..m].copy_from_slice(&cb[..m]);
        // Move the scratch out so `self` methods can borrow immutably.
        let mut c = std::mem::take(&mut self.work_pos);
        let mut fac = std::mem::take(&mut self.work_fac);
        self.apply_etas_rev(&mut c);
        self.btran_spine(&c, &mut fac, y);
        // Restore the all-zero invariant the sparse paths rely on.
        c[..m].fill(0.0);
        self.work_pos = c;
        self.work_fac = fac;
    }

    fn btran_sparse(&mut self, v: &IndexedVec, y: &mut IndexedVec) {
        let m = self.m;
        y.reset(m);
        let mut c = std::mem::take(&mut self.work_pos);
        let mut fac = std::mem::take(&mut self.work_fac);
        let mut yd = std::mem::take(&mut self.work_row);
        for &i in v.indices() {
            c[i as usize] = v.get(i as usize);
        }
        self.apply_etas_rev(&mut c);
        self.btran_spine(&c, &mut fac, &mut yd);
        // Clear the position-space scratch: the input support plus every
        // eta target written by `apply_etas_rev`.
        for &i in v.indices() {
            c[i as usize] = 0.0;
        }
        for &r in &self.eta_r {
            c[r as usize] = 0.0;
        }
        // `yd` is fully overwritten by the spine; gather the support,
        // then zero exactly those entries so the row-space scratch keeps
        // its all-zero invariant for the FTRAN path.
        for (r, &val) in yd.iter().enumerate().take(m) {
            if val != 0.0 {
                y.set(r, val);
            }
        }
        for &r in y.indices() {
            yd[r as usize] = 0.0;
        }
        self.work_pos = c;
        self.work_fac = fac;
        self.work_row = yd;
    }

    /// Append a product-form eta for the exchange at position `r`.
    fn update(&mut self, w: &IndexedVec, r: usize) {
        let wr = w.get(r);
        for &iu in w.indices() {
            let i = iu as usize;
            let wi = w.get(i);
            if i == r {
                self.eta_pos.push(r as u32);
                self.eta_vals.push(1.0 / wr);
            } else if wi != 0.0 {
                self.eta_pos.push(i as u32);
                self.eta_vals.push(-wi / wr);
            }
        }
        self.eta_start.push(self.eta_pos.len());
        self.eta_r.push(r as u32);
    }

    fn factor_nnz(&self) -> usize {
        self.nnz()
    }

    fn update_nnz(&self) -> usize {
        self.eta_pos.len()
    }
}

impl SparseLu {
    /// The factorisation behind [`BasisFactor::refactor`], with an
    /// explicit minimum pivot magnitude. Canonical extraction retries a
    /// numerically borderline basis with `min_pivot = 0.0` (any nonzero
    /// pivot accepted) so a basis the solver itself maintained degrades
    /// to reduced accuracy instead of failing outright.
    ///
    /// Columns are processed in a Markowitz-style static order (ascending
    /// nonzero count, ties by basis position): singleton columns pivot
    /// first and generate no fill, which keeps `L`/`U` near the nonzero
    /// count of `B` itself on LLAMP's near-triangular bases. Elimination
    /// follows the nonzero pattern through a min-heap of pivot positions
    /// (Gilbert–Peierls style), so each column costs `O(fill · log)`
    /// rather than a full `O(m)` scan.
    pub(crate) fn refactor_min_pivot(
        &mut self,
        cols: ColsView<'_>,
        basis: &[usize],
        min_pivot: f64,
    ) -> bool {
        let m = self.m;
        let mut next = SparseLu::new(m);
        next.pivot_row = vec![u32::MAX; m];
        next.pos_of_factor = Vec::with_capacity(m);
        next.l_start = Vec::with_capacity(m + 1);
        next.l_start.push(0);
        next.u_start = Vec::with_capacity(m + 1);
        next.u_start.push(0);
        next.u_diag = Vec::with_capacity(m);

        // Markowitz-style static column order: ascending nonzero count,
        // deterministic position tie-break.
        let mut order: Vec<u32> = (0..m as u32).collect();
        order.sort_unstable_by_key(|&p| {
            let j = basis[p as usize];
            ((cols.start[j + 1] - cols.start[j]) as u32, p)
        });

        // row → factor position (u32::MAX while unpivoted).
        let mut row_pos = vec![u32::MAX; m];
        let mut x = vec![0.0; m];
        let mut touched: Vec<u32> = Vec::with_capacity(64);
        // Pending pivot positions to eliminate with, deduplicated by a
        // per-column stamp and processed in ascending factor order.
        let mut heap: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
        let mut queued: Vec<u32> = vec![u32::MAX; m];

        for (k, &p) in order.iter().enumerate() {
            let col = basis[p as usize];
            touched.clear();
            debug_assert!(heap.is_empty());
            for idx in cols.start[col]..cols.start[col + 1] {
                let r = cols.rows[idx] as usize;
                x[r] = cols.vals[idx];
                touched.push(r as u32);
                let rp = row_pos[r];
                if rp != u32::MAX && queued[rp as usize] != k as u32 {
                    queued[rp as usize] = k as u32;
                    heap.push(Reverse(rp));
                }
            }
            // Eliminate along the nonzero pattern: popping ascending
            // factor positions; fill can only land in later positions.
            while let Some(Reverse(kku)) = heap.pop() {
                let kk = kku as usize;
                let ukj = x[next.pivot_row[kk] as usize];
                if ukj == 0.0 {
                    continue;
                }
                next.u_pos.push(kku);
                next.u_vals.push(ukj);
                for idx in next.l_start[kk]..next.l_start[kk + 1] {
                    let r = next.l_rows[idx] as usize;
                    if x[r] == 0.0 {
                        touched.push(r as u32);
                    }
                    x[r] -= next.l_vals[idx] * ukj;
                    let rp = row_pos[r];
                    if rp != u32::MAX && queued[rp as usize] != k as u32 {
                        queued[rp as usize] = k as u32;
                        heap.push(Reverse(rp));
                    }
                }
            }
            next.u_start.push(next.u_pos.len());
            // Partial pivot: largest remaining magnitude (duplicates in
            // `touched` are harmless — same row, same value).
            let mut piv = usize::MAX;
            let mut best = 0.0f64;
            for &t in &touched {
                let r = t as usize;
                if row_pos[r] == u32::MAX && x[r].abs() > best {
                    best = x[r].abs();
                    piv = r;
                }
            }
            if piv == usize::MAX || best <= 0.0 || best < min_pivot {
                return false;
            }
            let d = x[piv];
            next.pivot_row[k] = piv as u32;
            row_pos[piv] = k as u32;
            next.u_diag.push(d);
            next.pos_of_factor.push(p);
            for &t in &touched {
                let r = t as usize;
                let v = x[r];
                x[r] = 0.0;
                if r != piv && row_pos[r] == u32::MAX && v != 0.0 {
                    next.l_rows.push(r as u32);
                    next.l_vals.push(v / d);
                }
            }
            next.l_start.push(next.l_rows.len());
        }
        *self = next;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3×3 system with known inverse, expressed through the CSC view.
    fn cols_3x3() -> (Vec<usize>, Vec<u32>, Vec<f64>) {
        // Columns: [2,1,0], [0,3,1], [1,0,2]
        let start = vec![0, 2, 4, 6];
        let rows = vec![0, 1, 1, 2, 0, 2];
        let vals = vec![2.0, 1.0, 3.0, 1.0, 1.0, 2.0];
        (start, rows, vals)
    }

    fn check_ftran_btran<F: BasisFactor>(mut f: F) {
        let (start, rows, vals) = cols_3x3();
        let view = ColsView {
            start: &start,
            rows: &rows,
            vals: &vals,
        };
        assert!(f.refactor(view, &[0, 1, 2]));
        // B = [[2,0,1],[1,3,0],[0,1,2]]; solve B w = e0 + 2·e2.
        let w = f.ftran_dense(&[1.0, 0.0, 2.0]);
        // Verify B·w = rhs.
        let b = [[2.0, 0.0, 1.0], [1.0, 3.0, 0.0], [0.0, 1.0, 2.0]];
        let rhs = [1.0, 0.0, 2.0];
        for i in 0..3 {
            let acc: f64 = (0..3).map(|j| b[i][j] * w[j]).sum();
            assert!((acc - rhs[i]).abs() < 1e-12, "row {i}: {acc}");
        }
        // BTRAN: y solves Bᵀ y = c.
        let c = [1.0, -2.0, 0.5];
        let y = f.btran_dense(&c);
        for j in 0..3 {
            let acc: f64 = (0..3).map(|i| b[i][j] * y[i]).sum();
            assert!((acc - c[j]).abs() < 1e-12, "col {j}: {acc}");
        }
        // The hot-path variants agree with the allocating ones.
        let mut y2 = vec![0.0; 3];
        f.btran_dense_into(&c, &mut y2);
        assert_eq!(y, y2);
        let mut sp = IndexedVec::new(3);
        let mut ys = IndexedVec::new(3);
        sp.set(1, 1.0);
        f.btran_sparse(&sp, &mut ys);
        let ye = f.btran_dense(&[0.0, 1.0, 0.0]);
        for (r, &v) in ye.iter().enumerate() {
            assert!((ys.get(r) - v).abs() < 1e-14, "row {r}");
        }
        let mut wv = IndexedVec::new(3);
        f.ftran_col(view, 2, &mut wv);
        let wd = {
            let mut x = [0.0; 3];
            view.scatter(2, &mut x);
            f.ftran_dense(&x)
        };
        for (i, &v) in wd.iter().enumerate() {
            assert!((wv.get(i) - v).abs() < 1e-14, "pos {i}");
        }
    }

    #[test]
    fn dense_solves_small_system() {
        check_ftran_btran(DenseInv::new(3));
    }

    #[test]
    fn sparse_solves_small_system() {
        check_ftran_btran(SparseLu::new(3));
    }

    #[test]
    fn eta_update_matches_refactorisation() {
        let (mut start, mut rows, mut vals) = cols_3x3();
        // Add a fourth column [1, 1, 1] to pivot in.
        start.push(9);
        rows.extend([0, 1, 2]);
        vals.extend([1.0, 1.0, 1.0]);
        let view = ColsView {
            start: &start,
            rows: &rows,
            vals: &vals,
        };
        let (mut inc, mut fresh) = (SparseLu::new(3), SparseLu::new(3));
        assert!(inc.refactor(view, &[0, 1, 2]));
        let mut w = IndexedVec::new(3);
        inc.ftran_col(view, 3, &mut w);
        w.sort_indices();
        inc.update(&w, 1);
        assert_eq!(inc.updates(), 1);
        assert!(inc.update_nnz() > 0);
        assert!(fresh.refactor(view, &[0, 3, 2]));
        let rhs = [0.3, -1.2, 2.5];
        let wi = inc.ftran_dense(&rhs);
        let wf = fresh.ftran_dense(&rhs);
        for (a, b) in wi.iter().zip(&wf) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        let cb = [1.0, 0.0, -3.0];
        let yi = inc.btran_dense(&cb);
        let yf = fresh.btran_dense(&cb);
        for (a, b) in yi.iter().zip(&yf) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn dense_and_sparse_agree() {
        let (start, rows, vals) = cols_3x3();
        let view = ColsView {
            start: &start,
            rows: &rows,
            vals: &vals,
        };
        let mut d = DenseInv::new(3);
        let mut s = SparseLu::new(3);
        assert!(d.refactor(view, &[2, 0, 1]));
        assert!(s.refactor(view, &[2, 0, 1]));
        let rhs = [1.5, -0.5, 4.0];
        for (a, b) in d.ftran_dense(&rhs).iter().zip(&s.ftran_dense(&rhs)) {
            assert!((a - b).abs() < 1e-12);
        }
        let cb = [2.0, 1.0, -1.0];
        for (a, b) in d.btran_dense(&cb).iter().zip(&s.btran_dense(&cb)) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_basis_rejected_and_state_preserved() {
        // Two identical columns → singular.
        let start = vec![0, 1, 2, 3];
        let rows = vec![0, 0, 1];
        let vals = vec![1.0, 1.0, 1.0];
        let view = ColsView {
            start: &start,
            rows: &rows,
            vals: &vals,
        };
        let mut s = SparseLu::new(2);
        assert!(s.refactor(view, &[0, 2]));
        let before = s.ftran_dense(&[1.0, 1.0]);
        assert!(!s.refactor(view, &[0, 1]));
        let after = s.ftran_dense(&[1.0, 1.0]);
        assert_eq!(before, after);
        let mut d = DenseInv::new(2);
        assert!(d.refactor(view, &[0, 2]));
        assert!(!d.refactor(view, &[0, 1]));
    }

    #[test]
    fn column_ordering_is_a_pure_implementation_detail() {
        // A basis whose natural order causes fill: the answers must be
        // independent of the internal Markowitz permutation. Compare the
        // permuted sparse LU against the dense inverse on a 4×4 system.
        let start = vec![0, 4, 6, 8, 9];
        let rows = vec![0, 1, 2, 3, 0, 1, 1, 2, 3];
        let vals = vec![4.0, 1.0, 1.0, 1.0, 1.0, 3.0, 1.0, 2.0, 5.0];
        let view = ColsView {
            start: &start,
            rows: &rows,
            vals: &vals,
        };
        let mut s = SparseLu::new(4);
        let mut d = DenseInv::new(4);
        assert!(s.refactor(view, &[0, 1, 2, 3]));
        assert!(d.refactor(view, &[0, 1, 2, 3]));
        let rhs = [1.0, -2.0, 0.5, 3.0];
        for (a, b) in s.ftran_dense(&rhs).iter().zip(&d.ftran_dense(&rhs)) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        let cb = [0.5, 1.0, -1.0, 2.0];
        for (a, b) in s.btran_dense(&cb).iter().zip(&d.btran_dense(&cb)) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }
}

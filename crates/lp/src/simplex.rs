//! Bounded-variable primal simplex.
//!
//! Design notes (what a reader needs to audit the implementation):
//!
//! * **Computational form.** The model's `m` range rows `lb ≤ aᵀx ≤ ub` are
//!   rewritten as equalities `aᵀx − s = 0` with one *logical* (slack)
//!   variable `s ∈ [lb, ub]` per row, so the working system is
//!   `A_ext · (x, s) = 0` with box bounds on every column. The right-hand
//!   side being identically zero makes the initial all-logical basis
//!   (`B = −I`) trivially factorised.
//! * **Phase 1 without artificials.** If the initial basis is primal
//!   infeasible we minimise the sum of bound violations of basic variables
//!   using the standard piecewise-linear phase-1 costs (−1 below the lower
//!   bound, +1 above the upper bound). Infeasible basic variables block the
//!   ratio test at the bound they are approaching, which monotonically
//!   shrinks total infeasibility.
//! * **Pricing.** Dantzig (most negative reduced cost) with an automatic
//!   fallback to Bland's least-index rule after a run of degenerate pivots,
//!   guaranteeing termination.
//! * **Factorisation.** The basis inverse is kept as a dense column-major
//!   matrix updated by elementary (eta) transformations, refactorised from
//!   scratch periodically via Gauss–Jordan elimination with partial
//!   pivoting. Dense linear algebra bounds this solver to medium problems —
//!   the parametric envelope backend in `llamp-core` covers the
//!   multi-million-vertex graphs, exactly as the paper leans on Gurobi's
//!   presolve for scale (§II-D3).

// Dense linear-algebra kernels index several same-length buffers per loop;
// iterator zips would obscure the math without changing codegen.
#![allow(clippy::needless_range_loop)]

use crate::model::{LpModel, Objective};
use crate::solution::{Solution, SolveStatus, VarStatus};

const INF: f64 = f64::INFINITY;

/// Tunable solver parameters. The defaults suit the well-scaled (±1
/// coefficient) models LLAMP generates.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Primal feasibility tolerance (absolute, on variable bounds).
    pub feas_tol: f64,
    /// Dual feasibility / optimality tolerance (on reduced costs).
    pub opt_tol: f64,
    /// Minimum magnitude accepted for a pivot element.
    pub pivot_tol: f64,
    /// Hard iteration cap; `0` selects `20_000 + 50·(m+n)`.
    pub max_iterations: u64,
    /// Refactorise the basis inverse every this many pivots.
    pub refactor_every: u64,
    /// Switch to Bland's rule after this many consecutive degenerate pivots.
    pub bland_after: u32,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            feas_tol: 1e-7,
            opt_tol: 1e-7,
            pivot_tol: 1e-9,
            max_iterations: 0,
            refactor_every: 256,
            bland_after: 64,
        }
    }
}

/// Retained basis data enabling post-solve ranging queries.
#[derive(Debug, Clone)]
pub struct RangingData {
    m: usize,
    /// Column-major dense basis inverse.
    binv: Vec<f64>,
    /// Column sparse structure of the extended matrix (structural+logical).
    col_start: Vec<usize>,
    col_rows: Vec<u32>,
    col_vals: Vec<f64>,
    /// Basic column per row position.
    basis: Vec<usize>,
    /// Values of all extended columns at the optimum.
    x: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    pivot_tol: f64,
}

impl RangingData {
    /// Range of the lower bound of extended column `j` keeping the basis
    /// optimal (primal feasible; dual feasibility is unaffected by bound
    /// shifts).
    pub(crate) fn lb_range(&self, j: usize, status: VarStatus) -> (f64, f64) {
        match status {
            VarStatus::Basic | VarStatus::FreeZero => (f64::NEG_INFINITY, self.x[j]),
            VarStatus::AtUpper => (f64::NEG_INFINITY, self.ub[j]),
            VarStatus::AtLower => {
                let w = self.ftran(j);
                // Moving the bound by δ moves x_j by δ and the basic
                // variables by −δ·w. Find the feasible δ window.
                let mut dn = f64::NEG_INFINITY;
                let mut up = INF;
                for (i, &wi) in w.iter().enumerate() {
                    if wi.abs() <= self.pivot_tol {
                        continue;
                    }
                    let b = self.basis[i];
                    let xb = self.x[b];
                    let (lbi, ubi) = (self.lb[b], self.ub[b]);
                    if wi > 0.0 {
                        // x_b decreases as δ grows.
                        if lbi.is_finite() {
                            up = up.min((xb - lbi) / wi);
                        }
                        if ubi.is_finite() {
                            dn = dn.max((xb - ubi) / wi);
                        }
                    } else {
                        // x_b increases as δ grows.
                        if ubi.is_finite() {
                            up = up.min((xb - ubi) / wi);
                        }
                        if lbi.is_finite() {
                            dn = dn.max((xb - lbi) / wi);
                        }
                    }
                }
                if self.ub[j].is_finite() {
                    up = up.min(self.ub[j] - self.x[j]);
                }
                (self.x[j] + dn, self.x[j] + up)
            }
        }
    }

    fn ftran(&self, j: usize) -> Vec<f64> {
        let m = self.m;
        let mut w = vec![0.0; m];
        for idx in self.col_start[j]..self.col_start[j + 1] {
            let k = self.col_rows[idx] as usize;
            let a = self.col_vals[idx];
            let col = &self.binv[k * m..(k + 1) * m];
            for i in 0..m {
                w[i] += a * col[i];
            }
        }
        w
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NbStatus {
    Basic,
    Lower,
    Upper,
    FreeZero,
}

struct Core {
    m: usize,
    n_struct: usize,
    n_total: usize,
    col_start: Vec<usize>,
    col_rows: Vec<u32>,
    col_vals: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Internal costs (always a minimisation).
    cost: Vec<f64>,
    basis: Vec<usize>,
    in_basis: Vec<i32>,
    status: Vec<NbStatus>,
    x: Vec<f64>,
    /// Column-major dense basis inverse.
    binv: Vec<f64>,
    iterations: u64,
    pivots_since_refactor: u64,
    opts: SimplexOptions,
}

/// Solve `model`, returning the optimal [`Solution`] or the terminal
/// [`SolveStatus`] explaining why none exists.
pub fn solve(model: &LpModel, opts: &SimplexOptions) -> Result<Solution, SolveStatus> {
    let mut core = Core::build(model, opts.clone());
    let max_iters = if opts.max_iterations == 0 {
        20_000 + 50 * (core.m as u64 + core.n_total as u64)
    } else {
        opts.max_iterations
    };

    // Phase 1: restore primal feasibility if the slack basis violates row
    // bounds.
    if core.infeasibility() > opts.feas_tol {
        match core.iterate(true, max_iters) {
            PhaseOutcome::Done => {
                if core.infeasibility() > opts.feas_tol * 10.0 {
                    return Err(SolveStatus::Infeasible);
                }
            }
            PhaseOutcome::Unbounded => {
                // Phase-1 objective is bounded below by zero; an unbounded
                // ray here signals numerical failure, treated as infeasible.
                return Err(SolveStatus::Infeasible);
            }
            PhaseOutcome::IterLimit => return Err(SolveStatus::IterationLimit),
        }
    }

    // Phase 2: optimise the true objective.
    match core.iterate(false, max_iters) {
        PhaseOutcome::Done => Ok(core.extract(model)),
        PhaseOutcome::Unbounded => Err(SolveStatus::Unbounded),
        PhaseOutcome::IterLimit => Err(SolveStatus::IterationLimit),
    }
}

enum PhaseOutcome {
    Done,
    Unbounded,
    IterLimit,
}

impl Core {
    fn build(model: &LpModel, opts: SimplexOptions) -> Self {
        let m = model.rows.len();
        let n_struct = model.cols.len();
        let n_total = n_struct + m;
        let sign = match model.sense {
            Objective::Minimize => 1.0,
            Objective::Maximize => -1.0,
        };

        // Column-wise extended matrix: structural columns from the rows,
        // then one logical column (+1 at its row; `aᵀx − s = 0` i.e. the
        // logical coefficient is −1, folded in here).
        let mut counts = vec![0usize; n_total];
        for row in &model.rows {
            for &(v, _) in &row.terms {
                counts[v as usize] += 1;
            }
        }
        for i in 0..m {
            counts[n_struct + i] = 1;
        }
        let mut col_start = vec![0usize; n_total + 1];
        for j in 0..n_total {
            col_start[j + 1] = col_start[j] + counts[j];
        }
        let nnz = col_start[n_total];
        let mut col_rows = vec![0u32; nnz];
        let mut col_vals = vec![0.0f64; nnz];
        let mut fill = col_start.clone();
        for (i, row) in model.rows.iter().enumerate() {
            for &(v, c) in &row.terms {
                let p = fill[v as usize];
                col_rows[p] = i as u32;
                col_vals[p] = c;
                fill[v as usize] += 1;
            }
        }
        for i in 0..m {
            let p = fill[n_struct + i];
            col_rows[p] = i as u32;
            col_vals[p] = -1.0;
            fill[n_struct + i] += 1;
        }

        let mut lb = Vec::with_capacity(n_total);
        let mut ub = Vec::with_capacity(n_total);
        let mut cost = Vec::with_capacity(n_total);
        for c in &model.cols {
            lb.push(c.lb);
            ub.push(c.ub);
            cost.push(sign * c.obj);
        }
        for r in &model.rows {
            lb.push(r.lb);
            ub.push(r.ub);
            cost.push(0.0);
        }

        // Nonbasic structural variables start at their bound nearest zero;
        // logical variables form the initial basis (B = −I ⇒ B⁻¹ = −I).
        let mut status = vec![NbStatus::Lower; n_total];
        let mut x = vec![0.0; n_total];
        for j in 0..n_struct {
            let (l, u) = (lb[j], ub[j]);
            if l.is_finite() && u.is_finite() {
                if l.abs() <= u.abs() {
                    status[j] = NbStatus::Lower;
                    x[j] = l;
                } else {
                    status[j] = NbStatus::Upper;
                    x[j] = u;
                }
            } else if l.is_finite() {
                status[j] = NbStatus::Lower;
                x[j] = l;
            } else if u.is_finite() {
                status[j] = NbStatus::Upper;
                x[j] = u;
            } else {
                status[j] = NbStatus::FreeZero;
                x[j] = 0.0;
            }
        }
        let mut basis = Vec::with_capacity(m);
        let mut in_basis = vec![-1i32; n_total];
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            let j = n_struct + i;
            basis.push(j);
            in_basis[j] = i as i32;
            status[j] = NbStatus::Basic;
            binv[i * m + i] = -1.0;
        }

        let mut core = Self {
            m,
            n_struct,
            n_total,
            col_start,
            col_rows,
            col_vals,
            lb,
            ub,
            cost,
            basis,
            in_basis,
            status,
            x,
            binv,
            iterations: 0,
            pivots_since_refactor: 0,
            opts,
        };
        core.recompute_basics();
        core
    }

    /// Recompute all basic variable values from the nonbasic assignment:
    /// `x_B = B⁻¹ (0 − A_N x_N)`.
    fn recompute_basics(&mut self) {
        let m = self.m;
        let mut r = vec![0.0; m];
        for j in 0..self.n_total {
            if self.in_basis[j] >= 0 || self.x[j] == 0.0 {
                continue;
            }
            let xj = self.x[j];
            for idx in self.col_start[j]..self.col_start[j + 1] {
                r[self.col_rows[idx] as usize] -= self.col_vals[idx] * xj;
            }
        }
        let mut xb = vec![0.0; m];
        for k in 0..m {
            let rk = r[k];
            if rk == 0.0 {
                continue;
            }
            let col = &self.binv[k * m..(k + 1) * m];
            for i in 0..m {
                xb[i] += rk * col[i];
            }
        }
        for i in 0..m {
            self.x[self.basis[i]] = xb[i];
        }
    }

    fn infeasibility(&self) -> f64 {
        let mut total = 0.0;
        for &b in &self.basis {
            let v = self.x[b];
            if v < self.lb[b] {
                total += self.lb[b] - v;
            } else if v > self.ub[b] {
                total += v - self.ub[b];
            }
        }
        total
    }

    /// BTRAN: `y = cᵦᵀ B⁻¹` for the given basic cost vector.
    fn btran(&self, cb: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut y = vec![0.0; m];
        for (k, yk) in y.iter_mut().enumerate() {
            let col = &self.binv[k * m..(k + 1) * m];
            let mut acc = 0.0;
            for i in 0..m {
                acc += cb[i] * col[i];
            }
            *yk = acc;
        }
        y
    }

    /// FTRAN: `w = B⁻¹ A_j`.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let m = self.m;
        let mut w = vec![0.0; m];
        for idx in self.col_start[j]..self.col_start[j + 1] {
            let k = self.col_rows[idx] as usize;
            let a = self.col_vals[idx];
            let col = &self.binv[k * m..(k + 1) * m];
            for i in 0..m {
                w[i] += a * col[i];
            }
        }
        w
    }

    fn dot_col(&self, j: usize, y: &[f64]) -> f64 {
        let mut acc = 0.0;
        for idx in self.col_start[j]..self.col_start[j + 1] {
            acc += self.col_vals[idx] * y[self.col_rows[idx] as usize];
        }
        acc
    }

    /// Rebuild the dense basis inverse via Gauss–Jordan with partial
    /// pivoting, then refresh the basic values.
    fn refactor(&mut self) {
        let m = self.m;
        if m == 0 {
            return;
        }
        // Assemble B column-major.
        let mut b = vec![0.0; m * m];
        for (pos, &j) in self.basis.iter().enumerate() {
            for idx in self.col_start[j]..self.col_start[j + 1] {
                b[pos * m + self.col_rows[idx] as usize] = self.col_vals[idx];
            }
        }
        // Invert into `inv` (column-major) by Gauss-Jordan on [B | I].
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            // Partial pivot on rows >= col in column `col` of B.
            let mut piv = col;
            let mut best = b[col * m + col].abs();
            for r in col + 1..m {
                let v = b[col * m + r].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-12 {
                // Singular basis should be impossible; fall back to leaving
                // the previous inverse in place.
                return;
            }
            if piv != col {
                for k in 0..m {
                    b.swap(k * m + col, k * m + piv);
                    inv.swap(k * m + col, k * m + piv);
                }
            }
            let d = b[col * m + col];
            for k in 0..m {
                b[k * m + col] /= d;
                inv[k * m + col] /= d;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = b[col * m + r];
                if f == 0.0 {
                    continue;
                }
                for k in 0..m {
                    b[k * m + r] -= f * b[k * m + col];
                    inv[k * m + r] -= f * inv[k * m + col];
                }
            }
        }
        self.binv = inv;
        self.pivots_since_refactor = 0;
        self.recompute_basics();
    }

    /// Run simplex iterations for one phase. `phase1` selects infeasibility
    /// costs instead of the model objective.
    fn iterate(&mut self, phase1: bool, max_iters: u64) -> PhaseOutcome {
        let m = self.m;
        let feas = self.opts.feas_tol;
        let opt = self.opts.opt_tol;
        let mut degenerate_streak = 0u32;

        loop {
            if self.iterations >= max_iters {
                return PhaseOutcome::IterLimit;
            }
            self.iterations += 1;

            // Phase-dependent basic costs.
            let mut cb = vec![0.0; m];
            let mut any_infeasible = false;
            for (i, &b) in self.basis.iter().enumerate() {
                if phase1 {
                    if self.x[b] < self.lb[b] - feas {
                        cb[i] = -1.0;
                        any_infeasible = true;
                    } else if self.x[b] > self.ub[b] + feas {
                        cb[i] = 1.0;
                        any_infeasible = true;
                    }
                } else {
                    cb[i] = self.cost[b];
                }
            }
            if phase1 && !any_infeasible {
                return PhaseOutcome::Done;
            }

            let y = self.btran(&cb);

            // Pricing: find an entering column.
            let use_bland = degenerate_streak >= self.opts.bland_after;
            let mut entering: Option<(usize, f64, f64)> = None; // (col, d, dir)
            let mut best_score = opt;
            for j in 0..self.n_total {
                let st = self.status[j];
                if st == NbStatus::Basic {
                    continue;
                }
                let cj = if phase1 { 0.0 } else { self.cost[j] };
                let d = cj - self.dot_col(j, &y);
                let dir = match st {
                    NbStatus::Lower => {
                        if d < -opt {
                            1.0
                        } else {
                            continue;
                        }
                    }
                    NbStatus::Upper => {
                        if d > opt {
                            -1.0
                        } else {
                            continue;
                        }
                    }
                    NbStatus::FreeZero => {
                        if d < -opt {
                            1.0
                        } else if d > opt {
                            -1.0
                        } else {
                            continue;
                        }
                    }
                    NbStatus::Basic => unreachable!(),
                };
                if use_bland {
                    entering = Some((j, d, dir));
                    break;
                }
                if d.abs() > best_score {
                    best_score = d.abs();
                    entering = Some((j, d, dir));
                }
            }

            let Some((q, _dq, dir)) = entering else {
                return if phase1 {
                    // No improving column; infeasibility is minimal. The
                    // caller checks whether it reached ~zero.
                    PhaseOutcome::Done
                } else {
                    PhaseOutcome::Done
                };
            };

            let w = self.ftran(q);

            // Ratio test: how far can x_q travel in direction `dir`?
            let mut t_limit = if self.lb[q].is_finite() && self.ub[q].is_finite() {
                self.ub[q] - self.lb[q]
            } else {
                INF
            };
            let mut leaving: Option<(usize, bool)> = None; // (row pos, leaves at upper)
            for i in 0..m {
                let rate = -dir * w[i];
                if rate.abs() <= self.opts.pivot_tol {
                    continue;
                }
                let b = self.basis[i];
                let xb = self.x[b];
                let (lbi, ubi) = (self.lb[b], self.ub[b]);
                let (blocking, at_upper) = if rate > 0.0 {
                    // x_b increases.
                    if phase1 && xb < lbi - feas {
                        // Infeasible below: blocks when it reaches lb.
                        (Some(lbi), false)
                    } else if phase1 && xb > ubi + feas {
                        // Already above ub and moving further up: no bound
                        // ahead to cross (its cost is in the pricing).
                        (None, false)
                    } else if ubi.is_finite() {
                        (Some(ubi), true)
                    } else {
                        (None, false)
                    }
                } else {
                    // x_b decreases.
                    if phase1 && xb > ubi + feas {
                        (Some(ubi), true)
                    } else if phase1 && xb < lbi - feas {
                        // Already below lb and moving further down: no
                        // bound ahead to cross.
                        (None, false)
                    } else if lbi.is_finite() {
                        (Some(lbi), false)
                    } else {
                        (None, false)
                    }
                };
                if let Some(bound) = blocking {
                    let t = ((bound - xb) / rate).max(0.0);
                    if t < t_limit - 1e-12 {
                        t_limit = t;
                        leaving = Some((i, at_upper));
                    } else if t < t_limit + 1e-12 && leaving.is_some() {
                        // Tie-break toward the larger |pivot| for stability.
                        let (cur, _) = leaving.unwrap();
                        if w[i].abs() > w[cur].abs() {
                            leaving = Some((i, at_upper));
                        }
                    }
                }
            }

            if t_limit.is_infinite() {
                return PhaseOutcome::Unbounded;
            }
            if t_limit <= 1e-12 {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }

            #[cfg(debug_assertions)]
            if std::env::var_os("LLAMP_LP_TRACE").is_some() {
                eprintln!(
                    "iter={} phase1={} q={} status={:?} dir={} t_limit={} leaving={:?} x_q={}",
                    self.iterations,
                    phase1,
                    q,
                    self.status[q],
                    dir,
                    t_limit,
                    leaving.map(|(r, up)| (r, self.basis[r], up)),
                    self.x[q]
                );
            }
            // Apply the step.
            let step = dir * t_limit;
            self.x[q] += step;
            for i in 0..m {
                if w[i] != 0.0 {
                    let b = self.basis[i];
                    self.x[b] -= step * w[i];
                }
            }

            match leaving {
                None => {
                    // Bound flip: x_q traversed its whole box.
                    self.status[q] = match self.status[q] {
                        NbStatus::Lower => NbStatus::Upper,
                        NbStatus::Upper => NbStatus::Lower,
                        s => s,
                    };
                }
                Some((r, at_upper)) => {
                    let out = self.basis[r];
                    // Snap the leaving variable exactly onto its bound.
                    self.x[out] = if at_upper { self.ub[out] } else { self.lb[out] };
                    self.status[out] = if at_upper {
                        NbStatus::Upper
                    } else {
                        NbStatus::Lower
                    };
                    self.in_basis[out] = -1;
                    self.basis[r] = q;
                    self.in_basis[q] = r as i32;
                    self.status[q] = NbStatus::Basic;
                    self.update_binv(&w, r);
                    #[cfg(debug_assertions)]
                    if std::env::var_os("LLAMP_LP_CHECK").is_some() {
                        let res = self.binv_residual();
                        assert!(
                            res < 1e-6,
                            "binv residual {res} after pivot (iter {})",
                            self.iterations
                        );
                        let incr: Vec<f64> = self.basis.iter().map(|&b| self.x[b]).collect();
                        self.recompute_basics();
                        for (i, &b) in self.basis.iter().enumerate() {
                            assert!((incr[i] - self.x[b]).abs() < 1e-6 * (1.0 + incr[i].abs()),
                                "x_B[{i}] (col {b}) drift: incremental {} vs fresh {} at iter {} phase1={phase1}",
                                incr[i], self.x[b], self.iterations);
                        }
                    }
                    self.pivots_since_refactor += 1;
                    if self.pivots_since_refactor >= self.opts.refactor_every {
                        self.refactor();
                    }
                }
            }
        }
    }

    /// Maximum residual `|B·B⁻¹ − I|` (debug aid).
    #[cfg(debug_assertions)]
    #[allow(dead_code)]
    fn binv_residual(&self) -> f64 {
        let m = self.m;
        let mut worst = 0.0f64;
        // (B · Binv)[i][k] = Σ_j B[i][j] · Binv[j][k]; B's column j is the
        // sparse column of basis[j].
        for k in 0..m {
            let mut acc = vec![0.0; m];
            for (j, &bj) in self.basis.iter().enumerate() {
                let x = self.binv[k * m + j];
                if x == 0.0 {
                    continue;
                }
                for idx in self.col_start[bj]..self.col_start[bj + 1] {
                    acc[self.col_rows[idx] as usize] += self.col_vals[idx] * x;
                }
            }
            for i in 0..m {
                let want = if i == k { 1.0 } else { 0.0 };
                worst = worst.max((acc[i] - want).abs());
            }
        }
        worst
    }

    /// Eta update: replace basic position `r` given the FTRAN direction `w`.
    fn update_binv(&mut self, w: &[f64], r: usize) {
        let m = self.m;
        let wr = w[r];
        debug_assert!(wr.abs() > self.opts.pivot_tol, "zero pivot");
        for k in 0..m {
            let col = &mut self.binv[k * m..(k + 1) * m];
            let brk = col[r];
            if brk == 0.0 {
                continue;
            }
            let scaled = brk / wr;
            col[r] = scaled;
            for i in 0..m {
                if i != r && w[i] != 0.0 {
                    col[i] -= w[i] * scaled;
                }
            }
        }
    }

    fn extract(mut self, model: &LpModel) -> Solution {
        // One final refactor to tighten numerics before reporting.
        if self.pivots_since_refactor > 0 {
            self.refactor();
        }
        let sign = match model.sense {
            Objective::Minimize => 1.0,
            Objective::Maximize => -1.0,
        };
        let m = self.m;
        let n = self.n_struct;

        let mut cb = vec![0.0; m];
        for (i, &b) in self.basis.iter().enumerate() {
            cb[i] = self.cost[b];
        }
        let y = self.btran(&cb);

        let mut x = Vec::with_capacity(n);
        let mut reduced = Vec::with_capacity(n);
        let mut statuses = Vec::with_capacity(n);
        let mut objective = 0.0;
        for j in 0..n {
            x.push(self.x[j]);
            objective += model.cols[j].obj * self.x[j];
            let d_int = self.cost[j] - self.dot_col(j, &y);
            reduced.push(sign * d_int);
            statuses.push(match self.status[j] {
                NbStatus::Basic => VarStatus::Basic,
                NbStatus::Lower => VarStatus::AtLower,
                NbStatus::Upper => VarStatus::AtUpper,
                NbStatus::FreeZero => VarStatus::FreeZero,
            });
        }

        let mut duals = Vec::with_capacity(m);
        let mut activity = Vec::with_capacity(m);
        let mut row_lb = Vec::with_capacity(m);
        let mut row_ub = Vec::with_capacity(m);
        for i in 0..m {
            // Logical column i has coefficient −1: reduced cost of the
            // logical is 0 − yᵀ(−e_i) = y_i = ∂obj/∂(row bound).
            duals.push(sign * y[i]);
            activity.push(self.x[n + i]);
            row_lb.push(model.rows[i].lb);
            row_ub.push(model.rows[i].ub);
        }

        let ranging = RangingData {
            m,
            binv: self.binv,
            col_start: self.col_start,
            col_rows: self.col_rows,
            col_vals: self.col_vals,
            basis: self.basis,
            x: self.x,
            lb: self.lb,
            ub: self.ub,
            pivot_tol: self.opts.pivot_tol,
        };

        Solution {
            objective,
            x,
            reduced_costs: reduced,
            duals,
            row_activity: activity,
            var_status: statuses,
            iterations: self.iterations,
            row_lb,
            row_ub,
            ranging: Box::new(ranging),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LpModel, Objective, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
    }

    #[test]
    fn trivial_bound_only() {
        // min x s.t. x >= 5 (as a bound).
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 5.0, INF, 1.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 5.0);
        assert_close(sol.value(x), 5.0);
        assert_close(sol.reduced_cost(x), 1.0);
    }

    #[test]
    fn simple_row_dual() {
        // min x s.t. x >= 5 (as a row): dual must be 1.
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, INF, 1.0);
        let c = m.add_constraint("r", &[(x, 1.0)], Relation::Ge, 5.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 5.0);
        assert_close(sol.dual(c), 1.0);
        assert!(sol.is_tight(c));
    }

    #[test]
    fn maximize_with_capacity() {
        // max 3a + 5b s.t. a <= 4, 2b <= 12, 3a + 2b <= 18 (classic).
        let mut m = LpModel::new(Objective::Maximize);
        let a = m.add_var("a", 0.0, INF, 3.0);
        let b = m.add_var("b", 0.0, INF, 5.0);
        m.add_constraint("c1", &[(a, 1.0)], Relation::Le, 4.0);
        let c2 = m.add_constraint("c2", &[(b, 2.0)], Relation::Le, 12.0);
        let c3 = m.add_constraint("c3", &[(a, 3.0), (b, 2.0)], Relation::Le, 18.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 36.0);
        assert_close(sol.value(a), 2.0);
        assert_close(sol.value(b), 6.0);
        // Known duals of the Dakota-style example: y2 = 1.5, y3 = 1.
        assert_close(sol.dual(c2), 1.5);
        assert_close(sol.dual(c3), 1.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 10, x - y = 4 => x=7, y=3.
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 0.0, INF, 1.0);
        let y = m.add_var("y", 0.0, INF, 1.0);
        m.add_constraint("sum", &[(x, 1.0), (y, 1.0)], Relation::Eq, 10.0);
        m.add_constraint("diff", &[(x, 1.0), (y, -1.0)], Relation::Eq, 4.0);
        let sol = m.solve().unwrap();
        assert_close(sol.value(x), 7.0);
        assert_close(sol.value(y), 3.0);
        assert_close(sol.objective(), 10.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint("hi", &[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(m.solve().unwrap_err(), SolveStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, 0.0, 1.0);
        m.add_constraint("r", &[(x, 1.0)], Relation::Le, 0.0);
        assert_eq!(m.solve().unwrap_err(), SolveStatus::Unbounded);
    }

    #[test]
    fn free_variables() {
        // min |shift| style: free var pinned by two inequalities.
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, INF, 1.0);
        m.add_constraint("lo", &[(x, 1.0)], Relation::Ge, -3.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), -3.0);
    }

    #[test]
    fn paper_running_example_min_t() {
        // Equation 6 + l >= 0.5: t = 1.615, reduced cost of l = 1 (Fig. 5).
        let mut m = LpModel::new(Objective::Minimize);
        let l = m.add_var("l", 0.5, INF, 0.0);
        let y1 = m.add_var("y1", f64::NEG_INFINITY, INF, 0.0);
        let t = m.add_var("t", f64::NEG_INFINITY, INF, 1.0);
        let c1 = m.add_constraint("c1", &[(y1, 1.0), (l, -1.0)], Relation::Ge, 0.115);
        let c2 = m.add_constraint("c2", &[(y1, 1.0)], Relation::Ge, 0.5);
        let c3 = m.add_constraint("c3", &[(t, 1.0)], Relation::Ge, 1.1);
        let c4 = m.add_constraint("c4", &[(t, 1.0), (y1, -1.0)], Relation::Ge, 1.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 1.615);
        assert_close(sol.reduced_cost(l), 1.0);
        // Constraints (1) and (4) are tight: the critical path C0->S->R->C3.
        assert!(sol.is_tight(c1));
        assert!(sol.is_tight(c4));
        assert!(!sol.is_tight(c2));
        assert!(!sol.is_tight(c3));
        // Basis stays optimal down to l >= 0.385 (the critical latency).
        let (lo, _hi) = sol.lb_range(l);
        assert_close(lo, 0.385);
    }

    #[test]
    fn paper_running_example_max_l() {
        // Fig. 6: maximize l subject to t <= 2 => l = 0.885.
        let mut m = LpModel::new(Objective::Maximize);
        let l = m.add_var("l", 0.0, INF, 1.0);
        let y1 = m.add_var("y1", f64::NEG_INFINITY, INF, 0.0);
        let t = m.add_var("t", f64::NEG_INFINITY, 2.0, 0.0);
        m.add_constraint("c1", &[(y1, 1.0), (l, -1.0)], Relation::Ge, 0.115);
        m.add_constraint("c2", &[(y1, 1.0)], Relation::Ge, 0.5);
        m.add_constraint("c3", &[(t, 1.0)], Relation::Ge, 1.1);
        m.add_constraint("c4", &[(t, 1.0), (y1, -1.0)], Relation::Ge, 1.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 0.885);
        assert_close(sol.value(l), 0.885);
    }

    #[test]
    fn running_example_below_critical_latency() {
        // With l >= 0.2 (< 0.385) the compute path dominates: t = 1.5 and
        // the latency sensitivity is 0.
        let mut m = LpModel::new(Objective::Minimize);
        let l = m.add_var("l", 0.2, INF, 0.0);
        let y1 = m.add_var("y1", f64::NEG_INFINITY, INF, 0.0);
        let t = m.add_var("t", f64::NEG_INFINITY, INF, 1.0);
        m.add_constraint("c1", &[(y1, 1.0), (l, -1.0)], Relation::Ge, 0.115);
        m.add_constraint("c2", &[(y1, 1.0)], Relation::Ge, 0.5);
        m.add_constraint("c3", &[(t, 1.0)], Relation::Ge, 1.1);
        m.add_constraint("c4", &[(t, 1.0), (y1, -1.0)], Relation::Ge, 1.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 1.5);
        assert_close(sol.reduced_cost(l), 0.0);
    }

    #[test]
    fn range_row_is_respected() {
        // max x with 2 <= x <= 7 expressed as a range row.
        let mut m = LpModel::new(Objective::Maximize);
        let x = m.add_var("x", f64::NEG_INFINITY, INF, 1.0);
        m.add_range_constraint("rng", &[(x, 1.0)], 2.0, 7.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 7.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Many redundant constraints through the same vertex.
        let mut m = LpModel::new(Objective::Minimize);
        let x = m.add_var("x", 0.0, INF, 1.0);
        let y = m.add_var("y", 0.0, INF, 1.0);
        for i in 0..20 {
            let w = 1.0 + (i as f64) * 0.0; // identical rows
            m.add_constraint(format!("r{i}"), &[(x, w), (y, w)], Relation::Ge, 4.0);
        }
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 4.0);
    }

    #[test]
    fn iterations_are_counted() {
        let mut m = LpModel::new(Objective::Maximize);
        let a = m.add_var("a", 0.0, INF, 3.0);
        let b = m.add_var("b", 0.0, INF, 5.0);
        m.add_constraint("c1", &[(a, 1.0)], Relation::Le, 4.0);
        m.add_constraint("c2", &[(b, 2.0)], Relation::Le, 12.0);
        m.add_constraint("c3", &[(a, 3.0), (b, 2.0)], Relation::Le, 18.0);
        let sol = m.solve().unwrap();
        assert!(sol.iterations() > 0);
    }
}
